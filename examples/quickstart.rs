//! Quickstart: recover service rates of a tandem network from 10% of
//! trace data.
//!
//! Run with: `cargo run --release --example quickstart`

use qni::prelude::*;

fn main() {
    // 1. Define the system: Poisson(2.0) arrivals through two FIFO
    //    queues with service rates 6.0 and 8.0.
    let bp = qni::model::topology::tandem(2.0, &[6.0, 8.0]).expect("valid topology");
    let mut rng = rng_from_seed(2008);

    // 2. Generate ground truth: 800 tasks through the simulator.
    let truth = Simulator::new(&bp.network)
        .run(&Workload::poisson_n(2.0, 800).expect("workload"), &mut rng)
        .expect("simulation");
    println!(
        "simulated {} tasks / {} events",
        truth.num_tasks(),
        truth.num_events()
    );

    // 3. Observe only 10% of tasks (all their arrivals + final departure),
    //    as the paper's §5.1 protocol prescribes.
    let masked = ObservationScheme::task_sampling(0.10)
        .expect("valid fraction")
        .apply(truth, &mut rng)
        .expect("mask");
    println!(
        "observed arrival fraction: {:.1}%  (free variables: {})",
        masked.observed_arrival_fraction() * 100.0,
        masked.free_arrivals().len() + masked.free_final_departures().len()
    );

    // 4. Run stochastic EM: Gibbs sweeps impute the unobserved times, the
    //    M-step re-estimates the rates.
    let opts = StemOptions::default();
    let result = run_stem(&masked, None, &opts, &mut rng).expect("stem");

    // 5. Compare against the generating parameters.
    let truth_rates = [2.0, 6.0, 8.0];
    let names = ["q0 (arrivals λ)", "stage1 (µ1)", "stage2 (µ2)"];
    println!("\n{:<18} {:>8} {:>8} {:>8}", "queue", "true", "est", "err%");
    for i in 0..3 {
        let err = (result.rates[i] - truth_rates[i]).abs() / truth_rates[i] * 100.0;
        println!(
            "{:<18} {:>8.3} {:>8.3} {:>7.1}%",
            names[i], truth_rates[i], result.rates[i], err
        );
    }
    println!(
        "\nmean waiting estimates: stage1 = {:.4}, stage2 = {:.4}",
        result.mean_waiting[1], result.mean_waiting[2]
    );
    println!(
        "M/M/1 theory:           stage1 = {:.4}, stage2 = {:.4}",
        qni::sim::mm1::Mm1::new(2.0, 6.0)
            .expect("stable")
            .mean_waiting(),
        qni::sim::mm1::Mm1::new(2.0, 8.0)
            .expect("stable")
            .mean_waiting()
    );
}
