//! Capacity planning from partial traces: estimate rates with StEM, then
//! answer "what happens at 2x load?" with queueing theory.
//!
//! The paper's introduction motivates queueing models by their ability to
//! "predict the amount of load that will cause a system to become
//! unresponsive, without actually allowing it to fail". This example
//! closes that loop: rates inferred from 10% of trace data feed M/M/1
//! formulas that extrapolate waiting times to hypothetical loads and find
//! the saturation point.
//!
//! Run with: `cargo run --release --example capacity_whatif`

use qni::prelude::*;
use qni::sim::mm1::Mm1;

fn main() {
    // Current system: a single service queue at moderate load (ρ = 0.4).
    let true_lambda = 4.0;
    let true_mu = 10.0;
    let bp = qni::model::topology::single_queue(true_lambda, true_mu).expect("topology");
    let mut rng = rng_from_seed(31);
    let truth = Simulator::new(&bp.network)
        .run(
            &Workload::poisson_n(true_lambda, 2000).expect("workload"),
            &mut rng,
        )
        .expect("simulation");
    let masked = ObservationScheme::task_sampling(0.10)
        .expect("fraction")
        .apply(truth, &mut rng)
        .expect("mask");

    let result = run_stem(&masked, None, &StemOptions::default(), &mut rng).expect("stem");
    let lambda_hat = result.rates[0];
    let mu_hat = result.rates[1];
    println!(
        "inferred from 10% of arrivals: λ̂ = {lambda_hat:.3} (true {true_lambda}), \
         µ̂ = {mu_hat:.3} (true {true_mu})"
    );

    // What-if sweep: scale the arrival rate and extrapolate.
    println!(
        "\n{:>6} {:>10} {:>12} {:>12}",
        "load x", "λ", "utilization", "mean waiting"
    );
    for mult in [1.0, 1.25, 1.5, 1.75, 2.0, 2.25, 2.4] {
        let lam = lambda_hat * mult;
        match Mm1::new(lam, mu_hat) {
            Ok(m) => println!(
                "{:>6.2} {:>10.3} {:>11.1}% {:>12.4}",
                mult,
                lam,
                m.utilization() * 100.0,
                m.mean_waiting()
            ),
            Err(_) => println!("{:>6.2} {:>10.3} {:>12} {:>12}", mult, lam, "≥100%", "∞"),
        }
    }
    let saturation = mu_hat / lambda_hat;
    println!(
        "\n→ the system saturates at {saturation:.2}x the current load \
         (λ reaches µ̂ = {mu_hat:.2})."
    );
    // Cross-check the 1x prediction against simulated truth.
    let truth_w = Mm1::new(true_lambda, true_mu)
        .expect("stable")
        .mean_waiting();
    let est_w = Mm1::new(lambda_hat, mu_hat).expect("stable").mean_waiting();
    println!("sanity: predicted mean waiting at current load {est_w:.4} vs theory {truth_w:.4}");

    // The same exercise for a whole network: infer rates on a three-tier
    // service, then extrapolate with the Jackson product-form solution.
    println!("\n--- network-level what-if (three-tier, inferred rates) ---");
    let bp = qni::model::topology::three_tier(3.0, 10.0, &[2, 1, 2], false).expect("topology");
    let truth = Simulator::new(&bp.network)
        .run(&Workload::poisson_n(3.0, 1500).expect("workload"), &mut rng)
        .expect("simulation");
    let masked = ObservationScheme::task_sampling(0.10)
        .expect("fraction")
        .apply(truth, &mut rng)
        .expect("mask");
    let result = run_stem(&masked, None, &StemOptions::default(), &mut rng).expect("stem");
    // Build a what-if network from the inferred rates and sweep the load.
    let mut inferred = bp.network.clone();
    for q in 1..inferred.num_queues() {
        inferred
            .set_exponential_rate(QueueId::from_index(q), result.rates[q])
            .expect("rate");
    }
    println!(
        "{:>6} {:>14} {:>16}",
        "load x", "bottleneck ρ", "mean response"
    );
    for mult in [1.0, 1.5, 2.0, 2.5, 3.0] {
        inferred
            .set_exponential_rate(QueueId(0), result.rates[0] * mult)
            .expect("rate");
        let j = qni::sim::jackson::analyze(&inferred).expect("jackson");
        let worst =
            j.utilization
                .iter()
                .skip(1)
                .fold(0.0f64, |a, &b| if b.is_finite() { a.max(b) } else { a });
        let resp = j.mean_response();
        println!(
            "{:>6.1} {:>13.1}% {:>16}",
            mult,
            worst * 100.0,
            if resp.is_finite() {
                format!("{resp:.4}")
            } else {
                "unbounded".to_owned()
            }
        );
    }
}
