//! Unknown-replica attribution with Metropolis–Hastings path resampling.
//!
//! The paper assumes the FSM path of every task is known, and notes that
//! unknown paths "can be resampled by an outer Metropolis-Hastings step"
//! (§3). This example exercises that extension: a two-replica tier where
//! one replica is intrinsically slow; request *times* were logged, but
//! the load balancer's *routing log* was lost — which replica served each
//! request is unknown. The MH chain over assignments (with the M-step
//! re-estimating rates) both recovers the per-replica service rates and
//! attributes individual requests to the replica that actually served
//! them.
//!
//! Run with: `cargo run --release --example replica_attribution`

use qni::inference::gibbs::sweep::sweep;
use qni::inference::init::InitStrategy;
use qni::prelude::*;

fn main() {
    // Two replicas: replica 2 is 4x slower (rates 8 vs 2).
    let fsm = Fsm::tiered(&[vec![QueueId(1), QueueId(2)]]).expect("fsm");
    let network =
        QueueingNetwork::mm1(1.5, &[("replica1", 8.0), ("replica2", 2.0)], fsm).expect("network");
    let mut rng = rng_from_seed(99);
    let truth = Simulator::new(&network)
        .run(&Workload::poisson_n(1.5, 300).expect("workload"), &mut rng)
        .expect("simulation");
    println!(
        "simulated {} requests; replica2 is 4x slower (mean 0.5s vs 0.125s)",
        truth.num_tasks()
    );

    // All *times* observed; every replica assignment treated as unknown.
    let masked = ObservationScheme::Full
        .apply(truth, &mut rng)
        .expect("mask");
    let unknown: Vec<EventId> = masked
        .ground_truth()
        .event_ids()
        .filter(|&e| !masked.ground_truth().is_initial_event(e))
        .collect();
    println!(
        "{} tier events with lost routing information",
        unknown.len()
    );

    // Start from deliberately wrong symmetric rates: the sampler must
    // discover the asymmetry on its own.
    let rates0 = vec![1.5, 4.0, 4.0];
    let mut state = GibbsState::new(&masked, rates0, InitStrategy::default()).expect("state");
    let fsm = network.fsm().clone();
    let mut accepted = 0usize;
    let sweeps = 600;
    let burn = sweeps / 2;
    let mut on_true = vec![0usize; masked.ground_truth().num_events()];
    let mut kept = 0usize;
    let gt = masked.ground_truth();
    for it in 0..sweeps {
        // Times are fully observed, so the time sweep is a no-op; kept to
        // show the general joint-update pattern.
        sweep(&mut state, &mut rng).expect("sweep");
        accepted += state
            .reassign_unknown(&fsm, &unknown, &mut rng)
            .expect("reassign");
        let mut rates = state.rates().to_vec();
        qni::inference::mstep::update_rates(&mut rates, state.log()).expect("mstep");
        state.set_rates(&rates).expect("rates");
        if it >= burn {
            kept += 1;
            for &e in &unknown {
                if state.log().queue_of(e) == gt.queue_of(e) {
                    on_true[e.index()] += 1;
                }
            }
        }
    }
    println!("ran {sweeps} MH sweeps; {accepted} reassignments accepted");
    // Sort the recovered rates: replica labels are exchangeable, so the
    // chain may settle on either labelling.
    let mut recovered = [state.rates()[1], state.rates()[2]];
    recovered.sort_by(f64::total_cmp);
    println!(
        "recovered rates (sorted): µ̂ = {:.2} and {:.2} (true: 2.0 and 8.0)",
        recovered[0], recovered[1]
    );

    // Attribution quality: posterior probability on the true replica
    // (up to the label symmetry).
    let direct: f64 = unknown
        .iter()
        .map(|e| on_true[e.index()] as f64 / kept as f64)
        .sum::<f64>()
        / unknown.len() as f64;
    let attribution = direct.max(1.0 - direct);
    println!(
        "mean posterior probability on the true replica: {:.1}% (50% = chance)",
        attribution * 100.0
    );
}
