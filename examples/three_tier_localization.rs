//! Fault localization on the paper's Figure-1 topology.
//!
//! A three-tier web service (network → web tier → middleware → storage →
//! network) suffers an intermittent storage slowdown. From 5% of trace
//! data, the inferred service/waiting decomposition localizes the fault
//! and classifies it as *intrinsic* (slow component) rather than
//! *load-induced* (overload) — the distinction the paper's introduction
//! motivates.
//!
//! Run with: `cargo run --release --example three_tier_localization`

use qni::prelude::*;

fn main() {
    // Figure 1: 2 web servers, 1 middleware, 2 storage servers, with
    // network queues at entry and exit.
    let bp = qni::model::topology::three_tier(3.0, 12.0, &[2, 1, 2], true).expect("valid topology");
    let mut network = bp.network.clone();
    // Give the network queues a faster rate than the servers.
    for &q in &bp.network_queues {
        network.set_exponential_rate(q, 40.0).expect("rate");
    }
    let storage = bp.tiers[2][0];

    // Inject the fault: storage server 1 runs 6x slower mid-experiment.
    let mut faults = FaultPlan::none();
    faults.push(Fault::new(storage, 40.0, 120.0, 6.0).expect("fault"));

    let mut rng = rng_from_seed(77);
    let truth = Simulator::new(&network)
        .with_faults(faults)
        .run(&Workload::poisson(3.0, 160.0).expect("workload"), &mut rng)
        .expect("simulation");
    println!(
        "simulated {} tasks; storage fault active on t ∈ [40, 120): 6x slowdown",
        truth.num_tasks()
    );

    // Observe 5% of tasks.
    let masked = ObservationScheme::task_sampling(0.05)
        .expect("fraction")
        .apply(truth, &mut rng)
        .expect("mask");

    // Estimate rates and waiting times from the partial trace.
    let result = run_stem(&masked, None, &StemOptions::default(), &mut rng).expect("stem");

    // Localize: rank queues by response contribution.
    let report = localize(&result.mean_service, &result.mean_waiting).expect("report");
    println!("\nranked diagnosis (from 5% of arrivals):");
    println!(
        "{:<12} {:>9} {:>9} {:>9}  classification",
        "queue", "service", "waiting", "response"
    );
    for d in &report.ranked {
        println!(
            "{:<12} {:>9.4} {:>9.4} {:>9.4}  {:?}",
            network.queue_name(d.queue),
            d.service,
            d.waiting,
            d.response,
            d.kind
        );
    }
    let top = report.top().expect("non-empty");
    println!(
        "\n→ top suspect: {} ({:?})",
        network.queue_name(top.queue),
        top.kind
    );

    // Drill into the slowest 5% of requests using the imputed data: where
    // do they spend their time?
    let attribution = slow_request_attribution(masked.ground_truth(), 0.95).expect("attribution");
    println!("\nslowest-5%-of-requests time attribution (ground truth):");
    for a in attribution {
        if a.count > 0 {
            println!(
                "  {:<12} waiting {:>8.4}  service {:>8.4}  ({} events)",
                network.queue_name(a.queue),
                a.waiting,
                a.service,
                a.count
            );
        }
    }
}
