//! Diagnosing the (synthetic) movie-voting web application from a 10%
//! trace sample — the paper's §5.2 scenario.
//!
//! Reproduces the qualitative finding of Figure 5: per-queue estimates
//! are stable and accurate with 10% of requests observed, except for the
//! web server the load balancer starved (≈19 requests), whose estimate is
//! unreliable.
//!
//! Run with: `cargo run --release --example webapp_diagnosis`

use qni::prelude::*;

fn main() {
    let cfg = WebAppConfig::default();
    let tb = WebAppTestbed::build(&cfg).expect("testbed");
    let mut rng = rng_from_seed(52);

    println!(
        "generating {} requests over {:.0} min (linear ramp {:.1} → {:.1} req/s)...",
        cfg.requests,
        cfg.duration / 60.0,
        cfg.ramp.0,
        cfg.ramp.1
    );
    let truth = tb.generate(&mut rng).expect("generation");
    println!(
        "dataset: {} tasks, {} arrival events",
        truth.num_tasks(),
        truth.num_events() - truth.num_tasks()
    );
    let truth_avg = truth.queue_averages();

    let masked = ObservationScheme::task_sampling(0.10)
        .expect("fraction")
        .apply(truth, &mut rng)
        .expect("mask");

    println!("running StEM on 10% of requests...");
    let opts = StemOptions {
        iterations: 120,
        burn_in: 60,
        waiting_sweeps: 15,
        ..StemOptions::default()
    };
    let result = run_stem(&masked, None, &opts, &mut rng).expect("stem");

    let true_service = tb.true_mean_services();
    println!(
        "\n{:<9} {:>7} {:>10} {:>10} {:>8} {:>10} {:>10}",
        "queue", "events", "svc true", "svc est", "err%", "wait true", "wait est"
    );
    for q in 1..tb.network().num_queues() {
        let qid = QueueId::from_index(q);
        let name = tb.network().queue_name(qid);
        let est = result.mean_service[q];
        let tru = true_service[q];
        let err = (est - tru).abs() / tru * 100.0;
        let flag = if truth_avg[q].count < 50 {
            "  ← starved"
        } else {
            ""
        };
        println!(
            "{:<9} {:>7} {:>10.4} {:>10.4} {:>7.1}% {:>10.4} {:>10.4}{}",
            name,
            truth_avg[q].count,
            tru,
            est,
            err,
            truth_avg[q].mean_waiting,
            result.mean_waiting[q],
            flag
        );
    }
    println!(
        "\nNote the starved server: with so few requests its estimate is \
         unstable,\nexactly as the paper observes for the server that \
         received only 19 requests."
    );
}
