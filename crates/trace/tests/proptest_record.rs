//! Property-based end-to-end round-trip of the trace record layer:
//! `to_records` → `write_jsonl` → `read_jsonl` → `from_records` must
//! reproduce the original [`MaskedLog`] exactly — mask bits, pinned
//! times (bitwise: the JSONL writer uses shortest-round-trip float
//! formatting), queue ids, and task structure — across random
//! topologies and masks.

use proptest::prelude::*;
use qni_model::ids::{EventId, QueueId, StateId};
use qni_model::log::{EventLog, EventLogBuilder};
use qni_trace::record::{from_records, read_jsonl, to_records, write_jsonl};
use qni_trace::tail::LineAssembler;
use qni_trace::{MaskedLog, ObservedMask};

/// A randomly generated multi-queue task set: per task, an entry gap and
/// a visit list of `(queue, wait-ish gap, service gap)` hops.
type RawTasks = Vec<(f64, Vec<(usize, f64, f64)>)>;

/// Strategy: 1–8 tasks over a 2–5 queue network, visits 1–4 hops long.
fn raw_tasks(num_queues: usize) -> impl Strategy<Value = RawTasks> {
    collection::vec(
        (
            0.01f64..3.0, // Entry gap to the previous task.
            collection::vec((1..num_queues, 0.0f64..1.5, 0.01f64..2.0), 1usize..4),
        ),
        1usize..8,
    )
}

/// Builds a log from raw tasks: times accumulate along each task, so the
/// builder's per-task monotonicity always holds (cross-task queue order
/// is whatever it is — the record layer must round-trip any such log).
fn build_log(num_queues: usize, raw: &RawTasks) -> EventLog {
    let mut b = EventLogBuilder::new(num_queues, StateId(0));
    let mut entry = 0.0f64;
    for (gap, hops) in raw {
        entry += gap;
        let mut t = entry;
        let visits: Vec<_> = hops
            .iter()
            .map(|&(q, wait, service)| {
                let arrival = t;
                t += wait + service;
                (StateId(q as u32), QueueId(q as u32), arrival, t)
            })
            .collect();
        b.add_task(entry, &visits).expect("valid task");
    }
    b.build().expect("buildable")
}

/// Applies 2-bit mask codes (bit 0: arrival, bit 1: departure) per event.
fn build_mask(log: &EventLog, codes: &[u8]) -> ObservedMask {
    let mut mask = ObservedMask::unobserved(log.num_events());
    for e in log.event_ids() {
        let code = codes[e.index() % codes.len()];
        if code & 1 != 0 {
            mask.observe_arrival(e);
        }
        if code & 2 != 0 {
            mask.observe_departure(e);
        }
    }
    mask
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn jsonl_round_trip_reproduces_masked_log(
        (num_queues, raw, codes) in (2usize..6).prop_flat_map(|q| {
            (Just(q), raw_tasks(q), collection::vec(0u8..4, 1usize..32))
        })
    ) {
        let log = build_log(num_queues, &raw);
        let mask = build_mask(&log, &codes);
        let original = MaskedLog::new(log, mask).expect("masked log");

        let records = to_records(original.ground_truth(), original.mask());
        prop_assert_eq!(records.len(), original.ground_truth().num_events());
        let mut buf = Vec::new();
        write_jsonl(&original, &mut buf).expect("write");
        let read_back = read_jsonl(std::io::Cursor::new(&buf)).expect("read");
        // The streamed records equal the in-memory extraction.
        prop_assert_eq!(&read_back, &records);

        let rebuilt = from_records(&read_back, num_queues).expect("rebuild");
        let (a, b) = (original.ground_truth(), rebuilt.ground_truth());
        prop_assert_eq!(a.num_events(), b.num_events());
        prop_assert_eq!(a.num_tasks(), b.num_tasks());
        prop_assert_eq!(a.num_queues(), b.num_queues());
        for e in a.event_ids() {
            // Bitwise time equality: JSONL floats are shortest-round-trip.
            prop_assert_eq!(a.arrival(e).to_bits(), b.arrival(e).to_bits());
            prop_assert_eq!(a.departure(e).to_bits(), b.departure(e).to_bits());
            prop_assert_eq!(a.queue_of(e), b.queue_of(e));
            prop_assert_eq!(a.task_of(e), b.task_of(e));
            prop_assert_eq!(a.state_of(e), b.state_of(e));
            // Mask bits (including the forced-observed initial arrivals).
            prop_assert_eq!(
                original.mask().arrival_observed(e),
                rebuilt.mask().arrival_observed(e)
            );
            prop_assert_eq!(
                original.mask().departure_observed(e),
                rebuilt.mask().departure_observed(e)
            );
        }
        // Derived free-variable structure agrees too.
        prop_assert_eq!(original.free_arrivals(), rebuilt.free_arrivals());
        prop_assert_eq!(
            original.free_final_departures(),
            rebuilt.free_final_departures()
        );
    }

    #[test]
    fn scrubbed_views_agree_after_round_trip(
        (num_queues, raw, codes) in (2usize..5).prop_flat_map(|q| {
            (Just(q), raw_tasks(q), collection::vec(0u8..4, 1usize..16))
        })
    ) {
        // What inference actually consumes is the scrubbed log; NaN
        // patterns must survive the disk round trip exactly.
        let log = build_log(num_queues, &raw);
        let mask = build_mask(&log, &codes);
        let original = MaskedLog::new(log, mask).expect("masked log");
        let mut buf = Vec::new();
        write_jsonl(&original, &mut buf).expect("write");
        let rebuilt = from_records(
            &read_jsonl(std::io::Cursor::new(&buf)).expect("read"),
            num_queues,
        )
        .expect("rebuild");
        let (sa, sb) = (original.scrubbed_log(), rebuilt.scrubbed_log());
        for e in sa.event_ids() {
            let e2 = EventId::from_index(e.index());
            prop_assert_eq!(sa.arrival(e).is_nan(), sb.arrival(e2).is_nan());
            prop_assert_eq!(sa.departure(e).is_nan(), sb.departure(e2).is_nan());
        }
    }

    /// The live-tail invariant: slicing the JSONL byte stream at
    /// arbitrary chunk boundaries (including mid-line and mid-UTF-8) and
    /// feeding the chunks through [`LineAssembler`] reassembles exactly
    /// the records a one-shot parse produces.
    #[test]
    fn chunked_tail_reads_match_one_shot_parse(
        (num_queues, raw, codes, cuts) in (2usize..6).prop_flat_map(|q| {
            (
                Just(q),
                raw_tasks(q),
                collection::vec(0u8..4, 1usize..32),
                collection::vec(1usize..64, 0usize..24),
            )
        })
    ) {
        let log = build_log(num_queues, &raw);
        let mask = build_mask(&log, &codes);
        let original = MaskedLog::new(log, mask).expect("masked log");
        let mut buf = Vec::new();
        write_jsonl(&original, &mut buf).expect("write");
        let oneshot = read_jsonl(std::io::Cursor::new(&buf)).expect("read");

        let mut asm = LineAssembler::new();
        let mut parsed = Vec::new();
        let mut pos = 0usize;
        for &c in &cuts {
            let end = (pos + c).min(buf.len());
            parsed.extend(asm.push(&buf[pos..end]).expect("chunk"));
            pos = end;
        }
        parsed.extend(asm.push(&buf[pos..]).expect("final chunk"));
        prop_assert_eq!(asm.pending_bytes(), 0);
        prop_assert_eq!(&parsed, &oneshot);
    }
}
