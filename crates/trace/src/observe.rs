//! Observation schemes: which events get measured.

use crate::error::TraceError;
use crate::mask::{MaskedLog, ObservedMask};
use qni_model::ids::TaskId;
use qni_model::log::EventLog;
use rand::Rng;

/// A policy for selecting which arrival (and final-departure) times are
/// measured from a running system.
#[derive(Debug, Clone, PartialEq)]
pub enum ObservationScheme {
    /// Observe *all arrivals* (and the final departure) of a uniformly
    /// random fraction of tasks — the protocol of the paper's §5.1
    /// ("observe all arrivals for a random sample of tasks").
    TaskSampling {
        /// Fraction of tasks observed, in `[0, 1]`.
        fraction: f64,
    },
    /// Observe each non-initial event's arrival independently with the
    /// given probability (final departures likewise).
    EventSampling {
        /// Per-event observation probability.
        fraction: f64,
    },
    /// Observe all events of tasks that *enter* within a time window —
    /// models "turn tracing on for five minutes".
    ///
    /// The window is half-open, `[from, until)`, on the task's system
    /// entry time: an entry exactly at `from` **is** observed, an entry
    /// exactly at `until` is **not** (it belongs to the next window when
    /// windows tile the axis — the same convention as
    /// [`crate::window::WindowSchedule`]). A window that contains no
    /// entry is valid and observes nothing.
    TimeWindow {
        /// Window start (task entry time, inclusive).
        from: f64,
        /// Window end (exclusive).
        until: f64,
    },
    /// Observe everything (for sanity checks).
    Full,
    /// Observe nothing beyond the structural knowledge.
    None,
}

impl ObservationScheme {
    /// Task-sampling scheme with validation.
    pub fn task_sampling(fraction: f64) -> Result<Self, TraceError> {
        check_fraction(fraction)?;
        Ok(ObservationScheme::TaskSampling { fraction })
    }

    /// Event-sampling scheme with validation.
    pub fn event_sampling(fraction: f64) -> Result<Self, TraceError> {
        check_fraction(fraction)?;
        Ok(ObservationScheme::EventSampling { fraction })
    }

    /// Time-window scheme with validation. The window is half-open,
    /// `[from, until)` on task entry times (see
    /// [`ObservationScheme::TimeWindow`]); `from == until` is rejected —
    /// a zero-width window can never observe anything, so asking for one
    /// is almost surely a caller bug rather than an intentional no-op.
    pub fn time_window(from: f64, until: f64) -> Result<Self, TraceError> {
        if !(from.is_finite() && until.is_finite() && until > from) {
            return Err(TraceError::BadWindow { from, until });
        }
        Ok(ObservationScheme::TimeWindow { from, until })
    }

    /// Applies the scheme to a ground-truth log, producing a masked log.
    pub fn apply<R: Rng + ?Sized>(
        &self,
        truth: EventLog,
        rng: &mut R,
    ) -> Result<MaskedLog, TraceError> {
        let n = truth.num_events();
        let mut mask = ObservedMask::unobserved(n);
        match self {
            ObservationScheme::TaskSampling { fraction } => {
                for k in 0..truth.num_tasks() {
                    let u: f64 = rng.random();
                    if u < *fraction {
                        observe_task(&truth, TaskId::from_index(k), &mut mask);
                    }
                }
            }
            ObservationScheme::EventSampling { fraction } => {
                for e in truth.event_ids() {
                    if truth.is_initial_event(e) {
                        continue;
                    }
                    let u: f64 = rng.random();
                    if u < *fraction {
                        mask.observe_arrival(e);
                    }
                    if truth.is_final_event(e) {
                        let u: f64 = rng.random();
                        if u < *fraction {
                            mask.observe_departure(e);
                        }
                    }
                }
            }
            ObservationScheme::TimeWindow { from, until } => {
                for k in 0..truth.num_tasks() {
                    let k = TaskId::from_index(k);
                    let entry = truth.task_entry(k);
                    if entry >= *from && entry < *until {
                        observe_task(&truth, k, &mut mask);
                    }
                }
            }
            ObservationScheme::Full => {
                mask = ObservedMask::fully_observed(n);
            }
            ObservationScheme::None => {}
        }
        MaskedLog::new(truth, mask)
    }
}

/// Marks every arrival and the final departure of one task as observed.
fn observe_task(truth: &EventLog, k: TaskId, mask: &mut ObservedMask) {
    let events = truth.task_events(k);
    for &e in events {
        mask.observe_arrival(e);
    }
    if let Some(&last) = events.last() {
        mask.observe_departure(last);
    }
}

fn check_fraction(f: f64) -> Result<(), TraceError> {
    if !(0.0..=1.0).contains(&f) || f.is_nan() {
        return Err(TraceError::BadFraction { value: f });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use qni_model::topology::tandem;
    use qni_sim::{Simulator, Workload};
    use qni_stats::rng::rng_from_seed;

    fn truth(n: usize, seed: u64) -> EventLog {
        let bp = tandem(2.0, &[5.0, 5.0]).unwrap();
        let mut rng = rng_from_seed(seed);
        Simulator::new(&bp.network)
            .run(&Workload::poisson_n(2.0, n).unwrap(), &mut rng)
            .unwrap()
    }

    #[test]
    fn validation() {
        assert!(ObservationScheme::task_sampling(-0.1).is_err());
        assert!(ObservationScheme::task_sampling(1.1).is_err());
        assert!(ObservationScheme::event_sampling(f64::NAN).is_err());
        assert!(ObservationScheme::time_window(1.0, 1.0).is_err());
    }

    #[test]
    fn task_sampling_observes_whole_tasks() {
        let t = truth(400, 1);
        let ml = ObservationScheme::task_sampling(0.3)
            .unwrap()
            .apply(t, &mut rng_from_seed(2))
            .unwrap();
        // Every task is either fully pinned or has all non-initial
        // arrivals free.
        let gt = ml.ground_truth();
        for k in 0..gt.num_tasks() {
            let evs = gt.task_events(TaskId::from_index(k));
            let observed: Vec<bool> = evs[1..]
                .iter()
                .map(|&e| ml.mask().arrival_observed(e))
                .collect();
            assert!(
                observed.iter().all(|&b| b) || observed.iter().all(|&b| !b),
                "task {k} partially observed"
            );
        }
        let f = ml.observed_arrival_fraction();
        assert!((f - 0.3).abs() < 0.1, "fraction={f}");
    }

    #[test]
    fn full_and_none() {
        let t = truth(50, 3);
        let full = ObservationScheme::Full
            .apply(t.clone(), &mut rng_from_seed(4))
            .unwrap();
        assert!(full.free_arrivals().is_empty());
        let none = ObservationScheme::None
            .apply(t, &mut rng_from_seed(5))
            .unwrap();
        assert_eq!(none.observed_arrival_fraction(), 0.0);
        // All non-initial arrivals free: 2 per task.
        assert_eq!(none.free_arrivals().len(), 2 * 50);
    }

    #[test]
    fn event_sampling_fraction_approximate() {
        let t = truth(1000, 6);
        let ml = ObservationScheme::event_sampling(0.25)
            .unwrap()
            .apply(t, &mut rng_from_seed(7))
            .unwrap();
        let f = ml.observed_arrival_fraction();
        assert!((f - 0.25).abs() < 0.03, "fraction={f}");
    }

    #[test]
    fn time_window_observes_entrants() {
        let t = truth(500, 8);
        let horizon = (0..t.num_tasks())
            .map(|k| t.task_entry(TaskId::from_index(k)))
            .fold(0.0f64, f64::max);
        let ml = ObservationScheme::time_window(0.0, horizon / 2.0)
            .unwrap()
            .apply(t, &mut rng_from_seed(9))
            .unwrap();
        let gt = ml.ground_truth();
        for k in 0..gt.num_tasks() {
            let k = TaskId::from_index(k);
            let inside = gt.task_entry(k) < horizon / 2.0;
            let first_real = gt.task_events(k)[1];
            assert_eq!(ml.mask().arrival_observed(first_real), inside);
        }
    }

    #[test]
    fn time_window_boundary_convention_is_half_open() {
        use qni_model::ids::{QueueId, StateId};
        use qni_model::log::EventLogBuilder;
        // Entries exactly at 1.0 (the window start), 2.0 (inside), and
        // 3.0 (the window end): [1, 3) must take the first two only.
        let mut b = EventLogBuilder::new(2, StateId(0));
        for &t in &[1.0, 2.0, 3.0] {
            b.add_task(t, &[(StateId(1), QueueId(1), t, t + 0.25)])
                .unwrap();
        }
        let log = b.build().unwrap();
        let ml = ObservationScheme::time_window(1.0, 3.0)
            .unwrap()
            .apply(log, &mut rng_from_seed(20))
            .unwrap();
        let gt = ml.ground_truth();
        let first_real = |k: usize| gt.task_events(TaskId::from_index(k))[1];
        assert!(
            ml.mask().arrival_observed(first_real(0)),
            "entry == from must be inside the window"
        );
        assert!(ml.mask().arrival_observed(first_real(1)));
        assert!(
            !ml.mask().arrival_observed(first_real(2)),
            "entry == until must be outside the window"
        );
    }

    #[test]
    fn time_window_empty_and_whole_log_windows() {
        let t = truth(60, 21);
        let horizon = (0..t.num_tasks())
            .map(|k| t.task_entry(TaskId::from_index(k)))
            .fold(0.0f64, f64::max);
        // A window past every entry observes nothing (but is valid).
        let ml = ObservationScheme::time_window(horizon + 1.0, horizon + 2.0)
            .unwrap()
            .apply(t.clone(), &mut rng_from_seed(22))
            .unwrap();
        assert_eq!(ml.observed_arrival_fraction(), 0.0);
        // A window covering every entry observes every task fully.
        let ml = ObservationScheme::time_window(0.0, horizon + 1.0)
            .unwrap()
            .apply(t, &mut rng_from_seed(23))
            .unwrap();
        assert_eq!(ml.observed_arrival_fraction(), 1.0);
        assert!(ml.free_arrivals().is_empty());
    }

    #[test]
    fn time_window_rejects_degenerate_ranges() {
        // from == until: zero-width windows are almost surely a bug.
        assert!(ObservationScheme::time_window(2.0, 2.0).is_err());
        assert!(ObservationScheme::time_window(3.0, 2.0).is_err());
        assert!(ObservationScheme::time_window(f64::NAN, 2.0).is_err());
        assert!(ObservationScheme::time_window(0.0, f64::INFINITY).is_err());
    }

    #[test]
    fn deterministic_given_seed() {
        let t = truth(300, 10);
        let a = ObservationScheme::task_sampling(0.5)
            .unwrap()
            .apply(t.clone(), &mut rng_from_seed(11))
            .unwrap();
        let b = ObservationScheme::task_sampling(0.5)
            .unwrap()
            .apply(t, &mut rng_from_seed(11))
            .unwrap();
        assert_eq!(a.mask(), b.mask());
    }
}
