//! A minimal CSV writer for experiment outputs.
//!
//! Deliberately tiny: experiment harnesses emit simple numeric tables, so
//! a dependency-free writer with quoting for the rare string cell is all
//! that is required.

use crate::error::TraceError;
use std::io::Write;

/// Writes rows of cells as CSV with a header.
///
/// # Examples
///
/// ```
/// use qni_trace::csv::CsvWriter;
///
/// let mut buf = Vec::new();
/// let mut w = CsvWriter::new(&mut buf, &["x", "y"]).unwrap();
/// w.row(&["1".into(), "2.5".into()]).unwrap();
/// drop(w);
/// assert_eq!(String::from_utf8(buf).unwrap(), "x,y\n1,2.5\n");
/// ```
#[derive(Debug)]
pub struct CsvWriter<W: Write> {
    out: W,
    columns: usize,
}

impl<W: Write> CsvWriter<W> {
    /// Creates a writer and emits the header row.
    pub fn new(mut out: W, header: &[&str]) -> Result<Self, TraceError> {
        let line = header
            .iter()
            .map(|c| quote(c))
            .collect::<Vec<_>>()
            .join(",");
        writeln!(out, "{line}")?;
        Ok(CsvWriter {
            out,
            columns: header.len(),
        })
    }

    /// Writes one row; errors if the cell count mismatches the header.
    pub fn row(&mut self, cells: &[String]) -> Result<(), TraceError> {
        if cells.len() != self.columns {
            return Err(TraceError::ShapeMismatch {
                expected: self.columns,
                actual: cells.len(),
            });
        }
        let line = cells.iter().map(|c| quote(c)).collect::<Vec<_>>().join(",");
        writeln!(self.out, "{line}")?;
        Ok(())
    }

    /// Writes one row of floats with full precision.
    pub fn row_f64(&mut self, cells: &[f64]) -> Result<(), TraceError> {
        let strings: Vec<String> = cells.iter().map(|v| format!("{v}")).collect();
        self.row(&strings)
    }
}

/// Quotes a cell if it contains a comma, quote, or newline.
fn quote(cell: &str) -> String {
    if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
        format!("\"{}\"", cell.replace('"', "\"\""))
    } else {
        cell.to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quoting() {
        let mut buf = Vec::new();
        {
            let mut w = CsvWriter::new(&mut buf, &["a", "b"]).unwrap();
            w.row(&["x,y".into(), "say \"hi\"".into()]).unwrap();
        }
        let s = String::from_utf8(buf).unwrap();
        assert_eq!(s, "a,b\n\"x,y\",\"say \"\"hi\"\"\"\n");
    }

    #[test]
    fn shape_enforced() {
        let mut buf = Vec::new();
        let mut w = CsvWriter::new(&mut buf, &["a", "b"]).unwrap();
        assert!(w.row(&["only one".into()]).is_err());
    }

    #[test]
    fn floats() {
        let mut buf = Vec::new();
        {
            let mut w = CsvWriter::new(&mut buf, &["v", "w"]).unwrap();
            w.row_f64(&[0.5, 1.25]).unwrap();
        }
        assert_eq!(String::from_utf8(buf).unwrap(), "v,w\n0.5,1.25\n");
    }
}
