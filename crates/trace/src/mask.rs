//! Observation masks and the masked event log handed to inference.

use crate::error::TraceError;
use qni_model::ids::EventId;
use qni_model::log::EventLog;
use serde::{Deserialize, Serialize};

/// Which times of each event were measured.
///
/// Arrival observations are the paper's primary measurement
/// (`a_e = d_{π(e)}`, so an observed arrival also pins the predecessor's
/// departure). Departure observations are only meaningful for a task's
/// *final* event — interior departures are owned by the successor's
/// arrival.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ObservedMask {
    arrival: Vec<bool>,
    departure: Vec<bool>,
}

impl ObservedMask {
    /// Creates a mask with nothing observed, for `n` events.
    pub fn unobserved(n: usize) -> Self {
        ObservedMask {
            arrival: vec![false; n],
            departure: vec![false; n],
        }
    }

    /// Creates a mask with everything observed, for `n` events.
    pub fn fully_observed(n: usize) -> Self {
        ObservedMask {
            arrival: vec![true; n],
            departure: vec![true; n],
        }
    }

    /// Number of events covered.
    pub fn len(&self) -> usize {
        self.arrival.len()
    }

    /// Whether the mask covers zero events.
    pub fn is_empty(&self) -> bool {
        self.arrival.is_empty()
    }

    /// Marks an arrival as observed.
    pub fn observe_arrival(&mut self, e: EventId) {
        self.arrival[e.index()] = true;
    }

    /// Marks a departure as observed.
    pub fn observe_departure(&mut self, e: EventId) {
        self.departure[e.index()] = true;
    }

    /// Whether `e`'s arrival was measured.
    pub fn arrival_observed(&self, e: EventId) -> bool {
        self.arrival[e.index()]
    }

    /// Whether `e`'s departure was measured.
    pub fn departure_observed(&self, e: EventId) -> bool {
        self.departure[e.index()]
    }
}

/// Ground truth plus an observation mask.
///
/// This is the interface between data generation and inference. Inference
/// must work from [`MaskedLog::scrubbed_log`] (unobserved times are NaN);
/// the ground truth is retained for *evaluation* (error measurement) and
/// for the paper's oracle baseline, and is accessible only through the
/// explicitly named [`MaskedLog::ground_truth`].
#[derive(Debug, Clone)]
pub struct MaskedLog {
    truth: EventLog,
    mask: ObservedMask,
}

impl MaskedLog {
    /// Pairs a ground-truth log with a mask.
    ///
    /// Initial events' arrivals (pinned at 0 by convention) are force-marked
    /// observed. Errors if the mask shape disagrees with the log.
    pub fn new(truth: EventLog, mut mask: ObservedMask) -> Result<Self, TraceError> {
        if mask.len() != truth.num_events() {
            return Err(TraceError::ShapeMismatch {
                expected: truth.num_events(),
                actual: mask.len(),
            });
        }
        for e in truth.event_ids() {
            if truth.is_initial_event(e) {
                mask.arrival[e.index()] = true;
            }
        }
        Ok(MaskedLog { truth, mask })
    }

    /// The observation mask.
    pub fn mask(&self) -> &ObservedMask {
        &self.mask
    }

    /// Oracle access to the ground truth (evaluation and baselines only).
    pub fn ground_truth(&self) -> &EventLog {
        &self.truth
    }

    /// Events whose arrival is a *free variable* of the posterior: arrival
    /// unobserved and not an initial event.
    pub fn free_arrivals(&self) -> Vec<EventId> {
        self.truth
            .event_ids()
            .filter(|&e| !self.truth.is_initial_event(e) && !self.mask.arrival_observed(e))
            .collect()
    }

    /// Final events whose departure is a free variable.
    ///
    /// An interior departure is never free on its own: it equals the
    /// successor's arrival. Initial events' departures are likewise owned
    /// by the first real arrival.
    pub fn free_final_departures(&self) -> Vec<EventId> {
        self.truth
            .event_ids()
            .filter(|&e| self.truth.is_final_event(e) && !self.mask.departure_observed(e))
            .collect()
    }

    /// Whether event `e`'s *departure* is pinned by observations — either
    /// directly (final departure observed) or via the successor's observed
    /// arrival.
    pub fn departure_pinned(&self, e: EventId) -> bool {
        match self.truth.pi_inv(e) {
            Some(succ) => self.mask.arrival_observed(succ),
            None => self.mask.departure_observed(e),
        }
    }

    /// Fraction of non-initial events with observed arrivals.
    pub fn observed_arrival_fraction(&self) -> f64 {
        let mut total = 0usize;
        let mut observed = 0usize;
        for e in self.truth.event_ids() {
            if self.truth.is_initial_event(e) {
                continue;
            }
            total += 1;
            if self.mask.arrival_observed(e) {
                observed += 1;
            }
        }
        if total == 0 {
            0.0
        } else {
            observed as f64 / total as f64
        }
    }

    /// A copy of the log in which every *unobserved* time is NaN.
    ///
    /// Times implied by observations are preserved: an interior departure
    /// is kept when the successor's arrival is observed. This is the log
    /// inference must start from; any NaN reaching arithmetic will
    /// propagate and trip validation, making accidental use of unobserved
    /// truth loud.
    pub fn scrubbed_log(&self) -> EventLog {
        let mut log = self.truth.clone();
        // Scrub free arrivals (and the tied predecessor departures).
        for e in self.free_arrivals() {
            log.set_transition_time(e, f64::NAN);
        }
        for e in self.free_final_departures() {
            log.set_final_departure(e, f64::NAN);
        }
        log
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qni_model::ids::{QueueId, StateId, TaskId};
    use qni_model::log::EventLogBuilder;

    fn log2() -> EventLog {
        let mut b = EventLogBuilder::new(3, StateId(0));
        b.add_task(
            1.0,
            &[
                (StateId(1), QueueId(1), 1.0, 2.0),
                (StateId(2), QueueId(2), 2.0, 3.0),
            ],
        )
        .unwrap();
        b.add_task(
            1.5,
            &[
                (StateId(1), QueueId(1), 1.5, 2.5),
                (StateId(2), QueueId(2), 2.5, 3.5),
            ],
        )
        .unwrap();
        b.build().unwrap()
    }

    #[test]
    fn shape_mismatch_rejected() {
        let log = log2();
        let mask = ObservedMask::unobserved(3);
        assert!(matches!(
            MaskedLog::new(log, mask),
            Err(TraceError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn initial_arrivals_forced_observed() {
        let log = log2();
        let ml = MaskedLog::new(log, ObservedMask::unobserved(6)).unwrap();
        for e in ml.ground_truth().event_ids() {
            if ml.ground_truth().is_initial_event(e) {
                assert!(ml.mask().arrival_observed(e));
            }
        }
    }

    #[test]
    fn free_variables_fully_unobserved() {
        let log = log2();
        let ml = MaskedLog::new(log, ObservedMask::unobserved(6)).unwrap();
        // 4 non-initial events → 4 free arrivals; 2 final departures.
        assert_eq!(ml.free_arrivals().len(), 4);
        assert_eq!(ml.free_final_departures().len(), 2);
        assert_eq!(ml.observed_arrival_fraction(), 0.0);
    }

    #[test]
    fn free_variables_fully_observed() {
        let log = log2();
        let n = log.num_events();
        let ml = MaskedLog::new(log, ObservedMask::fully_observed(n)).unwrap();
        assert!(ml.free_arrivals().is_empty());
        assert!(ml.free_final_departures().is_empty());
        assert_eq!(ml.observed_arrival_fraction(), 1.0);
    }

    #[test]
    fn departure_pinned_via_successor() {
        let log = log2();
        let mut mask = ObservedMask::unobserved(6);
        // Observe task 0's second arrival: pins the first visit's departure.
        let t0 = TaskId(0);
        let e2 = log.task_events(t0)[2];
        mask.observe_arrival(e2);
        let ml = MaskedLog::new(log, mask).unwrap();
        let e1 = ml.ground_truth().task_events(t0)[1];
        assert!(ml.departure_pinned(e1));
        assert!(!ml.departure_pinned(e2)); // Final departure unobserved.
    }

    #[test]
    fn scrubbed_log_nans_only_free_times() {
        let log = log2();
        let mut mask = ObservedMask::unobserved(6);
        let t0 = TaskId(0);
        let e1 = log.task_events(t0)[1];
        let e2 = log.task_events(t0)[2];
        mask.observe_arrival(e1);
        mask.observe_arrival(e2);
        mask.observe_departure(e2);
        let ml = MaskedLog::new(log, mask).unwrap();
        let s = ml.scrubbed_log();
        // Task 0 is fully pinned.
        for &e in s.task_events(t0) {
            assert!(s.arrival(e).is_finite());
            assert!(s.departure(e).is_finite());
        }
        // Task 1 is fully scrubbed except its initial arrival (0.0).
        let t1 = TaskId(1);
        let evs = s.task_events(t1);
        assert_eq!(s.arrival(evs[0]), 0.0);
        assert!(s.departure(evs[0]).is_nan()); // Entry = first arrival: free.
        assert!(s.arrival(evs[1]).is_nan());
        assert!(s.departure(evs[2]).is_nan());
    }

    #[test]
    fn observed_fraction_counts_non_initial_only() {
        let log = log2();
        let mut mask = ObservedMask::unobserved(6);
        let e = log.task_events(TaskId(0))[1];
        mask.observe_arrival(e);
        let ml = MaskedLog::new(log, mask).unwrap();
        assert!((ml.observed_arrival_fraction() - 0.25).abs() < 1e-12);
    }
}
