//! Deterministic fault injection for the live-tail path.
//!
//! Crash-safety claims are only as good as the faults they were tested
//! against, and nondeterministic fault tests rot into flakes. This
//! module makes every fault reproducible from a `u64` seed:
//!
//! - [`FaultPlan`] + [`FaultSource`] inject transient I/O errors into a
//!   [`TailSource`] at planned operation indices — the read side
//!   (exercises [`crate::tail::RetryPolicy`]).
//! - [`WriteOp`] scripts ([`torn_write_script`]) replay a byte stream
//!   as torn appends cut at seeded byte offsets, with optional
//!   copytruncate rotations between them — the write side (exercises
//!   partial-line reassembly and [`crate::tail::RotationPolicy::Follow`]).
//!
//! A test interleaves [`apply_write_op`] with reader polls and asserts
//! the reassembled records equal the one-shot parse; a soak loops the
//! same script around process kills and checkpoint resumes. Both sides
//! are pure functions of their seeds, so a failing case replays
//! exactly.

use crate::error::TraceError;
use crate::tail::TailSource;
use qni_stats::rng::rng_from_seed;
use rand::RngCore;
use std::collections::BTreeSet;
use std::io::Write;
use std::path::Path;

/// A deterministic schedule of transient-failure injection points,
/// counted in [`TailSource`] operations (1-based: the n-th `size` or
/// `read_from` call).
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    failing: BTreeSet<u64>,
}

impl FaultPlan {
    /// A plan that never fails.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Fails exactly the given operation indices (1-based).
    pub fn fail_ops(ops: &[u64]) -> Self {
        FaultPlan {
            failing: ops.iter().copied().collect(),
        }
    }

    /// Seeds a plan over the first `horizon` operations, each failing
    /// independently with probability `rate`.
    pub fn seeded(seed: u64, horizon: u64, rate: f64) -> Result<Self, TraceError> {
        if !(0.0..=1.0).contains(&rate) {
            return Err(TraceError::BadFraction { value: rate });
        }
        let mut rng = rng_from_seed(seed);
        let mut failing = BTreeSet::new();
        for op in 1..=horizon {
            // 53-bit uniform in [0, 1).
            let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            if u < rate {
                failing.insert(op);
            }
        }
        Ok(FaultPlan { failing })
    }

    /// Whether operation `op` (1-based) is planned to fail.
    pub fn fails(&self, op: u64) -> bool {
        self.failing.contains(&op)
    }

    /// Number of planned failures.
    pub fn num_faults(&self) -> usize {
        self.failing.len()
    }
}

/// A [`TailSource`] decorator that injects transient
/// [`std::io::ErrorKind::Interrupted`] errors per a [`FaultPlan`].
#[derive(Debug)]
pub struct FaultSource<S: TailSource> {
    inner: S,
    plan: FaultPlan,
    op: u64,
}

impl<S: TailSource> FaultSource<S> {
    /// Wraps `inner`, failing the operations `plan` names.
    pub fn new(inner: S, plan: FaultPlan) -> Self {
        FaultSource { inner, plan, op: 0 }
    }

    /// Operations attempted so far (including injected failures).
    pub fn ops(&self) -> u64 {
        self.op
    }

    fn trip(&mut self) -> std::io::Result<()> {
        self.op += 1;
        if self.plan.fails(self.op) {
            return Err(std::io::Error::new(
                std::io::ErrorKind::Interrupted,
                format!("injected transient fault at op {}", self.op),
            ));
        }
        Ok(())
    }
}

impl<S: TailSource> TailSource for FaultSource<S> {
    fn size(&mut self) -> std::io::Result<Option<u64>> {
        self.trip()?;
        self.inner.size()
    }

    fn read_from(&mut self, offset: u64, buf: &mut Vec<u8>) -> std::io::Result<usize> {
        self.trip()?;
        self.inner.read_from(offset, buf)
    }

    fn label(&self) -> String {
        self.inner.label()
    }
}

/// One step of a scripted writer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WriteOp {
    /// Append these bytes to the file.
    Append(Vec<u8>),
    /// Copytruncate rotation: truncate the file to zero length; the
    /// logical stream continues with the next append.
    Rotate,
}

/// Splits `bytes` into a seeded sequence of torn appends — chunk sizes
/// uniform in `1..2*mean_chunk`, so cuts land at arbitrary byte
/// offsets, including mid-line and mid-UTF-8 — with `rotations`
/// copytruncate rotations inserted at seeded chunk boundaries. The
/// concatenation of all [`WriteOp::Append`] payloads is exactly
/// `bytes`, so a reader that follows the script (polling between ops)
/// must reassemble the one-shot parse.
pub fn torn_write_script(
    bytes: &[u8],
    seed: u64,
    mean_chunk: usize,
    rotations: usize,
) -> Result<Vec<WriteOp>, TraceError> {
    if mean_chunk == 0 {
        return Err(TraceError::BadSchedule {
            what: "torn-write mean chunk must be >= 1",
        });
    }
    let mut rng = rng_from_seed(seed);
    let mut chunks: Vec<Vec<u8>> = Vec::new();
    let mut pos = 0usize;
    while pos < bytes.len() {
        let span = 1 + (rng.next_u64() as usize) % (2 * mean_chunk - 1).max(1);
        let end = (pos + span).min(bytes.len());
        chunks.push(bytes[pos..end].to_vec());
        pos = end;
    }
    let n = chunks.len();
    let mut rotate_after: BTreeSet<usize> = BTreeSet::new();
    let want = rotations.min(n.saturating_sub(1));
    // Rotating after the last chunk would be invisible; draw boundaries
    // among the first n-1. Bounded rejection sampling stays
    // deterministic for a fixed seed.
    while rotate_after.len() < want {
        rotate_after.insert((rng.next_u64() as usize) % (n - 1));
    }
    let mut ops = Vec::new();
    for (i, c) in chunks.into_iter().enumerate() {
        ops.push(WriteOp::Append(c));
        if rotate_after.contains(&i) {
            ops.push(WriteOp::Rotate);
        }
    }
    Ok(ops)
}

/// Applies one scripted write to a real file: [`WriteOp::Append`] opens
/// in append mode (creating the file), [`WriteOp::Rotate`] truncates it
/// to zero length in place.
pub fn apply_write_op<P: AsRef<Path>>(path: P, op: &WriteOp) -> std::io::Result<()> {
    match op {
        WriteOp::Append(bytes) => {
            let mut f = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)?;
            f.write_all(bytes)?;
            f.flush()
        }
        WriteOp::Rotate => {
            std::fs::File::create(path)?;
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observe::ObservationScheme;
    use crate::record::{to_records, write_jsonl, TraceRecord};
    use crate::tail::{FsSource, RetryPolicy, RotationPolicy, TailOptions, TailReader};
    use qni_model::topology::tandem;
    use qni_sim::{Simulator, Workload};
    use std::path::PathBuf;

    fn sample(n: usize, seed: u64) -> (Vec<TraceRecord>, Vec<u8>) {
        let bp = tandem(2.0, &[6.0, 8.0]).unwrap();
        let mut rng = rng_from_seed(seed);
        let truth = Simulator::new(&bp.network)
            .run(&Workload::poisson_n(2.0, n).unwrap(), &mut rng)
            .unwrap();
        let masked = ObservationScheme::task_sampling(0.5)
            .unwrap()
            .apply(truth, &mut rng)
            .unwrap();
        let records = to_records(masked.ground_truth(), masked.mask());
        let mut bytes = Vec::new();
        write_jsonl(&masked, &mut bytes).unwrap();
        (records, bytes)
    }

    fn tmp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("qni-fault-{}-{name}.jsonl", std::process::id()));
        p
    }

    #[test]
    fn seeded_plans_are_reproducible_and_respect_the_rate() {
        let a = FaultPlan::seeded(11, 1000, 0.2).unwrap();
        let b = FaultPlan::seeded(11, 1000, 0.2).unwrap();
        for op in 1..=1000 {
            assert_eq!(a.fails(op), b.fails(op));
        }
        assert!(a.num_faults() > 100 && a.num_faults() < 320);
        assert!(FaultPlan::seeded(1, 10, 1.5).is_err());
        assert_eq!(FaultPlan::none().num_faults(), 0);
    }

    /// Injected transient faults at every planned point are absorbed by
    /// the retry policy without perturbing the record stream.
    #[test]
    fn injected_faults_are_invisible_under_retry() {
        let (records, bytes) = sample(8, 31);
        let path = tmp_path("retry");
        std::fs::write(&path, &bytes).unwrap();
        let plan = FaultPlan::seeded(7, 64, 0.3).unwrap();
        assert!(plan.num_faults() > 0);
        let opts = TailOptions {
            retry: RetryPolicy {
                max_attempts: 4,
                ..RetryPolicy::default()
            },
            ..TailOptions::default()
        };
        let source = FaultSource::new(FsSource::new(&path), plan);
        let mut tail = TailReader::from_source(Box::new(source), opts);
        let mut seen = Vec::new();
        for _ in 0..8 {
            seen.extend(tail.poll().unwrap());
        }
        assert_eq!(seen, records);
        assert!(tail.stats().retries > 0);
        std::fs::remove_file(&path).unwrap();
    }

    /// A torn-write script (with rotations) replayed against a
    /// `Follow`-policy reader reassembles exactly the one-shot parse —
    /// the write-side half of the crash-soak, in-process and seeded.
    #[test]
    fn torn_write_script_with_rotations_reassembles() {
        let (records, bytes) = sample(12, 32);
        for seed in [1u64, 2, 3] {
            let ops = torn_write_script(&bytes, seed, 37, 2).unwrap();
            let appended: usize = ops
                .iter()
                .map(|op| match op {
                    WriteOp::Append(c) => c.len(),
                    WriteOp::Rotate => 0,
                })
                .sum();
            assert_eq!(appended, bytes.len(), "script preserves the stream");
            assert_eq!(
                ops.iter()
                    .filter(|op| matches!(op, WriteOp::Rotate))
                    .count(),
                2
            );
            let path = tmp_path(&format!("torn-{seed}"));
            let _ = std::fs::remove_file(&path);
            let opts = TailOptions {
                rotation: RotationPolicy::Follow,
                ..TailOptions::default()
            };
            let mut tail = TailReader::with_options(&path, opts);
            let mut seen = Vec::new();
            for op in &ops {
                apply_write_op(&path, op).unwrap();
                seen.extend(tail.poll().unwrap());
            }
            assert_eq!(seen, records, "seed {seed}");
            assert_eq!(tail.stats().rotations, 2);
            std::fs::remove_file(&path).unwrap();
        }
    }
}
