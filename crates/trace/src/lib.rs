//! Instrumentation layer: traces, observation schemes, and masked logs.
//!
//! The paper's premise is that full tracing is too expensive (123 GB/day
//! for the Coral cache), so only a *subset* of arrival times is measured.
//! This crate models that measurement process:
//!
//! - [`observe`]: observation schemes — most importantly
//!   [`observe::ObservationScheme::TaskSampling`], the §5.1 protocol that
//!   observes *all arrivals of a random sample of tasks* (plus their final
//!   departures), and per-event sampling as an alternative.
//! - [`mask`]: the [`mask::MaskedLog`] — ground truth plus an observation
//!   mask. Inference code receives this and must call
//!   [`mask::MaskedLog::scrubbed_log`], which replaces every unobserved
//!   time with NaN, making accidental peeking loud.
//! - [`counter`]: the event-counter mechanism the paper proposes for
//!   knowing *how many* unobserved events occurred between observed ones
//!   (which justifies the fixed-arrival-order assumption of the sampler).
//! - [`record`]: serializable per-event trace records with JSONL
//!   round-tripping.
//! - [`tail`]: incremental append/tail-follow reading of a growing JSONL
//!   trace — partial-line reassembly, byte-offset resume, truncation
//!   detection, opt-in rotation following, transient-error retry, a
//!   malformed-line quarantine budget, and serializable resume
//!   snapshots.
//! - [`fault`]: deterministic (seeded) fault injection for the tail
//!   path — transient I/O errors, torn writes, forced rotations.
//! - [`window`]: sliding `(width, stride)` time windows over a masked
//!   log — the unit of work of the streaming StEM engine, sliced either
//!   from a complete trace ([`window::slice_windows`]) or incrementally
//!   from a live stream ([`window::LiveSlicer`]).
//! - [`csv`]: a minimal CSV writer used by the experiment harness.

pub mod counter;
pub mod csv;
pub mod error;
pub mod fault;
pub mod mask;
pub mod observe;
pub mod record;
pub mod tail;
pub mod volume;
pub mod window;

pub use error::TraceError;
pub use fault::{apply_write_op, torn_write_script, FaultPlan, FaultSource, WriteOp};
pub use mask::{MaskedLog, ObservedMask};
pub use observe::ObservationScheme;
pub use tail::{
    LineAssembler, RetryPolicy, RotationPolicy, TailOptions, TailReader, TailSnapshot, TailStats,
};
pub use window::{
    occupancy_carry, slice_windows, LiveSlicer, OccupancyCarry, SlicerState, WindowSchedule,
    WindowState, WindowedLog,
};
