//! Trace-volume accounting: why sampling is necessary.
//!
//! The paper motivates partial observation with a measurement: recording
//! full trace data for the Coral CDN would take 123 GB/day. This module
//! quantifies that trade-off for any deployment: bytes per event record,
//! events per day, and the reduction from task sampling — the quantity an
//! operator balances against the estimation accuracy measured in
//! `EXPERIMENTS.md`.

use serde::{Deserialize, Serialize};

/// Byte cost of one trace record.
///
/// Defaults model a compact binary record: ids (task 8 + queue 2 +
/// state 2), two f64 timestamps, and per-record framing.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RecordCost {
    /// Bytes per event record.
    pub bytes_per_event: u64,
    /// Fixed per-task overhead (task metadata, counters).
    pub bytes_per_task: u64,
}

impl Default for RecordCost {
    fn default() -> Self {
        RecordCost {
            bytes_per_event: 32,
            bytes_per_task: 16,
        }
    }
}

/// A deployment's tracing workload.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeploymentVolume {
    /// Tasks (requests) per day.
    pub tasks_per_day: u64,
    /// Queue visits per task (events).
    pub events_per_task: u64,
    /// Record cost model.
    pub cost: RecordCost,
}

impl DeploymentVolume {
    /// Bytes per day at full tracing.
    pub fn full_bytes_per_day(&self) -> u64 {
        self.tasks_per_day
            * (self.events_per_task * self.cost.bytes_per_event + self.cost.bytes_per_task)
    }

    /// Bytes per day when observing a fraction of tasks (plus the
    /// counter readings transmitted with observed events, already counted
    /// in the per-event cost).
    pub fn sampled_bytes_per_day(&self, fraction: f64) -> u64 {
        (self.full_bytes_per_day() as f64 * fraction.clamp(0.0, 1.0)).round() as u64
    }

    /// Reduction factor achieved by sampling.
    pub fn reduction(&self, fraction: f64) -> f64 {
        if fraction <= 0.0 {
            f64::INFINITY
        } else {
            1.0 / fraction.min(1.0)
        }
    }
}

/// Formats a byte count as a human-readable decimal string.
pub fn human_bytes(bytes: u64) -> String {
    const UNITS: [&str; 5] = ["B", "KB", "MB", "GB", "TB"];
    let mut v = bytes as f64;
    let mut unit = 0;
    while v >= 1000.0 && unit + 1 < UNITS.len() {
        v /= 1000.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{bytes} B")
    } else {
        format!("{v:.1} {}", UNITS[unit])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A deployment in the Coral class: ~1.5 billion events/day of trace
    /// at ~80 B/event ≈ 123 GB/day.
    fn coral_like() -> DeploymentVolume {
        DeploymentVolume {
            tasks_per_day: 250_000_000,
            events_per_task: 6,
            cost: RecordCost {
                bytes_per_event: 80,
                bytes_per_task: 24,
            },
        }
    }

    #[test]
    fn coral_scale_reproduces_the_motivation() {
        let v = coral_like();
        let gb = v.full_bytes_per_day() as f64 / 1e9;
        // The paper cites 123 GB/day (uncompressed) for Coral.
        assert!((gb - 126.0).abs() < 10.0, "gb={gb}");
        // At the 1% observation the abstract highlights: ~1.3 GB/day.
        let sampled = v.sampled_bytes_per_day(0.01) as f64 / 1e9;
        assert!((sampled - 1.26).abs() < 0.1, "sampled={sampled}");
        assert_eq!(v.reduction(0.01), 100.0);
    }

    #[test]
    fn arithmetic() {
        let v = DeploymentVolume {
            tasks_per_day: 1000,
            events_per_task: 4,
            cost: RecordCost::default(),
        };
        assert_eq!(v.full_bytes_per_day(), 1000 * (4 * 32 + 16));
        assert_eq!(v.sampled_bytes_per_day(0.5), v.full_bytes_per_day() / 2);
        assert_eq!(v.sampled_bytes_per_day(2.0), v.full_bytes_per_day());
        assert_eq!(v.reduction(0.0), f64::INFINITY);
    }

    #[test]
    fn human_formatting() {
        assert_eq!(human_bytes(999), "999 B");
        assert_eq!(human_bytes(1_500), "1.5 KB");
        assert_eq!(human_bytes(123_000_000_000), "123.0 GB");
        assert_eq!(human_bytes(2_000_000_000_000), "2.0 TB");
    }
}
