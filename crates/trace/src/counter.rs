//! The event-counter mechanism justifying the fixed-order assumption.
//!
//! The paper's sampler holds the per-queue arrival *order* fixed, arguing
//! this is "easy to measure in actual systems, by maintaining an event
//! counter that is transmitted only when an event is observed". This
//! module simulates exactly that mechanism and shows the order/count
//! information it yields: for each observed event we record the value of
//! its queue's arrival counter; the gaps between consecutive observed
//! counter values are the numbers of unobserved intervening events.

use qni_model::ids::{EventId, QueueId};
use qni_model::log::EventLog;

use crate::mask::ObservedMask;

/// One observed event together with its queue-local arrival counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterReading {
    /// The observed event.
    pub event: EventId,
    /// Arrival index of this event at its queue (0-based).
    pub counter: usize,
}

/// Counter readings for one queue, in arrival order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueueCounterTrace {
    /// The queue.
    pub queue: QueueId,
    /// Total number of arrivals the counter reached.
    pub total: usize,
    /// Readings transmitted with observed events.
    pub readings: Vec<CounterReading>,
}

impl QueueCounterTrace {
    /// Numbers of unobserved events in each gap: before the first reading,
    /// between consecutive readings, and after the last.
    pub fn gap_sizes(&self) -> Vec<usize> {
        let mut gaps = Vec::with_capacity(self.readings.len() + 1);
        let mut prev = 0usize;
        for r in &self.readings {
            gaps.push(r.counter - prev);
            prev = r.counter + 1;
        }
        gaps.push(self.total - prev);
        gaps
    }
}

/// Simulates the counter mechanism: what an instrumented system would
/// transmit given this observation mask.
pub fn counter_traces(log: &EventLog, mask: &ObservedMask) -> Vec<QueueCounterTrace> {
    (0..log.num_queues())
        .map(|q| {
            let q = QueueId::from_index(q);
            let order = log.events_at_queue(q);
            let readings = order
                .iter()
                .enumerate()
                .filter(|&(_, &e)| mask.arrival_observed(e))
                .map(|(i, &e)| CounterReading {
                    event: e,
                    counter: i,
                })
                .collect();
            QueueCounterTrace {
                queue: q,
                total: order.len(),
                readings,
            }
        })
        .collect()
}

/// Verifies that counter readings are consistent with a hypothesized
/// per-queue order (used in tests: the readings pin observed events to
/// their true positions).
pub fn readings_match_order(trace: &QueueCounterTrace, order: &[EventId]) -> bool {
    trace.total == order.len()
        && trace
            .readings
            .iter()
            .all(|r| order.get(r.counter) == Some(&r.event))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observe::ObservationScheme;
    use qni_model::topology::tandem;
    use qni_sim::{Simulator, Workload};
    use qni_stats::rng::rng_from_seed;

    fn setup() -> (EventLog, ObservedMask) {
        let bp = tandem(2.0, &[4.0]).unwrap();
        let mut rng = rng_from_seed(1);
        let log = Simulator::new(&bp.network)
            .run(&Workload::poisson_n(2.0, 100).unwrap(), &mut rng)
            .unwrap();
        let ml = ObservationScheme::task_sampling(0.2)
            .unwrap()
            .apply(log, &mut rng_from_seed(2))
            .unwrap();
        (ml.ground_truth().clone(), ml.mask().clone())
    }

    #[test]
    fn readings_are_consistent_with_truth() {
        let (log, mask) = setup();
        for trace in counter_traces(&log, &mask) {
            let order = log.events_at_queue(trace.queue);
            assert!(readings_match_order(&trace, order));
        }
    }

    #[test]
    fn gap_sizes_sum_to_unobserved_count() {
        let (log, mask) = setup();
        for trace in counter_traces(&log, &mask) {
            let gaps = trace.gap_sizes();
            let unobserved = trace.total - trace.readings.len();
            assert_eq!(gaps.iter().sum::<usize>(), unobserved);
            assert_eq!(gaps.len(), trace.readings.len() + 1);
        }
    }

    #[test]
    fn fully_observed_has_zero_gaps() {
        let (log, _) = setup();
        let mask = ObservedMask::fully_observed(log.num_events());
        for trace in counter_traces(&log, &mask) {
            assert!(trace.gap_sizes().iter().all(|&g| g == 0));
        }
    }

    #[test]
    fn readings_reject_wrong_order() {
        let (log, mask) = setup();
        let traces = counter_traces(&log, &mask);
        // Find a queue with at least two events and one reading.
        let trace = traces
            .iter()
            .find(|t| t.total >= 2 && !t.readings.is_empty())
            .expect("setup produces observed events");
        let mut order = log.events_at_queue(trace.queue).to_vec();
        // A cyclic shift misplaces every event.
        order.rotate_left(1);
        assert!(!readings_match_order(trace, &order));
    }
}
