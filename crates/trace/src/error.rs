//! Error type for the trace layer.

use std::fmt;

/// Errors raised by observation and serialization utilities.
#[derive(Debug)]
pub enum TraceError {
    /// A fraction was outside `[0, 1]`.
    BadFraction {
        /// The offending value.
        value: f64,
    },
    /// A time window was empty or non-finite.
    BadWindow {
        /// Window start.
        from: f64,
        /// Window end.
        until: f64,
    },
    /// A sliding-window schedule (or its application) was invalid.
    BadSchedule {
        /// What was wrong.
        what: &'static str,
    },
    /// An I/O error during trace reading/writing.
    Io(std::io::Error),
    /// A serialization error.
    Serde(serde_json::Error),
    /// Mask and log shapes disagree.
    ShapeMismatch {
        /// Expected number of events.
        expected: usize,
        /// Actual number of events.
        actual: usize,
    },
    /// A tailed file shrank below the reader's resume offset — the file
    /// was truncated or rotated out from under the tail.
    Truncated {
        /// The reader's byte offset (everything before it was consumed).
        offset: u64,
        /// The file's current length.
        len: u64,
    },
    /// A live trace violated the append-order contract required for
    /// incremental slicing (see [`crate::window::LiveSlicer`]).
    OutOfOrder {
        /// What was out of order.
        what: &'static str,
    },
    /// A trace line failed UTF-8 validation or JSON parsing, located
    /// precisely in its source so quarantine reports and hard failures
    /// name the exact offending input.
    BadLine {
        /// Source of the line (file path, or a synthetic label for
        /// in-memory streams).
        path: String,
        /// 1-based line number within the source.
        line: u64,
        /// Byte offset of the line's first byte. Best-effort after a
        /// followed rotation: a line straddling the rotation reports
        /// offset 0 of the new file.
        offset: u64,
        /// The underlying parse failure.
        message: String,
    },
    /// An I/O failure while tailing a file, with the reader's position
    /// for context (the plain [`TraceError::Io`] stays for path-less
    /// stream I/O).
    IoAt {
        /// The tailed file.
        path: String,
        /// The reader's byte offset when the operation failed.
        offset: u64,
        /// The underlying I/O error.
        source: std::io::Error,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::BadFraction { value } => {
                write!(f, "fraction must be in [0,1], got {value}")
            }
            TraceError::BadWindow { from, until } => {
                write!(f, "invalid window [{from}, {until})")
            }
            TraceError::BadSchedule { what } => {
                write!(f, "invalid window schedule: {what}")
            }
            TraceError::Io(e) => write!(f, "I/O error: {e}"),
            TraceError::Serde(e) => write!(f, "serialization error: {e}"),
            TraceError::ShapeMismatch { expected, actual } => {
                write!(f, "mask covers {actual} events, log has {expected}")
            }
            TraceError::Truncated { offset, len } => {
                write!(
                    f,
                    "tailed file shrank to {len} bytes below resume offset {offset} \
                     (truncated or rotated); restart the tail from offset 0"
                )
            }
            TraceError::OutOfOrder { what } => {
                write!(f, "live trace violates append order: {what}")
            }
            TraceError::BadLine {
                path,
                line,
                offset,
                message,
            } => {
                write!(
                    f,
                    "bad trace line {line} (byte offset {offset}) in {path}: {message}"
                )
            }
            TraceError::IoAt {
                path,
                offset,
                source,
            } => {
                write!(
                    f,
                    "I/O error tailing {path} at byte offset {offset}: {source}"
                )
            }
        }
    }
}

impl std::error::Error for TraceError {}

impl From<std::io::Error> for TraceError {
    fn from(e: std::io::Error) -> Self {
        TraceError::Io(e)
    }
}

impl From<serde_json::Error> for TraceError {
    fn from(e: serde_json::Error) -> Self {
        TraceError::Serde(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(TraceError::BadFraction { value: 1.5 }
            .to_string()
            .contains("1.5"));
        assert!(TraceError::ShapeMismatch {
            expected: 4,
            actual: 2
        }
        .to_string()
        .contains('4'));
    }

    #[test]
    fn display_locates_bad_lines_and_io_failures() {
        let e = TraceError::BadLine {
            path: "/tmp/trace.jsonl".to_string(),
            line: 17,
            offset: 4321,
            message: "expected value".to_string(),
        };
        let s = e.to_string();
        assert!(s.contains("line 17"));
        assert!(s.contains("4321"));
        assert!(s.contains("/tmp/trace.jsonl"));
        assert!(s.contains("expected value"));

        let e = TraceError::IoAt {
            path: "/tmp/trace.jsonl".to_string(),
            offset: 99,
            source: std::io::Error::new(std::io::ErrorKind::Interrupted, "blip"),
        };
        let s = e.to_string();
        assert!(s.contains("offset 99"));
        assert!(s.contains("blip"));
    }
}
