//! Serializable trace records and JSONL round-tripping.
//!
//! The on-disk trace format is one JSON object per line — the same shape a
//! real instrumentation agent would emit — carrying the event tuple
//! `(task, state, queue, arrival, departure)` plus observation flags.

use crate::error::TraceError;
use crate::mask::{MaskedLog, ObservedMask};
use qni_model::event::Event;
use qni_model::ids::EventId;
use qni_model::log::EventLog;
use serde::{Deserialize, Serialize};
use std::io::{BufRead, Write};

/// One line of a trace file.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// The event tuple.
    #[serde(flatten)]
    pub event: Event,
    /// Whether the arrival time was measured.
    pub arrival_observed: bool,
    /// Whether the departure time was measured.
    pub departure_observed: bool,
}

/// Writes a masked log as JSONL.
pub fn write_jsonl<W: Write>(ml: &MaskedLog, mut w: W) -> Result<(), TraceError> {
    let log = ml.ground_truth();
    for e in log.event_ids() {
        let rec = TraceRecord {
            event: *log.event(e),
            arrival_observed: ml.mask().arrival_observed(e),
            departure_observed: ml.mask().departure_observed(e),
        };
        serde_json::to_writer(&mut w, &rec)?;
        writeln!(w)?;
    }
    Ok(())
}

/// Reads trace records from JSONL.
pub fn read_jsonl<R: BufRead>(r: R) -> Result<Vec<TraceRecord>, TraceError> {
    let mut out = Vec::new();
    for line in r.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        out.push(serde_json::from_str(&line)?);
    }
    Ok(out)
}

/// Reconstructs a [`MaskedLog`] from trace records.
///
/// Records must describe complete tasks (each task's events contiguous in
/// task order, starting with its `q0` initial event), which is how
/// [`write_jsonl`] emits them.
pub fn from_records(records: &[TraceRecord], num_queues: usize) -> Result<MaskedLog, TraceError> {
    use qni_model::log::EventLogBuilder;
    // Group by task preserving order.
    let mut by_task: Vec<Vec<&TraceRecord>> = Vec::new();
    for rec in records {
        let idx = rec.event.task.index();
        if by_task.len() <= idx {
            by_task.resize_with(idx + 1, Vec::new);
        }
        by_task[idx].push(rec);
    }
    let initial_state = records
        .iter()
        .find(|r| r.event.is_initial())
        .map(|r| r.event.state)
        .unwrap_or(qni_model::ids::StateId(0));
    let mut builder = EventLogBuilder::new(num_queues, initial_state);
    let mut flags: Vec<(bool, bool)> = Vec::with_capacity(records.len());
    for recs in &by_task {
        let initial =
            recs.iter()
                .find(|r| r.event.is_initial())
                .ok_or(TraceError::ShapeMismatch {
                    expected: 1,
                    actual: 0,
                })?;
        let visits: Vec<_> = recs
            .iter()
            .filter(|r| !r.event.is_initial())
            .map(|r| {
                (
                    r.event.state,
                    r.event.queue,
                    r.event.arrival,
                    r.event.departure,
                )
            })
            .collect();
        flags.push((initial.arrival_observed, initial.departure_observed));
        for r in recs.iter().filter(|r| !r.event.is_initial()) {
            flags.push((r.arrival_observed, r.departure_observed));
        }
        builder
            .add_task(initial.event.departure, &visits)
            .map_err(|_| TraceError::ShapeMismatch {
                expected: visits.len(),
                actual: 0,
            })?;
    }
    let log = builder.build().map_err(|_| TraceError::ShapeMismatch {
        expected: records.len(),
        actual: 0,
    })?;
    let mut mask = ObservedMask::unobserved(log.num_events());
    for (i, &(a, d)) in flags.iter().enumerate() {
        let e = EventId::from_index(i);
        if a {
            mask.observe_arrival(e);
        }
        if d {
            mask.observe_departure(e);
        }
    }
    MaskedLog::new(log, mask)
}

/// Convenience: extracts the full event list of a log as records with the
/// given mask.
pub fn to_records(log: &EventLog, mask: &ObservedMask) -> Vec<TraceRecord> {
    log.event_ids()
        .map(|e| TraceRecord {
            event: *log.event(e),
            arrival_observed: mask.arrival_observed(e),
            departure_observed: mask.departure_observed(e),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observe::ObservationScheme;
    use qni_model::topology::tandem;
    use qni_sim::{Simulator, Workload};
    use qni_stats::rng::rng_from_seed;

    fn masked() -> MaskedLog {
        let bp = tandem(2.0, &[5.0, 6.0]).unwrap();
        let mut rng = rng_from_seed(1);
        let log = Simulator::new(&bp.network)
            .run(&Workload::poisson_n(2.0, 40).unwrap(), &mut rng)
            .unwrap();
        ObservationScheme::task_sampling(0.5)
            .unwrap()
            .apply(log, &mut rng_from_seed(2))
            .unwrap()
    }

    #[test]
    fn jsonl_round_trip() {
        let ml = masked();
        let mut buf = Vec::new();
        write_jsonl(&ml, &mut buf).unwrap();
        let records = read_jsonl(std::io::Cursor::new(&buf)).unwrap();
        assert_eq!(records.len(), ml.ground_truth().num_events());
        let rebuilt = from_records(&records, ml.ground_truth().num_queues()).unwrap();
        let (a, b) = (ml.ground_truth(), rebuilt.ground_truth());
        assert_eq!(a.num_events(), b.num_events());
        for e in a.event_ids() {
            assert_eq!(a.event(e), b.event(e));
            assert_eq!(
                ml.mask().arrival_observed(e),
                rebuilt.mask().arrival_observed(e)
            );
            assert_eq!(
                ml.mask().departure_observed(e),
                rebuilt.mask().departure_observed(e)
            );
        }
    }

    #[test]
    fn jsonl_skips_blank_lines() {
        let ml = masked();
        let mut buf = Vec::new();
        write_jsonl(&ml, &mut buf).unwrap();
        let mut text = String::from_utf8(buf).unwrap();
        text.push_str("\n\n");
        let records = read_jsonl(std::io::Cursor::new(text.as_bytes())).unwrap();
        assert_eq!(records.len(), ml.ground_truth().num_events());
    }

    #[test]
    fn rejects_garbage() {
        let r = read_jsonl(std::io::Cursor::new(b"{not json}\n".as_slice()));
        assert!(r.is_err());
    }

    #[test]
    fn record_fields_flattened() {
        let ml = masked();
        let recs = to_records(ml.ground_truth(), ml.mask());
        let json = serde_json::to_string(&recs[0]).unwrap();
        // The event tuple is inlined, not nested under "event".
        assert!(json.contains("\"task\""));
        assert!(json.contains("\"arrival\""));
        assert!(!json.contains("\"event\""));
    }
}
