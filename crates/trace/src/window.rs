//! Sliding time windows over a masked log — the input of streaming
//! inference.
//!
//! A [`WindowSchedule`] cuts the time axis into overlapping half-open
//! windows `[k·stride, k·stride + width)`; [`slice_windows`] materializes
//! each as a self-contained [`WindowedLog`]. The slicing convention
//! mirrors [`crate::observe::ObservationScheme::TimeWindow`]:
//!
//! - **Task ownership is by system entry.** A task belongs to the window
//!   whose half-open span contains its entry time (the arrival into the
//!   system). An entry exactly on a window's start is inside; exactly on
//!   its end is in the next window.
//! - **Whole tasks ride along.** Events of a task that straddles the
//!   window's end boundary stay with the entry-owning window, and their
//!   boundary-crossing departures stay pinned to the task — so every
//!   window is a complete constraint system (π/ρ pointers never reference
//!   a neighbouring window) and can be handed to inference on its own.
//! - **Each window gets its own clock.** All times are rebased by the
//!   window start, so a window's q0 interarrival gaps (and hence its λ̂)
//!   are local to the window rather than accumulating the absolute time
//!   since the trace began. Rebasing is exact (a single subtraction per
//!   time), so two overlapping windows agree bit-for-bit on the shared
//!   suffix structure up to that shift.
//!
//! Mask bits are copied verbatim: an arrival observed in the full trace
//! is observed in every window that contains it, and free times stay
//! free. Slicing uses ground-truth entry times for *membership* only —
//! the paper's event counters make the existence and count of tasks
//! structural knowledge even when their times are unobserved.

use crate::error::TraceError;
use crate::mask::{MaskedLog, ObservedMask};
use qni_model::ids::{EventId, TaskId};
use qni_model::log::EventLogBuilder;

/// A `(width, stride)` sliding-window schedule.
///
/// Window `k` spans `[k·stride, k·stride + width)`. `stride < width`
/// yields overlapping windows (the usual streaming configuration, and
/// what gives warm starts shared tasks to reuse); `stride == width`
/// tiles the axis; `stride > width` subsamples it (tasks entering
/// between windows belong to none).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowSchedule {
    width: f64,
    stride: f64,
}

impl WindowSchedule {
    /// Creates a schedule with validation: both `width` and `stride` must
    /// be positive and finite.
    pub fn new(width: f64, stride: f64) -> Result<Self, TraceError> {
        if !(width.is_finite() && width > 0.0) {
            return Err(TraceError::BadSchedule {
                what: "window width must be positive and finite",
            });
        }
        if !(stride.is_finite() && stride > 0.0) {
            return Err(TraceError::BadSchedule {
                what: "window stride must be positive and finite",
            });
        }
        Ok(WindowSchedule { width, stride })
    }

    /// The window width.
    pub fn width(&self) -> f64 {
        self.width
    }

    /// The stride between consecutive window starts.
    pub fn stride(&self) -> f64 {
        self.stride
    }

    /// The `[start, end)` spans covering `[0, horizon]`: windows start at
    /// `0, stride, 2·stride, …` while the start does not exceed
    /// `horizon`, so every entry time in `[0, horizon]` lies in at least
    /// one window whenever `stride <= width`.
    pub fn spans(&self, horizon: f64) -> Vec<(f64, f64)> {
        let mut spans = Vec::new();
        let mut k = 0usize;
        loop {
            let start = k as f64 * self.stride;
            if k > 0 && start > horizon {
                break;
            }
            spans.push((start, start + self.width));
            k += 1;
        }
        spans
    }
}

/// One window of a masked log: a self-contained [`MaskedLog`] on the
/// window's local clock, plus the mapping back to the original trace.
#[derive(Debug, Clone)]
pub struct WindowedLog {
    /// Position of the window in the schedule (0-based).
    pub index: usize,
    /// Window start on the original trace's clock (inclusive).
    pub start: f64,
    /// Window end on the original trace's clock (exclusive).
    pub end: f64,
    masked: MaskedLog,
    orig_events: Vec<EventId>,
    orig_tasks: Vec<TaskId>,
}

impl WindowedLog {
    /// The window's self-contained masked log (times rebased so the
    /// window starts at 0).
    pub fn masked(&self) -> &MaskedLog {
        &self.masked
    }

    /// Number of tasks owned by the window.
    pub fn num_tasks(&self) -> usize {
        self.orig_tasks.len()
    }

    /// Number of events in the window's log.
    pub fn num_events(&self) -> usize {
        self.orig_events.len()
    }

    /// Maps a window-local event id back to the original trace's event.
    pub fn original_event(&self, e: EventId) -> EventId {
        self.orig_events[e.index()]
    }

    /// Maps a window-local task id back to the original trace's task.
    pub fn original_task(&self, k: TaskId) -> TaskId {
        self.orig_tasks[k.index()]
    }

    /// Window-local event ids paired with their original-trace ids, in
    /// window event order.
    pub fn event_mapping(&self) -> impl Iterator<Item = (EventId, EventId)> + '_ {
        self.orig_events
            .iter()
            .enumerate()
            .map(|(i, &orig)| (EventId::from_index(i), orig))
    }
}

/// Slices a masked log into the schedule's windows.
///
/// Tasks are assigned by entry time under the half-open `[start, end)`
/// convention documented at the [module level](self); windows that own
/// no task are still emitted (with an empty log), so the trajectory's
/// window indices always line up with the schedule. Errors if the trace
/// has no tasks.
pub fn slice_windows(
    masked: &MaskedLog,
    schedule: &WindowSchedule,
) -> Result<Vec<WindowedLog>, TraceError> {
    let truth = masked.ground_truth();
    if truth.num_tasks() == 0 {
        return Err(TraceError::BadSchedule {
            what: "cannot window a trace with no tasks",
        });
    }
    let entries: Vec<f64> = (0..truth.num_tasks())
        .map(|k| truth.task_entry(TaskId::from_index(k)))
        .collect();
    let horizon = entries.iter().copied().fold(0.0f64, f64::max);
    let initial_state = truth.state_of(truth.task_events(TaskId::from_index(0))[0]);
    let spans = schedule.spans(horizon);
    // Bin tasks into their owning windows in one pass: a task entering at
    // `t` can only belong to windows whose index lies in
    // `[(t - width)/stride, t/stride]`, so the scan per task is
    // O(overlap factor), not O(windows). The index range is widened by
    // one on each side against float rounding; the exact half-open span
    // check decides membership. Task ids are visited in increasing
    // order, so each bin stays in task-id order.
    let mut members: Vec<Vec<usize>> = vec![Vec::new(); spans.len()];
    for (k, &entry) in entries.iter().enumerate() {
        let lo = ((entry - schedule.width()) / schedule.stride()).floor() as isize - 1;
        let hi = (entry / schedule.stride()).floor() as isize + 1;
        for i in lo.max(0)..=hi.min(spans.len() as isize - 1) {
            let (start, end) = spans[i as usize];
            if entry >= start && entry < end {
                members[i as usize].push(k);
            }
        }
    }
    let mut windows = Vec::new();
    for (index, ((start, end), member_tasks)) in spans.into_iter().zip(members).enumerate() {
        let mut builder = EventLogBuilder::new(truth.num_queues(), initial_state);
        let mut orig_events = Vec::new();
        let mut orig_tasks = Vec::new();
        let mut flags: Vec<(bool, bool)> = Vec::new();
        for k in member_tasks {
            let entry = entries[k];
            let k = TaskId::from_index(k);
            let events = truth.task_events(k);
            let visits: Vec<_> = events[1..]
                .iter()
                .map(|&e| {
                    (
                        truth.state_of(e),
                        truth.queue_of(e),
                        truth.arrival(e) - start,
                        truth.departure(e) - start,
                    )
                })
                .collect();
            builder
                .add_task(entry - start, &visits)
                .map_err(|_| TraceError::ShapeMismatch {
                    expected: visits.len(),
                    actual: 0,
                })?;
            orig_tasks.push(k);
            for &e in events {
                orig_events.push(e);
                flags.push((
                    masked.mask().arrival_observed(e),
                    masked.mask().departure_observed(e),
                ));
            }
        }
        let log = builder.build().map_err(|_| TraceError::ShapeMismatch {
            expected: orig_events.len(),
            actual: 0,
        })?;
        let mut mask = ObservedMask::unobserved(log.num_events());
        for (i, &(a, d)) in flags.iter().enumerate() {
            let e = EventId::from_index(i);
            if a {
                mask.observe_arrival(e);
            }
            if d {
                mask.observe_departure(e);
            }
        }
        windows.push(WindowedLog {
            index,
            start,
            end,
            masked: MaskedLog::new(log, mask)?,
            orig_events,
            orig_tasks,
        });
    }
    Ok(windows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observe::ObservationScheme;
    use qni_model::topology::tandem;
    use qni_sim::{Simulator, Workload};
    use qni_stats::rng::rng_from_seed;

    fn masked(n: usize, seed: u64) -> MaskedLog {
        let bp = tandem(2.0, &[6.0, 8.0]).unwrap();
        let mut rng = rng_from_seed(seed);
        let truth = Simulator::new(&bp.network)
            .run(&Workload::poisson_n(2.0, n).unwrap(), &mut rng)
            .unwrap();
        ObservationScheme::task_sampling(0.5)
            .unwrap()
            .apply(truth, &mut rng)
            .unwrap()
    }

    #[test]
    fn schedule_validation() {
        assert!(WindowSchedule::new(0.0, 1.0).is_err());
        assert!(WindowSchedule::new(-1.0, 1.0).is_err());
        assert!(WindowSchedule::new(1.0, 0.0).is_err());
        assert!(WindowSchedule::new(f64::NAN, 1.0).is_err());
        assert!(WindowSchedule::new(1.0, f64::INFINITY).is_err());
        let s = WindowSchedule::new(4.0, 2.0).unwrap();
        assert_eq!(s.width(), 4.0);
        assert_eq!(s.stride(), 2.0);
    }

    #[test]
    fn spans_cover_horizon() {
        let s = WindowSchedule::new(4.0, 2.0).unwrap();
        let spans = s.spans(5.0);
        assert_eq!(spans, vec![(0.0, 4.0), (2.0, 6.0), (4.0, 8.0)]);
        // A start exactly on the horizon is still emitted (covers the
        // last entry); the next one is not.
        let spans = s.spans(4.0);
        assert_eq!(spans.len(), 3);
        assert_eq!(spans[2], (4.0, 8.0));
    }

    #[test]
    fn every_task_lands_in_some_window_when_overlapping() {
        let ml = masked(120, 1);
        let s = WindowSchedule::new(10.0, 5.0).unwrap();
        let windows = slice_windows(&ml, &s).unwrap();
        let total_owned: usize = windows
            .iter()
            .step_by(2) // Non-overlapping subset: starts 0, 10, 20, …
            .map(WindowedLog::num_tasks)
            .sum();
        assert_eq!(total_owned, ml.ground_truth().num_tasks());
    }

    #[test]
    fn windows_are_rebased_and_self_contained() {
        let ml = masked(100, 2);
        let s = WindowSchedule::new(12.0, 6.0).unwrap();
        for w in slice_windows(&ml, &s).unwrap() {
            let log = w.masked().ground_truth();
            assert_eq!(log.num_tasks(), w.num_tasks());
            qni_model::constraints::validate(log).unwrap();
            for k in 0..log.num_tasks() {
                let k = TaskId::from_index(k);
                let entry = log.task_entry(k);
                // Local clock: entries lie in [0, width).
                assert!(
                    (0.0..s.width()).contains(&entry),
                    "window {} entry {entry} outside [0, {})",
                    w.index,
                    s.width()
                );
                // The original task's entry is the rebased one.
                let orig = w.original_task(k);
                let orig_entry = ml.ground_truth().task_entry(orig);
                assert!((orig_entry - (w.start + entry)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn mask_bits_and_times_carry_over() {
        let ml = masked(80, 3);
        let s = WindowSchedule::new(15.0, 15.0).unwrap();
        for w in slice_windows(&ml, &s).unwrap() {
            let log = w.masked().ground_truth();
            for (we, oe) in w.event_mapping() {
                assert_eq!(
                    w.masked().mask().arrival_observed(we),
                    ml.mask().arrival_observed(oe),
                    "arrival bit of {oe} changed"
                );
                assert_eq!(
                    w.masked().mask().departure_observed(we),
                    ml.mask().departure_observed(oe),
                );
                assert_eq!(log.queue_of(we), ml.ground_truth().queue_of(oe));
                if !log.is_initial_event(we) {
                    let shifted = ml.ground_truth().arrival(oe) - w.start;
                    assert!((log.arrival(we) - shifted).abs() < 1e-12);
                }
                let shifted = ml.ground_truth().departure(oe) - w.start;
                assert!((log.departure(we) - shifted).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn boundary_entry_goes_to_the_owning_window() {
        use qni_model::ids::{QueueId, StateId};
        // Entries exactly at 0.0, 5.0 (a boundary), and 7.5.
        let mut b = EventLogBuilder::new(2, StateId(0));
        for &t in &[0.0, 5.0, 7.5] {
            b.add_task(t, &[(StateId(1), QueueId(1), t, t + 0.5)])
                .unwrap();
        }
        let log = b.build().unwrap();
        let n = log.num_events();
        let ml = MaskedLog::new(log, ObservedMask::fully_observed(n)).unwrap();
        let s = WindowSchedule::new(5.0, 5.0).unwrap();
        let windows = slice_windows(&ml, &s).unwrap();
        // [0,5): the t=0 task only. [5,10): the boundary task and 7.5.
        assert_eq!(windows[0].num_tasks(), 1);
        assert_eq!(windows[1].num_tasks(), 2);
        assert_eq!(windows[1].original_task(TaskId(0)), TaskId(1));
    }

    #[test]
    fn empty_windows_are_emitted_and_empty_traces_rejected() {
        use qni_model::ids::{QueueId, StateId};
        let mut b = EventLogBuilder::new(2, StateId(0));
        b.add_task(0.5, &[(StateId(1), QueueId(1), 0.5, 1.0)])
            .unwrap();
        b.add_task(9.5, &[(StateId(1), QueueId(1), 9.5, 10.0)])
            .unwrap();
        let log = b.build().unwrap();
        let n = log.num_events();
        let ml = MaskedLog::new(log, ObservedMask::fully_observed(n)).unwrap();
        let s = WindowSchedule::new(3.0, 3.0).unwrap();
        let windows = slice_windows(&ml, &s).unwrap();
        // Starts 0, 3, 6, 9: the middle two own nothing but still exist.
        assert_eq!(windows.len(), 4);
        assert_eq!(windows[1].num_tasks(), 0);
        assert_eq!(windows[2].num_tasks(), 0);
        assert_eq!(windows[1].num_events(), 0);
        assert_eq!(windows[3].num_tasks(), 1);

        let empty = EventLogBuilder::new(2, StateId(0)).build().unwrap();
        let ml = MaskedLog::new(empty, ObservedMask::unobserved(0)).unwrap();
        assert!(slice_windows(&ml, &s).is_err());
    }

    #[test]
    fn straddling_tasks_keep_their_late_events() {
        use qni_model::ids::{QueueId, StateId};
        // One task entering at 4.9 whose service runs to 12.0 — far past
        // the [0, 5) window end.
        let mut b = EventLogBuilder::new(2, StateId(0));
        b.add_task(4.9, &[(StateId(1), QueueId(1), 4.9, 12.0)])
            .unwrap();
        let log = b.build().unwrap();
        let n = log.num_events();
        let ml = MaskedLog::new(log, ObservedMask::fully_observed(n)).unwrap();
        let s = WindowSchedule::new(5.0, 5.0).unwrap();
        let windows = slice_windows(&ml, &s).unwrap();
        assert_eq!(windows[0].num_tasks(), 1);
        let wlog = windows[0].masked().ground_truth();
        let last = wlog.task_events(TaskId(0))[1];
        // Departure pinned past the boundary, on the window clock.
        assert!((wlog.departure(last) - 12.0).abs() < 1e-12);
    }
}
