//! Sliding time windows over a masked log — the input of streaming
//! inference.
//!
//! A [`WindowSchedule`] cuts the time axis into overlapping half-open
//! windows `[k·stride, k·stride + width)`; [`slice_windows`] materializes
//! each as a self-contained [`WindowedLog`] from a complete trace, and
//! [`LiveSlicer`] does the same incrementally from a growing stream of
//! [`crate::record::TraceRecord`]s (the live-tail path). Both routes go
//! through one shared window builder, so for the same records they emit
//! bit-identical windows. The slicing convention mirrors
//! [`crate::observe::ObservationScheme::TimeWindow`]:
//!
//! - **Task ownership is by *observed* entry.** A task belongs to the
//!   window whose half-open span contains its observed entry time: the
//!   measured system-entry when the entry was observed, otherwise the
//!   earliest *measured* time of any of its events — the first instant a
//!   monitor actually learns the task exists. Tasks with no measured time
//!   at all fall back to the recorded entry (the paper's event counters
//!   make the existence, count, and order of tasks structural knowledge
//!   even when their times are unobserved). An entry exactly on a
//!   window's start is inside; exactly on its end is in the next window.
//! - **Whole tasks ride along.** Events of a task that straddles the
//!   window's end boundary stay with the entry-owning window, and their
//!   boundary-crossing departures stay pinned to the task — so every
//!   window is a complete constraint system (π/ρ pointers never reference
//!   a neighbouring window) and can be handed to inference on its own.
//! - **Each window gets its own clock.** All times are rebased by the
//!   window start, so a window's q0 interarrival gaps (and hence its λ̂)
//!   are local to the window rather than accumulating the absolute time
//!   since the trace began. Unobserved times that precede the window
//!   start (possible when an unobserved prefix of a task is pulled in by
//!   a later observed time) are clamped to the window's origin — they are
//!   free variables, so the clamp only changes the sampler's starting
//!   point, never an observation.
//!
//! Mask bits are copied verbatim: an arrival observed in the full trace
//! is observed in every window that contains it, and free times stay
//! free.
//!
//! # Cross-window server occupancy
//!
//! With a small stride, a window's early events compete for servers
//! against work carried over from *before* the window starts — work the
//! window's own log cannot see, which makes per-window service estimates
//! systematically optimistic. [`occupancy_carry`] measures, from the
//! previous window's final imputed log, how long each queue's server
//! stays busy past the next window's start with tasks the next window
//! does not own; [`WindowedLog::with_occupancy`] injects that residual as
//! one fully-observed *carry task* per affected queue (entering at the
//! window origin and occupying the server until the carried busy time),
//! so the FIFO machinery itself imposes the floor — no sampler changes.
//! Carry tasks are appended after the real tasks, are pinned by the
//! mask, and are excluded from the original-trace mappings; q0's rate
//! estimate must be rescaled by `real/(real+carry)` tasks (the streaming
//! engine does this), since each carry task adds one q0 event with a
//! zero interarrival gap.

use crate::error::TraceError;
use crate::mask::{MaskedLog, ObservedMask};
use crate::record::TraceRecord;
use qni_model::event::Event;
use qni_model::ids::{EventId, QueueId, StateId, TaskId};
use qni_model::log::{EventLog, EventLogBuilder};
use serde::{Deserialize, Serialize};

/// A `(width, stride)` sliding-window schedule.
///
/// Window `k` spans `[k·stride, k·stride + width)`. `stride < width`
/// yields overlapping windows (the usual streaming configuration, and
/// what gives warm starts shared tasks to reuse); `stride == width`
/// tiles the axis; `stride > width` subsamples it (tasks entering
/// between windows belong to none).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowSchedule {
    width: f64,
    stride: f64,
}

impl WindowSchedule {
    /// Creates a schedule with validation: both `width` and `stride` must
    /// be positive and finite.
    pub fn new(width: f64, stride: f64) -> Result<Self, TraceError> {
        if !(width.is_finite() && width > 0.0) {
            return Err(TraceError::BadSchedule {
                what: "window width must be positive and finite",
            });
        }
        if !(stride.is_finite() && stride > 0.0) {
            return Err(TraceError::BadSchedule {
                what: "window stride must be positive and finite",
            });
        }
        Ok(WindowSchedule { width, stride })
    }

    /// The window width.
    pub fn width(&self) -> f64 {
        self.width
    }

    /// The stride between consecutive window starts.
    pub fn stride(&self) -> f64 {
        self.stride
    }

    /// The `[start, end)` span of window `k`.
    pub fn span(&self, k: usize) -> (f64, f64) {
        let start = k as f64 * self.stride;
        (start, start + self.width)
    }

    /// The `[start, end)` spans covering `[0, horizon]`: windows start at
    /// `0, stride, 2·stride, …` while the start does not exceed
    /// `horizon`, so every entry time in `[0, horizon]` lies in at least
    /// one window whenever `stride <= width`.
    pub fn spans(&self, horizon: f64) -> Vec<(f64, f64)> {
        let mut spans = Vec::new();
        let mut k = 0usize;
        loop {
            let (start, end) = self.span(k);
            if k > 0 && start > horizon {
                break;
            }
            spans.push((start, end));
            k += 1;
        }
        spans
    }
}

/// One task of the original trace, in the slicer's intermediate form:
/// absolute-clock times plus raw observation flags, ready to be rebased
/// into any window that owns it.
#[derive(Debug, Clone)]
struct TaskSlice {
    orig_task: TaskId,
    /// Recorded system entry (absolute clock).
    entry: f64,
    /// Membership time: observed entry, first measured time, or the
    /// recorded entry as fallback (see the module docs).
    observed_entry: f64,
    /// Queue visits after the q0 entry, on the absolute clock.
    visits: Vec<(StateId, QueueId, f64, f64)>,
    /// `(arrival_observed, departure_observed)` per event, including the
    /// q0 initial event at index 0.
    flags: Vec<(bool, bool)>,
    /// Original-trace event ids, including the initial event.
    orig_events: Vec<EventId>,
}

/// The membership time of a task: its entry when measured (directly via
/// the q0 departure or equivalently the first visit's arrival), otherwise
/// the earliest measured time among its events, otherwise the recorded
/// entry (structural fallback).
fn observed_entry(
    entry: f64,
    visits: &[(StateId, QueueId, f64, f64)],
    flags: &[(bool, bool)],
) -> f64 {
    if flags[0].1 || flags.get(1).is_some_and(|f| f.0) {
        return entry;
    }
    let mut first = f64::INFINITY;
    for (i, &(_, _, a, d)) in visits.iter().enumerate() {
        let Some(&(ao, dobs)) = flags.get(i + 1) else {
            break;
        };
        if ao {
            first = first.min(a);
        }
        if dobs {
            first = first.min(d);
        }
    }
    if first.is_finite() {
        first
    } else {
        entry
    }
}

/// One window of a masked log: a self-contained [`MaskedLog`] on the
/// window's local clock, plus the mapping back to the original trace.
#[derive(Debug, Clone)]
pub struct WindowedLog {
    /// Position of the window in the schedule (0-based).
    pub index: usize,
    /// Window start on the original trace's clock (inclusive).
    pub start: f64,
    /// Window end on the original trace's clock (exclusive).
    pub end: f64,
    masked: MaskedLog,
    orig_events: Vec<EventId>,
    orig_tasks: Vec<TaskId>,
    carry_tasks: usize,
    carry_events: usize,
}

impl WindowedLog {
    /// The window's self-contained masked log (times rebased so the
    /// window starts at 0). Includes any carry tasks appended by
    /// [`WindowedLog::with_occupancy`].
    pub fn masked(&self) -> &MaskedLog {
        &self.masked
    }

    /// Number of *real* tasks owned by the window (carry tasks excluded).
    pub fn num_tasks(&self) -> usize {
        self.orig_tasks.len()
    }

    /// Number of *real* events in the window's log (carry events
    /// excluded).
    pub fn num_events(&self) -> usize {
        self.orig_events.len()
    }

    /// Number of occupancy carry tasks appended by
    /// [`WindowedLog::with_occupancy`] (0 for a freshly sliced window).
    pub fn carry_tasks(&self) -> usize {
        self.carry_tasks
    }

    /// Number of events belonging to carry tasks (two per carry task: the
    /// q0 entry and the occupied queue's visit).
    pub fn carry_events(&self) -> usize {
        self.carry_events
    }

    /// Maps a window-local event id back to the original trace's event.
    /// Carry events (local ids `>= num_events()`) have no original event.
    pub fn original_event(&self, e: EventId) -> EventId {
        self.orig_events[e.index()]
    }

    /// Maps a window-local task id back to the original trace's task.
    /// Carry tasks (local ids `>= num_tasks()`) have no original task.
    pub fn original_task(&self, k: TaskId) -> TaskId {
        self.orig_tasks[k.index()]
    }

    /// Window-local event ids paired with their original-trace ids, in
    /// window event order (real events only — carry events are excluded
    /// by construction because they follow all real events).
    pub fn event_mapping(&self) -> impl Iterator<Item = (EventId, EventId)> + '_ {
        self.orig_events
            .iter()
            .enumerate()
            .map(|(i, &orig)| (EventId::from_index(i), orig))
    }

    /// Returns a copy of this window with the carried server occupancy
    /// injected as fully-observed carry tasks (see the
    /// [module docs](self)).
    ///
    /// For every service queue whose carried busy time extends past the
    /// window start *and* which has at least one real event in the
    /// window, one carry task is appended: it enters at the window origin
    /// and occupies the queue until the residual busy time, clamped to
    /// the queue's earliest pinned departure so pinned observations stay
    /// feasible. Queues without in-window events need no floor and get no
    /// carry task. Windows that gain no carry task are returned
    /// unchanged.
    pub fn with_occupancy(&self, carry: &OccupancyCarry) -> Result<WindowedLog, TraceError> {
        let log = self.masked.ground_truth();
        let mut ghosts: Vec<(StateId, QueueId, f64)> = Vec::new();
        for q in 1..log.num_queues() {
            let q = QueueId::from_index(q);
            let Some(busy) = carry.busy_until.get(q.index()).copied() else {
                continue;
            };
            // NaN-safe: a NaN residual must also be skipped, not carried.
            let mut residual = busy - self.start;
            if residual.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
                continue;
            }
            let at_queue = log.events_at_queue(q);
            let Some(&first) = at_queue.first() else {
                continue;
            };
            // Feasibility clamp: a pinned departure before the carried
            // busy time would violate FIFO behind the carry task.
            for &e in at_queue {
                if self.masked.departure_pinned(e) {
                    residual = residual.min(log.departure(e));
                }
            }
            if residual > 0.0 {
                ghosts.push((log.state_of(first), q, residual));
            }
        }
        if ghosts.is_empty() {
            return Ok(self.clone());
        }
        let initial_state = initial_state_of(log);
        let mut builder = EventLogBuilder::new(log.num_queues(), initial_state);
        let mut flags: Vec<(bool, bool)> = Vec::with_capacity(log.num_events() + 2 * ghosts.len());
        for k in 0..log.num_tasks() {
            let k = TaskId::from_index(k);
            let events = log.task_events(k);
            let visits: Vec<_> = events[1..]
                .iter()
                .map(|&e| {
                    (
                        log.state_of(e),
                        log.queue_of(e),
                        log.arrival(e),
                        log.departure(e),
                    )
                })
                .collect();
            builder.add_task(log.task_entry(k), &visits).map_err(|_| {
                TraceError::ShapeMismatch {
                    expected: visits.len(),
                    actual: 0,
                }
            })?;
            for &e in events {
                flags.push((
                    self.masked.mask().arrival_observed(e),
                    self.masked.mask().departure_observed(e),
                ));
            }
        }
        for &(state, q, residual) in &ghosts {
            builder
                .add_task(0.0, &[(state, q, 0.0, residual)])
                .map_err(|_| TraceError::ShapeMismatch {
                    expected: 1,
                    actual: 0,
                })?;
            // Carry tasks are fully pinned: the sampler must treat the
            // carried occupancy as data, not as a free variable.
            flags.push((true, true));
            flags.push((true, true));
        }
        let new_log = builder.build().map_err(|_| TraceError::ShapeMismatch {
            expected: flags.len(),
            actual: 0,
        })?;
        let mut mask = ObservedMask::unobserved(new_log.num_events());
        for (i, &(a, d)) in flags.iter().enumerate() {
            let e = EventId::from_index(i);
            if a {
                mask.observe_arrival(e);
            }
            if d {
                mask.observe_departure(e);
            }
        }
        Ok(WindowedLog {
            index: self.index,
            start: self.start,
            end: self.end,
            masked: MaskedLog::new(new_log, mask)?,
            orig_events: self.orig_events.clone(),
            orig_tasks: self.orig_tasks.clone(),
            carry_tasks: ghosts.len(),
            carry_events: 2 * ghosts.len(),
        })
    }
}

/// Per-queue server busy times carried across a window boundary, on the
/// original trace's absolute clock. Built by [`occupancy_carry`].
#[derive(Debug, Clone)]
pub struct OccupancyCarry {
    busy_until: Vec<f64>,
}

impl OccupancyCarry {
    /// The absolute time queue `q`'s server stays busy with carried work
    /// (`-inf` when nothing is carried).
    pub fn busy_until(&self, q: QueueId) -> f64 {
        self.busy_until
            .get(q.index())
            .copied()
            .unwrap_or(f64::NEG_INFINITY)
    }
}

/// Measures, from the previous window's final imputed log, how long each
/// queue stays busy past `cur`'s start with work `cur` does not own:
/// the latest imputed departure over events of previous-window tasks
/// that are *not* members of `cur` (including the previous window's own
/// carry tasks, which by construction are never shared).
///
/// `prev_final` must have the shape of `prev`'s log (it is the final
/// Gibbs state of a fit on that window).
pub fn occupancy_carry(
    prev: &WindowedLog,
    prev_final: &EventLog,
    cur: &WindowedLog,
) -> OccupancyCarry {
    let mut busy_until = vec![f64::NEG_INFINITY; prev_final.num_queues()];
    for k in 0..prev_final.num_tasks() {
        if let Some(&orig) = prev.orig_tasks.get(k) {
            // Real task: skip if `cur` owns it — its constraints are
            // native there (orig_tasks is in increasing task-id order).
            if cur.orig_tasks.binary_search(&orig).is_ok() {
                continue;
            }
        }
        for &e in prev_final.task_events(TaskId::from_index(k)) {
            if prev_final.is_initial_event(e) {
                continue;
            }
            let q = prev_final.queue_of(e).index();
            let depart = prev_final.departure(e) + prev.start;
            if depart > busy_until[q] {
                busy_until[q] = depart;
            }
        }
    }
    OccupancyCarry { busy_until }
}

/// The initial FSM state used for synthesized q0 events: the state of
/// the first event of task 0, falling back to `StateId(0)` for an empty
/// log (matching [`crate::record::from_records`]).
fn initial_state_of(log: &EventLog) -> StateId {
    if log.num_tasks() == 0 {
        StateId(0)
    } else {
        log.state_of(log.task_events(TaskId::from_index(0))[0])
    }
}

/// Builds one window from its member tasks. This is the single build
/// path shared by [`slice_windows`] (replay) and [`LiveSlicer`] (live
/// tail): identical members in, bit-identical window out.
fn build_window(
    index: usize,
    start: f64,
    end: f64,
    members: &[&TaskSlice],
    num_queues: usize,
    initial_state: StateId,
) -> Result<WindowedLog, TraceError> {
    let mut builder = EventLogBuilder::new(num_queues, initial_state);
    let mut orig_events = Vec::new();
    let mut orig_tasks = Vec::new();
    let mut flags: Vec<(bool, bool)> = Vec::new();
    for t in members {
        // Rebase onto the window clock. Unobserved times of a task pulled
        // in by a later observed time may precede the window start; clamp
        // them to the origin (monotone, so within-task ordering and the
        // transition equalities survive — and only free times can be
        // clamped, since every observed time is >= the observed entry).
        let visits: Vec<_> = t
            .visits
            .iter()
            .map(|&(s, q, a, d)| (s, q, (a - start).max(0.0), (d - start).max(0.0)))
            .collect();
        builder
            .add_task((t.entry - start).max(0.0), &visits)
            .map_err(|_| TraceError::ShapeMismatch {
                expected: visits.len(),
                actual: 0,
            })?;
        orig_tasks.push(t.orig_task);
        orig_events.extend_from_slice(&t.orig_events);
        flags.extend_from_slice(&t.flags);
    }
    let log = builder.build().map_err(|_| TraceError::ShapeMismatch {
        expected: orig_events.len(),
        actual: 0,
    })?;
    let mut mask = ObservedMask::unobserved(log.num_events());
    for (i, &(a, d)) in flags.iter().enumerate() {
        let e = EventId::from_index(i);
        if a {
            mask.observe_arrival(e);
        }
        if d {
            mask.observe_departure(e);
        }
    }
    Ok(WindowedLog {
        index,
        start,
        end,
        masked: MaskedLog::new(log, mask)?,
        orig_events,
        orig_tasks,
        carry_tasks: 0,
        carry_events: 0,
    })
}

/// Extracts every task of a masked log into the slicer's intermediate
/// form, in task-id order.
fn task_slices(masked: &MaskedLog) -> Vec<TaskSlice> {
    let truth = masked.ground_truth();
    let mut out = Vec::with_capacity(truth.num_tasks());
    for k in 0..truth.num_tasks() {
        let k = TaskId::from_index(k);
        let events = truth.task_events(k);
        let visits: Vec<_> = events[1..]
            .iter()
            .map(|&e| {
                (
                    truth.state_of(e),
                    truth.queue_of(e),
                    truth.arrival(e),
                    truth.departure(e),
                )
            })
            .collect();
        let flags: Vec<_> = events
            .iter()
            .map(|&e| {
                (
                    masked.mask().arrival_observed(e),
                    masked.mask().departure_observed(e),
                )
            })
            .collect();
        let entry = truth.task_entry(k);
        out.push(TaskSlice {
            orig_task: k,
            entry,
            observed_entry: observed_entry(entry, &visits, &flags),
            visits,
            flags,
            orig_events: events.to_vec(),
        });
    }
    out
}

/// Slices a masked log into the schedule's windows.
///
/// Tasks are assigned by *observed* entry time under the half-open
/// `[start, end)` convention documented at the [module level](self);
/// windows that own no task are still emitted (with an empty log), so
/// the trajectory's window indices always line up with the schedule.
/// Errors if the trace has no tasks.
pub fn slice_windows(
    masked: &MaskedLog,
    schedule: &WindowSchedule,
) -> Result<Vec<WindowedLog>, TraceError> {
    let truth = masked.ground_truth();
    if truth.num_tasks() == 0 {
        return Err(TraceError::BadSchedule {
            what: "cannot window a trace with no tasks",
        });
    }
    let tasks = task_slices(masked);
    let horizon = tasks
        .iter()
        .map(|t| t.observed_entry)
        .fold(0.0f64, f64::max);
    let initial_state = initial_state_of(truth);
    let spans = schedule.spans(horizon);
    // Bin tasks into their owning windows in one pass: a task entering at
    // `t` can only belong to windows whose index lies in
    // `[(t - width)/stride, t/stride]`, so the scan per task is
    // O(overlap factor), not O(windows). The index range is widened by
    // one on each side against float rounding; the exact half-open span
    // check decides membership. Task ids are visited in increasing
    // order, so each bin stays in task-id order.
    let mut members: Vec<Vec<usize>> = vec![Vec::new(); spans.len()];
    for (k, t) in tasks.iter().enumerate() {
        let entry = t.observed_entry;
        let lo = ((entry - schedule.width()) / schedule.stride()).floor() as isize - 1;
        let hi = (entry / schedule.stride()).floor() as isize + 1;
        for i in lo.max(0)..=hi.min(spans.len() as isize - 1) {
            let (start, end) = spans[i as usize];
            if entry >= start && entry < end {
                members[i as usize].push(k);
            }
        }
    }
    let mut windows = Vec::new();
    for (index, ((start, end), member_tasks)) in spans.into_iter().zip(members).enumerate() {
        let refs: Vec<&TaskSlice> = member_tasks.iter().map(|&k| &tasks[k]).collect();
        windows.push(build_window(
            index,
            start,
            end,
            &refs,
            truth.num_queues(),
            initial_state,
        )?);
    }
    Ok(windows)
}

/// Incremental window slicer for live-tail ingestion: feed it
/// [`TraceRecord`]s as they are appended to the trace and it emits each
/// [`WindowedLog`] as soon as the stream guarantees the window is
/// complete, retiring buffered tasks as their last owning window closes —
/// memory stays bounded by the tasks inside one `width + stride` span of
/// the entry axis, independent of trace length.
///
/// # Append-order contract
///
/// The live path requires what [`crate::record::write_jsonl`] (and any
/// entry-ordered logger) produces:
///
/// - each task's records are contiguous and start with its q0 entry
///   record,
/// - task indices are consecutive from 0,
/// - task entry times are nondecreasing.
///
/// Violations surface as [`TraceError::OutOfOrder`]. Under the contract,
/// once a task entering at time `t` appears, no future record can belong
/// to a window ending at or before `t` — which is exactly when those
/// windows close.
///
/// For the same records, [`LiveSlicer`] and [`slice_windows`] emit
/// bit-identical windows (shared build path; pinned by tests).
#[derive(Debug)]
pub struct LiveSlicer {
    schedule: WindowSchedule,
    num_queues: usize,
    initial_state: Option<StateId>,
    /// Completed tasks not yet retired, in task-id order.
    completed: Vec<TaskSlice>,
    /// Records of the in-progress task (contiguity makes it unique).
    pending: Vec<TraceRecord>,
    pending_first_event: usize,
    next_event_id: usize,
    next_task_id: usize,
    /// Recorded entry of the most recent task (the close watermark).
    last_entry: f64,
    /// Max observed entry over completed tasks (the finish horizon).
    max_observed_entry: f64,
    next_window: usize,
    started: bool,
}

impl LiveSlicer {
    /// Creates a slicer. `num_queues` is the total queue count including
    /// the virtual `q0` (the live path cannot infer it from a prefix of
    /// the stream, and it must match the replay side for bit-identity).
    pub fn new(schedule: WindowSchedule, num_queues: usize) -> Result<Self, TraceError> {
        if num_queues < 2 {
            return Err(TraceError::BadSchedule {
                what: "live slicing needs at least q0 plus one service queue",
            });
        }
        Ok(LiveSlicer {
            schedule,
            num_queues,
            initial_state: None,
            completed: Vec::new(),
            pending: Vec::new(),
            pending_first_event: 0,
            next_event_id: 0,
            next_task_id: 0,
            last_entry: 0.0,
            max_observed_entry: 0.0,
            next_window: 0,
            started: false,
        })
    }

    /// The latest observed entry among completed tasks, if any.
    pub fn watermark(&self) -> Option<f64> {
        if self.started {
            Some(self.max_observed_entry.max(self.last_entry))
        } else {
            None
        }
    }

    /// The end of the most recently emitted window, if any.
    pub fn last_closed_end(&self) -> Option<f64> {
        if self.next_window == 0 {
            None
        } else {
            Some(self.schedule.span(self.next_window - 1).1)
        }
    }

    /// Index of the next window to be emitted.
    pub fn next_window_index(&self) -> usize {
        self.next_window
    }

    /// Number of buffered (not yet retired) tasks — the slicer's memory
    /// footprint, bounded by the entry density of one `width + stride`
    /// span.
    pub fn buffered_tasks(&self) -> usize {
        self.completed.len() + usize::from(!self.pending.is_empty())
    }

    /// Number of schedule spans that have started (their start is at or
    /// before the watermark) but are not yet emitted — the "resident
    /// window" count, bounded by `width/stride + 1` regardless of trace
    /// length.
    pub fn open_spans(&self) -> usize {
        let Some(watermark) = self.watermark() else {
            return 0;
        };
        let mut n = 0usize;
        while self.schedule.span(self.next_window + n).0 <= watermark {
            n += 1;
        }
        n
    }

    /// Feeds one record; returns the windows it completed (usually none,
    /// sometimes several when an entry jumps multiple strides ahead).
    pub fn push(&mut self, rec: TraceRecord) -> Result<Vec<WindowedLog>, TraceError> {
        let idx = rec.event.task.index();
        let mut out = Vec::new();
        if rec.event.is_initial() {
            if idx != self.next_task_id {
                return Err(TraceError::OutOfOrder {
                    what: "task indices must be consecutive and each task must \
                           start with exactly one q0 record",
                });
            }
            let entry = rec.event.departure;
            if self.started && entry < self.last_entry {
                return Err(TraceError::OutOfOrder {
                    what: "task entry times must be nondecreasing",
                });
            }
            self.complete_pending()?;
            if self.initial_state.is_none() {
                self.initial_state = Some(rec.event.state);
            }
            self.pending_first_event = self.next_event_id;
            self.pending.push(rec);
            self.next_event_id += 1;
            self.next_task_id += 1;
            self.last_entry = entry;
            self.started = true;
            self.close_ready(&mut out)?;
        } else {
            if self.pending.is_empty() || idx + 1 != self.next_task_id {
                return Err(TraceError::OutOfOrder {
                    what: "each task's records must be contiguous and start \
                           with its q0 record",
                });
            }
            if rec.event.queue.index() >= self.num_queues {
                return Err(TraceError::OutOfOrder {
                    what: "record names a queue beyond the declared queue count",
                });
            }
            self.pending.push(rec);
            self.next_event_id += 1;
        }
        Ok(out)
    }

    /// Flushes the stream's end: completes the in-progress task and emits
    /// every remaining window up to the horizon (the maximum observed
    /// entry), exactly matching [`slice_windows`] on the full record
    /// list. Errors if the stream carried no task at all. The slicer is
    /// left empty; further pushes start a fresh trace.
    pub fn finish(&mut self) -> Result<Vec<WindowedLog>, TraceError> {
        self.complete_pending()?;
        if !self.started {
            return Err(TraceError::BadSchedule {
                what: "cannot window a trace with no tasks",
            });
        }
        let horizon = self.max_observed_entry;
        let mut out = Vec::new();
        loop {
            let (start, _) = self.schedule.span(self.next_window);
            if self.next_window > 0 && start > horizon {
                break;
            }
            self.emit_window(&mut out)?;
        }
        self.completed.clear();
        self.started = false;
        self.next_task_id = 0;
        self.next_event_id = 0;
        self.next_window = 0;
        self.last_entry = 0.0;
        self.max_observed_entry = 0.0;
        Ok(out)
    }

    /// Converts the pending record group into a completed [`TaskSlice`].
    fn complete_pending(&mut self) -> Result<(), TraceError> {
        if self.pending.is_empty() {
            return Ok(());
        }
        let initial = self.pending[0];
        if !initial.event.is_initial() {
            return Err(TraceError::OutOfOrder {
                what: "each task must start with its q0 record",
            });
        }
        if self.pending.len() < 2 {
            return Err(TraceError::OutOfOrder {
                what: "a task needs at least one queue visit after its q0 record",
            });
        }
        let visits: Vec<_> = self.pending[1..]
            .iter()
            .map(|r| {
                (
                    r.event.state,
                    r.event.queue,
                    r.event.arrival,
                    r.event.departure,
                )
            })
            .collect();
        let flags: Vec<_> = self
            .pending
            .iter()
            .map(|r| (r.arrival_observed, r.departure_observed))
            .collect();
        let orig_events: Vec<_> = (0..self.pending.len())
            .map(|i| EventId::from_index(self.pending_first_event + i))
            .collect();
        let entry = initial.event.departure;
        let obs = observed_entry(entry, &visits, &flags);
        if obs > self.max_observed_entry {
            self.max_observed_entry = obs;
        }
        self.completed.push(TaskSlice {
            orig_task: initial.event.task,
            entry,
            observed_entry: obs,
            visits,
            flags,
            orig_events,
        });
        self.pending.clear();
        Ok(())
    }

    /// Emits every window whose end is at or before the entry watermark:
    /// the append-order contract guarantees no future record can join
    /// them.
    fn close_ready(&mut self, out: &mut Vec<WindowedLog>) -> Result<(), TraceError> {
        loop {
            let (_, end) = self.schedule.span(self.next_window);
            if end > self.last_entry {
                return Ok(());
            }
            self.emit_window(out)?;
        }
    }

    /// Builds and emits the next window from the buffered tasks, then
    /// retires tasks no future window can own.
    fn emit_window(&mut self, out: &mut Vec<WindowedLog>) -> Result<(), TraceError> {
        let (start, end) = self.schedule.span(self.next_window);
        let members: Vec<&TaskSlice> = self
            .completed
            .iter()
            .filter(|t| t.observed_entry >= start && t.observed_entry < end)
            .collect();
        let initial_state = self.initial_state.unwrap_or(StateId(0));
        out.push(build_window(
            self.next_window,
            start,
            end,
            &members,
            self.num_queues,
            initial_state,
        )?);
        self.next_window += 1;
        // Retire: a task whose observed entry precedes every future
        // window's start can never be a member again.
        let (next_start, _) = self.schedule.span(self.next_window);
        self.completed.retain(|t| t.observed_entry >= next_start);
        Ok(())
    }

    /// Captures the slicer's full resume state as a serializable
    /// [`SlicerState`]. Restoring it with [`LiveSlicer::restore`] under
    /// the same schedule and queue count yields a slicer whose future
    /// emissions are bit-identical to this one's.
    pub fn snapshot(&self) -> SlicerState {
        SlicerState {
            initial_state: self.initial_state.map(|s| s.index() as u32),
            completed: self
                .completed
                .iter()
                .map(TaskSliceState::from_slice)
                .collect(),
            pending: self.pending.iter().map(RecordState::from_record).collect(),
            pending_first_event: self.pending_first_event as u64,
            next_event_id: self.next_event_id as u64,
            next_task_id: self.next_task_id as u64,
            last_entry_bits: self.last_entry.to_bits(),
            max_observed_entry_bits: self.max_observed_entry.to_bits(),
            next_window: self.next_window as u64,
            started: self.started,
        }
    }

    /// Rebuilds the slicer a [`SlicerState`] snapshot was taken from.
    /// `schedule` and `num_queues` must match the original (the
    /// checkpoint layer's options fingerprint enforces this).
    pub fn restore(
        schedule: WindowSchedule,
        num_queues: usize,
        state: &SlicerState,
    ) -> Result<Self, TraceError> {
        let mut slicer = LiveSlicer::new(schedule, num_queues)?;
        slicer.initial_state = state.initial_state.map(|s| StateId::from_index(s as usize));
        slicer.completed = state
            .completed
            .iter()
            .map(TaskSliceState::to_slice)
            .collect();
        slicer.pending = state.pending.iter().map(RecordState::to_record).collect();
        slicer.pending_first_event = state.pending_first_event as usize;
        slicer.next_event_id = state.next_event_id as usize;
        slicer.next_task_id = state.next_task_id as usize;
        slicer.last_entry = f64::from_bits(state.last_entry_bits);
        slicer.max_observed_entry = f64::from_bits(state.max_observed_entry_bits);
        slicer.next_window = state.next_window as usize;
        slicer.started = state.started;
        Ok(slicer)
    }
}

/// Serializable form of one buffered task slice. Every time is
/// bit-encoded as `u64` (`f64::to_bits`) so NaN and signed zero
/// round-trip exactly through JSON — the checkpoint must not perturb a
/// single bit of the resume state.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaskSliceState {
    /// Original-trace task id.
    pub orig_task: u32,
    /// Recorded entry time, bit-encoded.
    pub entry_bits: u64,
    /// Membership (observed-entry) time, bit-encoded.
    pub observed_entry_bits: u64,
    /// `(state, queue, arrival_bits, departure_bits)` per visit.
    pub visits: Vec<(u32, u32, u64, u64)>,
    /// `(arrival_observed, departure_observed)` per event.
    pub flags: Vec<(bool, bool)>,
    /// Original-trace event ids.
    pub orig_events: Vec<u32>,
}

impl TaskSliceState {
    fn from_slice(t: &TaskSlice) -> Self {
        TaskSliceState {
            orig_task: t.orig_task.index() as u32,
            entry_bits: t.entry.to_bits(),
            observed_entry_bits: t.observed_entry.to_bits(),
            visits: t
                .visits
                .iter()
                .map(|&(s, q, a, d)| (s.index() as u32, q.index() as u32, a.to_bits(), d.to_bits()))
                .collect(),
            flags: t.flags.clone(),
            orig_events: t.orig_events.iter().map(|e| e.index() as u32).collect(),
        }
    }

    fn to_slice(&self) -> TaskSlice {
        TaskSlice {
            orig_task: TaskId::from_index(self.orig_task as usize),
            entry: f64::from_bits(self.entry_bits),
            observed_entry: f64::from_bits(self.observed_entry_bits),
            visits: self
                .visits
                .iter()
                .map(|&(s, q, a, d)| {
                    (
                        StateId::from_index(s as usize),
                        QueueId::from_index(q as usize),
                        f64::from_bits(a),
                        f64::from_bits(d),
                    )
                })
                .collect(),
            flags: self.flags.clone(),
            orig_events: self
                .orig_events
                .iter()
                .map(|&e| EventId::from_index(e as usize))
                .collect(),
        }
    }
}

/// Serializable form of one buffered [`TraceRecord`] (the in-progress
/// task's records), times bit-encoded.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecordState {
    /// Task id.
    pub task: u32,
    /// FSM state.
    pub state: u32,
    /// Queue id.
    pub queue: u32,
    /// Arrival time, bit-encoded.
    pub arrival_bits: u64,
    /// Departure time, bit-encoded.
    pub departure_bits: u64,
    /// Whether the arrival was measured.
    pub arrival_observed: bool,
    /// Whether the departure was measured.
    pub departure_observed: bool,
}

impl RecordState {
    fn from_record(r: &TraceRecord) -> Self {
        RecordState {
            task: r.event.task.index() as u32,
            state: r.event.state.index() as u32,
            queue: r.event.queue.index() as u32,
            arrival_bits: r.event.arrival.to_bits(),
            departure_bits: r.event.departure.to_bits(),
            arrival_observed: r.arrival_observed,
            departure_observed: r.departure_observed,
        }
    }

    fn to_record(&self) -> TraceRecord {
        TraceRecord {
            event: Event {
                task: TaskId::from_index(self.task as usize),
                state: StateId::from_index(self.state as usize),
                queue: QueueId::from_index(self.queue as usize),
                arrival: f64::from_bits(self.arrival_bits),
                departure: f64::from_bits(self.departure_bits),
            },
            arrival_observed: self.arrival_observed,
            departure_observed: self.departure_observed,
        }
    }
}

/// The full serializable resume state of a [`LiveSlicer`] (see
/// [`LiveSlicer::snapshot`]). Schedule and queue count are *not*
/// embedded — the checkpoint layer fingerprints them together with the
/// engine options and rejects mismatched resumes wholesale.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SlicerState {
    /// FSM state of the first record seen, if any.
    pub initial_state: Option<u32>,
    /// Completed-but-unretired task slices, in task-id order.
    pub completed: Vec<TaskSliceState>,
    /// Records of the in-progress task.
    pub pending: Vec<RecordState>,
    /// Original-trace event id of the pending task's first record.
    pub pending_first_event: u64,
    /// Next original-trace event id to assign.
    pub next_event_id: u64,
    /// Next original-trace task id to expect.
    pub next_task_id: u64,
    /// Recorded entry of the most recent task, bit-encoded.
    pub last_entry_bits: u64,
    /// Max observed entry over completed tasks, bit-encoded.
    pub max_observed_entry_bits: u64,
    /// Index of the next window to emit.
    pub next_window: u64,
    /// Whether any record has been seen.
    pub started: bool,
}

/// One task of a [`WindowState`]: the exact `EventLogBuilder` inputs
/// that reproduce the window's log, times bit-encoded.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WindowTaskState {
    /// Window-clock entry time, bit-encoded.
    pub entry_bits: u64,
    /// `(state, queue, arrival_bits, departure_bits)` per visit.
    pub visits: Vec<(u32, u32, u64, u64)>,
}

/// The full serializable form of a [`WindowedLog`] (see
/// [`WindowedLog::to_state`]) — used by the streaming engine's
/// checkpoint to persist its carried previous window.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WindowState {
    /// Window index in the schedule.
    pub index: u64,
    /// Window start (absolute clock), bit-encoded.
    pub start_bits: u64,
    /// Window end (absolute clock), bit-encoded.
    pub end_bits: u64,
    /// Queue count of the window's log.
    pub num_queues: u64,
    /// FSM state for synthesized q0 events.
    pub initial_state: u32,
    /// Every task in the window's log, carry tasks included, in log
    /// task order.
    pub tasks: Vec<WindowTaskState>,
    /// `(arrival_observed, departure_observed)` per event in log order.
    pub flags: Vec<(bool, bool)>,
    /// Original-trace event ids of the real events.
    pub orig_events: Vec<u32>,
    /// Original-trace task ids of the real tasks.
    pub orig_tasks: Vec<u32>,
    /// Occupancy carry tasks appended after the real tasks.
    pub carry_tasks: u64,
    /// Events belonging to carry tasks.
    pub carry_events: u64,
}

impl WindowedLog {
    /// Captures the window as a serializable [`WindowState`].
    /// [`WindowedLog::from_state`] rebuilds a bit-identical window: the
    /// state records exactly the builder inputs the window was
    /// originally constructed from.
    pub fn to_state(&self) -> WindowState {
        let log = self.masked.ground_truth();
        let mut tasks = Vec::with_capacity(log.num_tasks());
        for k in 0..log.num_tasks() {
            let k = TaskId::from_index(k);
            let events = log.task_events(k);
            let visits: Vec<_> = events[1..]
                .iter()
                .map(|&e| {
                    (
                        log.state_of(e).index() as u32,
                        log.queue_of(e).index() as u32,
                        log.arrival(e).to_bits(),
                        log.departure(e).to_bits(),
                    )
                })
                .collect();
            tasks.push(WindowTaskState {
                entry_bits: log.task_entry(k).to_bits(),
                visits,
            });
        }
        let flags: Vec<_> = log
            .event_ids()
            .map(|e| {
                (
                    self.masked.mask().arrival_observed(e),
                    self.masked.mask().departure_observed(e),
                )
            })
            .collect();
        WindowState {
            index: self.index as u64,
            start_bits: self.start.to_bits(),
            end_bits: self.end.to_bits(),
            num_queues: log.num_queues() as u64,
            initial_state: initial_state_of(log).index() as u32,
            tasks,
            flags,
            orig_events: self.orig_events.iter().map(|e| e.index() as u32).collect(),
            orig_tasks: self.orig_tasks.iter().map(|t| t.index() as u32).collect(),
            carry_tasks: self.carry_tasks as u64,
            carry_events: self.carry_events as u64,
        }
    }

    /// Rebuilds the window a [`WindowState`] was captured from, through
    /// the same `EventLogBuilder` path as the original construction.
    pub fn from_state(state: &WindowState) -> Result<WindowedLog, TraceError> {
        let mut builder = EventLogBuilder::new(
            state.num_queues as usize,
            StateId::from_index(state.initial_state as usize),
        );
        for t in &state.tasks {
            let visits: Vec<_> = t
                .visits
                .iter()
                .map(|&(s, q, a, d)| {
                    (
                        StateId::from_index(s as usize),
                        QueueId::from_index(q as usize),
                        f64::from_bits(a),
                        f64::from_bits(d),
                    )
                })
                .collect();
            builder
                .add_task(f64::from_bits(t.entry_bits), &visits)
                .map_err(|_| TraceError::ShapeMismatch {
                    expected: visits.len(),
                    actual: 0,
                })?;
        }
        let log = builder.build().map_err(|_| TraceError::ShapeMismatch {
            expected: state.flags.len(),
            actual: 0,
        })?;
        let mut mask = ObservedMask::unobserved(log.num_events());
        for (i, &(a, d)) in state.flags.iter().enumerate() {
            let e = EventId::from_index(i);
            if a {
                mask.observe_arrival(e);
            }
            if d {
                mask.observe_departure(e);
            }
        }
        Ok(WindowedLog {
            index: state.index as usize,
            start: f64::from_bits(state.start_bits),
            end: f64::from_bits(state.end_bits),
            masked: MaskedLog::new(log, mask)?,
            orig_events: state
                .orig_events
                .iter()
                .map(|&e| EventId::from_index(e as usize))
                .collect(),
            orig_tasks: state
                .orig_tasks
                .iter()
                .map(|&t| TaskId::from_index(t as usize))
                .collect(),
            carry_tasks: state.carry_tasks as usize,
            carry_events: state.carry_events as usize,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observe::ObservationScheme;
    use crate::record::to_records;
    use qni_model::topology::tandem;
    use qni_sim::{Simulator, Workload};
    use qni_stats::rng::rng_from_seed;

    fn masked(n: usize, seed: u64) -> MaskedLog {
        let bp = tandem(2.0, &[6.0, 8.0]).unwrap();
        let mut rng = rng_from_seed(seed);
        let truth = Simulator::new(&bp.network)
            .run(&Workload::poisson_n(2.0, n).unwrap(), &mut rng)
            .unwrap();
        ObservationScheme::task_sampling(0.5)
            .unwrap()
            .apply(truth, &mut rng)
            .unwrap()
    }

    #[test]
    fn schedule_validation() {
        assert!(WindowSchedule::new(0.0, 1.0).is_err());
        assert!(WindowSchedule::new(-1.0, 1.0).is_err());
        assert!(WindowSchedule::new(1.0, 0.0).is_err());
        assert!(WindowSchedule::new(f64::NAN, 1.0).is_err());
        assert!(WindowSchedule::new(1.0, f64::INFINITY).is_err());
        let s = WindowSchedule::new(4.0, 2.0).unwrap();
        assert_eq!(s.width(), 4.0);
        assert_eq!(s.stride(), 2.0);
    }

    #[test]
    fn spans_cover_horizon() {
        let s = WindowSchedule::new(4.0, 2.0).unwrap();
        let spans = s.spans(5.0);
        assert_eq!(spans, vec![(0.0, 4.0), (2.0, 6.0), (4.0, 8.0)]);
        // A start exactly on the horizon is still emitted (covers the
        // last entry); the next one is not.
        let spans = s.spans(4.0);
        assert_eq!(spans.len(), 3);
        assert_eq!(spans[2], (4.0, 8.0));
    }

    #[test]
    fn every_task_lands_in_some_window_when_overlapping() {
        let ml = masked(120, 1);
        let s = WindowSchedule::new(10.0, 5.0).unwrap();
        let windows = slice_windows(&ml, &s).unwrap();
        let total_owned: usize = windows
            .iter()
            .step_by(2) // Non-overlapping subset: starts 0, 10, 20, …
            .map(WindowedLog::num_tasks)
            .sum();
        assert_eq!(total_owned, ml.ground_truth().num_tasks());
    }

    #[test]
    fn windows_are_rebased_and_self_contained() {
        let ml = masked(100, 2);
        let s = WindowSchedule::new(12.0, 6.0).unwrap();
        for w in slice_windows(&ml, &s).unwrap() {
            let log = w.masked().ground_truth();
            assert_eq!(log.num_tasks(), w.num_tasks());
            qni_model::constraints::validate(log).unwrap();
            for k in 0..log.num_tasks() {
                let k = TaskId::from_index(k);
                let entry = log.task_entry(k);
                // Local clock: entries lie in [0, width).
                assert!(
                    (0.0..s.width()).contains(&entry),
                    "window {} entry {entry} outside [0, {})",
                    w.index,
                    s.width()
                );
                // The original task's entry is the rebased one (exact for
                // task-sampled masks, where every member's entry is at or
                // after the window start).
                let orig = w.original_task(k);
                let orig_entry = ml.ground_truth().task_entry(orig);
                assert!((orig_entry - (w.start + entry)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn mask_bits_and_times_carry_over() {
        let ml = masked(80, 3);
        let s = WindowSchedule::new(15.0, 15.0).unwrap();
        for w in slice_windows(&ml, &s).unwrap() {
            let log = w.masked().ground_truth();
            for (we, oe) in w.event_mapping() {
                assert_eq!(
                    w.masked().mask().arrival_observed(we),
                    ml.mask().arrival_observed(oe),
                    "arrival bit of {oe} changed"
                );
                assert_eq!(
                    w.masked().mask().departure_observed(we),
                    ml.mask().departure_observed(oe),
                );
                assert_eq!(log.queue_of(we), ml.ground_truth().queue_of(oe));
                if !log.is_initial_event(we) {
                    let shifted = ml.ground_truth().arrival(oe) - w.start;
                    assert!((log.arrival(we) - shifted).abs() < 1e-12);
                }
                let shifted = ml.ground_truth().departure(oe) - w.start;
                assert!((log.departure(we) - shifted).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn boundary_entry_goes_to_the_owning_window() {
        // Entries exactly at 0.0, 5.0 (a boundary), and 7.5.
        let mut b = EventLogBuilder::new(2, StateId(0));
        for &t in &[0.0, 5.0, 7.5] {
            b.add_task(t, &[(StateId(1), QueueId(1), t, t + 0.5)])
                .unwrap();
        }
        let log = b.build().unwrap();
        let n = log.num_events();
        let ml = MaskedLog::new(log, ObservedMask::fully_observed(n)).unwrap();
        let s = WindowSchedule::new(5.0, 5.0).unwrap();
        let windows = slice_windows(&ml, &s).unwrap();
        // [0,5): the t=0 task only. [5,10): the boundary task and 7.5.
        assert_eq!(windows[0].num_tasks(), 1);
        assert_eq!(windows[1].num_tasks(), 2);
        assert_eq!(windows[1].original_task(TaskId(0)), TaskId(1));
    }

    #[test]
    fn empty_windows_are_emitted_and_empty_traces_rejected() {
        let mut b = EventLogBuilder::new(2, StateId(0));
        b.add_task(0.5, &[(StateId(1), QueueId(1), 0.5, 1.0)])
            .unwrap();
        b.add_task(9.5, &[(StateId(1), QueueId(1), 9.5, 10.0)])
            .unwrap();
        let log = b.build().unwrap();
        let n = log.num_events();
        let ml = MaskedLog::new(log, ObservedMask::fully_observed(n)).unwrap();
        let s = WindowSchedule::new(3.0, 3.0).unwrap();
        let windows = slice_windows(&ml, &s).unwrap();
        // Starts 0, 3, 6, 9: the middle two own nothing but still exist.
        assert_eq!(windows.len(), 4);
        assert_eq!(windows[1].num_tasks(), 0);
        assert_eq!(windows[2].num_tasks(), 0);
        assert_eq!(windows[1].num_events(), 0);
        assert_eq!(windows[3].num_tasks(), 1);

        let empty = EventLogBuilder::new(2, StateId(0)).build().unwrap();
        let ml = MaskedLog::new(empty, ObservedMask::unobserved(0)).unwrap();
        assert!(slice_windows(&ml, &s).is_err());
    }

    #[test]
    fn straddling_tasks_keep_their_late_events() {
        // One task entering at 4.9 whose service runs to 12.0 — far past
        // the [0, 5) window end.
        let mut b = EventLogBuilder::new(2, StateId(0));
        b.add_task(4.9, &[(StateId(1), QueueId(1), 4.9, 12.0)])
            .unwrap();
        let log = b.build().unwrap();
        let n = log.num_events();
        let ml = MaskedLog::new(log, ObservedMask::fully_observed(n)).unwrap();
        let s = WindowSchedule::new(5.0, 5.0).unwrap();
        let windows = slice_windows(&ml, &s).unwrap();
        assert_eq!(windows[0].num_tasks(), 1);
        let wlog = windows[0].masked().ground_truth();
        let last = wlog.task_events(TaskId(0))[1];
        // Departure pinned past the boundary, on the window clock.
        assert!((wlog.departure(last) - 12.0).abs() < 1e-12);
    }

    /// A task whose entry is unobserved is assigned by its earliest
    /// *measured* time, and its unobserved prefix is clamped to the
    /// window origin rather than going negative.
    #[test]
    fn membership_uses_observed_entry_for_partially_observed_tasks() {
        // Task enters at 4.5 (unobserved) but its only measured time is
        // the second visit's arrival at 6.2 — window [5, 10) owns it.
        let mut b = EventLogBuilder::new(3, StateId(0));
        b.add_task(
            4.5,
            &[
                (StateId(1), QueueId(1), 4.5, 6.2),
                (StateId(2), QueueId(2), 6.2, 7.0),
            ],
        )
        .unwrap();
        let log = b.build().unwrap();
        let mut mask = ObservedMask::unobserved(log.num_events());
        let second = log.task_events(TaskId(0))[2];
        mask.observe_arrival(second);
        let ml = MaskedLog::new(log, mask).unwrap();
        let s = WindowSchedule::new(5.0, 5.0).unwrap();
        let windows = slice_windows(&ml, &s).unwrap();
        assert_eq!(windows[0].num_tasks(), 0, "entry window must not own it");
        assert_eq!(windows[1].num_tasks(), 1);
        let wlog = windows[1].masked().ground_truth();
        qni_model::constraints::validate(wlog).unwrap();
        // The unobserved prefix (entry 4.5, first arrival 4.5) clamps to
        // the window origin; the observed arrival lands at 6.2 - 5.
        let evs = wlog.task_events(TaskId(0));
        assert_eq!(wlog.task_entry(TaskId(0)), 0.0);
        assert!((wlog.arrival(evs[2]) - 1.2).abs() < 1e-12);
        // Fully unobserved tasks still fall back to the recorded entry.
        let mut b = EventLogBuilder::new(3, StateId(0));
        b.add_task(4.5, &[(StateId(1), QueueId(1), 4.5, 6.2)])
            .unwrap();
        let log = b.build().unwrap();
        let n = log.num_events();
        let ml = MaskedLog::new(log, ObservedMask::unobserved(n)).unwrap();
        let windows = slice_windows(&ml, &s).unwrap();
        assert_eq!(windows[0].num_tasks(), 1);
    }

    /// The satellite equivalence pin: feeding a full record stream
    /// through [`LiveSlicer`] (push + finish) yields bit-identical
    /// windows to [`slice_windows`] on the same records — times, masks,
    /// original-id mappings, and window count all agree. Exercised under
    /// both task- and event-level sampling.
    #[test]
    fn live_slicer_matches_replay_slicing_bit_for_bit() {
        for (seed, event_sampling) in [(1u64, false), (2, true), (3, false)] {
            let bp = tandem(2.0, &[6.0, 8.0]).unwrap();
            let mut rng = rng_from_seed(seed);
            let truth = Simulator::new(&bp.network)
                .run(&Workload::poisson_n(2.0, 80).unwrap(), &mut rng)
                .unwrap();
            let scheme = if event_sampling {
                ObservationScheme::event_sampling(0.4).unwrap()
            } else {
                ObservationScheme::task_sampling(0.5).unwrap()
            };
            let ml = scheme.apply(truth, &mut rng).unwrap();
            let records = to_records(ml.ground_truth(), ml.mask());
            let schedule = WindowSchedule::new(8.0, 4.0).unwrap();
            let replay = slice_windows(&ml, &schedule).unwrap();

            let mut live = LiveSlicer::new(schedule, ml.ground_truth().num_queues()).unwrap();
            let mut streamed = Vec::new();
            for rec in &records {
                streamed.extend(live.push(*rec).unwrap());
            }
            let mid_stream = streamed.len();
            streamed.extend(live.finish().unwrap());
            assert!(mid_stream > 0, "no window closed before the end");
            assert_eq!(streamed.len(), replay.len(), "window count differs");
            for (a, b) in replay.iter().zip(&streamed) {
                assert_eq!(a.index, b.index);
                assert_eq!(a.start.to_bits(), b.start.to_bits());
                assert_eq!(a.end.to_bits(), b.end.to_bits());
                assert_eq!(a.num_tasks(), b.num_tasks());
                assert_eq!(a.num_events(), b.num_events());
                let (la, lb) = (a.masked().ground_truth(), b.masked().ground_truth());
                assert_eq!(la.num_events(), lb.num_events());
                for e in la.event_ids() {
                    assert_eq!(la.event(e), lb.event(e), "window {} event {e}", a.index);
                    assert_eq!(
                        a.masked().mask().arrival_observed(e),
                        b.masked().mask().arrival_observed(e)
                    );
                    assert_eq!(
                        a.masked().mask().departure_observed(e),
                        b.masked().mask().departure_observed(e)
                    );
                }
                for (ea, eb) in a.event_mapping().zip(b.event_mapping()) {
                    assert_eq!(ea, eb);
                }
                for k in 0..a.num_tasks() {
                    let k = TaskId::from_index(k);
                    assert_eq!(a.original_task(k), b.original_task(k));
                }
            }
        }
    }

    #[test]
    fn live_slicer_bounded_memory_and_lag() {
        let ml = masked(200, 9);
        let records = to_records(ml.ground_truth(), ml.mask());
        let schedule = WindowSchedule::new(10.0, 5.0).unwrap();
        let mut live = LiveSlicer::new(schedule, ml.ground_truth().num_queues()).unwrap();
        let mut max_buffered = 0usize;
        let mut max_open = 0usize;
        let mut emitted = 0usize;
        for rec in &records {
            emitted += live.push(*rec).unwrap().len();
            max_buffered = max_buffered.max(live.buffered_tasks());
            max_open = max_open.max(live.open_spans());
            if let (Some(w), Some(closed)) = (live.watermark(), live.last_closed_end()) {
                // Lag never exceeds one stride past the last closed end
                // (windows close as soon as the watermark passes them).
                assert!(w - closed < schedule.width() + schedule.stride());
            }
        }
        emitted += live.finish().unwrap().len();
        assert!(emitted >= 10);
        // ~200 tasks over the horizon, but only one (width + stride)
        // span's worth is ever buffered.
        assert!(
            max_buffered < 60,
            "buffered {max_buffered} of {} tasks",
            ml.ground_truth().num_tasks()
        );
        // Open spans bounded by width/stride + 1 = 3.
        assert!(max_open <= 3, "open spans peaked at {max_open}");
    }

    #[test]
    fn live_slicer_rejects_out_of_order_streams() {
        let schedule = WindowSchedule::new(5.0, 5.0).unwrap();
        let rec = |task: usize, queue: usize, a: f64, d: f64| TraceRecord {
            event: qni_model::event::Event {
                task: TaskId::from_index(task),
                state: StateId(if queue == 0 { 0 } else { 1 }),
                queue: QueueId::from_index(queue),
                arrival: a,
                departure: d,
            },
            arrival_observed: true,
            departure_observed: true,
        };
        // A visit before any q0 record.
        let mut s = LiveSlicer::new(schedule, 2).unwrap();
        assert!(matches!(
            s.push(rec(0, 1, 1.0, 2.0)),
            Err(TraceError::OutOfOrder { .. })
        ));
        // Task indices must be consecutive.
        let mut s = LiveSlicer::new(schedule, 2).unwrap();
        s.push(rec(0, 0, 0.0, 1.0)).unwrap();
        s.push(rec(0, 1, 1.0, 2.0)).unwrap();
        assert!(matches!(
            s.push(rec(2, 0, 0.0, 3.0)),
            Err(TraceError::OutOfOrder { .. })
        ));
        // Entries must be nondecreasing.
        let mut s = LiveSlicer::new(schedule, 2).unwrap();
        s.push(rec(0, 0, 0.0, 5.0)).unwrap();
        s.push(rec(0, 1, 5.0, 6.0)).unwrap();
        assert!(matches!(
            s.push(rec(1, 0, 0.0, 3.0)),
            Err(TraceError::OutOfOrder { .. })
        ));
        // A task with no visits is rejected when the next task begins.
        let mut s = LiveSlicer::new(schedule, 2).unwrap();
        s.push(rec(0, 0, 0.0, 1.0)).unwrap();
        assert!(matches!(
            s.push(rec(1, 0, 0.0, 2.0)),
            Err(TraceError::OutOfOrder { .. })
        ));
        // Finishing an empty stream is an error (mirrors slice_windows).
        let mut s = LiveSlicer::new(schedule, 2).unwrap();
        assert!(s.finish().is_err());
    }

    /// Occupancy carry: residual busy time from non-shared tasks is
    /// measured on the absolute clock, injected as a pinned carry task,
    /// clamped by pinned departures, and skipped for queues with no
    /// in-window events.
    #[test]
    fn occupancy_carry_injects_clamped_pinned_ghosts() {
        let s = WindowSchedule::new(5.0, 5.0).unwrap();
        // Task 0 enters at 1.0, occupies q1 until 7.5 (straddles the
        // [5,10) boundary). Task 1 enters at 6.0 inside window 1.
        let mut b = EventLogBuilder::new(3, StateId(0));
        b.add_task(1.0, &[(StateId(1), QueueId(1), 1.0, 7.5)])
            .unwrap();
        b.add_task(6.0, &[(StateId(1), QueueId(1), 6.0, 9.0)])
            .unwrap();
        let log = b.build().unwrap();
        let n = log.num_events();
        let ml = MaskedLog::new(log, ObservedMask::fully_observed(n)).unwrap();
        let windows = slice_windows(&ml, &s).unwrap();
        assert_eq!(windows.len(), 2);
        let prev_final = windows[0].masked().ground_truth().clone();
        let carry = occupancy_carry(&windows[0], &prev_final, &windows[1]);
        // q1 busy until 7.5 absolute.
        assert!((carry.busy_until(QueueId(1)) - 7.5).abs() < 1e-12);
        assert_eq!(carry.busy_until(QueueId(2)), f64::NEG_INFINITY);
        let with = windows[1].with_occupancy(&carry).unwrap();
        assert_eq!(with.carry_tasks(), 1);
        assert_eq!(with.carry_events(), 2);
        assert_eq!(with.num_tasks(), 1, "real counts unchanged");
        let wlog = with.masked().ground_truth();
        assert_eq!(wlog.num_tasks(), 2);
        qni_model::constraints::validate(wlog).unwrap();
        // The ghost occupies q1 on the local clock for 7.5 - 5.0 = 2.5,
        // fully pinned.
        let ghost = TaskId::from_index(1);
        let gevs = wlog.task_events(ghost);
        assert_eq!(wlog.task_entry(ghost), 0.0);
        assert_eq!(wlog.queue_of(gevs[1]), QueueId(1));
        assert!((wlog.departure(gevs[1]) - 2.5).abs() < 1e-12);
        assert!(with.masked().mask().arrival_observed(gevs[1]));
        assert!(with.masked().mask().departure_observed(gevs[1]));
        assert!(with.masked().free_arrivals().len() <= windows[1].masked().free_arrivals().len());
        // Real events keep their local ids and original mappings.
        for (ea, eb) in windows[1].event_mapping().zip(with.event_mapping()) {
            assert_eq!(ea, eb);
        }
        // The real task's first event now queues behind the ghost.
        let real = wlog.task_events(TaskId(0))[1];
        assert!((wlog.begin_service(real) - 2.5).abs() < 1e-12);

        // Clamping: if the real task's departure were pinned at 1.5
        // (before the carried 2.5), the ghost must shrink to it.
        let mut b = EventLogBuilder::new(3, StateId(0));
        b.add_task(1.0, &[(StateId(1), QueueId(1), 1.0, 7.5)])
            .unwrap();
        b.add_task(6.0, &[(StateId(1), QueueId(1), 6.0, 6.5)])
            .unwrap();
        let log = b.build().unwrap();
        let n = log.num_events();
        let ml = MaskedLog::new(log, ObservedMask::fully_observed(n)).unwrap();
        let windows = slice_windows(&ml, &s).unwrap();
        let prev_final = windows[0].masked().ground_truth().clone();
        let carry = occupancy_carry(&windows[0], &prev_final, &windows[1]);
        let with = windows[1].with_occupancy(&carry).unwrap();
        let wlog = with.masked().ground_truth();
        qni_model::constraints::validate(wlog).unwrap();
        let gevs = wlog.task_events(TaskId::from_index(1));
        assert!((wlog.departure(gevs[1]) - 1.5).abs() < 1e-12);

        // No in-window events at the carried queue -> no ghost.
        let mut b = EventLogBuilder::new(3, StateId(0));
        b.add_task(1.0, &[(StateId(1), QueueId(1), 1.0, 7.5)])
            .unwrap();
        b.add_task(6.0, &[(StateId(2), QueueId(2), 6.0, 9.0)])
            .unwrap();
        let log = b.build().unwrap();
        let n = log.num_events();
        let ml = MaskedLog::new(log, ObservedMask::fully_observed(n)).unwrap();
        let windows = slice_windows(&ml, &s).unwrap();
        let prev_final = windows[0].masked().ground_truth().clone();
        let carry = occupancy_carry(&windows[0], &prev_final, &windows[1]);
        let with = windows[1].with_occupancy(&carry).unwrap();
        assert_eq!(with.carry_tasks(), 0);
    }

    /// Shared tasks do not feed the carry (their constraints are native
    /// to the next window), and a previous window's own carry tasks do.
    #[test]
    fn occupancy_carry_skips_shared_tasks_and_chains_ghosts() {
        let s = WindowSchedule::new(10.0, 5.0).unwrap();
        let mut b = EventLogBuilder::new(2, StateId(0));
        // Enters at 6.0 (shared by [0,10) and [5,15)), busy until 12.0.
        b.add_task(6.0, &[(StateId(1), QueueId(1), 6.0, 12.0)])
            .unwrap();
        b.add_task(11.0, &[(StateId(1), QueueId(1), 12.0, 13.0)])
            .unwrap();
        let log = b.build().unwrap();
        let n = log.num_events();
        let ml = MaskedLog::new(log, ObservedMask::fully_observed(n)).unwrap();
        let windows = slice_windows(&ml, &s).unwrap();
        let prev_final = windows[0].masked().ground_truth().clone();
        let carry = occupancy_carry(&windows[0], &prev_final, &windows[1]);
        // The only task is shared -> nothing carried.
        assert_eq!(carry.busy_until(QueueId(1)), f64::NEG_INFINITY);

        // A window's own ghosts count as carried work for the next one.
        let ghosted = windows[1].with_occupancy(&OccupancyCarry {
            busy_until: vec![f64::NEG_INFINITY, 7.0],
        });
        let ghosted = ghosted.unwrap();
        assert_eq!(ghosted.carry_tasks(), 1);
        let final_log = ghosted.masked().ground_truth().clone();
        let carry2 = occupancy_carry(&ghosted, &final_log, &windows[2]);
        // Ghost departs at local 2.0 => absolute 7.0; the shared task 0
        // is not in window 2 (entry 6.0 < 10.0): its departure 12.0
        // dominates.
        assert!((carry2.busy_until(QueueId(1)) - 12.0).abs() < 1e-12);
    }

    /// `WindowState` round-trips a window — including one with injected
    /// occupancy-carry ghosts — through JSON without perturbing a bit:
    /// the rebuilt window's state equals the original's, and the
    /// rebuilt log matches event by event.
    #[test]
    fn window_state_round_trips_bit_for_bit() {
        let ml = masked(80, 5);
        let s = WindowSchedule::new(10.0, 5.0).unwrap();
        let windows = slice_windows(&ml, &s).unwrap();
        assert!(windows.len() >= 3);
        let prev_final = windows[0].masked().ground_truth().clone();
        let carry = occupancy_carry(&windows[0], &prev_final, &windows[1]);
        let ghosted = windows[1].with_occupancy(&carry).unwrap();
        for w in windows.iter().chain(std::iter::once(&ghosted)) {
            let state = w.to_state();
            let json = serde_json::to_string(&state).unwrap();
            let back: WindowState = serde_json::from_str(&json).unwrap();
            assert_eq!(state, back, "JSON round-trip window {}", w.index);
            let rebuilt = WindowedLog::from_state(&back).unwrap();
            assert_eq!(rebuilt.to_state(), state, "rebuild window {}", w.index);
            let (la, lb) = (w.masked().ground_truth(), rebuilt.masked().ground_truth());
            assert_eq!(la.num_events(), lb.num_events());
            for e in la.event_ids() {
                assert_eq!(la.event(e), lb.event(e), "window {} event {e}", w.index);
                assert_eq!(
                    w.masked().mask().arrival_observed(e),
                    rebuilt.masked().mask().arrival_observed(e)
                );
                assert_eq!(
                    w.masked().mask().departure_observed(e),
                    rebuilt.masked().mask().departure_observed(e)
                );
            }
            assert_eq!(rebuilt.carry_tasks(), w.carry_tasks());
            assert_eq!(rebuilt.carry_events(), w.carry_events());
            for (ea, eb) in w.event_mapping().zip(rebuilt.event_mapping()) {
                assert_eq!(ea, eb);
            }
        }
    }

    /// Snapshotting a `LiveSlicer` mid-stream, JSON round-tripping the
    /// state, and restoring yields a slicer whose remaining emissions
    /// are bit-identical to the uninterrupted one's — at every possible
    /// cut point of the record stream.
    #[test]
    fn slicer_snapshot_restore_resumes_bit_identically() {
        let ml = masked(60, 6);
        let records = to_records(ml.ground_truth(), ml.mask());
        let schedule = WindowSchedule::new(8.0, 4.0).unwrap();
        let nq = ml.ground_truth().num_queues();

        // Reference: uninterrupted run.
        let mut reference = LiveSlicer::new(schedule, nq).unwrap();
        let mut ref_windows = Vec::new();
        for rec in &records {
            ref_windows.extend(reference.push(*rec).unwrap());
        }
        ref_windows.extend(reference.finish().unwrap());
        let ref_states: Vec<WindowState> = ref_windows.iter().map(WindowedLog::to_state).collect();

        for cut in 0..=records.len() {
            let mut first = LiveSlicer::new(schedule, nq).unwrap();
            let mut out = Vec::new();
            for rec in &records[..cut] {
                out.extend(first.push(*rec).unwrap());
            }
            let json = serde_json::to_string(&first.snapshot()).unwrap();
            let state: SlicerState = serde_json::from_str(&json).unwrap();
            assert_eq!(state, first.snapshot(), "cut {cut}: JSON round-trip");
            let mut resumed = LiveSlicer::restore(schedule, nq, &state).unwrap();
            for rec in &records[cut..] {
                out.extend(resumed.push(*rec).unwrap());
            }
            out.extend(resumed.finish().unwrap());
            assert_eq!(out.len(), ref_states.len(), "cut {cut}: window count");
            for (w, want) in out.iter().zip(&ref_states) {
                assert_eq!(&w.to_state(), want, "cut {cut}: window {}", w.index);
            }
        }
    }
}
