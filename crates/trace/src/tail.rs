//! Incremental append/tail-follow reading of JSONL traces — the
//! ingestion side of live monitoring.
//!
//! A [`TailReader`] polls a growing JSONL file: each [`TailReader::poll`]
//! consumes whatever bytes were appended since the last poll, reassembles
//! them into complete lines, and parses each line into a
//! [`TraceRecord`]. A partial trailing line (the writer is mid-append)
//! is buffered and completed by a later poll, so records are never torn.
//! The reader resumes from an explicit byte offset
//! ([`TailReader::resume`]) and detects truncation/rotation — the file
//! shrinking below the resume offset — as a hard
//! [`TraceError::Truncated`] by default.
//!
//! [`TailOptions`] opts into production-hardening behavior, all off by
//! default:
//!
//! - [`RotationPolicy::Follow`] treats a shrunk file as a
//!   copytruncate-style rotation: the held partial line is kept (its
//!   continuation is the new file's first bytes) and reading restarts
//!   from offset 0, so the concatenation of consumed bytes stays the
//!   logical full stream.
//! - [`RetryPolicy`] retries transient I/O errors with bounded,
//!   deterministic exponential backoff. The library never sleeps or
//!   reads a clock itself (QNI-D001): pacing goes through an injected
//!   [`SleepFn`], `None` meaning immediate retries.
//! - [`TailOptions::max_bad_lines`] is a quarantine budget: up to that
//!   many unparseable lines are skipped and counted
//!   ([`TailStats::bad_lines`]) instead of aborting the stream; the
//!   budget's first over-run is a hard [`TraceError::BadLine`] naming
//!   the exact line and byte offset.
//!
//! [`TailReader::snapshot`] captures the full resume state (offset,
//! held partial line, line counter, fault counters) as a serializable
//! [`TailSnapshot`]; [`TailReader::restore`] reconstructs a reader that
//! continues byte-exactly where the snapshot was taken — the ingestion
//! half of `qni watch`'s crash-safe checkpoints.
//!
//! The line-level reassembly lives in [`LineAssembler`], which is pure
//! (bytes in, records out) so chunked reads are property-testable
//! against a one-shot parse without touching the filesystem. File
//! access goes through the [`TailSource`] trait so fault-injection
//! harnesses ([`crate::fault`]) can wrap the real filesystem with
//! deterministic transient failures.

use crate::error::TraceError;
use crate::record::TraceRecord;
use serde::{Deserialize, Serialize};
use std::fs::File;
use std::io::{Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};

/// Reassembles arbitrarily chunked bytes into parsed JSONL records.
///
/// Feed it byte chunks in file order; it splits on `\n`, parses each
/// complete non-blank line, and buffers a trailing partial line until a
/// later chunk completes it. Splitting any byte stream into chunks —
/// at any boundaries, including mid-UTF-8 — yields the same records as
/// parsing the whole stream at once.
#[derive(Debug, Default)]
pub struct LineAssembler {
    pending: Vec<u8>,
}

/// The parse outcome of one completed line (see [`LineAssembler::drain`]).
#[derive(Debug)]
pub enum LineOutcome {
    /// The line parsed into a record.
    Record(TraceRecord),
    /// The line was blank (skipped, matching [`crate::record::read_jsonl`]).
    Blank,
    /// The line failed UTF-8 validation or JSON parsing.
    Bad(String),
}

/// One line completed by [`LineAssembler::drain`], with the byte length
/// it consumed so callers can track per-line offsets.
#[derive(Debug)]
pub struct DrainedLine {
    /// The parse outcome.
    pub outcome: LineOutcome,
    /// Bytes the line consumed: any carried partial-line prefix plus
    /// the terminating newline.
    pub len: usize,
}

impl LineAssembler {
    /// Creates an assembler with an empty buffer.
    pub fn new() -> Self {
        LineAssembler::default()
    }

    /// Creates an assembler holding `pending` as its incomplete trailing
    /// line (the restore side of a tail snapshot).
    pub fn with_pending(pending: Vec<u8>) -> Self {
        LineAssembler { pending }
    }

    /// Number of buffered bytes belonging to an incomplete trailing
    /// line.
    pub fn pending_bytes(&self) -> usize {
        self.pending.len()
    }

    /// The buffered incomplete trailing line itself.
    pub fn pending(&self) -> &[u8] {
        &self.pending
    }

    /// Consumes one chunk, reporting every line it completed — good,
    /// blank, or bad — without failing on the bad ones. The caller
    /// decides quarantine policy; [`LineAssembler::push`] is the
    /// fail-fast wrapper.
    pub fn drain(&mut self, chunk: &[u8]) -> Vec<DrainedLine> {
        let mut out = Vec::new();
        let mut rest = chunk;
        while let Some(nl) = rest.iter().position(|&b| b == b'\n') {
            self.pending.extend_from_slice(&rest[..nl]);
            rest = &rest[nl + 1..];
            let line = std::mem::take(&mut self.pending);
            let len = line.len() + 1;
            let outcome = match std::str::from_utf8(&line) {
                Err(_) => LineOutcome::Bad("trace line is not valid UTF-8".to_string()),
                Ok(text) if text.trim().is_empty() => LineOutcome::Blank,
                Ok(text) => match serde_json::from_str(text) {
                    Ok(rec) => LineOutcome::Record(rec),
                    Err(e) => LineOutcome::Bad(e.to_string()),
                },
            };
            out.push(DrainedLine { outcome, len });
        }
        self.pending.extend_from_slice(rest);
        out
    }

    /// Consumes one chunk, returning every record whose line was
    /// completed by it. Blank lines are skipped (matching
    /// [`crate::record::read_jsonl`]); the first bad line fails the
    /// whole push.
    pub fn push(&mut self, chunk: &[u8]) -> Result<Vec<TraceRecord>, TraceError> {
        let mut out = Vec::new();
        let mut offset = 0u64;
        for (i, done) in self.drain(chunk).into_iter().enumerate() {
            match done.outcome {
                LineOutcome::Record(rec) => out.push(rec),
                LineOutcome::Blank => {}
                LineOutcome::Bad(message) => {
                    return Err(TraceError::BadLine {
                        path: "<stream>".to_string(),
                        line: i as u64 + 1,
                        offset,
                        message,
                    });
                }
            }
            offset += done.len as u64;
        }
        Ok(out)
    }
}

/// How [`TailReader::poll`] reacts to the file shrinking below the
/// consumed offset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RotationPolicy {
    /// Shrinking is a hard [`TraceError::Truncated`] (the default): the
    /// bytes already consumed no longer exist, so the only safe recovery
    /// is an operator-driven restart.
    #[default]
    Strict,
    /// Shrinking is a copytruncate-style rotation: keep the held partial
    /// line (the writer continues the logical stream in the new file)
    /// and restart reading from offset 0. Requires a writer that
    /// truncates in place and keeps appending — `logrotate`'s
    /// `copytruncate` mode, or the harness in [`crate::fault`].
    Follow,
}

/// An injected millisecond sleeper for retry backoff. The library never
/// sleeps itself (determinism contract): binaries pass a
/// `std::thread::sleep` wrapper, tests pass nothing (immediate retry)
/// or a recorder.
pub type SleepFn = fn(u64);

/// Bounded deterministic retry for transient I/O errors: attempt `n`
/// (1-based) sleeps `base_ms * 2^(n-1)` capped at `max_ms` before
/// retrying, up to `max_attempts` total attempts. The delay sequence is
/// a pure function of the policy — no clock, no jitter — so retries
/// never perturb the byte-identity contract.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Total attempts per operation (1 = no retry, the default).
    pub max_attempts: u32,
    /// Backoff base in milliseconds.
    pub base_ms: u64,
    /// Backoff cap in milliseconds.
    pub max_ms: u64,
    /// Injected sleeper; `None` retries immediately.
    pub sleep: Option<SleepFn>,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 1,
            base_ms: 10,
            max_ms: 1000,
            sleep: None,
        }
    }
}

/// Hardening options for [`TailReader`]; the default reproduces the
/// original fail-fast behavior exactly.
#[derive(Debug, Clone, Copy, Default)]
pub struct TailOptions {
    /// Reaction to the file shrinking (rotation vs. hard error).
    pub rotation: RotationPolicy,
    /// Transient I/O retry policy.
    pub retry: RetryPolicy,
    /// Quarantine budget: how many unparseable lines may be skipped
    /// (and counted) before the next one becomes a hard
    /// [`TraceError::BadLine`]. `0` (the default) fails on the first.
    pub max_bad_lines: u64,
}

/// Fault counters accumulated by a [`TailReader`] over its lifetime
/// (and across [`TailReader::restore`], which carries them forward).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TailStats {
    /// Unparseable lines skipped under the quarantine budget.
    pub bad_lines: u64,
    /// Rotations followed under [`RotationPolicy::Follow`].
    pub rotations: u64,
    /// Transient I/O errors absorbed by retries.
    pub retries: u64,
}

/// The full serializable resume state of a [`TailReader`] — everything
/// needed to continue the tail byte-exactly after a crash.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TailSnapshot {
    /// Byte offset the next poll resumes from.
    pub offset: u64,
    /// Held bytes of an incomplete trailing line.
    pub pending: Vec<u8>,
    /// Completed lines so far (resumed line numbering stays global).
    pub line_number: u64,
    /// Quarantined bad lines so far (the budget is charged against the
    /// lifetime count, not per process).
    pub bad_lines: u64,
    /// Rotations followed so far.
    pub rotations: u64,
    /// Transient I/O errors retried so far.
    pub retries: u64,
}

/// Byte source a [`TailReader`] polls. The filesystem implementation is
/// [`FsSource`]; fault-injection harnesses wrap one (see
/// [`crate::fault::FaultSource`]).
pub trait TailSource: std::fmt::Debug + Send {
    /// Current byte length, or `None` if the source does not exist yet.
    fn size(&mut self) -> std::io::Result<Option<u64>>;
    /// Reads from `offset` to the current end into `buf` (appending).
    fn read_from(&mut self, offset: u64, buf: &mut Vec<u8>) -> std::io::Result<usize>;
    /// Human-readable source name for error context.
    fn label(&self) -> String;
}

/// The real-filesystem [`TailSource`]: a path polled with
/// metadata + seek + read.
#[derive(Debug)]
pub struct FsSource {
    path: PathBuf,
}

impl FsSource {
    /// Wraps a path (which does not need to exist yet).
    pub fn new<P: AsRef<Path>>(path: P) -> Self {
        FsSource {
            path: path.as_ref().to_path_buf(),
        }
    }
}

impl TailSource for FsSource {
    fn size(&mut self) -> std::io::Result<Option<u64>> {
        match std::fs::metadata(&self.path) {
            Ok(m) => Ok(Some(m.len())),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e),
        }
    }

    fn read_from(&mut self, offset: u64, buf: &mut Vec<u8>) -> std::io::Result<usize> {
        let mut file = File::open(&self.path)?;
        file.seek(SeekFrom::Start(offset))?;
        file.read_to_end(buf)
    }

    fn label(&self) -> String {
        self.path.display().to_string()
    }
}

/// Runs one source operation under the retry policy: transient errors
/// are absorbed (counted, backed off deterministically) until the
/// attempt budget runs out, when the last error surfaces as a
/// located [`TraceError::IoAt`].
fn with_retry<T>(
    source: &mut dyn TailSource,
    retry: &RetryPolicy,
    stats: &mut TailStats,
    offset: u64,
    mut op: impl FnMut(&mut dyn TailSource) -> std::io::Result<T>,
) -> Result<T, TraceError> {
    let attempts = retry.max_attempts.max(1);
    let mut delay = retry.base_ms;
    let mut attempt = 1u32;
    loop {
        match op(source) {
            Ok(v) => return Ok(v),
            Err(e) => {
                if attempt >= attempts {
                    return Err(TraceError::IoAt {
                        path: source.label(),
                        offset,
                        source: e,
                    });
                }
                attempt += 1;
                stats.retries += 1;
                if let Some(sleep) = retry.sleep {
                    sleep(delay.min(retry.max_ms));
                }
                delay = delay.saturating_mul(2);
            }
        }
    }
}

/// Polls a JSONL trace file for appended records (see the
/// [module docs](self)).
#[derive(Debug)]
pub struct TailReader {
    source: Box<dyn TailSource>,
    opts: TailOptions,
    offset: u64,
    assembler: LineAssembler,
    line_number: u64,
    stats: TailStats,
}

impl TailReader {
    /// Tails `path` from the beginning. The file does not need to exist
    /// yet: polls before it appears simply return no records.
    pub fn new<P: AsRef<Path>>(path: P) -> Self {
        TailReader::resume(path, 0)
    }

    /// Tails `path` from a byte offset previously returned by
    /// [`TailReader::offset`] — everything before it is treated as
    /// already consumed. The offset must sit on a line boundary (as
    /// [`TailReader::offset`] guarantees whenever no partial line is
    /// pending).
    pub fn resume<P: AsRef<Path>>(path: P, offset: u64) -> Self {
        let mut tail = TailReader::with_options(path, TailOptions::default());
        tail.offset = offset;
        tail
    }

    /// Tails `path` from the beginning under explicit hardening options.
    pub fn with_options<P: AsRef<Path>>(path: P, opts: TailOptions) -> Self {
        TailReader::from_source(Box::new(FsSource::new(path)), opts)
    }

    /// Tails an arbitrary [`TailSource`] (fault-injection harnesses
    /// wrap the filesystem source).
    pub fn from_source(source: Box<dyn TailSource>, opts: TailOptions) -> Self {
        TailReader {
            source,
            opts,
            offset: 0,
            assembler: LineAssembler::new(),
            line_number: 0,
            stats: TailStats::default(),
        }
    }

    /// Reconstructs the reader a [`TailSnapshot`] was taken from,
    /// continuing byte-exactly: offset, held partial line, line
    /// numbering, and fault counters all carry forward.
    pub fn restore<P: AsRef<Path>>(path: P, snapshot: &TailSnapshot, opts: TailOptions) -> Self {
        TailReader::restore_source(Box::new(FsSource::new(path)), snapshot, opts)
    }

    /// [`TailReader::restore`] over an arbitrary [`TailSource`].
    pub fn restore_source(
        source: Box<dyn TailSource>,
        snapshot: &TailSnapshot,
        opts: TailOptions,
    ) -> Self {
        TailReader {
            source,
            opts,
            offset: snapshot.offset,
            assembler: LineAssembler::with_pending(snapshot.pending.clone()),
            line_number: snapshot.line_number,
            stats: TailStats {
                bad_lines: snapshot.bad_lines,
                rotations: snapshot.rotations,
                retries: snapshot.retries,
            },
        }
    }

    /// Captures the full resume state (see [`TailSnapshot`]).
    pub fn snapshot(&self) -> TailSnapshot {
        TailSnapshot {
            offset: self.offset,
            pending: self.assembler.pending().to_vec(),
            line_number: self.line_number,
            bad_lines: self.stats.bad_lines,
            rotations: self.stats.rotations,
            retries: self.stats.retries,
        }
    }

    /// The byte offset the next poll resumes from (counts every consumed
    /// byte, including any buffered partial line).
    pub fn offset(&self) -> u64 {
        self.offset
    }

    /// Bytes buffered from an incomplete trailing line.
    pub fn pending_bytes(&self) -> usize {
        self.assembler.pending_bytes()
    }

    /// Lifetime fault counters (quarantined lines, rotations, retries).
    pub fn stats(&self) -> TailStats {
        self.stats
    }

    /// Reads and parses everything appended since the last poll.
    ///
    /// - The file not existing yet is not an error: returns no records.
    /// - The file shrinking below the consumed offset is
    ///   [`TraceError::Truncated`] under [`RotationPolicy::Strict`], a
    ///   followed rotation under [`RotationPolicy::Follow`].
    /// - Transient I/O errors retry per the [`RetryPolicy`]; exhaustion
    ///   surfaces as [`TraceError::IoAt`].
    /// - Unparseable lines are quarantined up to
    ///   [`TailOptions::max_bad_lines`], then fail as
    ///   [`TraceError::BadLine`].
    pub fn poll(&mut self) -> Result<Vec<TraceRecord>, TraceError> {
        let len = with_retry(
            self.source.as_mut(),
            &self.opts.retry,
            &mut self.stats,
            self.offset,
            |s| s.size(),
        )?;
        let Some(len) = len else {
            return Ok(Vec::new());
        };
        if len < self.offset {
            match self.opts.rotation {
                RotationPolicy::Strict => {
                    return Err(TraceError::Truncated {
                        offset: self.offset,
                        len,
                    });
                }
                RotationPolicy::Follow => {
                    // Copytruncate rotation: the writer reset the file and
                    // continues the logical stream there. Keep the held
                    // partial line — its continuation is the new file's
                    // first bytes — and restart reading at 0, so the
                    // concatenation of consumed bytes stays the full
                    // logical trace.
                    self.stats.rotations += 1;
                    self.offset = 0;
                }
            }
        }
        if len == self.offset {
            return Ok(Vec::new());
        }
        let mut chunk: Vec<u8> = Vec::with_capacity((len - self.offset) as usize);
        let offset = self.offset;
        {
            let buf = &mut chunk;
            with_retry(
                self.source.as_mut(),
                &self.opts.retry,
                &mut self.stats,
                offset,
                |s| {
                    buf.clear();
                    s.read_from(offset, buf).map(|_| ())
                },
            )?;
        }
        let base = self.offset;
        let carried = self.assembler.pending_bytes() as u64;
        self.offset += chunk.len() as u64;
        // Best-effort line-start offsets: a line straddling a followed
        // rotation began in the previous file, so its start saturates
        // to the new file's origin.
        let mut line_start = base.saturating_sub(carried);
        let mut out = Vec::new();
        for done in self.assembler.drain(&chunk) {
            self.line_number += 1;
            match done.outcome {
                LineOutcome::Record(rec) => out.push(rec),
                LineOutcome::Blank => {}
                LineOutcome::Bad(message) => {
                    if self.stats.bad_lines >= self.opts.max_bad_lines {
                        return Err(TraceError::BadLine {
                            path: self.source.label(),
                            line: self.line_number,
                            offset: line_start,
                            message,
                        });
                    }
                    self.stats.bad_lines += 1;
                }
            }
            line_start += done.len as u64;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observe::ObservationScheme;
    use crate::record::{read_jsonl, to_records, write_jsonl};
    use qni_model::topology::tandem;
    use qni_sim::{Simulator, Workload};
    use qni_stats::rng::rng_from_seed;
    use std::io::Write;

    fn sample_masked(n: usize, seed: u64) -> crate::mask::MaskedLog {
        let bp = tandem(2.0, &[6.0, 8.0]).unwrap();
        let mut rng = rng_from_seed(seed);
        let truth = Simulator::new(&bp.network)
            .run(&Workload::poisson_n(2.0, n).unwrap(), &mut rng)
            .unwrap();
        ObservationScheme::task_sampling(0.5)
            .unwrap()
            .apply(truth, &mut rng)
            .unwrap()
    }

    fn sample_records(n: usize, seed: u64) -> Vec<TraceRecord> {
        let ml = sample_masked(n, seed);
        to_records(ml.ground_truth(), ml.mask())
    }

    fn jsonl_bytes(n: usize, seed: u64) -> Vec<u8> {
        let mut buf = Vec::new();
        write_jsonl(&sample_masked(n, seed), &mut buf).unwrap();
        buf
    }

    fn tmp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("qni-tail-{}-{name}.jsonl", std::process::id()));
        p
    }

    #[test]
    fn empty_or_missing_file_at_startup_yields_no_records() {
        let path = tmp_path("missing");
        let _ = std::fs::remove_file(&path);
        let mut tail = TailReader::new(&path);
        assert!(tail.poll().unwrap().is_empty());
        assert_eq!(tail.offset(), 0);
        // Now it exists but is empty.
        std::fs::write(&path, b"").unwrap();
        assert!(tail.poll().unwrap().is_empty());
        assert_eq!(tail.offset(), 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn appends_between_polls_are_picked_up() {
        let records = sample_records(12, 1);
        let bytes = jsonl_bytes(12, 1);
        let path = tmp_path("appends");
        let _ = std::fs::remove_file(&path);
        let mut tail = TailReader::new(&path);
        let mut seen = Vec::new();
        // Append in three slices of whole lines, polling in between.
        let cut1 = bytes.len() / 3;
        let cut1 = bytes[..cut1].iter().rposition(|&b| b == b'\n').unwrap() + 1;
        let cut2 = 2 * bytes.len() / 3;
        let cut2 = bytes[..cut2].iter().rposition(|&b| b == b'\n').unwrap() + 1;
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .unwrap();
        for range in [0..cut1, cut1..cut2, cut2..bytes.len()] {
            f.write_all(&bytes[range]).unwrap();
            f.flush().unwrap();
            seen.extend(tail.poll().unwrap());
        }
        assert_eq!(seen.len(), records.len());
        assert_eq!(seen, records);
        assert_eq!(tail.offset(), bytes.len() as u64);
        assert_eq!(tail.pending_bytes(), 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn partial_trailing_line_is_held_until_completed() {
        let records = sample_records(6, 2);
        let bytes = jsonl_bytes(6, 2);
        let path = tmp_path("partial");
        // Cut mid-line: stop 7 bytes after the second newline.
        let second_nl = bytes
            .iter()
            .enumerate()
            .filter(|&(_, &b)| b == b'\n')
            .map(|(i, _)| i)
            .nth(1)
            .unwrap();
        let cut = second_nl + 8;
        std::fs::write(&path, &bytes[..cut]).unwrap();
        let mut tail = TailReader::new(&path);
        let first = tail.poll().unwrap();
        assert_eq!(first.len(), 2, "only complete lines parse");
        assert!(tail.pending_bytes() > 0);
        // Re-polling without growth returns nothing and stays put.
        assert!(tail.poll().unwrap().is_empty());
        // Complete the file; the held fragment joins the rest.
        std::fs::write(&path, &bytes).unwrap();
        let rest = tail.poll().unwrap();
        assert_eq!(first.len() + rest.len(), records.len());
        let all: Vec<_> = first.into_iter().chain(rest).collect();
        assert_eq!(all, records);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncation_is_a_hard_error() {
        let records = sample_records(8, 3);
        let bytes = jsonl_bytes(8, 3);
        let path = tmp_path("truncated");
        std::fs::write(&path, &bytes).unwrap();
        let mut tail = TailReader::new(&path);
        assert_eq!(tail.poll().unwrap().len(), records.len());
        // The writer rotates the file: shorter content appears.
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        match tail.poll() {
            Err(TraceError::Truncated { offset, len }) => {
                assert_eq!(offset, bytes.len() as u64);
                assert_eq!(len, (bytes.len() / 2) as u64);
            }
            other => panic!("expected Truncated, got {other:?}"),
        }
        // Recovery: restart from offset 0.
        let mut tail = TailReader::new(&path);
        assert!(!tail.poll().unwrap().is_empty());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn resume_from_offset_skips_consumed_records() {
        let bytes = jsonl_bytes(10, 4);
        let path = tmp_path("resume");
        std::fs::write(&path, &bytes).unwrap();
        let mut tail = TailReader::new(&path);
        let all = tail.poll().unwrap();
        let checkpoint = tail.offset();
        // A new reader resumed at the final offset sees nothing new...
        let mut resumed = TailReader::resume(&path, checkpoint);
        assert!(resumed.poll().unwrap().is_empty());
        // ...until more is appended.
        let more = jsonl_bytes(10, 4);
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap();
        f.write_all(&more).unwrap();
        f.flush().unwrap();
        let extra = resumed.poll().unwrap();
        assert_eq!(extra.len(), all.len());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn blank_lines_and_invalid_json_behave_like_read_jsonl() {
        let records = sample_records(4, 5);
        let mut bytes = jsonl_bytes(4, 5);
        bytes.extend_from_slice(b"\n  \n");
        let mut asm = LineAssembler::new();
        let parsed = asm.push(&bytes).unwrap();
        assert_eq!(parsed.len(), records.len());
        // Cross-check against the one-shot reader.
        let oneshot = read_jsonl(&bytes[..]).unwrap();
        assert_eq!(parsed, oneshot);
        // Garbage fails cleanly.
        let mut asm = LineAssembler::new();
        assert!(asm.push(b"{not json}\n").is_err());
        let mut asm = LineAssembler::new();
        assert!(asm.push(&[0xff, 0xfe, b'\n']).is_err());
    }

    /// Rotation mid-partial-line under `Follow`: the writer truncates
    /// while the reader holds an incomplete line whose continuation
    /// lands at the new file's offset 0 — the concatenated stream must
    /// reproduce the one-shot parse exactly.
    #[test]
    fn followed_rotation_mid_partial_line_reassembles_the_stream() {
        let records = sample_records(10, 6);
        let bytes = jsonl_bytes(10, 6);
        let path = tmp_path("rotate-follow");
        // Cut mid-line past the halfway point so the post-rotation file
        // (the remaining bytes) is shorter than the consumed offset.
        let mut cut = 2 * bytes.len() / 3;
        while bytes[cut - 1] == b'\n' {
            cut += 1;
        }
        assert!(bytes.len() - cut < cut, "rotation must shrink the file");
        std::fs::write(&path, &bytes[..cut]).unwrap();
        let opts = TailOptions {
            rotation: RotationPolicy::Follow,
            ..TailOptions::default()
        };
        let mut tail = TailReader::with_options(&path, opts);
        let mut seen = tail.poll().unwrap();
        assert!(tail.pending_bytes() > 0, "cut must land mid-line");
        assert_eq!(tail.offset(), cut as u64);
        // Copytruncate: the file restarts with the rest of the stream.
        std::fs::write(&path, &bytes[cut..]).unwrap();
        seen.extend(tail.poll().unwrap());
        assert_eq!(tail.stats().rotations, 1);
        assert_eq!(seen, records);
        assert_eq!(tail.offset(), (bytes.len() - cut) as u64);
        assert_eq!(tail.pending_bytes(), 0);
        std::fs::remove_file(&path).unwrap();
    }

    /// The quarantine budget skips and counts bad lines, then hard-fails
    /// with exact line/offset context once exhausted.
    #[test]
    fn quarantine_budget_skips_counts_then_fails_with_context() {
        let records = sample_records(5, 7);
        let good = jsonl_bytes(5, 7);
        let good_lines = good.iter().filter(|&&b| b == b'\n').count() as u64;
        let mut bytes = good.clone();
        bytes.extend_from_slice(b"{broken\n");
        bytes.extend_from_slice(&[0xff, 0xfe, b'\n']);
        let path = tmp_path("quarantine");
        std::fs::write(&path, &bytes).unwrap();
        let opts = TailOptions {
            max_bad_lines: 2,
            ..TailOptions::default()
        };
        let mut tail = TailReader::with_options(&path, opts);
        let seen = tail.poll().unwrap();
        assert_eq!(seen, records, "good records survive the bad lines");
        assert_eq!(tail.stats().bad_lines, 2);
        // A third bad line overruns the budget: located hard error.
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap();
        f.write_all(b"also broken\n").unwrap();
        f.flush().unwrap();
        match tail.poll() {
            Err(TraceError::BadLine {
                path: p,
                line,
                offset,
                ..
            }) => {
                assert!(p.contains("quarantine"));
                assert_eq!(line, good_lines + 3);
                assert_eq!(offset, bytes.len() as u64);
            }
            other => panic!("expected BadLine, got {other:?}"),
        }
        std::fs::remove_file(&path).unwrap();
    }

    /// A snapshot taken mid-stream (partial line held) restores a reader
    /// that continues byte-exactly, and the snapshot itself round-trips
    /// through JSON.
    #[test]
    fn snapshot_restores_mid_partial_line() {
        let records = sample_records(8, 8);
        let bytes = jsonl_bytes(8, 8);
        let path = tmp_path("snapshot");
        let cut = bytes.len() / 2 + 3; // mid-line with high probability
        std::fs::write(&path, &bytes[..cut]).unwrap();
        let mut tail = TailReader::new(&path);
        let mut seen = tail.poll().unwrap();
        let snap = tail.snapshot();
        assert_eq!(snap.offset, cut as u64);
        assert_eq!(snap.pending.len(), tail.pending_bytes());
        let json = serde_json::to_string(&snap).unwrap();
        let back: TailSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
        drop(tail);
        // A restored reader picks up exactly where the snapshot was.
        std::fs::write(&path, &bytes).unwrap();
        let mut tail = TailReader::restore(&path, &back, TailOptions::default());
        seen.extend(tail.poll().unwrap());
        assert_eq!(seen, records);
        assert_eq!(tail.pending_bytes(), 0);
        std::fs::remove_file(&path).unwrap();
    }

    /// Transient I/O errors are retried with deterministic backoff and
    /// surface as located `IoAt` once the attempt budget is exhausted.
    #[test]
    fn transient_errors_retry_then_surface_with_context() {
        #[derive(Debug)]
        struct Flaky {
            inner: FsSource,
            fail_next: u32,
        }
        impl TailSource for Flaky {
            fn size(&mut self) -> std::io::Result<Option<u64>> {
                if self.fail_next > 0 {
                    self.fail_next -= 1;
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::Interrupted,
                        "injected",
                    ));
                }
                self.inner.size()
            }
            fn read_from(&mut self, offset: u64, buf: &mut Vec<u8>) -> std::io::Result<usize> {
                self.inner.read_from(offset, buf)
            }
            fn label(&self) -> String {
                self.inner.label()
            }
        }
        let records = sample_records(4, 9);
        let bytes = jsonl_bytes(4, 9);
        let path = tmp_path("flaky");
        std::fs::write(&path, &bytes).unwrap();
        let retry = RetryPolicy {
            max_attempts: 3,
            ..RetryPolicy::default()
        };
        let opts = TailOptions {
            retry,
            ..TailOptions::default()
        };
        // Two failures fit inside a 3-attempt budget.
        let source = Flaky {
            inner: FsSource::new(&path),
            fail_next: 2,
        };
        let mut tail = TailReader::from_source(Box::new(source), opts);
        assert_eq!(tail.poll().unwrap(), records);
        assert_eq!(tail.stats().retries, 2);
        // Three failures exhaust it: located hard error.
        let source = Flaky {
            inner: FsSource::new(&path),
            fail_next: 3,
        };
        let mut tail = TailReader::from_source(Box::new(source), opts);
        match tail.poll() {
            Err(TraceError::IoAt { offset, .. }) => assert_eq!(offset, 0),
            other => panic!("expected IoAt, got {other:?}"),
        }
        std::fs::remove_file(&path).unwrap();
    }
}
