//! Incremental append/tail-follow reading of JSONL traces — the
//! ingestion side of live monitoring.
//!
//! A [`TailReader`] polls a growing JSONL file: each [`TailReader::poll`]
//! consumes whatever bytes were appended since the last poll, reassembles
//! them into complete lines, and parses each line into a
//! [`TraceRecord`]. A partial trailing line (the writer is mid-append)
//! is buffered and completed by a later poll, so records are never torn.
//! The reader resumes from an explicit byte offset
//! ([`TailReader::resume`]) and detects truncation/rotation — the file
//! shrinking below the resume offset — as a hard
//! [`TraceError::Truncated`] rather than silently re-reading reshuffled
//! bytes.
//!
//! The line-level reassembly lives in [`LineAssembler`], which is pure
//! (bytes in, records out) so chunked reads are property-testable
//! against a one-shot parse without touching the filesystem.

use crate::error::TraceError;
use crate::record::TraceRecord;
use std::fs::File;
use std::io::{Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};

/// Reassembles arbitrarily chunked bytes into parsed JSONL records.
///
/// Feed it byte chunks in file order; it splits on `\n`, parses each
/// complete non-blank line, and buffers a trailing partial line until a
/// later chunk completes it. Splitting any byte stream into chunks —
/// at any boundaries, including mid-UTF-8 — yields the same records as
/// parsing the whole stream at once.
#[derive(Debug, Default)]
pub struct LineAssembler {
    pending: Vec<u8>,
}

impl LineAssembler {
    /// Creates an assembler with an empty buffer.
    pub fn new() -> Self {
        LineAssembler::default()
    }

    /// Number of buffered bytes belonging to an incomplete trailing
    /// line.
    pub fn pending_bytes(&self) -> usize {
        self.pending.len()
    }

    /// Consumes one chunk, returning every record whose line was
    /// completed by it. Blank lines are skipped (matching
    /// [`crate::record::read_jsonl`]).
    pub fn push(&mut self, chunk: &[u8]) -> Result<Vec<TraceRecord>, TraceError> {
        let mut out = Vec::new();
        let mut rest = chunk;
        while let Some(nl) = rest.iter().position(|&b| b == b'\n') {
            self.pending.extend_from_slice(&rest[..nl]);
            rest = &rest[nl + 1..];
            let line = std::mem::take(&mut self.pending);
            let text = std::str::from_utf8(&line).map_err(|_| {
                TraceError::Io(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    "trace line is not valid UTF-8",
                ))
            })?;
            if text.trim().is_empty() {
                continue;
            }
            out.push(serde_json::from_str(text)?);
        }
        self.pending.extend_from_slice(rest);
        Ok(out)
    }
}

/// Polls a JSONL trace file for appended records (see the
/// [module docs](self)).
#[derive(Debug)]
pub struct TailReader {
    path: PathBuf,
    offset: u64,
    assembler: LineAssembler,
}

impl TailReader {
    /// Tails `path` from the beginning. The file does not need to exist
    /// yet: polls before it appears simply return no records.
    pub fn new<P: AsRef<Path>>(path: P) -> Self {
        TailReader::resume(path, 0)
    }

    /// Tails `path` from a byte offset previously returned by
    /// [`TailReader::offset`] — everything before it is treated as
    /// already consumed. The offset must sit on a line boundary (as
    /// [`TailReader::offset`] guarantees whenever no partial line is
    /// pending).
    pub fn resume<P: AsRef<Path>>(path: P, offset: u64) -> Self {
        TailReader {
            path: path.as_ref().to_path_buf(),
            offset,
            assembler: LineAssembler::new(),
        }
    }

    /// The byte offset the next poll resumes from (counts every consumed
    /// byte, including any buffered partial line).
    pub fn offset(&self) -> u64 {
        self.offset
    }

    /// Bytes buffered from an incomplete trailing line.
    pub fn pending_bytes(&self) -> usize {
        self.assembler.pending_bytes()
    }

    /// Reads and parses everything appended since the last poll.
    ///
    /// - The file not existing yet is not an error: returns no records.
    /// - The file shrinking below the consumed offset is
    ///   [`TraceError::Truncated`]: the writer truncated or rotated it,
    ///   and the only safe recovery is a fresh tail from offset 0.
    pub fn poll(&mut self) -> Result<Vec<TraceRecord>, TraceError> {
        let mut file = match File::open(&self.path) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(TraceError::Io(e)),
        };
        let len = file.metadata().map_err(TraceError::Io)?.len();
        if len < self.offset {
            return Err(TraceError::Truncated {
                offset: self.offset,
                len,
            });
        }
        if len == self.offset {
            return Ok(Vec::new());
        }
        file.seek(SeekFrom::Start(self.offset))
            .map_err(TraceError::Io)?;
        let mut chunk = Vec::with_capacity((len - self.offset) as usize);
        file.read_to_end(&mut chunk).map_err(TraceError::Io)?;
        self.offset += chunk.len() as u64;
        self.assembler.push(&chunk)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observe::ObservationScheme;
    use crate::record::{read_jsonl, to_records, write_jsonl};
    use qni_model::topology::tandem;
    use qni_sim::{Simulator, Workload};
    use qni_stats::rng::rng_from_seed;
    use std::io::Write;

    fn sample_masked(n: usize, seed: u64) -> crate::mask::MaskedLog {
        let bp = tandem(2.0, &[6.0, 8.0]).unwrap();
        let mut rng = rng_from_seed(seed);
        let truth = Simulator::new(&bp.network)
            .run(&Workload::poisson_n(2.0, n).unwrap(), &mut rng)
            .unwrap();
        ObservationScheme::task_sampling(0.5)
            .unwrap()
            .apply(truth, &mut rng)
            .unwrap()
    }

    fn sample_records(n: usize, seed: u64) -> Vec<TraceRecord> {
        let ml = sample_masked(n, seed);
        to_records(ml.ground_truth(), ml.mask())
    }

    fn jsonl_bytes(n: usize, seed: u64) -> Vec<u8> {
        let mut buf = Vec::new();
        write_jsonl(&sample_masked(n, seed), &mut buf).unwrap();
        buf
    }

    fn tmp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("qni-tail-{}-{name}.jsonl", std::process::id()));
        p
    }

    #[test]
    fn empty_or_missing_file_at_startup_yields_no_records() {
        let path = tmp_path("missing");
        let _ = std::fs::remove_file(&path);
        let mut tail = TailReader::new(&path);
        assert!(tail.poll().unwrap().is_empty());
        assert_eq!(tail.offset(), 0);
        // Now it exists but is empty.
        std::fs::write(&path, b"").unwrap();
        assert!(tail.poll().unwrap().is_empty());
        assert_eq!(tail.offset(), 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn appends_between_polls_are_picked_up() {
        let records = sample_records(12, 1);
        let bytes = jsonl_bytes(12, 1);
        let path = tmp_path("appends");
        let _ = std::fs::remove_file(&path);
        let mut tail = TailReader::new(&path);
        let mut seen = Vec::new();
        // Append in three slices of whole lines, polling in between.
        let cut1 = bytes.len() / 3;
        let cut1 = bytes[..cut1].iter().rposition(|&b| b == b'\n').unwrap() + 1;
        let cut2 = 2 * bytes.len() / 3;
        let cut2 = bytes[..cut2].iter().rposition(|&b| b == b'\n').unwrap() + 1;
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .unwrap();
        for range in [0..cut1, cut1..cut2, cut2..bytes.len()] {
            f.write_all(&bytes[range]).unwrap();
            f.flush().unwrap();
            seen.extend(tail.poll().unwrap());
        }
        assert_eq!(seen.len(), records.len());
        assert_eq!(seen, records);
        assert_eq!(tail.offset(), bytes.len() as u64);
        assert_eq!(tail.pending_bytes(), 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn partial_trailing_line_is_held_until_completed() {
        let records = sample_records(6, 2);
        let bytes = jsonl_bytes(6, 2);
        let path = tmp_path("partial");
        // Cut mid-line: stop 7 bytes after the second newline.
        let second_nl = bytes
            .iter()
            .enumerate()
            .filter(|&(_, &b)| b == b'\n')
            .map(|(i, _)| i)
            .nth(1)
            .unwrap();
        let cut = second_nl + 8;
        std::fs::write(&path, &bytes[..cut]).unwrap();
        let mut tail = TailReader::new(&path);
        let first = tail.poll().unwrap();
        assert_eq!(first.len(), 2, "only complete lines parse");
        assert!(tail.pending_bytes() > 0);
        // Re-polling without growth returns nothing and stays put.
        assert!(tail.poll().unwrap().is_empty());
        // Complete the file; the held fragment joins the rest.
        std::fs::write(&path, &bytes).unwrap();
        let rest = tail.poll().unwrap();
        assert_eq!(first.len() + rest.len(), records.len());
        let all: Vec<_> = first.into_iter().chain(rest).collect();
        assert_eq!(all, records);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncation_is_a_hard_error() {
        let records = sample_records(8, 3);
        let bytes = jsonl_bytes(8, 3);
        let path = tmp_path("truncated");
        std::fs::write(&path, &bytes).unwrap();
        let mut tail = TailReader::new(&path);
        assert_eq!(tail.poll().unwrap().len(), records.len());
        // The writer rotates the file: shorter content appears.
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        match tail.poll() {
            Err(TraceError::Truncated { offset, len }) => {
                assert_eq!(offset, bytes.len() as u64);
                assert_eq!(len, (bytes.len() / 2) as u64);
            }
            other => panic!("expected Truncated, got {other:?}"),
        }
        // Recovery: restart from offset 0.
        let mut tail = TailReader::new(&path);
        assert!(!tail.poll().unwrap().is_empty());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn resume_from_offset_skips_consumed_records() {
        let bytes = jsonl_bytes(10, 4);
        let path = tmp_path("resume");
        std::fs::write(&path, &bytes).unwrap();
        let mut tail = TailReader::new(&path);
        let all = tail.poll().unwrap();
        let checkpoint = tail.offset();
        // A new reader resumed at the final offset sees nothing new...
        let mut resumed = TailReader::resume(&path, checkpoint);
        assert!(resumed.poll().unwrap().is_empty());
        // ...until more is appended.
        let more = jsonl_bytes(10, 4);
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap();
        f.write_all(&more).unwrap();
        f.flush().unwrap();
        let extra = resumed.poll().unwrap();
        assert_eq!(extra.len(), all.len());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn blank_lines_and_invalid_json_behave_like_read_jsonl() {
        let records = sample_records(4, 5);
        let mut bytes = jsonl_bytes(4, 5);
        bytes.extend_from_slice(b"\n  \n");
        let mut asm = LineAssembler::new();
        let parsed = asm.push(&bytes).unwrap();
        assert_eq!(parsed.len(), records.len());
        // Cross-check against the one-shot reader.
        let oneshot = read_jsonl(&bytes[..]).unwrap();
        assert_eq!(parsed, oneshot);
        // Garbage fails cleanly.
        let mut asm = LineAssembler::new();
        assert!(asm.push(b"{not json}\n").is_err());
        let mut asm = LineAssembler::new();
        assert!(asm.push(&[0xff, 0xfe, b'\n']).is_err());
    }
}
