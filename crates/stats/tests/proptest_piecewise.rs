//! Property-based validation of the piecewise log-linear density engine.

use proptest::prelude::*;
use qni_stats::piecewise::PiecewiseExpDensity;
use qni_stats::rng::rng_from_seed;

/// Strategy: a density spec with up to 4 segments over a random interval.
fn density_spec() -> impl Strategy<Value = (f64, f64, Vec<f64>, Vec<f64>)> {
    (
        -5.0f64..5.0,
        0.2f64..8.0,
        prop::collection::vec(-6.0f64..6.0, 1..=4),
        0u64..1_000_000,
    )
        .prop_map(|(lo, width, slopes, cut_seed)| {
            let hi = lo + width;
            // Deterministic interior breakpoints from the seed.
            let n = slopes.len() - 1;
            let mut breaks = Vec::with_capacity(n);
            let mut x = cut_seed as f64 / 1_000_000.0;
            for i in 0..n {
                x = (x * 0.61803 + 0.1931 * (i as f64 + 1.0)).fract();
                breaks.push(lo + x * width);
            }
            breaks.sort_by(f64::total_cmp);
            (lo, hi, breaks, slopes)
        })
}

fn simpson(f: impl Fn(f64) -> f64, a: f64, b: f64, n: usize) -> f64 {
    let h = (b - a) / n as f64;
    let mut acc = f(a) + f(b);
    for i in 1..n {
        acc += if i % 2 == 1 { 4.0 } else { 2.0 } * f(a + i as f64 * h);
    }
    acc * h / 3.0
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn normalizes_to_one((lo, hi, breaks, slopes) in density_spec()) {
        let d = PiecewiseExpDensity::continuous_from_slopes(lo, hi, &breaks, &slopes)
            .expect("buildable");
        let total = simpson(|x| d.log_pdf(x).exp(), lo, hi - 1e-12, 4000);
        prop_assert!((total - 1.0).abs() < 1e-4, "total={total}");
    }

    #[test]
    fn cdf_is_monotone_and_bounded((lo, hi, breaks, slopes) in density_spec()) {
        let d = PiecewiseExpDensity::continuous_from_slopes(lo, hi, &breaks, &slopes)
            .expect("buildable");
        let mut prev = 0.0;
        for i in 0..=50 {
            let x = lo + (hi - lo) * i as f64 / 50.0;
            let c = d.cdf(x);
            prop_assert!((0.0..=1.0 + 1e-9).contains(&c));
            prop_assert!(c >= prev - 1e-9, "cdf decreased at {x}");
            prev = c;
        }
        prop_assert!((d.cdf(hi) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn inv_cdf_round_trips((lo, hi, breaks, slopes) in density_spec()) {
        let d = PiecewiseExpDensity::continuous_from_slopes(lo, hi, &breaks, &slopes)
            .expect("buildable");
        for &p in &[0.01, 0.25, 0.5, 0.75, 0.99] {
            let x = d.inv_cdf(p);
            prop_assert!((lo..=hi).contains(&x));
            prop_assert!((d.cdf(x) - p).abs() < 1e-6, "p={p}, cdf={}", d.cdf(x));
        }
    }

    #[test]
    fn samples_lie_in_support_and_match_mean(
        (lo, hi, breaks, slopes) in density_spec(),
        seed in 0u64..1000,
    ) {
        let d = PiecewiseExpDensity::continuous_from_slopes(lo, hi, &breaks, &slopes)
            .expect("buildable");
        let mut rng = rng_from_seed(seed);
        let n = 4000;
        let mut acc = 0.0;
        for _ in 0..n {
            let x = d.sample(&mut rng);
            prop_assert!((lo..=hi).contains(&x), "sample {x} outside [{lo},{hi}]");
            acc += x;
        }
        let sample_mean = acc / n as f64;
        let true_mean = simpson(|x| x * d.log_pdf(x).exp(), lo, hi - 1e-12, 4000);
        // Bound the error by ~6 standard errors of a worst-case spread.
        let spread = hi - lo;
        prop_assert!(
            (sample_mean - true_mean).abs() < 6.0 * spread / (n as f64).sqrt(),
            "sample mean {sample_mean} vs true {true_mean}"
        );
    }

    #[test]
    fn segment_probs_sum_to_one((lo, hi, breaks, slopes) in density_spec()) {
        let d = PiecewiseExpDensity::continuous_from_slopes(lo, hi, &breaks, &slopes)
            .expect("buildable");
        let total: f64 = (0..d.segments().len()).map(|i| d.segment_prob(i)).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
    }
}
