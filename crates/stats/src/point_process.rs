//! Poisson process samplers driving open-loop workloads.
//!
//! The synthetic experiments (paper §5.1) use a homogeneous Poisson arrival
//! process; the web-application experiment (§5.2) ramps load linearly over
//! 30 minutes, which we realize as an inhomogeneous Poisson process sampled
//! by thinning.

use crate::error::StatsError;
use crate::exponential::Exponential;
use rand::Rng;

/// Samples a homogeneous Poisson process of the given rate on `[0, t_end)`.
///
/// Returns the sorted arrival times.
///
/// # Examples
///
/// ```
/// use qni_stats::point_process::homogeneous_poisson;
/// use qni_stats::rng::rng_from_seed;
///
/// let mut rng = rng_from_seed(1);
/// let times = homogeneous_poisson(10.0, 100.0, &mut rng).unwrap();
/// assert!(times.windows(2).all(|w| w[0] <= w[1]));
/// ```
pub fn homogeneous_poisson<R: Rng + ?Sized>(
    rate: f64,
    t_end: f64,
    rng: &mut R,
) -> Result<Vec<f64>, StatsError> {
    if !(t_end.is_finite() && t_end > 0.0) {
        return Err(StatsError::BadInterval { lo: 0.0, hi: t_end });
    }
    let exp = Exponential::new(rate)?;
    let mut times = Vec::new();
    let mut t = exp.sample(rng);
    while t < t_end {
        times.push(t);
        t += exp.sample(rng);
    }
    Ok(times)
}

/// Samples exactly `n` arrivals of a homogeneous Poisson process (the first
/// `n` event times).
pub fn homogeneous_poisson_n<R: Rng + ?Sized>(
    rate: f64,
    n: usize,
    rng: &mut R,
) -> Result<Vec<f64>, StatsError> {
    let exp = Exponential::new(rate)?;
    let mut times = Vec::with_capacity(n);
    let mut t = 0.0;
    for _ in 0..n {
        t += exp.sample(rng);
        times.push(t);
    }
    Ok(times)
}

/// Samples an inhomogeneous Poisson process by thinning.
///
/// `rate(t)` must be bounded above by `rate_max` on `[0, t_end)`; candidate
/// points from a homogeneous process of rate `rate_max` are kept with
/// probability `rate(t)/rate_max`.
pub fn inhomogeneous_poisson<R: Rng + ?Sized, F: Fn(f64) -> f64>(
    rate: F,
    rate_max: f64,
    t_end: f64,
    rng: &mut R,
) -> Result<Vec<f64>, StatsError> {
    if !(rate_max.is_finite() && rate_max > 0.0) {
        return Err(StatsError::NonPositiveRate { value: rate_max });
    }
    let candidates = homogeneous_poisson(rate_max, t_end, rng)?;
    let mut kept = Vec::new();
    for t in candidates {
        let r = rate(t);
        debug_assert!(
            r <= rate_max * (1.0 + 1e-9),
            "rate({t}) = {r} exceeds rate_max = {rate_max}"
        );
        let u: f64 = rng.random();
        if u * rate_max < r {
            kept.push(t);
        }
    }
    Ok(kept)
}

/// Samples a piecewise-constant Poisson process.
///
/// Segment `i` has rate `rates[i]` and covers `[breakpoints[i-1],
/// breakpoints[i])` (with `breakpoints[-1] = 0` and the final segment
/// running to `t_end`), so `rates.len() == breakpoints.len() + 1`. By
/// the independent-increments property the restriction of a Poisson
/// process to an interval is a Poisson process of the same rate, so each
/// segment is sampled *exactly* — gap sampling per segment, no thinning
/// — and the concatenation is the inhomogeneous process.
///
/// Breakpoints must be strictly increasing and lie inside `(0, t_end)`;
/// every rate must be positive and finite.
///
/// # Examples
///
/// ```
/// use qni_stats::point_process::piecewise_constant_poisson;
/// use qni_stats::rng::rng_from_seed;
///
/// let mut rng = rng_from_seed(1);
/// // Rate 2 on [0, 50), rate 6 on [50, 100).
/// let times = piecewise_constant_poisson(&[2.0, 6.0], &[50.0], 100.0, &mut rng).unwrap();
/// assert!(times.windows(2).all(|w| w[0] <= w[1]));
/// ```
pub fn piecewise_constant_poisson<R: Rng + ?Sized>(
    rates: &[f64],
    breakpoints: &[f64],
    t_end: f64,
    rng: &mut R,
) -> Result<Vec<f64>, StatsError> {
    if !(t_end.is_finite() && t_end > 0.0) {
        return Err(StatsError::BadInterval { lo: 0.0, hi: t_end });
    }
    if rates.len() != breakpoints.len() + 1 {
        return Err(StatsError::BadParameter {
            what: "piecewise process needs exactly one more rate than breakpoints",
        });
    }
    for pair in breakpoints.windows(2) {
        if pair[0] >= pair[1] {
            return Err(StatsError::BadInterval {
                lo: pair[0],
                hi: pair[1],
            });
        }
    }
    if let (Some(&first), Some(&last)) = (breakpoints.first(), breakpoints.last()) {
        if !(first > 0.0 && last < t_end && first.is_finite() && last.is_finite()) {
            return Err(StatsError::BadInterval {
                lo: first,
                hi: last,
            });
        }
    }
    let mut times = Vec::new();
    let mut seg_start = 0.0;
    for (i, &rate) in rates.iter().enumerate() {
        let seg_end = breakpoints.get(i).copied().unwrap_or(t_end);
        let seg = homogeneous_poisson(rate, seg_end - seg_start, rng)?;
        times.extend(seg.into_iter().map(|t| seg_start + t));
        seg_start = seg_end;
    }
    Ok(times)
}

/// Samples a linear-ramp Poisson process whose rate rises from `r0` at
/// `t = 0` to `r1` at `t = t_end`.
pub fn linear_ramp_poisson<R: Rng + ?Sized>(
    r0: f64,
    r1: f64,
    t_end: f64,
    rng: &mut R,
) -> Result<Vec<f64>, StatsError> {
    if !(r0 >= 0.0 && r1 >= 0.0 && (r0 > 0.0 || r1 > 0.0)) {
        return Err(StatsError::NonPositiveRate { value: r0.min(r1) });
    }
    let rate = move |t: f64| r0 + (r1 - r0) * (t / t_end);
    inhomogeneous_poisson(rate, r0.max(r1), t_end, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::rng_from_seed;

    #[test]
    fn homogeneous_count_near_rate_times_t() {
        let mut rng = rng_from_seed(41);
        let times = homogeneous_poisson(10.0, 1_000.0, &mut rng).unwrap();
        let n = times.len() as f64;
        // Poisson(10_000): sd = 100; allow 5 sigma.
        assert!((n - 10_000.0).abs() < 500.0, "n={n}");
        assert!(times.windows(2).all(|w| w[0] < w[1]));
        assert!(*times.last().unwrap() < 1_000.0);
    }

    #[test]
    fn homogeneous_n_returns_exact_count() {
        let mut rng = rng_from_seed(42);
        let times = homogeneous_poisson_n(2.0, 500, &mut rng).unwrap();
        assert_eq!(times.len(), 500);
        assert!(times.windows(2).all(|w| w[0] < w[1]));
        // Mean interarrival ≈ 0.5.
        let mean = times.last().unwrap() / 500.0;
        assert!((mean - 0.5).abs() < 0.1, "mean={mean}");
    }

    #[test]
    fn ramp_has_increasing_density() {
        let mut rng = rng_from_seed(43);
        let times = linear_ramp_poisson(1.0, 20.0, 1_000.0, &mut rng).unwrap();
        let first_half = times.iter().filter(|&&t| t < 500.0).count() as f64;
        let second_half = times.len() as f64 - first_half;
        // Expected ratio of intensities: ∫ first / ∫ second = 5.75/15.25.
        let ratio = first_half / second_half;
        assert!((ratio - 5.75 / 15.25).abs() < 0.08, "ratio={ratio}");
    }

    #[test]
    fn thinning_matches_homogeneous_when_constant() {
        let mut rng = rng_from_seed(44);
        let times = inhomogeneous_poisson(|_| 5.0, 5.0, 2_000.0, &mut rng).unwrap();
        let n = times.len() as f64;
        assert!((n - 10_000.0).abs() < 500.0, "n={n}");
    }

    #[test]
    fn validation() {
        let mut rng = rng_from_seed(45);
        assert!(homogeneous_poisson(0.0, 1.0, &mut rng).is_err());
        assert!(homogeneous_poisson(1.0, 0.0, &mut rng).is_err());
        assert!(linear_ramp_poisson(0.0, 0.0, 1.0, &mut rng).is_err());
    }

    #[test]
    fn piecewise_segment_counts_match_rates() {
        let mut rng = rng_from_seed(46);
        let times = piecewise_constant_poisson(&[2.0, 8.0], &[500.0], 1_000.0, &mut rng).unwrap();
        assert!(times.windows(2).all(|w| w[0] < w[1]));
        let first = times.iter().filter(|&&t| t < 500.0).count() as f64;
        let second = times.len() as f64 - first;
        // Poisson(1000) / Poisson(4000): 5 sigma each.
        assert!((first - 1_000.0).abs() < 160.0, "first={first}");
        assert!((second - 4_000.0).abs() < 320.0, "second={second}");
        assert!(*times.last().unwrap() < 1_000.0);
    }

    #[test]
    fn piecewise_single_segment_matches_homogeneous() {
        // With no breakpoints the sampler must consume the RNG exactly
        // like the homogeneous process.
        let a = piecewise_constant_poisson(&[3.0], &[], 200.0, &mut rng_from_seed(47)).unwrap();
        let b = homogeneous_poisson(3.0, 200.0, &mut rng_from_seed(47)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn piecewise_validation() {
        let mut rng = rng_from_seed(48);
        // Shape mismatch.
        assert!(piecewise_constant_poisson(&[1.0], &[5.0], 10.0, &mut rng).is_err());
        // Unsorted breakpoints.
        assert!(piecewise_constant_poisson(&[1.0, 2.0, 3.0], &[6.0, 5.0], 10.0, &mut rng).is_err());
        // Breakpoint outside (0, t_end).
        assert!(piecewise_constant_poisson(&[1.0, 2.0], &[0.0], 10.0, &mut rng).is_err());
        assert!(piecewise_constant_poisson(&[1.0, 2.0], &[10.0], 10.0, &mut rng).is_err());
        // Non-positive rate in a segment.
        assert!(piecewise_constant_poisson(&[1.0, 0.0], &[5.0], 10.0, &mut rng).is_err());
    }
}
