//! One-sample Kolmogorov–Smirnov distance for statistical validation.
//!
//! Used by tests that check the Gibbs sampler's output distribution against
//! a numerically integrated posterior.

use crate::error::StatsError;

/// One-sample KS statistic of `samples` against the CDF `cdf`.
///
/// `samples` need not be sorted; a sorted copy is made internally.
pub fn ks_statistic<F: Fn(f64) -> f64>(samples: &[f64], cdf: F) -> Result<f64, StatsError> {
    if samples.is_empty() {
        return Err(StatsError::EmptyData);
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let n = sorted.len() as f64;
    let mut d: f64 = 0.0;
    for (i, &x) in sorted.iter().enumerate() {
        let f = cdf(x);
        let hi = (i + 1) as f64 / n;
        let lo = i as f64 / n;
        d = d.max((f - lo).abs()).max((hi - f).abs());
    }
    Ok(d)
}

/// Approximate critical value of the one-sample KS statistic.
///
/// For significance level `alpha` and sample size `n`, uses the asymptotic
/// `c(α)·√(1/n)` with `c(α) = sqrt(-ln(α/2)/2)`; accurate for `n ≳ 35`.
pub fn ks_critical_value(n: usize, alpha: f64) -> Result<f64, StatsError> {
    if n == 0 {
        return Err(StatsError::EmptyData);
    }
    if !(0.0 < alpha && alpha < 1.0) {
        return Err(StatsError::BadProbability { value: alpha });
    }
    let c = (-(alpha / 2.0).ln() / 2.0).sqrt();
    Ok(c / (n as f64).sqrt())
}

/// Two-sample KS statistic between `a` and `b`.
pub fn ks_two_sample(a: &[f64], b: &[f64]) -> Result<f64, StatsError> {
    if a.is_empty() || b.is_empty() {
        return Err(StatsError::EmptyData);
    }
    let mut sa = a.to_vec();
    let mut sb = b.to_vec();
    sa.sort_by(f64::total_cmp);
    sb.sort_by(f64::total_cmp);
    let (na, nb) = (sa.len() as f64, sb.len() as f64);
    let (mut i, mut j) = (0usize, 0usize);
    let mut d: f64 = 0.0;
    while i < sa.len() && j < sb.len() {
        let x = sa[i].min(sb[j]);
        while i < sa.len() && sa[i] <= x {
            i += 1;
        }
        while j < sb.len() && sb[j] <= x {
            j += 1;
        }
        d = d.max((i as f64 / na - j as f64 / nb).abs());
    }
    Ok(d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exponential::Exponential;
    use crate::rng::rng_from_seed;

    #[test]
    fn exact_cdf_passes() {
        let e = Exponential::new(1.0).unwrap();
        let mut rng = rng_from_seed(21);
        let xs: Vec<f64> = (0..20_000).map(|_| e.sample(&mut rng)).collect();
        let d = ks_statistic(&xs, |x| e.cdf(x)).unwrap();
        let crit = ks_critical_value(xs.len(), 0.001).unwrap();
        assert!(d < crit, "d={d} crit={crit}");
    }

    #[test]
    fn wrong_cdf_fails() {
        let e = Exponential::new(1.0).unwrap();
        let wrong = Exponential::new(2.0).unwrap();
        let mut rng = rng_from_seed(22);
        let xs: Vec<f64> = (0..20_000).map(|_| e.sample(&mut rng)).collect();
        let d = ks_statistic(&xs, |x| wrong.cdf(x)).unwrap();
        let crit = ks_critical_value(xs.len(), 0.001).unwrap();
        assert!(d > crit, "misfit should be detected: d={d} crit={crit}");
    }

    #[test]
    fn two_sample_same_distribution_small() {
        let e = Exponential::new(3.0).unwrap();
        let mut rng = rng_from_seed(23);
        let a: Vec<f64> = (0..10_000).map(|_| e.sample(&mut rng)).collect();
        let b: Vec<f64> = (0..10_000).map(|_| e.sample(&mut rng)).collect();
        let d = ks_two_sample(&a, &b).unwrap();
        assert!(d < 0.03, "d={d}");
    }

    #[test]
    fn two_sample_different_distribution_large() {
        let e1 = Exponential::new(1.0).unwrap();
        let e2 = Exponential::new(4.0).unwrap();
        let mut rng = rng_from_seed(24);
        let a: Vec<f64> = (0..5_000).map(|_| e1.sample(&mut rng)).collect();
        let b: Vec<f64> = (0..5_000).map(|_| e2.sample(&mut rng)).collect();
        let d = ks_two_sample(&a, &b).unwrap();
        assert!(d > 0.3, "d={d}");
    }

    #[test]
    fn input_validation() {
        assert!(ks_statistic(&[], |_| 0.0).is_err());
        assert!(ks_critical_value(0, 0.05).is_err());
        assert!(ks_critical_value(10, 0.0).is_err());
        assert!(ks_two_sample(&[], &[1.0]).is_err());
    }
}
