//! Descriptive statistics: running moments, quantiles, error metrics.

use crate::error::StatsError;

/// Numerically stable running mean/variance accumulator (Welford).
///
/// # Examples
///
/// ```
/// use qni_stats::descriptive::RunningStats;
///
/// let mut r = RunningStats::new();
/// for x in [1.0, 2.0, 3.0] {
///     r.push(x);
/// }
/// assert_eq!(r.mean(), 2.0);
/// assert_eq!(r.variance(), 1.0); // Sample variance.
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct RunningStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        RunningStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Mean of the observations (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (0 when fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum observation (`+inf` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum observation (`-inf` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let n = n1 + n2;
        self.mean += delta * n2 / n;
        self.m2 += other.m2 + delta * delta * n1 * n2 / n;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A one-shot summary of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub count: usize,
    /// Sample mean.
    pub mean: f64,
    /// Unbiased sample variance.
    pub variance: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Median (type-7 interpolation).
    pub median: f64,
}

impl Summary {
    /// Summarizes a slice; errors on empty input.
    pub fn from_slice(xs: &[f64]) -> Result<Self, StatsError> {
        if xs.is_empty() {
            return Err(StatsError::EmptyData);
        }
        let mut r = RunningStats::new();
        for &x in xs {
            r.push(x);
        }
        let mut sorted = xs.to_vec();
        sorted.sort_by(f64::total_cmp);
        Ok(Summary {
            count: xs.len(),
            mean: r.mean(),
            variance: r.variance(),
            min: r.min(),
            max: r.max(),
            median: quantile_sorted(&sorted, 0.5),
        })
    }
}

/// Type-7 (linear interpolation) quantile of an already-sorted slice.
///
/// # Panics
///
/// Debug-asserts the slice is non-empty and `p ∈ [0, 1]`.
pub fn quantile_sorted(sorted: &[f64], p: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    debug_assert!((0.0..=1.0).contains(&p));
    if sorted.len() == 1 {
        return sorted[0];
    }
    let h = p * (sorted.len() - 1) as f64;
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        sorted[lo] + (h - lo as f64) * (sorted[hi] - sorted[lo])
    }
}

/// Quantile of an unsorted slice (copies and sorts).
pub fn quantile(xs: &[f64], p: f64) -> Result<f64, StatsError> {
    if xs.is_empty() {
        return Err(StatsError::EmptyData);
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(f64::total_cmp);
    Ok(quantile_sorted(&sorted, p))
}

/// Median of a slice.
pub fn median(xs: &[f64]) -> Result<f64, StatsError> {
    quantile(xs, 0.5)
}

/// Median absolute deviation from the median.
pub fn mad(xs: &[f64]) -> Result<f64, StatsError> {
    let m = median(xs)?;
    let devs: Vec<f64> = xs.iter().map(|&x| (x - m).abs()).collect();
    median(&devs)
}

/// Mean absolute error between paired estimates and truths.
pub fn mean_absolute_error(estimates: &[f64], truths: &[f64]) -> Result<f64, StatsError> {
    if estimates.is_empty() || estimates.len() != truths.len() {
        return Err(StatsError::EmptyData);
    }
    Ok(estimates
        .iter()
        .zip(truths)
        .map(|(e, t)| (e - t).abs())
        .sum::<f64>()
        / estimates.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_two_pass() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut r = RunningStats::new();
        for &x in &xs {
            r.push(x);
        }
        let mean: f64 = xs.iter().sum::<f64>() / xs.len() as f64;
        let var: f64 = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
        assert!((r.mean() - mean).abs() < 1e-12);
        assert!((r.variance() - var).abs() < 1e-12);
        assert_eq!(r.min(), 2.0);
        assert_eq!(r.max(), 9.0);
        assert_eq!(r.count(), 8);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut all = RunningStats::new();
        for &x in &xs {
            all.push(x);
        }
        let mut a = RunningStats::new();
        let mut b = RunningStats::new();
        for &x in &xs[..37] {
            a.push(x);
        }
        for &x in &xs[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert!((a.mean() - all.mean()).abs() < 1e-10);
        assert!((a.variance() - all.variance()).abs() < 1e-10);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = RunningStats::new();
        a.push(1.0);
        a.push(3.0);
        let before = (a.mean(), a.variance(), a.count());
        a.merge(&RunningStats::new());
        assert_eq!(before, (a.mean(), a.variance(), a.count()));
        let mut e = RunningStats::new();
        e.merge(&a);
        assert_eq!(e.mean(), a.mean());
    }

    #[test]
    fn quantiles_interpolate() {
        let sorted = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile_sorted(&sorted, 0.0), 1.0);
        assert_eq!(quantile_sorted(&sorted, 1.0), 4.0);
        assert_eq!(quantile_sorted(&sorted, 0.5), 2.5);
        assert!((quantile_sorted(&sorted, 0.25) - 1.75).abs() < 1e-12);
    }

    #[test]
    fn median_and_mad() {
        let xs = [1.0, 1.0, 2.0, 2.0, 4.0, 6.0, 9.0];
        assert_eq!(median(&xs).unwrap(), 2.0);
        assert_eq!(mad(&xs).unwrap(), 1.0);
        assert!(median(&[]).is_err());
    }

    #[test]
    fn summary_from_slice() {
        let s = Summary::from_slice(&[3.0, 1.0, 2.0]).unwrap();
        assert_eq!(s.count, 3);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.median, 2.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert!(Summary::from_slice(&[]).is_err());
    }

    #[test]
    fn mae_errors_on_mismatch() {
        assert!(mean_absolute_error(&[1.0], &[1.0, 2.0]).is_err());
        let v = mean_absolute_error(&[1.0, 2.0], &[2.0, 0.0]).unwrap();
        assert!((v - 1.5).abs() < 1e-12);
    }
}
