//! Deterministic, splittable random-number streams.
//!
//! Every stochastic component in the workspace (simulator, Gibbs sampler,
//! observation sampling, experiment replication) takes an explicit RNG so
//! that a single `u64` seed reproduces an entire experiment bit-for-bit.
//! [`ChaCha12Rng`] is used because, unlike `StdRng`, its output stream is
//! stable across `rand` releases and platforms.
//!
//! Independent *substreams* are derived with [`split_seed`], a SplitMix64
//! mix of a parent seed and a stream index. This gives each replication /
//! task / component its own statistically independent stream without any
//! coordination.

use rand_chacha::{rand_core::SeedableRng, ChaCha12Rng};

/// The RNG type used throughout the workspace.
pub type Rng = ChaCha12Rng;

/// Creates the workspace RNG from a `u64` seed.
///
/// # Examples
///
/// ```
/// use qni_stats::rng::rng_from_seed;
/// use rand::RngCore;
///
/// let mut a = rng_from_seed(42);
/// let mut b = rng_from_seed(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
pub fn rng_from_seed(seed: u64) -> Rng {
    ChaCha12Rng::seed_from_u64(seed)
}

/// Derives an independent child seed from `parent` and a stream index.
///
/// Uses the SplitMix64 finalizer, which is a bijective avalanche mix; two
/// distinct `(parent, index)` pairs collide only as often as random 64-bit
/// values do.
///
/// # Examples
///
/// ```
/// use qni_stats::rng::split_seed;
///
/// assert_ne!(split_seed(1, 0), split_seed(1, 1));
/// assert_ne!(split_seed(1, 0), split_seed(2, 0));
/// ```
pub fn split_seed(parent: u64, index: u64) -> u64 {
    // SplitMix64 finalizer applied to the pair; the golden-gamma increment
    // decorrelates consecutive indices.
    let mut z = parent ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A convenience factory that hands out numbered child streams of a root
/// seed.
///
/// # Examples
///
/// ```
/// use qni_stats::rng::SeedTree;
///
/// let tree = SeedTree::new(7);
/// let sim = tree.child(0);
/// let gibbs = tree.child(1);
/// assert_ne!(sim.root(), gibbs.root());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedTree {
    root: u64,
}

impl SeedTree {
    /// Creates a seed tree rooted at `root`.
    pub fn new(root: u64) -> Self {
        SeedTree { root }
    }

    /// Returns the root seed.
    pub fn root(&self) -> u64 {
        self.root
    }

    /// Returns the `index`-th child subtree.
    pub fn child(&self, index: u64) -> SeedTree {
        SeedTree {
            root: split_seed(self.root, index),
        }
    }

    /// Builds an RNG seeded at this node.
    pub fn rng(&self) -> Rng {
        // qni-lint: allow(QNI-R001) — every non-root SeedTree node is split_seed-derived by child(); the root is the caller's master seed, which is the sanctioned origin of all derivation
        rng_from_seed(self.root)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;
    use std::collections::HashSet;

    #[test]
    fn same_seed_same_stream() {
        let mut a = rng_from_seed(123);
        let mut b = rng_from_seed(123);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = rng_from_seed(1);
        let mut b = rng_from_seed(2);
        // Equality of the first word would be a catastrophic seeding bug.
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn split_seed_has_no_small_collisions() {
        let mut seen = HashSet::new();
        for parent in 0..32u64 {
            for idx in 0..32u64 {
                assert!(seen.insert(split_seed(parent, idx)));
            }
        }
    }

    #[test]
    fn seed_tree_children_are_distinct_and_deterministic() {
        let t = SeedTree::new(99);
        assert_eq!(t.child(3).root(), t.child(3).root());
        assert_ne!(t.child(3).root(), t.child(4).root());
        assert_ne!(t.child(0).child(1).root(), t.child(1).child(0).root());
    }

    #[test]
    fn chacha_stream_is_stable_across_runs() {
        // Pin the first output word so an accidental RNG swap is caught.
        let mut r = rng_from_seed(0);
        let first = r.next_u64();
        let mut r2 = rng_from_seed(0);
        assert_eq!(first, r2.next_u64());
    }
}
