//! Piecewise log-linear (piecewise-exponential) densities.
//!
//! The Gibbs conditional for an arrival time derived in the paper (its
//! Figure 3) is a density of the form `f(x) ∝ exp(c_i + s_i · x)` on each
//! of a handful of contiguous segments: the `max` terms inside the
//! exponential-service log-likelihood switch on or off as `x` crosses a
//! neighbouring event time, changing the slope of `log f` but never its
//! continuity. This module represents such densities exactly, computes
//! their normalizing constant in log space, and samples them by inverse
//! CDF — segment choice first, then a truncated-exponential draw inside
//! the chosen segment.
//!
//! The representation is deliberately more general than the paper's
//! three-segment case so that degenerate configurations (missing
//! neighbours, coincident breakpoints, half-infinite support) all flow
//! through one well-tested code path.

use crate::error::StatsError;
use crate::logspace::{log_int_exp_linear, log_int_exp_linear_tail, log_sum_exp};
use crate::truncated_exp::TruncatedExp;
use rand::Rng;

/// One segment of a piecewise log-linear density.
///
/// On `[lo, hi)` the unnormalized log-density is `offset + slope · x`.
/// `hi` may be `+inf` provided `slope < 0` (a decaying tail).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    /// Left endpoint (finite).
    pub lo: f64,
    /// Right endpoint; `+inf` allowed when `slope < 0`.
    pub hi: f64,
    /// Additive constant of the log-density on this segment.
    pub offset: f64,
    /// Slope of the log-density on this segment.
    pub slope: f64,
}

impl Segment {
    /// Log of the unnormalized mass `∫_lo^hi exp(offset + slope·x) dx`.
    pub fn log_mass(&self) -> f64 {
        if self.hi.is_finite() {
            log_int_exp_linear(self.offset, self.slope, self.lo, self.hi)
        } else {
            log_int_exp_linear_tail(self.offset, self.slope, self.lo)
        }
    }

    /// Width of the segment (may be `+inf`).
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }
}

/// Appends the segments of a *continuous* density on `[lower, upper]` to
/// `out` (which is **not** cleared): interior breakpoints are clamped into
/// the support, offsets are chosen so the log-density is continuous and
/// anchored at `log f(lower) = 0`.
///
/// Shared by [`PiecewiseExpDensity::continuous_from_slopes`] and
/// [`PiecewiseScratch::rebuild_continuous`] so both construction paths
/// perform bit-identical arithmetic.
fn push_continuous_segments(
    lower: f64,
    upper: f64,
    breaks: &[f64],
    slopes: &[f64],
    out: &mut Vec<Segment>,
) -> Result<(), StatsError> {
    if slopes.len() != breaks.len() + 1 {
        return Err(StatsError::BadParameter {
            what: "slopes.len() must be breaks.len() + 1",
        });
    }
    if !(lower.is_finite()) || lower >= upper {
        return Err(StatsError::BadInterval {
            lo: lower,
            hi: upper,
        });
    }
    if breaks.windows(2).any(|w| w[0] > w[1]) {
        return Err(StatsError::BadParameter {
            what: "breakpoints must be sorted",
        });
    }
    let mut offset = -slopes[0] * lower; // Anchor: log f(lower) = 0.
    let mut lo = lower;
    for (i, &s) in slopes.iter().enumerate() {
        // Clamp the cut into the support; clamping preserves sortedness.
        let hi = if i < breaks.len() {
            let mut c = breaks[i].max(lower);
            if upper.is_finite() {
                c = c.min(upper);
            }
            c
        } else {
            upper
        };
        if hi > lo {
            out.push(Segment {
                lo,
                hi,
                offset,
                slope: s,
            });
        }
        // Continuity at the cut: offset' = offset + (s - s_next)·cut.
        // An empty segment still shifts the anchor so downstream
        // segments stay continuous with the density shape.
        if i < breaks.len() {
            offset += (s - slopes[i + 1]) * hi;
            lo = lo.max(hi);
        }
    }
    Ok(())
}

/// Validates `segments` in place (dropping empty ones, preserving order),
/// fills `log_masses` and the normalized segment probabilities `probs`
/// (both cleared first) and returns the log normalizer.
///
/// The probabilities reuse the exponentials the `log(Σ exp)` reduction
/// computes anyway, so the sampling hot path never has to exponentiate.
///
/// Shared by [`PiecewiseExpDensity::new`] and
/// [`PiecewiseScratch::rebuild_continuous`].
fn finalize_segments(
    segments: &mut Vec<Segment>,
    log_masses: &mut Vec<f64>,
    probs: &mut Vec<f64>,
) -> Result<f64, StatsError> {
    let mut kept = 0usize;
    for i in 0..segments.len() {
        let seg = segments[i];
        if seg.lo.is_nan() || seg.hi.is_nan() || !seg.lo.is_finite() {
            return Err(StatsError::BadInterval {
                lo: seg.lo,
                hi: seg.hi,
            });
        }
        if seg.hi == f64::INFINITY && seg.slope >= 0.0 {
            return Err(StatsError::BadParameter {
                what: "half-infinite segment must have negative slope",
            });
        }
        if seg.hi <= seg.lo {
            continue;
        }
        segments[kept] = seg;
        kept += 1;
    }
    segments.truncate(kept);
    log_masses.clear();
    log_masses.extend(segments.iter().map(Segment::log_mass));
    // log_sum_exp, keeping the intermediate exponentials as the
    // (unnormalized, then normalized) segment probabilities.
    let m = log_masses.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    probs.clear();
    if !m.is_finite() {
        return Err(StatsError::EmptyDensity);
    }
    probs.extend(log_masses.iter().map(|&lm| (lm - m).exp()));
    let sum: f64 = probs.iter().sum();
    let log_norm = m + sum.ln();
    if !log_norm.is_finite() {
        return Err(StatsError::EmptyDensity);
    }
    for p in probs.iter_mut() {
        *p /= sum;
    }
    Ok(log_norm)
}

/// Draws one sample from finalized parts: chooses a segment proportionally
/// to its (precomputed) probability, then inverts the within-segment CDF.
/// Two uniform draws, no exponentials outside the chosen segment's
/// quantile.
fn sample_segments<R: Rng + ?Sized>(segments: &[Segment], probs: &[f64], rng: &mut R) -> f64 {
    let u: f64 = rng.random();
    let mut acc = 0.0;
    let mut chosen = segments.len() - 1;
    for (i, &p) in probs.iter().enumerate() {
        acc += p;
        if u < acc {
            chosen = i;
            break;
        }
    }
    let v: f64 = rng.random();
    segment_inv_cdf(&segments[chosen], v)
}

/// Normalized log-density at `x` over finalized parts.
fn log_pdf_segments(segments: &[Segment], log_norm: f64, x: f64) -> f64 {
    for seg in segments {
        if x >= seg.lo && x < seg.hi {
            return seg.offset + seg.slope * x - log_norm;
        }
    }
    f64::NEG_INFINITY
}

/// A normalized piecewise log-linear density.
///
/// # Examples
///
/// ```
/// use qni_stats::piecewise::PiecewiseExpDensity;
/// use qni_stats::rng::rng_from_seed;
///
/// // f(x) ∝ e^{-x} on [0,1), e^{-1} (flat) on [1,2): a continuous density.
/// let d = PiecewiseExpDensity::continuous_from_slopes(0.0, 2.0, &[1.0], &[-1.0, 0.0])
///     .unwrap();
/// let mut rng = rng_from_seed(1);
/// let x = d.sample(&mut rng);
/// assert!((0.0..2.0).contains(&x));
/// ```
#[derive(Debug, Clone)]
pub struct PiecewiseExpDensity {
    segments: Vec<Segment>,
    /// Per-segment log unnormalized mass, aligned with `segments`.
    log_masses: Vec<f64>,
    /// Per-segment normalized probability, aligned with `segments`.
    probs: Vec<f64>,
    /// Log normalizing constant (log of the sum of segment masses).
    log_norm: f64,
}

impl PiecewiseExpDensity {
    /// Builds a density from explicit segments.
    ///
    /// Segments with non-positive width or `-inf` mass are dropped. Errors
    /// if no segment carries positive mass, or if any segment is divergent
    /// (`hi = +inf` with `slope >= 0`) or malformed (NaN endpoints).
    pub fn new(segments: Vec<Segment>) -> Result<Self, StatsError> {
        let mut segments = segments;
        let mut log_masses = Vec::with_capacity(segments.len());
        let mut probs = Vec::with_capacity(segments.len());
        let log_norm = finalize_segments(&mut segments, &mut log_masses, &mut probs)?;
        Ok(PiecewiseExpDensity {
            segments,
            log_masses,
            probs,
            log_norm,
        })
    }

    /// Builds a *continuous* density on `[lower, upper]` from interior
    /// breakpoints and per-segment slopes.
    ///
    /// `slopes.len()` must equal `breaks.len() + 1`. Offsets are chosen so
    /// the log-density is continuous across breakpoints, anchored at
    /// `log f(lower) = 0`. Breakpoints outside `(lower, upper)` are clamped
    /// away (their segments become empty and are dropped) — this is what
    /// makes the Gibbs move's degenerate configurations collapse naturally
    /// to fewer segments. `upper` may be `+inf` if the final slope is
    /// negative.
    pub fn continuous_from_slopes(
        lower: f64,
        upper: f64,
        breaks: &[f64],
        slopes: &[f64],
    ) -> Result<Self, StatsError> {
        let mut segments = Vec::with_capacity(slopes.len());
        push_continuous_segments(lower, upper, breaks, slopes, &mut segments)?;
        PiecewiseExpDensity::new(segments)
    }

    /// Returns the segments of the density.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Log normalizing constant of the unnormalized density.
    pub fn log_norm(&self) -> f64 {
        self.log_norm
    }

    /// Probability mass of segment `i`.
    pub fn segment_prob(&self, i: usize) -> f64 {
        (self.log_masses[i] - self.log_norm).exp()
    }

    /// Lower end of the support.
    pub fn support_lo(&self) -> f64 {
        self.segments.first().map_or(f64::NAN, |s| s.lo)
    }

    /// Upper end of the support (`+inf` possible).
    pub fn support_hi(&self) -> f64 {
        self.segments.last().map_or(f64::NAN, |s| s.hi)
    }

    /// Normalized log-density at `x` (`-inf` outside the support).
    pub fn log_pdf(&self, x: f64) -> f64 {
        log_pdf_segments(&self.segments, self.log_norm, x)
    }

    /// CDF at `x`, evaluated by summing full and partial segment masses.
    pub fn cdf(&self, x: f64) -> f64 {
        let mut parts = Vec::with_capacity(self.segments.len());
        for seg in &self.segments {
            if x >= seg.hi {
                parts.push(seg.log_mass());
            } else if x > seg.lo {
                parts.push(log_int_exp_linear(seg.offset, seg.slope, seg.lo, x));
            }
        }
        (log_sum_exp(&parts) - self.log_norm).exp()
    }

    /// Quantile function for `p ∈ [0, 1)`.
    pub fn inv_cdf(&self, p: f64) -> f64 {
        debug_assert!((0.0..1.0).contains(&p));
        let mut acc = 0.0;
        for (i, seg) in self.segments.iter().enumerate() {
            let w = self.segment_prob(i);
            if acc + w >= p || i + 1 == self.segments.len() {
                let rel = ((p - acc) / w).clamp(0.0, 1.0);
                return segment_inv_cdf(seg, rel);
            }
            acc += w;
        }
        self.support_lo()
    }

    /// Draws one sample: chooses a segment proportionally to its mass, then
    /// inverts the within-segment (truncated-)exponential CDF.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        sample_segments(&self.segments, &self.probs, rng)
    }
}

/// A reusable, allocation-free workspace for building and sampling
/// piecewise log-linear densities.
///
/// The Gibbs hot path builds one short-lived density per move;
/// constructing a [`PiecewiseExpDensity`] there costs several heap
/// allocations per move. `PiecewiseScratch` owns the segment and mass
/// buffers and rebuilds them in place, so steady-state rebuilds are
/// allocation-free while performing **bit-identical arithmetic** to
/// [`PiecewiseExpDensity::continuous_from_slopes`] (both paths share the
/// same internal builder), and [`PiecewiseScratch::sample`] consumes the
/// RNG exactly like [`PiecewiseExpDensity::sample`].
///
/// # Examples
///
/// ```
/// use qni_stats::piecewise::{PiecewiseExpDensity, PiecewiseScratch};
/// use qni_stats::rng::rng_from_seed;
///
/// let mut scratch = PiecewiseScratch::new();
/// scratch.rebuild_continuous(0.0, 2.0, &[1.0], &[-1.0, 0.0]).unwrap();
/// let owned = PiecewiseExpDensity::continuous_from_slopes(0.0, 2.0, &[1.0], &[-1.0, 0.0])
///     .unwrap();
/// let (mut a, mut b) = (rng_from_seed(3), rng_from_seed(3));
/// assert_eq!(scratch.sample(&mut a).to_bits(), owned.sample(&mut b).to_bits());
/// ```
#[derive(Debug, Clone, Default)]
pub struct PiecewiseScratch {
    segments: Vec<Segment>,
    log_masses: Vec<f64>,
    probs: Vec<f64>,
    log_norm: f64,
}

impl PiecewiseScratch {
    /// Creates an empty workspace (no density built yet).
    pub fn new() -> Self {
        PiecewiseScratch::default()
    }

    /// Rebuilds the workspace as the continuous density
    /// [`PiecewiseExpDensity::continuous_from_slopes`] would construct,
    /// reusing the internal buffers. On error the workspace is left empty
    /// (sampling it would panic), never holding a stale density.
    pub fn rebuild_continuous(
        &mut self,
        lower: f64,
        upper: f64,
        breaks: &[f64],
        slopes: &[f64],
    ) -> Result<(), StatsError> {
        self.segments.clear();
        self.log_masses.clear();
        self.probs.clear();
        let build = push_continuous_segments(lower, upper, breaks, slopes, &mut self.segments)
            .and_then(|()| {
                finalize_segments(&mut self.segments, &mut self.log_masses, &mut self.probs)
            });
        match build {
            Ok(log_norm) => {
                self.log_norm = log_norm;
                Ok(())
            }
            Err(e) => {
                self.segments.clear();
                self.log_masses.clear();
                self.probs.clear();
                Err(e)
            }
        }
    }

    /// The segments of the current density (empty before the first
    /// successful rebuild).
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Log normalizing constant of the current density.
    pub fn log_norm(&self) -> f64 {
        self.log_norm
    }

    /// Normalized log-density at `x` (`-inf` outside the support).
    pub fn log_pdf(&self, x: f64) -> f64 {
        log_pdf_segments(&self.segments, self.log_norm, x)
    }

    /// Draws one sample from the current density; RNG consumption is
    /// identical to [`PiecewiseExpDensity::sample`].
    ///
    /// # Panics
    ///
    /// Panics if no density has been (successfully) built.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        assert!(
            !self.segments.is_empty(),
            "PiecewiseScratch::sample called before a successful rebuild"
        );
        sample_segments(&self.segments, &self.probs, rng)
    }
}

/// Within-segment quantile: density ∝ `exp(slope·x)` on `[lo, hi)`.
fn segment_inv_cdf(seg: &Segment, p: f64) -> f64 {
    let w = seg.width();
    if seg.hi == f64::INFINITY {
        // Pure exponential tail with rate |slope|.
        return seg.lo + -(-p).ln_1p() / -seg.slope;
    }
    if seg.slope == 0.0 || (seg.slope.abs() * w) < 1e-12 {
        return seg.lo + p * w;
    }
    if seg.slope < 0.0 {
        let t = TruncatedExp::new(-seg.slope, w).expect("validated segment"); // qni-lint: allow(QNI-E002) — segment slope and width were validated when the density was built
        seg.lo + t.inv_cdf(p)
    } else {
        let t = TruncatedExp::new(seg.slope, w).expect("validated segment"); // qni-lint: allow(QNI-E002) — segment slope and width were validated when the density was built
        seg.hi - t.inv_cdf(1.0 - p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::descriptive::Summary;
    use crate::rng::rng_from_seed;

    fn simpson(f: impl Fn(f64) -> f64, a: f64, b: f64, n: usize) -> f64 {
        let h = (b - a) / n as f64;
        let mut acc = f(a) + f(b);
        for i in 1..n {
            acc += if i % 2 == 1 { 4.0 } else { 2.0 } * f(a + i as f64 * h);
        }
        acc * h / 3.0
    }

    #[test]
    fn rejects_divergent_and_empty() {
        let div = Segment {
            lo: 0.0,
            hi: f64::INFINITY,
            offset: 0.0,
            slope: 0.5,
        };
        assert!(PiecewiseExpDensity::new(vec![div]).is_err());
        assert!(PiecewiseExpDensity::new(vec![]).is_err());
        let empty = Segment {
            lo: 1.0,
            hi: 1.0,
            offset: 0.0,
            slope: 1.0,
        };
        assert!(PiecewiseExpDensity::new(vec![empty]).is_err());
    }

    #[test]
    fn continuous_builder_is_continuous() {
        let d =
            PiecewiseExpDensity::continuous_from_slopes(0.0, 3.0, &[1.0, 2.0], &[1.0, 0.0, -2.0])
                .unwrap();
        assert_eq!(d.segments().len(), 3);
        // Log-density continuous at the breakpoints.
        for &b in &[1.0f64, 2.0] {
            let eps = 1e-9;
            let l = d.log_pdf(b - eps);
            let r = d.log_pdf(b + eps);
            assert!((l - r).abs() < 1e-6, "discontinuity at {b}: {l} vs {r}");
        }
    }

    #[test]
    fn continuous_builder_drops_empty_segments() {
        // Breakpoint at the lower bound: first segment is empty.
        let d =
            PiecewiseExpDensity::continuous_from_slopes(1.0, 2.0, &[1.0], &[5.0, -1.0]).unwrap();
        assert_eq!(d.segments().len(), 1);
        assert_eq!(d.segments()[0].slope, -1.0);
    }

    #[test]
    fn pdf_integrates_to_one() {
        let d =
            PiecewiseExpDensity::continuous_from_slopes(-1.0, 2.0, &[0.0, 1.0], &[3.0, -0.5, -4.0])
                .unwrap();
        let total = simpson(|x| d.log_pdf(x).exp(), -1.0, 2.0 - 1e-9, 6000);
        assert!((total - 1.0).abs() < 1e-6, "total={total}");
    }

    #[test]
    fn cdf_and_inv_cdf_agree() {
        let d =
            PiecewiseExpDensity::continuous_from_slopes(0.0, 5.0, &[1.5, 3.0], &[-1.0, 2.0, -3.0])
                .unwrap();
        for &p in &[0.01, 0.2, 0.5, 0.8, 0.99] {
            let x = d.inv_cdf(p);
            assert!((d.cdf(x) - p).abs() < 1e-8, "p={p}, x={x}");
        }
    }

    #[test]
    fn sampling_matches_cdf() {
        let d =
            PiecewiseExpDensity::continuous_from_slopes(0.0, 4.0, &[1.0, 2.0], &[2.0, 0.0, -5.0])
                .unwrap();
        let mut rng = rng_from_seed(17);
        let n = 50_000;
        let mut samples: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        samples.sort_by(f64::total_cmp);
        // One-sample KS against the exact CDF.
        let mut ks: f64 = 0.0;
        for (i, &x) in samples.iter().enumerate() {
            let f = d.cdf(x);
            let emp_hi = (i + 1) as f64 / n as f64;
            let emp_lo = i as f64 / n as f64;
            ks = ks.max((f - emp_lo).abs()).max((f - emp_hi).abs());
        }
        // 99.9% critical value ≈ 1.95/√n ≈ 0.0087.
        assert!(ks < 0.0087, "ks={ks}");
    }

    #[test]
    fn half_infinite_tail_sampling() {
        // f(x) ∝ e^{-2x} on [1, ∞): a shifted exponential.
        let d = PiecewiseExpDensity::new(vec![Segment {
            lo: 1.0,
            hi: f64::INFINITY,
            offset: 0.0,
            slope: -2.0,
        }])
        .unwrap();
        let mut rng = rng_from_seed(9);
        let xs: Vec<f64> = (0..100_000).map(|_| d.sample(&mut rng)).collect();
        let s = Summary::from_slice(&xs).unwrap();
        assert!(s.min >= 1.0);
        assert!((s.mean - 1.5).abs() < 0.01, "mean={}", s.mean);
    }

    #[test]
    fn segment_probabilities_sum_to_one() {
        let d =
            PiecewiseExpDensity::continuous_from_slopes(0.0, 10.0, &[2.0, 7.0], &[0.5, -0.1, -1.0])
                .unwrap();
        let total: f64 = (0..d.segments().len()).map(|i| d.segment_prob(i)).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn extreme_slopes_remain_finite() {
        // Slopes of ±1000 at times around 1800 (webapp scale).
        let d = PiecewiseExpDensity::continuous_from_slopes(
            1800.0,
            1800.5,
            &[1800.2],
            &[1000.0, -1000.0],
        )
        .unwrap();
        assert!(d.log_norm().is_finite());
        let mut rng = rng_from_seed(2);
        for _ in 0..100 {
            let x = d.sample(&mut rng);
            assert!((1800.0..1800.5).contains(&x));
            // Mass concentrates at the peak 1800.2.
            assert!((x - 1800.2).abs() < 0.05);
        }
    }

    #[test]
    fn scratch_matches_owned_builder_bitwise() {
        let cases: &[(f64, f64, &[f64], &[f64])] = &[
            (0.0, 3.0, &[1.0, 2.0], &[1.0, 0.0, -2.0]),
            (-1.0, 2.0, &[0.0, 1.0], &[3.0, -0.5, -4.0]),
            (1.0, 2.0, &[1.0], &[5.0, -1.0]), // Empty first segment.
            (0.0, 1.0, &[], &[0.0]),          // Uniform, no breakpoints.
            (1800.0, 1800.5, &[1800.2], &[1000.0, -1000.0]),
        ];
        let mut scratch = PiecewiseScratch::new();
        for &(lo, hi, breaks, slopes) in cases {
            let owned =
                PiecewiseExpDensity::continuous_from_slopes(lo, hi, breaks, slopes).expect("owned");
            scratch
                .rebuild_continuous(lo, hi, breaks, slopes)
                .expect("scratch");
            assert_eq!(scratch.segments(), owned.segments());
            assert_eq!(scratch.log_norm().to_bits(), owned.log_norm().to_bits());
            let mut ra = rng_from_seed(11);
            let mut rb = rng_from_seed(11);
            for _ in 0..50 {
                let a = owned.sample(&mut ra);
                let b = scratch.sample(&mut rb);
                assert_eq!(a.to_bits(), b.to_bits());
            }
            for &x in &[lo + 1e-6, 0.5 * (lo + hi), hi - 1e-6] {
                assert_eq!(owned.log_pdf(x).to_bits(), scratch.log_pdf(x).to_bits());
            }
        }
    }

    #[test]
    fn scratch_is_reusable_and_clears_on_error() {
        let mut scratch = PiecewiseScratch::new();
        scratch
            .rebuild_continuous(0.0, 1.0, &[], &[1.0])
            .expect("first build");
        assert_eq!(scratch.segments().len(), 1);
        // Invalid rebuild: unsorted breakpoints.
        assert!(scratch
            .rebuild_continuous(0.0, 1.0, &[0.8, 0.2], &[1.0, 0.0, -1.0])
            .is_err());
        assert!(scratch.segments().is_empty());
        // Divergent rebuild: infinite support with non-negative slope.
        assert!(scratch
            .rebuild_continuous(0.0, f64::INFINITY, &[], &[0.5])
            .is_err());
        assert!(scratch.segments().is_empty());
        // Recovers after errors.
        scratch
            .rebuild_continuous(2.0, 4.0, &[3.0], &[0.5, -0.5])
            .expect("rebuild after error");
        assert_eq!(scratch.segments().len(), 2);
        let mut rng = rng_from_seed(4);
        let x = scratch.sample(&mut rng);
        assert!((2.0..4.0).contains(&x));
    }

    #[test]
    fn log_pdf_outside_support_is_neg_inf() {
        let d = PiecewiseExpDensity::continuous_from_slopes(0.0, 1.0, &[], &[0.0]).unwrap();
        assert_eq!(d.log_pdf(-0.1), f64::NEG_INFINITY);
        assert_eq!(d.log_pdf(1.1), f64::NEG_INFINITY);
        assert!((d.log_pdf(0.5) - 0.0).abs() < 1e-12); // Uniform on [0,1).
    }
}
