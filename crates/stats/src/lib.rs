//! Statistical substrate for queueing-network inference.
//!
//! This crate provides the numerical machinery that the rest of the
//! workspace builds on:
//!
//! - [`rng`]: deterministic, splittable random-number streams so that every
//!   simulation, sampler run, and experiment in the workspace is exactly
//!   reproducible from a single `u64` seed.
//! - [`logspace`]: numerically stable log-domain primitives
//!   (`log_sum_exp`, `ln_1m_exp`, ...) used throughout.
//! - [`exponential`] and [`truncated_exp`]: the exponential family at the
//!   heart of M/M/1 queues, with stable inverse-CDF sampling.
//! - [`piecewise`]: the *piecewise log-linear density engine*. The Gibbs
//!   conditionals derived in the paper (Figure 3) are densities whose
//!   logarithm is piecewise linear in the resampled time; this module
//!   integrates and samples such densities exactly.
//! - [`distributions`]: additional service-time laws (deterministic,
//!   Erlang, hyper-exponential, log-normal) for the generalized-service
//!   extension discussed in the paper's Section 2.
//! - [`descriptive`], [`histogram`], [`ks`], [`autocorr`]: summary
//!   statistics, histograms, Kolmogorov–Smirnov distances, and MCMC
//!   diagnostics used by tests and by the experiment harness.
//! - [`approx`]: tolerance-based float comparison — the sanctioned
//!   alternative to exact `==` on floats (lint rule QNI-N001).
//! - [`point_process`]: homogeneous and inhomogeneous (thinned) Poisson
//!   process samplers that drive open-loop workloads.
//!
//! # Examples
//!
//! ```
//! use qni_stats::exponential::Exponential;
//! use qni_stats::rng::rng_from_seed;
//!
//! let mut rng = rng_from_seed(7);
//! let exp = Exponential::new(2.0).unwrap();
//! let x = exp.sample(&mut rng);
//! assert!(x >= 0.0);
//! ```

pub mod approx;
pub mod autocorr;
pub mod descriptive;
pub mod distributions;
pub mod error;
pub mod exponential;
pub mod histogram;
pub mod ks;
pub mod logspace;
pub mod piecewise;
pub mod point_process;
pub mod rng;
pub mod truncated_exp;

pub use error::StatsError;
