//! Numerically stable log-domain arithmetic.
//!
//! The Gibbs conditionals of the paper multiply exponential densities whose
//! rates can differ by orders of magnitude; normalizing constants are
//! therefore computed in log space. This module collects the stable
//! primitives: `log(Σ exp)`, `log(1 − exp)`, `log(exp − exp)`, and the
//! integral of `exp(c + s·x)` over an interval.

/// Computes `ln(1 - e^x)` for `x < 0` with full precision.
///
/// Uses the Mächler split: `ln(-expm1(x))` for `x > -ln 2` and
/// `ln1p(-exp(x))` otherwise.
///
/// # Panics
///
/// Debug-asserts that `x <= 0`; at `x == 0` the result is `-inf`.
pub fn ln_1m_exp(x: f64) -> f64 {
    debug_assert!(x <= 0.0, "ln_1m_exp requires x <= 0, got {x}");
    if x == 0.0 {
        f64::NEG_INFINITY
    } else if x > -std::f64::consts::LN_2 {
        (-x.exp_m1()).ln()
    } else {
        (-x.exp()).ln_1p()
    }
}

/// Computes `ln(e^a - e^b)` for `a >= b` stably.
///
/// Returns `-inf` when `a == b`.
pub fn log_diff_exp(a: f64, b: f64) -> f64 {
    debug_assert!(a >= b, "log_diff_exp requires a >= b, got a={a}, b={b}");
    if a == b {
        return f64::NEG_INFINITY;
    }
    if b == f64::NEG_INFINITY {
        return a;
    }
    a + ln_1m_exp(b - a)
}

/// Computes `ln(Σᵢ e^{xᵢ})` stably; empty input yields `-inf`.
///
/// # Examples
///
/// ```
/// use qni_stats::logspace::log_sum_exp;
///
/// let v = [0.0_f64.ln(), 1.0_f64.ln(), 2.0_f64.ln()];
/// assert!((log_sum_exp(&v) - 3.0_f64.ln()).abs() < 1e-12);
/// ```
pub fn log_sum_exp(xs: &[f64]) -> f64 {
    let m = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if m == f64::NEG_INFINITY {
        return f64::NEG_INFINITY;
    }
    if m == f64::INFINITY {
        return f64::INFINITY;
    }
    let sum: f64 = xs.iter().map(|&x| (x - m).exp()).sum();
    m + sum.ln()
}

/// Computes `ln ∫_{x0}^{x1} exp(c + s·x) dx` for a finite interval.
///
/// Handles the three regimes exactly:
/// - `s == 0`: the integrand is constant, `c + ln(x1 - x0)`;
/// - `s > 0`: mass concentrates at `x1`;
/// - `s < 0`: mass concentrates at `x0`.
///
/// Returns `-inf` for an empty interval. `c` may be any finite value (it
/// shifts the result additively).
///
/// # Examples
///
/// ```
/// use qni_stats::logspace::log_int_exp_linear;
///
/// // ∫_0^1 e^x dx = e - 1.
/// let v = log_int_exp_linear(0.0, 1.0, 0.0, 1.0);
/// assert!((v.exp() - (1.0_f64.exp() - 1.0)).abs() < 1e-12);
/// ```
pub fn log_int_exp_linear(c: f64, s: f64, x0: f64, x1: f64) -> f64 {
    debug_assert!(x0.is_finite() && x1.is_finite());
    let w = x1 - x0;
    if w <= 0.0 {
        return f64::NEG_INFINITY;
    }
    if s == 0.0 {
        return c + w.ln();
    }
    let a = s.abs();
    // Peak of the integrand on the interval.
    let peak = if s > 0.0 { s * x1 } else { s * x0 };
    // ∫ = exp(c + peak) · (1 - e^{-a·w}) / a.
    c + peak + ln_1m_exp(-a * w) - a.ln()
}

/// Computes `ln ∫_{x0}^{∞} exp(c + s·x) dx` for a decaying tail (`s < 0`).
///
/// Returns `+inf` (divergent) if `s >= 0`.
pub fn log_int_exp_linear_tail(c: f64, s: f64, x0: f64) -> f64 {
    if s >= 0.0 {
        return f64::INFINITY;
    }
    // ∫ = exp(c + s·x0) / |s|.
    c + s * x0 - (-s).ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn numeric_integral(c: f64, s: f64, x0: f64, x1: f64, n: usize) -> f64 {
        // Simpson's rule.
        let h = (x1 - x0) / n as f64;
        let f = |x: f64| (c + s * x).exp();
        let mut acc = f(x0) + f(x1);
        for i in 1..n {
            let x = x0 + i as f64 * h;
            acc += if i % 2 == 1 { 4.0 } else { 2.0 } * f(x);
        }
        acc * h / 3.0
    }

    #[test]
    fn ln_1m_exp_matches_naive_in_easy_range() {
        for &x in &[-0.1, -0.5, -1.0, -3.0, -10.0] {
            let naive = (1.0 - f64::exp(x)).ln();
            assert!((ln_1m_exp(x) - naive).abs() < 1e-12, "x={x}");
        }
    }

    #[test]
    fn ln_1m_exp_tiny_argument_is_accurate() {
        // For x = -1e-12 the naive formula loses most digits.
        let x = -1e-12;
        // 1 - e^x ≈ -x, so ln ≈ ln(1e-12).
        assert!((ln_1m_exp(x) - (1e-12f64).ln()).abs() < 1e-6);
    }

    #[test]
    fn log_diff_exp_basic() {
        let v = log_diff_exp(3.0_f64.ln(), 1.0_f64.ln());
        assert!((v - 2.0_f64.ln()).abs() < 1e-12);
        assert_eq!(log_diff_exp(1.0, 1.0), f64::NEG_INFINITY);
        assert_eq!(log_diff_exp(2.5, f64::NEG_INFINITY), 2.5);
    }

    #[test]
    fn log_sum_exp_handles_extremes() {
        assert_eq!(log_sum_exp(&[]), f64::NEG_INFINITY);
        assert_eq!(
            log_sum_exp(&[f64::NEG_INFINITY, f64::NEG_INFINITY]),
            f64::NEG_INFINITY
        );
        let v = log_sum_exp(&[-1000.0, -1000.0]);
        assert!((v - (-1000.0 + std::f64::consts::LN_2)).abs() < 1e-12);
        let v = log_sum_exp(&[700.0, 710.0]);
        assert!(v.is_finite() && v > 710.0);
    }

    #[test]
    fn integral_matches_quadrature_positive_slope() {
        for &(c, s, x0, x1) in &[
            (0.0, 1.0, 0.0, 1.0),
            (2.0, 3.5, -1.0, 0.5),
            (-1.0, 0.2, 10.0, 11.0),
        ] {
            let exact = log_int_exp_linear(c, s, x0, x1).exp();
            let num = numeric_integral(c, s, x0, x1, 2000);
            assert!((exact - num).abs() / num < 1e-8, "{c} {s} {x0} {x1}");
        }
    }

    #[test]
    fn integral_matches_quadrature_negative_slope() {
        for &(c, s, x0, x1) in &[(0.0, -1.0, 0.0, 1.0), (1.0, -7.0, 2.0, 2.25)] {
            let exact = log_int_exp_linear(c, s, x0, x1).exp();
            let num = numeric_integral(c, s, x0, x1, 2000);
            assert!((exact - num).abs() / num < 1e-8);
        }
    }

    #[test]
    fn integral_zero_slope_is_width() {
        let v = log_int_exp_linear(0.0, 0.0, 3.0, 5.0);
        assert!((v - 2.0_f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn integral_empty_interval_is_zero_mass() {
        assert_eq!(log_int_exp_linear(0.0, 1.0, 1.0, 1.0), f64::NEG_INFINITY);
        assert_eq!(log_int_exp_linear(0.0, 1.0, 2.0, 1.0), f64::NEG_INFINITY);
    }

    #[test]
    fn integral_is_stable_for_huge_slopes() {
        // Mass is e^{c + s·x1}/s-ish; log must stay finite even when the
        // linear term overflows exp().
        let v = log_int_exp_linear(0.0, 800.0, 0.0, 2.0);
        assert!(v.is_finite());
        assert!((v - (1600.0 - 800.0_f64.ln())).abs() < 1e-9);
    }

    #[test]
    fn tail_integral_matches_closed_form() {
        // ∫_1^∞ e^{-2x} dx = e^{-2}/2.
        let v = log_int_exp_linear_tail(0.0, -2.0, 1.0).exp();
        assert!((v - (-2.0f64).exp() / 2.0).abs() < 1e-12);
        assert_eq!(log_int_exp_linear_tail(0.0, 0.0, 0.0), f64::INFINITY);
        assert_eq!(log_int_exp_linear_tail(0.0, 1.0, 0.0), f64::INFINITY);
    }
}
