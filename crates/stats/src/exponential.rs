//! The exponential distribution, the service law of M/M/1 queues.

use crate::error::StatsError;
use rand::Rng;

/// Exponential distribution with rate `rate` (mean `1/rate`).
///
/// This is the service-time law of every queue in an M/M/1 network, and —
/// via the paper's initial-event convention — also the interarrival law of
/// the system (the virtual queue `q0` has rate λ).
///
/// # Examples
///
/// ```
/// use qni_stats::exponential::Exponential;
///
/// let e = Exponential::new(4.0).unwrap();
/// assert!((e.mean() - 0.25).abs() < 1e-12);
/// assert!((e.cdf(e.inv_cdf(0.3)) - 0.3).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    rate: f64,
}

// Serialized as the bare rate; deserialization re-validates the invariant.
impl serde::Serialize for Exponential {
    fn serialize<S: serde::Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_f64(self.rate)
    }
}

impl<'de> serde::Deserialize<'de> for Exponential {
    fn deserialize<D: serde::Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let rate = f64::deserialize(d)?;
        Exponential::new(rate).map_err(serde::de::Error::custom)
    }
}

impl Exponential {
    /// Creates an exponential distribution with the given rate.
    ///
    /// Returns [`StatsError::NonPositiveRate`] unless `rate` is finite and
    /// strictly positive.
    pub fn new(rate: f64) -> Result<Self, StatsError> {
        if !(rate.is_finite() && rate > 0.0) {
            return Err(StatsError::NonPositiveRate { value: rate });
        }
        Ok(Exponential { rate })
    }

    /// Returns the rate parameter.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Returns the mean `1/rate`.
    pub fn mean(&self) -> f64 {
        1.0 / self.rate
    }

    /// Returns the variance `1/rate²`.
    pub fn variance(&self) -> f64 {
        1.0 / (self.rate * self.rate)
    }

    /// Evaluates the density at `x` (zero for negative `x`).
    pub fn pdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            0.0
        } else {
            self.rate * (-self.rate * x).exp()
        }
    }

    /// Evaluates the log-density at `x` (`-inf` for negative `x`).
    pub fn log_pdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            f64::NEG_INFINITY
        } else {
            self.rate.ln() - self.rate * x
        }
    }

    /// Evaluates the CDF at `x`.
    pub fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            -(-self.rate * x).exp_m1()
        }
    }

    /// Evaluates the quantile function at `p ∈ [0, 1)`.
    pub fn inv_cdf(&self, p: f64) -> f64 {
        debug_assert!((0.0..1.0).contains(&p));
        -(-p).ln_1p() / self.rate
    }

    /// Draws one sample using inverse-CDF transform.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // `random::<f64>()` is uniform on [0,1); 1-u avoids ln(0).
        let u: f64 = rng.random();
        self.inv_cdf(u)
    }

    /// The maximum-likelihood rate estimate `n / Σxᵢ` from i.i.d. samples.
    ///
    /// Returns [`StatsError::EmptyData`] on empty input and
    /// [`StatsError::BadParameter`] if the sum is not strictly positive.
    pub fn mle_rate(samples: &[f64]) -> Result<f64, StatsError> {
        if samples.is_empty() {
            return Err(StatsError::EmptyData);
        }
        let sum: f64 = samples.iter().sum();
        if !(sum.is_finite() && sum > 0.0) {
            return Err(StatsError::BadParameter {
                what: "sum of exponential samples must be positive",
            });
        }
        Ok(samples.len() as f64 / sum)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::rng_from_seed;

    #[test]
    fn rejects_bad_rates() {
        assert!(Exponential::new(0.0).is_err());
        assert!(Exponential::new(-1.0).is_err());
        assert!(Exponential::new(f64::NAN).is_err());
        assert!(Exponential::new(f64::INFINITY).is_err());
    }

    #[test]
    fn moments() {
        let e = Exponential::new(2.0).unwrap();
        assert_eq!(e.mean(), 0.5);
        assert_eq!(e.variance(), 0.25);
    }

    #[test]
    fn pdf_cdf_consistency() {
        let e = Exponential::new(1.5).unwrap();
        // d/dx CDF = pdf (finite differences).
        for &x in &[0.1, 0.5, 1.0, 3.0] {
            let h = 1e-6;
            let d = (e.cdf(x + h) - e.cdf(x - h)) / (2.0 * h);
            assert!((d - e.pdf(x)).abs() < 1e-6);
        }
        assert_eq!(e.pdf(-1.0), 0.0);
        assert_eq!(e.cdf(-1.0), 0.0);
        assert_eq!(e.log_pdf(-0.5), f64::NEG_INFINITY);
    }

    #[test]
    fn inverse_cdf_round_trip() {
        let e = Exponential::new(0.7).unwrap();
        for &p in &[0.0, 0.01, 0.5, 0.9, 0.9999] {
            assert!((e.cdf(e.inv_cdf(p)) - p).abs() < 1e-10);
        }
    }

    #[test]
    fn sample_mean_close_to_theoretical() {
        let e = Exponential::new(5.0).unwrap();
        let mut rng = rng_from_seed(11);
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| e.sample(&mut rng)).sum::<f64>() / n as f64;
        // Standard error ≈ 0.2/√n ≈ 4.5e-4; allow 5 sigma.
        assert!((mean - 0.2).abs() < 2.5e-3, "mean={mean}");
    }

    #[test]
    fn mle_recovers_rate() {
        let e = Exponential::new(3.0).unwrap();
        let mut rng = rng_from_seed(5);
        let samples: Vec<f64> = (0..100_000).map(|_| e.sample(&mut rng)).collect();
        let r = Exponential::mle_rate(&samples).unwrap();
        assert!((r - 3.0).abs() < 0.05, "r={r}");
    }

    #[test]
    fn mle_rejects_degenerate_input() {
        assert_eq!(Exponential::mle_rate(&[]), Err(StatsError::EmptyData));
        assert!(Exponential::mle_rate(&[0.0, 0.0]).is_err());
    }
}
