//! Tolerance-based float comparison.
//!
//! The workspace lint (`qni-lint`, rule QNI-N001) forbids exact `==` /
//! `!=` between floats except against the sentinels `0.0` and
//! `±INFINITY`: exact equality of computed values is almost never the
//! intended predicate after rounding. This module is the sanctioned
//! replacement — a combined absolute/relative tolerance test, plus a
//! default-tolerance convenience for the common case.
//!
//! # Examples
//!
//! ```
//! use qni_stats::approx::{approx_eq, close};
//!
//! let x = 0.1_f64 + 0.2;
//! assert!(x != 0.3); // exact equality fails after rounding...
//! assert!(close(x, 0.3)); // ...the tolerance test is what was meant
//! assert!(approx_eq(1e12, 1e12 + 1.0, 0.0, 1e-9));
//! ```

/// Default absolute tolerance used by [`close`]: guards comparisons near
/// zero, where a relative test degenerates.
pub const DEFAULT_ABS_TOL: f64 = 1e-12;

/// Default relative tolerance used by [`close`]: ~1e4 ULPs at unit
/// scale, loose enough to absorb accumulated rounding across the
/// samplers' log-domain round trips.
pub const DEFAULT_REL_TOL: f64 = 1e-9;

/// Whether `a` and `b` agree within `abs_tol` *or* within `rel_tol`
/// relative to the larger magnitude.
///
/// The predicate is `|a − b| ≤ max(abs_tol, rel_tol · max(|a|, |b|))`,
/// the standard combined test: the absolute leg handles values near
/// zero, the relative leg scales with magnitude. Edge cases:
///
/// - any NaN input compares unequal (like `==`),
/// - two infinities of the same sign compare equal,
/// - tolerances are clamped up to `0.0`, so negative tolerances behave
///   as exact comparison.
pub fn approx_eq(a: f64, b: f64, abs_tol: f64, rel_tol: f64) -> bool {
    if a.is_nan() || b.is_nan() {
        return false;
    }
    if a.is_infinite() || b.is_infinite() {
        return a.is_infinite() && b.is_infinite() && a.is_sign_positive() == b.is_sign_positive();
    }
    let diff = (a - b).abs();
    let scale = a.abs().max(b.abs());
    diff <= abs_tol.max(0.0).max(rel_tol.max(0.0) * scale)
}

/// [`approx_eq`] with the workspace default tolerances
/// ([`DEFAULT_ABS_TOL`], [`DEFAULT_REL_TOL`]).
pub fn close(a: f64, b: f64) -> bool {
    approx_eq(a, b, DEFAULT_ABS_TOL, DEFAULT_REL_TOL)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulated_rounding_is_close() {
        let x = 0.1_f64 + 0.2;
        assert!(x != 0.3);
        assert!(close(x, 0.3));
        assert!(close(0.3, x));
    }

    #[test]
    fn distinct_values_are_not_close() {
        assert!(!close(1.0, 1.0 + 1e-6));
        assert!(!close(0.0, 1e-9));
        assert!(!approx_eq(1.0, 2.0, 0.5, 0.0));
    }

    #[test]
    fn absolute_leg_handles_near_zero() {
        assert!(close(1e-13, -1e-13));
        assert!(approx_eq(0.0, 5e-7, 1e-6, 0.0));
        assert!(!approx_eq(0.0, 5e-7, 1e-8, 0.0));
    }

    #[test]
    fn relative_leg_scales_with_magnitude() {
        assert!(approx_eq(1e12, 1e12 + 1.0, 0.0, 1e-9));
        assert!(!approx_eq(1e12, 1e12 + 1e6, 0.0, 1e-9));
    }

    #[test]
    fn nan_never_compares_equal() {
        assert!(!close(f64::NAN, f64::NAN));
        assert!(!close(f64::NAN, 0.0));
        assert!(!approx_eq(0.0, f64::NAN, f64::INFINITY, f64::INFINITY));
    }

    #[test]
    fn infinities_compare_by_sign() {
        assert!(close(f64::INFINITY, f64::INFINITY));
        assert!(close(f64::NEG_INFINITY, f64::NEG_INFINITY));
        assert!(!close(f64::INFINITY, f64::NEG_INFINITY));
        assert!(!close(f64::INFINITY, 1e300));
    }

    #[test]
    fn negative_tolerances_degrade_to_exact() {
        assert!(approx_eq(1.5, 1.5, -1.0, -1.0));
        assert!(!approx_eq(1.5, 1.5 + 1e-15, -1.0, -1.0));
    }
}
