//! Fixed-range equal-width histograms for diagnostics and tests.

use crate::error::StatsError;

/// An equal-width histogram over `[lo, hi)` with values outside the range
/// counted in saturating edge bins.
///
/// # Examples
///
/// ```
/// use qni_stats::histogram::Histogram;
///
/// let mut h = Histogram::new(0.0, 1.0, 4).unwrap();
/// h.add(0.1);
/// h.add(0.9);
/// assert_eq!(h.total(), 2);
/// assert_eq!(h.counts()[0], 1);
/// assert_eq!(h.counts()[3], 1);
/// ```
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    total: u64,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins on `[lo, hi)`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Result<Self, StatsError> {
        if !(lo.is_finite() && hi.is_finite() && hi > lo) {
            return Err(StatsError::BadInterval { lo, hi });
        }
        if bins == 0 {
            return Err(StatsError::BadParameter {
                what: "histogram needs at least one bin",
            });
        }
        Ok(Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            total: 0,
            underflow: 0,
            overflow: 0,
        })
    }

    /// Adds an observation.
    pub fn add(&mut self, x: f64) {
        self.total += 1;
        if x < self.lo {
            self.underflow += 1;
            return;
        }
        if x >= self.hi {
            self.overflow += 1;
            return;
        }
        let frac = (x - self.lo) / (self.hi - self.lo);
        let idx = ((frac * self.counts.len() as f64) as usize).min(self.counts.len() - 1);
        self.counts[idx] += 1;
    }

    /// In-range bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total number of observations including out-of-range.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Observations below `lo`.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above `hi`.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Width of each bin.
    pub fn bin_width(&self) -> f64 {
        (self.hi - self.lo) / self.counts.len() as f64
    }

    /// Midpoint of bin `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        self.lo + (i as f64 + 0.5) * self.bin_width()
    }

    /// Empirical density estimate at bin `i` (count normalized by total
    /// observations and bin width).
    pub fn density(&self, i: usize) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.counts[i] as f64 / (self.total as f64 * self.bin_width())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exponential::Exponential;
    use crate::rng::rng_from_seed;

    #[test]
    fn constructor_validates() {
        assert!(Histogram::new(1.0, 0.0, 4).is_err());
        assert!(Histogram::new(0.0, 1.0, 0).is_err());
        assert!(Histogram::new(f64::NAN, 1.0, 4).is_err());
    }

    #[test]
    fn bin_assignment() {
        let mut h = Histogram::new(0.0, 10.0, 10).unwrap();
        h.add(0.0);
        h.add(9.9999);
        h.add(5.0);
        assert_eq!(h.counts()[0], 1);
        assert_eq!(h.counts()[9], 1);
        assert_eq!(h.counts()[5], 1);
    }

    #[test]
    fn out_of_range_tracked() {
        let mut h = Histogram::new(0.0, 1.0, 2).unwrap();
        h.add(-1.0);
        h.add(2.0);
        h.add(1.0); // Right edge counts as overflow (half-open range).
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.total(), 3);
        assert_eq!(h.counts().iter().sum::<u64>(), 0);
    }

    #[test]
    fn density_tracks_exponential() {
        let e = Exponential::new(2.0).unwrap();
        let mut rng = rng_from_seed(8);
        let mut h = Histogram::new(0.0, 3.0, 30).unwrap();
        for _ in 0..200_000 {
            h.add(e.sample(&mut rng));
        }
        // Compare empirical density with the true pdf at a few centers.
        for &i in &[0usize, 5, 10, 20] {
            let x = h.bin_center(i);
            let err = (h.density(i) - e.pdf(x)).abs();
            assert!(
                err < 0.05,
                "bin {i}: density={} pdf={}",
                h.density(i),
                e.pdf(x)
            );
        }
    }
}
