//! The truncated exponential distribution `TrExp(rate; width)`.
//!
//! The paper's Figure 3 samples the middle segment of the Gibbs conditional
//! from an exponential truncated to an interval. This module implements
//! that law with a numerically stable inverse CDF that degrades gracefully
//! to the uniform distribution as `rate·width → 0`.

use crate::error::StatsError;
use rand::Rng;

/// Below this value of `rate · width`, the truncated exponential is
/// numerically indistinguishable from uniform and is sampled as such.
const UNIFORM_REGIME: f64 = 1e-12;

/// Exponential distribution with rate `rate`, truncated to `(0, width)`.
///
/// Density `f(x) ∝ e^{-rate·x}` on `(0, width)`. Matches the paper's
/// `TrExp(µ; N)` notation with `µ = rate`, `N = width`.
///
/// # Examples
///
/// ```
/// use qni_stats::truncated_exp::TruncatedExp;
///
/// let t = TruncatedExp::new(2.0, 1.0).unwrap();
/// let x = t.inv_cdf(0.5);
/// assert!(x > 0.0 && x < 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TruncatedExp {
    rate: f64,
    width: f64,
}

impl TruncatedExp {
    /// Creates a truncated exponential on `(0, width)` with the given rate.
    ///
    /// `rate` must be finite and strictly positive; `width` must be finite
    /// and strictly positive.
    pub fn new(rate: f64, width: f64) -> Result<Self, StatsError> {
        if !(rate.is_finite() && rate > 0.0) {
            return Err(StatsError::NonPositiveRate { value: rate });
        }
        if !(width.is_finite() && width > 0.0) {
            return Err(StatsError::BadInterval { lo: 0.0, hi: width });
        }
        Ok(TruncatedExp { rate, width })
    }

    /// Returns the rate parameter.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Returns the truncation width.
    pub fn width(&self) -> f64 {
        self.width
    }

    /// Evaluates the density at `x`.
    pub fn pdf(&self, x: f64) -> f64 {
        if x <= 0.0 || x >= self.width {
            return 0.0;
        }
        let z = -(-self.rate * self.width).exp_m1(); // 1 - e^{-r·w}
        self.rate * (-self.rate * x).exp() / z
    }

    /// Evaluates the quantile function at `p ∈ [0, 1]`.
    ///
    /// Stable for all regimes of `rate·width`: for tiny products it
    /// returns the uniform quantile `p·width`.
    pub fn inv_cdf(&self, p: f64) -> f64 {
        debug_assert!((0.0..=1.0).contains(&p));
        let rw = self.rate * self.width;
        if rw < UNIFORM_REGIME {
            return p * self.width;
        }
        // F(x) = (1 - e^{-r·x}) / (1 - e^{-r·w});  x = -ln(1 - p·q)/r with
        // q = 1 - e^{-r·w} computed by expm1 for accuracy.
        let q = -(-rw).exp_m1();
        let x = -(-p * q).ln_1p() / self.rate;
        x.min(self.width)
    }

    /// Draws one sample by inverse-CDF transform.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.random();
        self.inv_cdf(u)
    }

    /// Returns the mean `1/r − w·e^{-r·w}/(1 − e^{-r·w})`.
    pub fn mean(&self) -> f64 {
        let rw = self.rate * self.width;
        if rw < UNIFORM_REGIME {
            return self.width / 2.0;
        }
        let q = -(-rw).exp_m1();
        1.0 / self.rate - self.width * (-rw).exp() / q
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::rng_from_seed;

    #[test]
    fn rejects_bad_parameters() {
        assert!(TruncatedExp::new(0.0, 1.0).is_err());
        assert!(TruncatedExp::new(1.0, 0.0).is_err());
        assert!(TruncatedExp::new(1.0, f64::INFINITY).is_err());
        assert!(TruncatedExp::new(f64::NAN, 1.0).is_err());
    }

    #[test]
    fn inv_cdf_endpoints() {
        let t = TruncatedExp::new(3.0, 2.0).unwrap();
        assert_eq!(t.inv_cdf(0.0), 0.0);
        assert!((t.inv_cdf(1.0) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn inv_cdf_matches_cdf_numerically() {
        let t = TruncatedExp::new(1.7, 0.9).unwrap();
        let cdf = |x: f64| (1.0 - (-t.rate() * x).exp()) / (1.0 - (-t.rate() * t.width()).exp());
        for &p in &[0.05, 0.3, 0.5, 0.77, 0.99] {
            assert!((cdf(t.inv_cdf(p)) - p).abs() < 1e-10);
        }
    }

    #[test]
    fn uniform_limit_for_tiny_rate_width() {
        let t = TruncatedExp::new(1e-15, 4.0).unwrap();
        assert!((t.inv_cdf(0.25) - 1.0).abs() < 1e-9);
        assert!((t.mean() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn huge_rate_concentrates_near_zero() {
        let t = TruncatedExp::new(1e6, 1.0).unwrap();
        assert!(t.inv_cdf(0.999) < 1e-2);
    }

    #[test]
    fn sample_stays_in_support_and_matches_mean() {
        let t = TruncatedExp::new(2.0, 1.5).unwrap();
        let mut rng = rng_from_seed(3);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = t.sample(&mut rng);
            assert!((0.0..=1.5).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!(
            (mean - t.mean()).abs() < 0.01,
            "mean={mean} vs {}",
            t.mean()
        );
    }

    #[test]
    fn pdf_integrates_to_one() {
        let t = TruncatedExp::new(0.8, 3.0).unwrap();
        let n = 20_000;
        let h = t.width() / n as f64;
        let mut acc = 0.0;
        for i in 0..n {
            acc += t.pdf((i as f64 + 0.5) * h) * h;
        }
        assert!((acc - 1.0).abs() < 1e-6);
    }
}
