//! Error type for statistical primitives.

use std::fmt;

/// Errors produced by constructors and evaluators in this crate.
///
/// All constructors in this crate validate their parameters and return
/// `Result<_, StatsError>` rather than panicking, so callers can surface
/// configuration mistakes (a non-positive rate, an empty support, ...) as
/// ordinary errors.
#[derive(Debug, Clone, PartialEq)]
pub enum StatsError {
    /// A rate parameter was not strictly positive and finite.
    NonPositiveRate {
        /// The offending value.
        value: f64,
    },
    /// An interval `[lo, hi]` was empty or not finite where required.
    BadInterval {
        /// Lower endpoint supplied.
        lo: f64,
        /// Upper endpoint supplied.
        hi: f64,
    },
    /// A probability was outside `[0, 1]` or a weight vector did not
    /// normalize.
    BadProbability {
        /// The offending value.
        value: f64,
    },
    /// A piecewise density had no segment with positive mass.
    EmptyDensity,
    /// A shape or count parameter was invalid.
    BadParameter {
        /// Human-readable description of the violated requirement.
        what: &'static str,
    },
    /// Input data was empty where at least one element is required.
    EmptyData,
}

impl fmt::Display for StatsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatsError::NonPositiveRate { value } => {
                write!(f, "rate must be strictly positive and finite, got {value}")
            }
            StatsError::BadInterval { lo, hi } => {
                write!(f, "invalid interval [{lo}, {hi}]")
            }
            StatsError::BadProbability { value } => {
                write!(f, "invalid probability {value}")
            }
            StatsError::EmptyDensity => write!(f, "piecewise density has no mass"),
            StatsError::BadParameter { what } => write!(f, "invalid parameter: {what}"),
            StatsError::EmptyData => write!(f, "empty data"),
        }
    }
}

impl std::error::Error for StatsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_value() {
        let e = StatsError::NonPositiveRate { value: -1.0 };
        assert!(e.to_string().contains("-1"));
        let e = StatsError::BadInterval { lo: 3.0, hi: 1.0 };
        assert!(e.to_string().contains('3'));
        let e = StatsError::BadProbability { value: 1.5 };
        assert!(e.to_string().contains("1.5"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err<E: std::error::Error>(_: E) {}
        takes_err(StatsError::EmptyDensity);
    }
}
