//! Autocorrelation and effective sample size for MCMC diagnostics.
//!
//! Stochastic EM produces a Markov chain of parameter estimates; these
//! utilities quantify how correlated the chain is and how many effectively
//! independent draws it contains (Geyer's initial positive sequence).

use crate::error::StatsError;

/// Sample autocovariance at lag `k` (biased, `1/n` normalization).
pub fn autocovariance(xs: &[f64], k: usize) -> Result<f64, StatsError> {
    if xs.is_empty() || k >= xs.len() {
        return Err(StatsError::EmptyData);
    }
    let n = xs.len();
    let mean: f64 = xs.iter().sum::<f64>() / n as f64;
    let mut acc = 0.0;
    for i in 0..n - k {
        acc += (xs[i] - mean) * (xs[i + k] - mean);
    }
    Ok(acc / n as f64)
}

/// Sample autocorrelation at lag `k`, in `[-1, 1]`.
pub fn autocorrelation(xs: &[f64], k: usize) -> Result<f64, StatsError> {
    let c0 = autocovariance(xs, 0)?;
    if c0 <= 0.0 {
        return Err(StatsError::BadParameter {
            what: "zero-variance sequence has undefined autocorrelation",
        });
    }
    Ok(autocovariance(xs, k)? / c0)
}

/// Effective sample size via Geyer's initial positive sequence estimator.
///
/// Sums consecutive autocorrelation pairs `ρ(2t) + ρ(2t+1)` while they stay
/// positive; `ESS = n / (1 + 2·Σρ)`. Returns `n` for an (empirically)
/// uncorrelated chain.
pub fn effective_sample_size(xs: &[f64]) -> Result<f64, StatsError> {
    if xs.len() < 4 {
        return Err(StatsError::EmptyData);
    }
    let n = xs.len();
    let c0 = autocovariance(xs, 0)?;
    if c0 <= 0.0 {
        // A constant chain carries one effective observation.
        return Ok(1.0);
    }
    let mut sum_rho = 0.0;
    let mut t = 1;
    while t + 1 < n / 2 {
        let pair = (autocovariance(xs, t)? + autocovariance(xs, t + 1)?) / c0;
        if pair <= 0.0 {
            break;
        }
        sum_rho += pair;
        t += 2;
    }
    Ok(n as f64 / (1.0 + 2.0 * sum_rho))
}

/// Gelman–Rubin variance components: within-chain variance `W` and the
/// pooled estimate `var⁺ = (n−1)/n · W + B/n`.
///
/// All chains are truncated to the shortest common length `n`; requires
/// ≥ 2 chains of length ≥ 2. `var⁺/W` is the squared potential scale
/// reduction factor (R̂²); `W ≤ 0` with `var⁺ > 0` means constant chains
/// stuck at different values (maximally unmixed).
pub fn within_and_pooled_variance(chains: &[&[f64]]) -> Result<(f64, f64), StatsError> {
    if chains.len() < 2 || chains.iter().any(|c| c.len() < 2) {
        return Err(StatsError::EmptyData);
    }
    let m = chains.len() as f64;
    let n = chains.iter().map(|c| c.len()).min().expect("non-empty"); // qni-lint: allow(QNI-E002) — caller contract: diagnostics run on at least one chain
    let means: Vec<f64> = chains
        .iter()
        .map(|c| c[..n].iter().sum::<f64>() / n as f64)
        .collect();
    let grand = means.iter().sum::<f64>() / m;
    let w = chains
        .iter()
        .zip(&means)
        .map(|(c, mu)| c[..n].iter().map(|x| (x - mu).powi(2)).sum::<f64>() / (n - 1) as f64)
        .sum::<f64>()
        / m;
    let b = n as f64 / (m - 1.0) * means.iter().map(|mu| (mu - grand).powi(2)).sum::<f64>();
    let var_plus = (n - 1) as f64 / n as f64 * w + b / n as f64;
    Ok((w, var_plus))
}

/// Combined effective sample size of several independent chains.
///
/// Every chain is truncated to the shortest common length; each truncated
/// chain's ESS is computed with [`effective_sample_size`] and the results
/// are summed, then — when two or more chains are given — the sum is
/// deflated by `W / var⁺` (see [`within_and_pooled_variance`]; the factor
/// is `1/R̂²`). For well-mixed chains the factor is ≈ 1 and independent
/// chains contribute additively; for chains stuck at different modes,
/// between-chain variance dominates `var⁺` and the pooled ESS collapses
/// toward zero instead of overstating the information in the pooled
/// estimate. This mirrors the multi-chain ESS of Gelman et al. (*Bayesian
/// Data Analysis*, §11.5), which discounts by between-chain disagreement
/// rather than summing per-chain values.
///
/// # Examples
///
/// ```
/// use qni_stats::autocorr::multi_chain_ess;
///
/// let a: Vec<f64> = (0..100).map(|i| (i as f64 * 0.7).sin()).collect();
/// let b: Vec<f64> = (0..100).map(|i| (i as f64 * 1.3).cos()).collect();
/// let pooled = multi_chain_ess(&[&a, &b]).unwrap();
/// assert!(pooled > 0.0);
/// ```
pub fn multi_chain_ess(chains: &[&[f64]]) -> Result<f64, StatsError> {
    if chains.is_empty() {
        return Err(StatsError::EmptyData);
    }
    let n = chains.iter().map(|c| c.len()).min().expect("non-empty"); // qni-lint: allow(QNI-E002) — caller contract: diagnostics run on at least one chain
    let truncated: Vec<&[f64]> = chains.iter().map(|c| &c[..n]).collect();
    let mut total = 0.0;
    for c in &truncated {
        total += effective_sample_size(c)?;
    }
    if truncated.len() < 2 {
        return Ok(total);
    }
    let (w, var_plus) = within_and_pooled_variance(&truncated)?;
    if var_plus <= 0.0 {
        // All chains constant and identical: the per-chain values (1
        // each) already say it.
        return Ok(total);
    }
    if w <= 0.0 {
        // Constant chains at different values: the pooled estimate
        // carries no usable information.
        return Ok(0.0);
    }
    // Cap at 1 — agreement cannot add information beyond the sum.
    Ok(total * (w / var_plus).min(1.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::rng_from_seed;
    use rand::Rng;

    #[test]
    fn white_noise_has_full_ess() {
        let mut rng = rng_from_seed(31);
        let xs: Vec<f64> = (0..5_000).map(|_| rng.random::<f64>()).collect();
        let ess = effective_sample_size(&xs).unwrap();
        assert!(ess > 2_500.0, "ess={ess}");
        let rho1 = autocorrelation(&xs, 1).unwrap();
        assert!(rho1.abs() < 0.05);
    }

    #[test]
    fn ar1_chain_has_reduced_ess() {
        // x_t = 0.9·x_{t-1} + ε: theoretical ESS factor (1-φ)/(1+φ) ≈ 1/19.
        let mut rng = rng_from_seed(32);
        let mut xs = vec![0.0f64];
        for _ in 0..20_000 {
            let e: f64 = rng.random::<f64>() - 0.5;
            let prev = *xs.last().expect("non-empty");
            xs.push(0.9 * prev + e);
        }
        let ess = effective_sample_size(&xs).unwrap();
        let n = xs.len() as f64;
        assert!(ess < n / 8.0, "ess={ess}, n={n}");
        assert!(ess > n / 60.0, "ess={ess}, n={n}");
        let rho1 = autocorrelation(&xs, 1).unwrap();
        assert!((rho1 - 0.9).abs() < 0.05, "rho1={rho1}");
    }

    #[test]
    fn constant_sequence() {
        let xs = vec![2.0; 100];
        assert_eq!(effective_sample_size(&xs).unwrap(), 1.0);
        assert!(autocorrelation(&xs, 1).is_err());
    }

    #[test]
    fn validation() {
        assert!(autocovariance(&[], 0).is_err());
        assert!(autocovariance(&[1.0, 2.0], 2).is_err());
        assert!(effective_sample_size(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn multi_chain_ess_sums_well_mixed_chains() {
        let mut rng = rng_from_seed(33);
        let a: Vec<f64> = (0..2_000).map(|_| rng.random::<f64>()).collect();
        let b: Vec<f64> = (0..2_000).map(|_| rng.random::<f64>()).collect();
        let ea = effective_sample_size(&a).unwrap();
        let eb = effective_sample_size(&b).unwrap();
        let pooled = multi_chain_ess(&[&a, &b]).unwrap();
        // Same-distribution chains: the between-chain discount is ≈ 1.
        assert!(pooled <= ea + eb + 1e-9, "pooled={pooled} sum={}", ea + eb);
        assert!(pooled > 0.9 * (ea + eb), "pooled={pooled} sum={}", ea + eb);
        assert!(multi_chain_ess(&[]).is_err());
        assert!(multi_chain_ess(&[&[1.0, 2.0][..]]).is_err());
    }

    #[test]
    fn within_and_pooled_variance_components() {
        // Two chains of variance 0.25 (alternating ±0.5 around their
        // means) with means 0 and 10: W = 0.25, var⁺ dominated by B.
        let a: Vec<f64> = (0..100)
            .map(|i| if i % 2 == 0 { 0.5 } else { -0.5 })
            .collect();
        let b: Vec<f64> = a.iter().map(|x| x + 10.0).collect();
        let (w, var_plus) = within_and_pooled_variance(&[&a, &b]).unwrap();
        assert!((w - 0.25252525).abs() < 1e-6, "w={w}");
        assert!(var_plus > 10.0, "var_plus={var_plus}");
        assert!(within_and_pooled_variance(&[&a]).is_err());
        assert!(within_and_pooled_variance(&[&a, &[1.0][..]]).is_err());
    }

    #[test]
    fn multi_chain_ess_truncates_to_common_length() {
        // A long chain that drifts after the common prefix must not leak
        // its full-length ESS into the pooled value: only the first
        // min-length samples of each chain may count.
        let mut rng = rng_from_seed(35);
        let long: Vec<f64> = (0..5_000)
            .map(|i| rng.random::<f64>() + if i >= 100 { 10.0 } else { 0.0 })
            .collect();
        let short: Vec<f64> = (0..100).map(|_| rng.random::<f64>()).collect();
        let pooled = multi_chain_ess(&[&long, &short]).unwrap();
        let prefix_sum =
            effective_sample_size(&long[..100]).unwrap() + effective_sample_size(&short).unwrap();
        assert!(
            pooled <= prefix_sum + 1e-9,
            "pooled={pooled} prefix_sum={prefix_sum}"
        );
    }

    #[test]
    fn multi_chain_ess_zero_for_constant_separated_chains() {
        let pooled = multi_chain_ess(&[&[1.0; 10][..], &[2.0; 10][..]]).unwrap();
        assert_eq!(pooled, 0.0);
        // Identical constant chains: one effective draw per chain.
        let pooled = multi_chain_ess(&[&[1.0; 10][..], &[1.0; 10][..]]).unwrap();
        assert_eq!(pooled, 2.0);
    }

    #[test]
    fn multi_chain_ess_collapses_for_separated_chains() {
        // Two locally-uncorrelated chains stuck at different modes: each
        // alone has ESS ≈ n, but the pooled estimate carries almost no
        // information — the discount must crush the naive 2n sum.
        let mut rng = rng_from_seed(34);
        let a: Vec<f64> = (0..1_000).map(|_| rng.random::<f64>()).collect();
        let b: Vec<f64> = (0..1_000).map(|_| rng.random::<f64>() + 10.0).collect();
        let naive = effective_sample_size(&a).unwrap() + effective_sample_size(&b).unwrap();
        let pooled = multi_chain_ess(&[&a, &b]).unwrap();
        assert!(pooled < naive / 100.0, "pooled={pooled} naive={naive}");
    }
}
