//! Autocorrelation and effective sample size for MCMC diagnostics.
//!
//! Stochastic EM produces a Markov chain of parameter estimates; these
//! utilities quantify how correlated the chain is and how many effectively
//! independent draws it contains (Geyer's initial positive sequence).

use crate::error::StatsError;

/// Sample autocovariance at lag `k` (biased, `1/n` normalization).
pub fn autocovariance(xs: &[f64], k: usize) -> Result<f64, StatsError> {
    if xs.is_empty() || k >= xs.len() {
        return Err(StatsError::EmptyData);
    }
    let n = xs.len();
    let mean: f64 = xs.iter().sum::<f64>() / n as f64;
    let mut acc = 0.0;
    for i in 0..n - k {
        acc += (xs[i] - mean) * (xs[i + k] - mean);
    }
    Ok(acc / n as f64)
}

/// Sample autocorrelation at lag `k`, in `[-1, 1]`.
pub fn autocorrelation(xs: &[f64], k: usize) -> Result<f64, StatsError> {
    let c0 = autocovariance(xs, 0)?;
    if c0 <= 0.0 {
        return Err(StatsError::BadParameter {
            what: "zero-variance sequence has undefined autocorrelation",
        });
    }
    Ok(autocovariance(xs, k)? / c0)
}

/// Effective sample size via Geyer's initial positive sequence estimator.
///
/// Sums consecutive autocorrelation pairs `ρ(2t) + ρ(2t+1)` while they stay
/// positive; `ESS = n / (1 + 2·Σρ)`. Returns `n` for an (empirically)
/// uncorrelated chain.
pub fn effective_sample_size(xs: &[f64]) -> Result<f64, StatsError> {
    if xs.len() < 4 {
        return Err(StatsError::EmptyData);
    }
    let n = xs.len();
    let c0 = autocovariance(xs, 0)?;
    if c0 <= 0.0 {
        // A constant chain carries one effective observation.
        return Ok(1.0);
    }
    let mut sum_rho = 0.0;
    let mut t = 1;
    while t + 1 < n / 2 {
        let pair = (autocovariance(xs, t)? + autocovariance(xs, t + 1)?) / c0;
        if pair <= 0.0 {
            break;
        }
        sum_rho += pair;
        t += 2;
    }
    Ok(n as f64 / (1.0 + 2.0 * sum_rho))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::rng_from_seed;
    use rand::Rng;

    #[test]
    fn white_noise_has_full_ess() {
        let mut rng = rng_from_seed(31);
        let xs: Vec<f64> = (0..5_000).map(|_| rng.random::<f64>()).collect();
        let ess = effective_sample_size(&xs).unwrap();
        assert!(ess > 2_500.0, "ess={ess}");
        let rho1 = autocorrelation(&xs, 1).unwrap();
        assert!(rho1.abs() < 0.05);
    }

    #[test]
    fn ar1_chain_has_reduced_ess() {
        // x_t = 0.9·x_{t-1} + ε: theoretical ESS factor (1-φ)/(1+φ) ≈ 1/19.
        let mut rng = rng_from_seed(32);
        let mut xs = vec![0.0f64];
        for _ in 0..20_000 {
            let e: f64 = rng.random::<f64>() - 0.5;
            let prev = *xs.last().expect("non-empty");
            xs.push(0.9 * prev + e);
        }
        let ess = effective_sample_size(&xs).unwrap();
        let n = xs.len() as f64;
        assert!(ess < n / 8.0, "ess={ess}, n={n}");
        assert!(ess > n / 60.0, "ess={ess}, n={n}");
        let rho1 = autocorrelation(&xs, 1).unwrap();
        assert!((rho1 - 0.9).abs() < 0.05, "rho1={rho1}");
    }

    #[test]
    fn constant_sequence() {
        let xs = vec![2.0; 100];
        assert_eq!(effective_sample_size(&xs).unwrap(), 1.0);
        assert!(autocorrelation(&xs, 1).is_err());
    }

    #[test]
    fn validation() {
        assert!(autocovariance(&[], 0).is_err());
        assert!(autocovariance(&[1.0, 2.0], 2).is_err());
        assert!(effective_sample_size(&[1.0, 2.0]).is_err());
    }
}
