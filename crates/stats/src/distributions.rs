//! Additional service-time distributions for the generalized-service
//! extension.
//!
//! The paper's sampler is derived for exponential (M/M/1) service, but its
//! Section 2 emphasizes that the modeling viewpoint accommodates general
//! service laws. The simulator in `qni-sim` accepts any
//! [`ServiceDistribution`], which lets experiments measure how the M/M/1
//! inference degrades under model misspecification (an ablation the paper
//! motivates but does not run).

use crate::error::StatsError;
use crate::exponential::Exponential;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A positive continuous distribution usable as a service-time law.
///
/// Only [`ServiceDistribution::Exponential`] is supported by the Gibbs
/// sampler; the others exist for workload generation and misspecification
/// studies.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum ServiceDistribution {
    /// Exponential with the given rate (M/M/1 service).
    Exponential(Exponential),
    /// A point mass at `value` (deterministic service).
    Deterministic {
        /// The constant service time.
        value: f64,
    },
    /// Erlang-`k`: sum of `k` i.i.d. exponentials of rate `rate`.
    Erlang {
        /// Number of exponential stages (≥ 1).
        k: u32,
        /// Rate of each stage.
        rate: f64,
    },
    /// Mixture of exponentials: with probability `weights[i]`, sample
    /// `Exp(rates[i])`.
    HyperExponential {
        /// Mixture weights (sum to 1).
        weights: Vec<f64>,
        /// Component rates.
        rates: Vec<f64>,
    },
    /// Log-normal with the given parameters of the underlying normal.
    LogNormal {
        /// Mean of `ln X`.
        mu: f64,
        /// Standard deviation of `ln X`.
        sigma: f64,
    },
}

impl ServiceDistribution {
    /// Convenience constructor for the exponential case.
    pub fn exponential(rate: f64) -> Result<Self, StatsError> {
        Ok(ServiceDistribution::Exponential(Exponential::new(rate)?))
    }

    /// Convenience constructor for the deterministic case.
    pub fn deterministic(value: f64) -> Result<Self, StatsError> {
        if !(value.is_finite() && value >= 0.0) {
            return Err(StatsError::BadParameter {
                what: "deterministic service must be finite and non-negative",
            });
        }
        Ok(ServiceDistribution::Deterministic { value })
    }

    /// Convenience constructor for Erlang-`k`.
    pub fn erlang(k: u32, rate: f64) -> Result<Self, StatsError> {
        if k == 0 {
            return Err(StatsError::BadParameter {
                what: "Erlang stage count must be >= 1",
            });
        }
        if !(rate.is_finite() && rate > 0.0) {
            return Err(StatsError::NonPositiveRate { value: rate });
        }
        Ok(ServiceDistribution::Erlang { k, rate })
    }

    /// Convenience constructor for a hyper-exponential mixture.
    pub fn hyper_exponential(weights: Vec<f64>, rates: Vec<f64>) -> Result<Self, StatsError> {
        if weights.len() != rates.len() || weights.is_empty() {
            return Err(StatsError::BadParameter {
                what: "weights and rates must be non-empty and equal length",
            });
        }
        let total: f64 = weights.iter().sum();
        if (total - 1.0).abs() > 1e-9 || weights.iter().any(|&w| !(0.0..=1.0).contains(&w)) {
            return Err(StatsError::BadProbability { value: total });
        }
        if rates.iter().any(|&r| !(r.is_finite() && r > 0.0)) {
            return Err(StatsError::BadParameter {
                what: "all mixture rates must be positive",
            });
        }
        Ok(ServiceDistribution::HyperExponential { weights, rates })
    }

    /// Convenience constructor for the log-normal case.
    pub fn log_normal(mu: f64, sigma: f64) -> Result<Self, StatsError> {
        if !(sigma.is_finite() && sigma > 0.0 && mu.is_finite()) {
            return Err(StatsError::BadParameter {
                what: "log-normal needs finite mu and positive sigma",
            });
        }
        Ok(ServiceDistribution::LogNormal { mu, sigma })
    }

    /// Mean of the distribution.
    pub fn mean(&self) -> f64 {
        match self {
            ServiceDistribution::Exponential(e) => e.mean(),
            ServiceDistribution::Deterministic { value } => *value,
            ServiceDistribution::Erlang { k, rate } => f64::from(*k) / rate,
            ServiceDistribution::HyperExponential { weights, rates } => {
                weights.iter().zip(rates).map(|(w, r)| w / r).sum()
            }
            ServiceDistribution::LogNormal { mu, sigma } => (mu + sigma * sigma / 2.0).exp(),
        }
    }

    /// Squared coefficient of variation `Var/Mean²` (1 for exponential).
    pub fn scv(&self) -> f64 {
        match self {
            ServiceDistribution::Exponential(_) => 1.0,
            ServiceDistribution::Deterministic { .. } => 0.0,
            ServiceDistribution::Erlang { k, .. } => 1.0 / f64::from(*k),
            ServiceDistribution::HyperExponential { weights, rates } => {
                let m1: f64 = weights.iter().zip(rates).map(|(w, r)| w / r).sum();
                let m2: f64 = weights
                    .iter()
                    .zip(rates)
                    .map(|(w, r)| 2.0 * w / (r * r))
                    .sum();
                m2 / (m1 * m1) - 1.0
            }
            ServiceDistribution::LogNormal { sigma, .. } => (sigma * sigma).exp_m1(),
        }
    }

    /// Draws one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        match self {
            ServiceDistribution::Exponential(e) => e.sample(rng),
            ServiceDistribution::Deterministic { value } => *value,
            ServiceDistribution::Erlang { k, rate } => {
                let e = Exponential::new(*rate).expect("validated"); // qni-lint: allow(QNI-E002) — rates were validated when the distribution was built
                (0..*k).map(|_| e.sample(rng)).sum()
            }
            ServiceDistribution::HyperExponential { weights, rates } => {
                let u: f64 = rng.random();
                let mut acc = 0.0;
                for (w, r) in weights.iter().zip(rates) {
                    acc += w;
                    if u < acc {
                        // qni-lint: allow(QNI-E002) — rates were validated when the distribution was built
                        return Exponential::new(*r).expect("validated").sample(rng);
                    }
                }
                Exponential::new(*rates.last().expect("non-empty")) // qni-lint: allow(QNI-E002) — constructor rejects empty rate lists
                    .expect("validated") // qni-lint: allow(QNI-E002) — rates were validated when the distribution was built
                    .sample(rng)
            }
            ServiceDistribution::LogNormal { mu, sigma } => {
                (mu + sigma * standard_normal(rng)).exp()
            }
        }
    }
}

/// Samples a standard normal via the Box–Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Avoid u1 = 0 exactly (log of zero).
    let u1: f64 = 1.0 - rng.random::<f64>();
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::descriptive::Summary;
    use crate::rng::rng_from_seed;

    fn empirical(dist: &ServiceDistribution, n: usize, seed: u64) -> Summary {
        let mut rng = rng_from_seed(seed);
        let xs: Vec<f64> = (0..n).map(|_| dist.sample(&mut rng)).collect();
        Summary::from_slice(&xs).unwrap()
    }

    #[test]
    fn constructors_validate() {
        assert!(ServiceDistribution::exponential(-1.0).is_err());
        assert!(ServiceDistribution::deterministic(-0.1).is_err());
        assert!(ServiceDistribution::erlang(0, 1.0).is_err());
        assert!(ServiceDistribution::erlang(2, 0.0).is_err());
        assert!(ServiceDistribution::hyper_exponential(vec![0.7], vec![1.0, 2.0]).is_err());
        assert!(ServiceDistribution::hyper_exponential(vec![0.5, 0.4], vec![1.0, 2.0]).is_err());
        assert!(ServiceDistribution::log_normal(0.0, 0.0).is_err());
    }

    #[test]
    fn deterministic_is_constant() {
        let d = ServiceDistribution::deterministic(0.3).unwrap();
        let mut rng = rng_from_seed(1);
        assert_eq!(d.sample(&mut rng), 0.3);
        assert_eq!(d.mean(), 0.3);
        assert_eq!(d.scv(), 0.0);
    }

    #[test]
    fn erlang_mean_and_scv() {
        let d = ServiceDistribution::erlang(4, 8.0).unwrap();
        assert!((d.mean() - 0.5).abs() < 1e-12);
        assert!((d.scv() - 0.25).abs() < 1e-12);
        let s = empirical(&d, 100_000, 2);
        assert!((s.mean - 0.5).abs() < 0.005, "mean={}", s.mean);
    }

    #[test]
    fn hyper_exponential_mean_and_scv() {
        let d = ServiceDistribution::hyper_exponential(vec![0.9, 0.1], vec![10.0, 0.5]).unwrap();
        let expect_mean = 0.9 / 10.0 + 0.1 / 0.5;
        assert!((d.mean() - expect_mean).abs() < 1e-12);
        assert!(d.scv() > 1.0, "hyper-exponential must be more variable");
        let s = empirical(&d, 200_000, 3);
        assert!((s.mean - expect_mean).abs() < 0.01, "mean={}", s.mean);
    }

    #[test]
    fn log_normal_mean() {
        let d = ServiceDistribution::log_normal(-1.0, 0.5).unwrap();
        let s = empirical(&d, 200_000, 4);
        assert!(
            (s.mean - d.mean()).abs() / d.mean() < 0.02,
            "mean={} vs {}",
            s.mean,
            d.mean()
        );
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = rng_from_seed(6);
        let xs: Vec<f64> = (0..200_000).map(|_| standard_normal(&mut rng)).collect();
        let s = Summary::from_slice(&xs).unwrap();
        assert!(s.mean.abs() < 0.01, "mean={}", s.mean);
        assert!((s.variance - 1.0).abs() < 0.02, "var={}", s.variance);
    }

    #[test]
    fn exponential_case_matches_exponential_module() {
        let d = ServiceDistribution::exponential(2.0).unwrap();
        assert_eq!(d.mean(), 0.5);
        assert_eq!(d.scv(), 1.0);
    }
}
