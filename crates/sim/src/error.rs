//! Error type for the simulator.

use std::fmt;

/// Errors raised while configuring or running a simulation.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// A workload parameter was invalid.
    BadWorkload {
        /// Description of the problem.
        what: &'static str,
    },
    /// The simulation exceeded its event budget (runaway configuration).
    EventBudgetExceeded {
        /// The budget that was exhausted.
        budget: usize,
    },
    /// A model-layer error bubbled up.
    Model(qni_model::ModelError),
    /// A statistics-layer error bubbled up.
    Stats(qni_stats::StatsError),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::BadWorkload { what } => write!(f, "bad workload: {what}"),
            SimError::EventBudgetExceeded { budget } => {
                write!(f, "simulation exceeded event budget of {budget}")
            }
            SimError::Model(e) => write!(f, "model error: {e}"),
            SimError::Stats(e) => write!(f, "stats error: {e}"),
        }
    }
}

impl std::error::Error for SimError {}

impl From<qni_model::ModelError> for SimError {
    fn from(e: qni_model::ModelError) -> Self {
        SimError::Model(e)
    }
}

impl From<qni_stats::StatsError> for SimError {
    fn from(e: qni_stats::StatsError) -> Self {
        SimError::Stats(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(SimError::BadWorkload { what: "x" }
            .to_string()
            .contains('x'));
        assert!(SimError::EventBudgetExceeded { budget: 7 }
            .to_string()
            .contains('7'));
    }

    #[test]
    fn conversions() {
        let e: SimError = qni_stats::StatsError::EmptyData.into();
        assert!(matches!(e, SimError::Stats(_)));
    }
}
