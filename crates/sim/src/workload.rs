//! Open-loop arrival processes.

use crate::error::SimError;
use qni_stats::point_process::{
    homogeneous_poisson, homogeneous_poisson_n, linear_ramp_poisson, piecewise_constant_poisson,
};
use rand::Rng;

/// An open-loop workload: how task entry times are generated.
///
/// # Examples
///
/// ```
/// use qni_sim::workload::Workload;
/// use qni_stats::rng::rng_from_seed;
///
/// let w = Workload::poisson_n(10.0, 50).unwrap();
/// let times = w.sample(&mut rng_from_seed(1)).unwrap();
/// assert_eq!(times.len(), 50);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Workload {
    /// Poisson arrivals at a fixed rate over a horizon.
    Poisson {
        /// Arrival rate λ.
        rate: f64,
        /// Horizon; arrivals beyond it are discarded.
        horizon: f64,
    },
    /// Exactly `count` Poisson arrivals at a fixed rate.
    PoissonN {
        /// Arrival rate λ.
        rate: f64,
        /// Number of tasks to generate.
        count: usize,
    },
    /// Poisson arrivals whose rate ramps linearly from `start_rate` to
    /// `end_rate` over the horizon (the §5.2 workload shape).
    LinearRamp {
        /// Rate at time 0.
        start_rate: f64,
        /// Rate at `horizon`.
        end_rate: f64,
        /// Horizon of the ramp.
        horizon: f64,
    },
    /// Poisson arrivals whose rate is piecewise constant with abrupt
    /// switchpoints — the canonical *time-varying* workload a fixed-log
    /// estimator cannot fit (it reports one blended rate), built for the
    /// streaming engine's windowed tracking.
    PiecewiseConstant {
        /// Per-segment rates; `rates[i]` applies on
        /// `[switchpoints[i-1], switchpoints[i])` (segment 0 starts at 0,
        /// the last segment ends at `horizon`).
        rates: Vec<f64>,
        /// Strictly increasing switch times inside `(0, horizon)`;
        /// exactly `rates.len() - 1` entries.
        switchpoints: Vec<f64>,
        /// End of the workload; arrivals beyond it are not generated.
        horizon: f64,
    },
    /// Explicit entry times (must be sorted, non-negative).
    Fixed {
        /// The entry times.
        times: Vec<f64>,
    },
}

impl Workload {
    /// Poisson workload over a horizon.
    pub fn poisson(rate: f64, horizon: f64) -> Result<Self, SimError> {
        if !(rate.is_finite() && rate > 0.0) {
            return Err(SimError::BadWorkload {
                what: "rate must be positive",
            });
        }
        if !(horizon.is_finite() && horizon > 0.0) {
            return Err(SimError::BadWorkload {
                what: "horizon must be positive",
            });
        }
        Ok(Workload::Poisson { rate, horizon })
    }

    /// Poisson workload with an exact task count.
    pub fn poisson_n(rate: f64, count: usize) -> Result<Self, SimError> {
        if !(rate.is_finite() && rate > 0.0) {
            return Err(SimError::BadWorkload {
                what: "rate must be positive",
            });
        }
        if count == 0 {
            return Err(SimError::BadWorkload {
                what: "count must be positive",
            });
        }
        Ok(Workload::PoissonN { rate, count })
    }

    /// Linearly ramping workload.
    pub fn linear_ramp(start_rate: f64, end_rate: f64, horizon: f64) -> Result<Self, SimError> {
        if !(start_rate >= 0.0 && end_rate >= 0.0 && (start_rate > 0.0 || end_rate > 0.0)) {
            return Err(SimError::BadWorkload {
                what: "ramp rates must be non-negative and not both zero",
            });
        }
        if !(horizon.is_finite() && horizon > 0.0) {
            return Err(SimError::BadWorkload {
                what: "horizon must be positive",
            });
        }
        Ok(Workload::LinearRamp {
            start_rate,
            end_rate,
            horizon,
        })
    }

    /// Piecewise-constant workload: `rates[i]` applies between
    /// `switchpoints[i-1]` and `switchpoints[i]` (0 and `horizon` at the
    /// ends). Needs one more rate than switchpoints, strictly increasing
    /// switchpoints inside `(0, horizon)`, and positive finite rates.
    pub fn piecewise_constant(
        rates: Vec<f64>,
        switchpoints: Vec<f64>,
        horizon: f64,
    ) -> Result<Self, SimError> {
        if rates.is_empty() || rates.len() != switchpoints.len() + 1 {
            return Err(SimError::BadWorkload {
                what: "piecewise workload needs exactly one more rate than switchpoints",
            });
        }
        if rates.iter().any(|r| !(r.is_finite() && *r > 0.0)) {
            return Err(SimError::BadWorkload {
                what: "piecewise rates must be positive and finite",
            });
        }
        if !(horizon.is_finite() && horizon > 0.0) {
            return Err(SimError::BadWorkload {
                what: "horizon must be positive",
            });
        }
        if switchpoints.windows(2).any(|w| w[0] >= w[1])
            || switchpoints
                .iter()
                .any(|s| !(s.is_finite() && *s > 0.0 && *s < horizon))
        {
            return Err(SimError::BadWorkload {
                what: "switchpoints must be strictly increasing inside (0, horizon)",
            });
        }
        Ok(Workload::PiecewiseConstant {
            rates,
            switchpoints,
            horizon,
        })
    }

    /// Explicit entry times.
    pub fn fixed(times: Vec<f64>) -> Result<Self, SimError> {
        if times.is_empty() {
            return Err(SimError::BadWorkload {
                what: "fixed workload needs at least one time",
            });
        }
        if times.windows(2).any(|w| w[0] > w[1]) {
            return Err(SimError::BadWorkload {
                what: "fixed times must be sorted",
            });
        }
        if times.iter().any(|t| !(t.is_finite() && *t >= 0.0)) {
            return Err(SimError::BadWorkload {
                what: "fixed times must be finite and non-negative",
            });
        }
        Ok(Workload::Fixed { times })
    }

    /// Samples the task entry times.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Result<Vec<f64>, SimError> {
        match self {
            Workload::Poisson { rate, horizon } => Ok(homogeneous_poisson(*rate, *horizon, rng)?),
            Workload::PoissonN { rate, count } => Ok(homogeneous_poisson_n(*rate, *count, rng)?),
            Workload::LinearRamp {
                start_rate,
                end_rate,
                horizon,
            } => Ok(linear_ramp_poisson(*start_rate, *end_rate, *horizon, rng)?),
            Workload::PiecewiseConstant {
                rates,
                switchpoints,
                horizon,
            } => Ok(piecewise_constant_poisson(
                rates,
                switchpoints,
                *horizon,
                rng,
            )?),
            Workload::Fixed { times } => Ok(times.clone()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qni_stats::rng::rng_from_seed;

    #[test]
    fn constructors_validate() {
        assert!(Workload::poisson(0.0, 1.0).is_err());
        assert!(Workload::poisson(1.0, 0.0).is_err());
        assert!(Workload::poisson_n(1.0, 0).is_err());
        assert!(Workload::linear_ramp(0.0, 0.0, 1.0).is_err());
        assert!(Workload::fixed(vec![]).is_err());
        assert!(Workload::fixed(vec![2.0, 1.0]).is_err());
        assert!(Workload::fixed(vec![-1.0]).is_err());
    }

    #[test]
    fn poisson_n_exact_count() {
        let w = Workload::poisson_n(5.0, 123).unwrap();
        let t = w.sample(&mut rng_from_seed(1)).unwrap();
        assert_eq!(t.len(), 123);
    }

    #[test]
    fn fixed_round_trips() {
        let w = Workload::fixed(vec![0.0, 1.0, 2.5]).unwrap();
        let t = w.sample(&mut rng_from_seed(2)).unwrap();
        assert_eq!(t, vec![0.0, 1.0, 2.5]);
    }

    #[test]
    fn piecewise_constructor_validates() {
        assert!(Workload::piecewise_constant(vec![], vec![], 10.0).is_err());
        assert!(Workload::piecewise_constant(vec![1.0, 2.0], vec![], 10.0).is_err());
        assert!(Workload::piecewise_constant(vec![1.0, 0.0], vec![5.0], 10.0).is_err());
        assert!(Workload::piecewise_constant(vec![1.0, 2.0], vec![10.0], 10.0).is_err());
        assert!(Workload::piecewise_constant(vec![1.0, 2.0, 3.0], vec![6.0, 5.0], 10.0).is_err());
        assert!(Workload::piecewise_constant(vec![1.0, 2.0], vec![5.0], 0.0).is_err());
        assert!(Workload::piecewise_constant(vec![1.0, 2.0], vec![5.0], 10.0).is_ok());
    }

    #[test]
    fn piecewise_switches_density() {
        let w = Workload::piecewise_constant(vec![2.0, 10.0], vec![100.0], 200.0).unwrap();
        let t = w.sample(&mut rng_from_seed(9)).unwrap();
        assert!(t.windows(2).all(|p| p[0] <= p[1]));
        let before = t.iter().filter(|&&x| x < 100.0).count() as f64;
        let after = t.len() as f64 - before;
        // Expected 200 vs 1000; ratio 0.2 with generous noise headroom.
        let ratio = before / after;
        assert!((ratio - 0.2).abs() < 0.08, "ratio={ratio}");
    }

    #[test]
    fn ramp_sorted() {
        let w = Workload::linear_ramp(0.5, 10.0, 100.0).unwrap();
        let t = w.sample(&mut rng_from_seed(3)).unwrap();
        assert!(t.windows(2).all(|p| p[0] <= p[1]));
        assert!(!t.is_empty());
    }
}
