//! Open-loop arrival processes.

use crate::error::SimError;
use qni_stats::point_process::{homogeneous_poisson, homogeneous_poisson_n, linear_ramp_poisson};
use rand::Rng;

/// An open-loop workload: how task entry times are generated.
///
/// # Examples
///
/// ```
/// use qni_sim::workload::Workload;
/// use qni_stats::rng::rng_from_seed;
///
/// let w = Workload::poisson_n(10.0, 50).unwrap();
/// let times = w.sample(&mut rng_from_seed(1)).unwrap();
/// assert_eq!(times.len(), 50);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Workload {
    /// Poisson arrivals at a fixed rate over a horizon.
    Poisson {
        /// Arrival rate λ.
        rate: f64,
        /// Horizon; arrivals beyond it are discarded.
        horizon: f64,
    },
    /// Exactly `count` Poisson arrivals at a fixed rate.
    PoissonN {
        /// Arrival rate λ.
        rate: f64,
        /// Number of tasks to generate.
        count: usize,
    },
    /// Poisson arrivals whose rate ramps linearly from `start_rate` to
    /// `end_rate` over the horizon (the §5.2 workload shape).
    LinearRamp {
        /// Rate at time 0.
        start_rate: f64,
        /// Rate at `horizon`.
        end_rate: f64,
        /// Horizon of the ramp.
        horizon: f64,
    },
    /// Explicit entry times (must be sorted, non-negative).
    Fixed {
        /// The entry times.
        times: Vec<f64>,
    },
}

impl Workload {
    /// Poisson workload over a horizon.
    pub fn poisson(rate: f64, horizon: f64) -> Result<Self, SimError> {
        if !(rate.is_finite() && rate > 0.0) {
            return Err(SimError::BadWorkload {
                what: "rate must be positive",
            });
        }
        if !(horizon.is_finite() && horizon > 0.0) {
            return Err(SimError::BadWorkload {
                what: "horizon must be positive",
            });
        }
        Ok(Workload::Poisson { rate, horizon })
    }

    /// Poisson workload with an exact task count.
    pub fn poisson_n(rate: f64, count: usize) -> Result<Self, SimError> {
        if !(rate.is_finite() && rate > 0.0) {
            return Err(SimError::BadWorkload {
                what: "rate must be positive",
            });
        }
        if count == 0 {
            return Err(SimError::BadWorkload {
                what: "count must be positive",
            });
        }
        Ok(Workload::PoissonN { rate, count })
    }

    /// Linearly ramping workload.
    pub fn linear_ramp(start_rate: f64, end_rate: f64, horizon: f64) -> Result<Self, SimError> {
        if !(start_rate >= 0.0 && end_rate >= 0.0 && (start_rate > 0.0 || end_rate > 0.0)) {
            return Err(SimError::BadWorkload {
                what: "ramp rates must be non-negative and not both zero",
            });
        }
        if !(horizon.is_finite() && horizon > 0.0) {
            return Err(SimError::BadWorkload {
                what: "horizon must be positive",
            });
        }
        Ok(Workload::LinearRamp {
            start_rate,
            end_rate,
            horizon,
        })
    }

    /// Explicit entry times.
    pub fn fixed(times: Vec<f64>) -> Result<Self, SimError> {
        if times.is_empty() {
            return Err(SimError::BadWorkload {
                what: "fixed workload needs at least one time",
            });
        }
        if times.windows(2).any(|w| w[0] > w[1]) {
            return Err(SimError::BadWorkload {
                what: "fixed times must be sorted",
            });
        }
        if times.iter().any(|t| !(t.is_finite() && *t >= 0.0)) {
            return Err(SimError::BadWorkload {
                what: "fixed times must be finite and non-negative",
            });
        }
        Ok(Workload::Fixed { times })
    }

    /// Samples the task entry times.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Result<Vec<f64>, SimError> {
        match self {
            Workload::Poisson { rate, horizon } => Ok(homogeneous_poisson(*rate, *horizon, rng)?),
            Workload::PoissonN { rate, count } => Ok(homogeneous_poisson_n(*rate, *count, rng)?),
            Workload::LinearRamp {
                start_rate,
                end_rate,
                horizon,
            } => Ok(linear_ramp_poisson(*start_rate, *end_rate, *horizon, rng)?),
            Workload::Fixed { times } => Ok(times.clone()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qni_stats::rng::rng_from_seed;

    #[test]
    fn constructors_validate() {
        assert!(Workload::poisson(0.0, 1.0).is_err());
        assert!(Workload::poisson(1.0, 0.0).is_err());
        assert!(Workload::poisson_n(1.0, 0).is_err());
        assert!(Workload::linear_ramp(0.0, 0.0, 1.0).is_err());
        assert!(Workload::fixed(vec![]).is_err());
        assert!(Workload::fixed(vec![2.0, 1.0]).is_err());
        assert!(Workload::fixed(vec![-1.0]).is_err());
    }

    #[test]
    fn poisson_n_exact_count() {
        let w = Workload::poisson_n(5.0, 123).unwrap();
        let t = w.sample(&mut rng_from_seed(1)).unwrap();
        assert_eq!(t.len(), 123);
    }

    #[test]
    fn fixed_round_trips() {
        let w = Workload::fixed(vec![0.0, 1.0, 2.5]).unwrap();
        let t = w.sample(&mut rng_from_seed(2)).unwrap();
        assert_eq!(t, vec![0.0, 1.0, 2.5]);
    }

    #[test]
    fn ramp_sorted() {
        let w = Workload::linear_ramp(0.5, 10.0, 100.0).unwrap();
        let t = w.sample(&mut rng_from_seed(3)).unwrap();
        assert!(t.windows(2).all(|p| p[0] <= p[1]));
        assert!(!t.is_empty());
    }
}
