//! Lindley-recursion reference implementation for one FIFO queue.
//!
//! For a single-server FIFO queue with arrival times `a_n` and service
//! times `s_n`, waiting times obey Lindley's recursion
//! `w_{n+1} = max(0, w_n + s_n − (a_{n+1} − a_n))` and departures are
//! `d_n = a_n + w_n + s_n`. This closed form is an independent oracle for
//! the event-driven engine.

use crate::error::SimError;

/// Computes waiting times and departures for a FIFO single-server queue.
///
/// `arrivals` must be sorted; `services` must be the same length and
/// non-negative. Returns `(waits, departures)`.
pub fn lindley(arrivals: &[f64], services: &[f64]) -> Result<(Vec<f64>, Vec<f64>), SimError> {
    if arrivals.len() != services.len() {
        return Err(SimError::BadWorkload {
            what: "arrivals and services must have equal length",
        });
    }
    if arrivals.windows(2).any(|w| w[0] > w[1]) {
        return Err(SimError::BadWorkload {
            what: "arrivals must be sorted",
        });
    }
    if services.iter().any(|&s| !(s.is_finite() && s >= 0.0)) {
        return Err(SimError::BadWorkload {
            what: "services must be finite and non-negative",
        });
    }
    let n = arrivals.len();
    let mut waits = vec![0.0f64; n];
    let mut deps = vec![0.0f64; n];
    for i in 0..n {
        if i == 0 {
            waits[i] = 0.0;
        } else {
            let gap = arrivals[i] - arrivals[i - 1];
            waits[i] = (waits[i - 1] + services[i - 1] - gap).max(0.0);
        }
        deps[i] = arrivals[i] + waits[i] + services[i];
    }
    Ok((waits, deps))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Simulator;
    use crate::workload::Workload;
    use qni_model::ids::QueueId;
    use qni_model::topology::single_queue;
    use qni_stats::rng::rng_from_seed;

    #[test]
    fn hand_computed_example() {
        // Arrivals 0, 1, 2; services 2, 2, 0.5.
        let (w, d) = lindley(&[0.0, 1.0, 2.0], &[2.0, 2.0, 0.5]).unwrap();
        assert_eq!(w, vec![0.0, 1.0, 2.0]);
        assert_eq!(d, vec![2.0, 4.0, 4.5]);
    }

    #[test]
    fn engine_matches_lindley() {
        // Simulate a single queue, then replay its arrivals and service
        // times through the recursion; departures must coincide.
        let bp = single_queue(3.0, 4.0).unwrap();
        let mut rng = rng_from_seed(10);
        let log = Simulator::new(&bp.network)
            .run(&Workload::poisson_n(3.0, 1000).unwrap(), &mut rng)
            .unwrap();
        let q1 = log.events_at_queue(QueueId(1));
        let arrivals: Vec<f64> = q1.iter().map(|&e| log.arrival(e)).collect();
        let services: Vec<f64> = q1.iter().map(|&e| log.service_time(e)).collect();
        let (waits, deps) = lindley(&arrivals, &services).unwrap();
        for (i, &e) in q1.iter().enumerate() {
            assert!(
                (log.departure(e) - deps[i]).abs() < 1e-9,
                "departure mismatch at {i}"
            );
            assert!(
                (log.waiting_time(e) - waits[i]).abs() < 1e-9,
                "wait mismatch at {i}"
            );
        }
    }

    #[test]
    fn validation() {
        assert!(lindley(&[0.0], &[]).is_err());
        assert!(lindley(&[1.0, 0.0], &[0.1, 0.1]).is_err());
        assert!(lindley(&[0.0, 1.0], &[-0.1, 0.1]).is_err());
    }

    #[test]
    fn empty_input_is_fine() {
        let (w, d) = lindley(&[], &[]).unwrap();
        assert!(w.is_empty() && d.is_empty());
    }
}
