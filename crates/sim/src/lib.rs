//! Discrete-event simulator for FIFO single-server queueing networks.
//!
//! This crate is the *data-generating* substrate of the reproduction: the
//! paper's synthetic experiments (§5.1) sample arrival and departure times
//! from three-tier M/M/1 networks, and its web-application experiment
//! (§5.2) is emulated here by `qni-webapp` on top of this engine.
//!
//! - [`engine`]: the event calendar and queue processes. Produces a
//!   ground-truth [`qni_model::EventLog`] with every arrival and departure.
//! - [`workload`]: open-loop arrival processes — homogeneous Poisson,
//!   the linearly ramping load of §5.2, fixed times, and exact-count
//!   variants.
//! - [`fault`]: fault injection (service slow-down windows) used by the
//!   localization examples to create ground-truth bottlenecks.
//! - [`lindley`]: the Lindley-recursion reference implementation for a
//!   single FIFO queue, used to cross-check the engine.
//! - [`mm1`]: textbook M/M/1 formulas used to validate simulated averages.
//!
//! # Examples
//!
//! ```
//! use qni_model::topology::single_queue;
//! use qni_sim::engine::Simulator;
//! use qni_sim::workload::Workload;
//! use qni_stats::rng::rng_from_seed;
//!
//! let bp = single_queue(2.0, 5.0).unwrap();
//! let mut rng = rng_from_seed(1);
//! let log = Simulator::new(&bp.network)
//!     .run(&Workload::poisson_n(2.0, 100).unwrap(), &mut rng)
//!     .unwrap();
//! assert_eq!(log.num_tasks(), 100);
//! assert!(qni_model::constraints::validate(&log).is_ok());
//! ```

pub mod engine;
pub mod error;
pub mod fault;
pub mod jackson;
pub mod lindley;
pub mod mm1;
pub mod workload;

pub use engine::Simulator;
pub use error::SimError;
pub use workload::Workload;
