//! Analytic M/M/1 formulas used as validation oracles.
//!
//! The paper's core argument is that *steady-state* quantities like these
//! cannot answer "what happened?" questions — but they remain the right
//! oracle for validating the simulator on stationary workloads.

use crate::error::SimError;

/// Steady-state quantities of an M/M/1 queue with arrival rate `lambda`
/// and service rate `mu` (requires `lambda < mu`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mm1 {
    /// Arrival rate λ.
    pub lambda: f64,
    /// Service rate µ.
    pub mu: f64,
}

impl Mm1 {
    /// Creates the model, requiring stability (`lambda < mu`).
    pub fn new(lambda: f64, mu: f64) -> Result<Self, SimError> {
        if !(lambda.is_finite() && lambda > 0.0 && mu.is_finite() && mu > 0.0) {
            return Err(SimError::BadWorkload {
                what: "rates must be positive",
            });
        }
        if lambda >= mu {
            return Err(SimError::BadWorkload {
                what: "M/M/1 formulas require lambda < mu",
            });
        }
        Ok(Mm1 { lambda, mu })
    }

    /// Utilization `ρ = λ/µ`.
    pub fn utilization(&self) -> f64 {
        self.lambda / self.mu
    }

    /// Mean waiting time in queue `W_q = ρ/(µ − λ)`.
    pub fn mean_waiting(&self) -> f64 {
        self.utilization() / (self.mu - self.lambda)
    }

    /// Mean sojourn (response) time `W = 1/(µ − λ)`.
    pub fn mean_sojourn(&self) -> f64 {
        1.0 / (self.mu - self.lambda)
    }

    /// Mean number in system `L = ρ/(1 − ρ)`.
    pub fn mean_in_system(&self) -> f64 {
        let rho = self.utilization();
        rho / (1.0 - rho)
    }

    /// Mean service time `1/µ`.
    pub fn mean_service(&self) -> f64 {
        1.0 / self.mu
    }

    /// CDF of the sojourn time: `1 − e^{−(µ−λ)t}`.
    pub fn sojourn_cdf(&self, t: f64) -> f64 {
        if t <= 0.0 {
            0.0
        } else {
            -(-(self.mu - self.lambda) * t).exp_m1()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Simulator;
    use crate::workload::Workload;
    use qni_model::ids::QueueId;
    use qni_model::topology::single_queue;
    use qni_stats::rng::rng_from_seed;

    #[test]
    fn formulas() {
        let m = Mm1::new(2.0, 5.0).unwrap();
        assert!((m.utilization() - 0.4).abs() < 1e-12);
        assert!((m.mean_waiting() - 0.4 / 3.0).abs() < 1e-12);
        assert!((m.mean_sojourn() - 1.0 / 3.0).abs() < 1e-12);
        assert!((m.mean_in_system() - 2.0 / 3.0).abs() < 1e-12);
        assert!((m.mean_service() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn little_law_consistency() {
        // L = λ·W.
        let m = Mm1::new(3.0, 7.0).unwrap();
        assert!((m.mean_in_system() - m.lambda * m.mean_sojourn()).abs() < 1e-12);
        // W = Wq + 1/µ.
        assert!((m.mean_sojourn() - (m.mean_waiting() + m.mean_service())).abs() < 1e-12);
    }

    #[test]
    fn requires_stability() {
        assert!(Mm1::new(5.0, 5.0).is_err());
        assert!(Mm1::new(6.0, 5.0).is_err());
        assert!(Mm1::new(0.0, 5.0).is_err());
    }

    #[test]
    fn simulator_matches_steady_state_waiting() {
        let m = Mm1::new(2.0, 5.0).unwrap();
        let bp = single_queue(2.0, 5.0).unwrap();
        let mut rng = rng_from_seed(20);
        let log = Simulator::new(&bp.network)
            .run(&Workload::poisson_n(2.0, 60_000).unwrap(), &mut rng)
            .unwrap();
        let avg = log.queue_averages();
        let w = avg[QueueId(1).index()].mean_waiting;
        let s = avg[QueueId(1).index()].mean_service;
        // Long-run averages: generous tolerance for finite-sample noise.
        assert!(
            (w - m.mean_waiting()).abs() / m.mean_waiting() < 0.1,
            "waiting: sim={w} theory={}",
            m.mean_waiting()
        );
        assert!((s - m.mean_service()).abs() / m.mean_service() < 0.05);
    }

    #[test]
    fn simulator_sojourn_distribution_matches() {
        let m = Mm1::new(1.0, 3.0).unwrap();
        let bp = single_queue(1.0, 3.0).unwrap();
        let mut rng = rng_from_seed(21);
        let log = Simulator::new(&bp.network)
            .run(&Workload::poisson_n(1.0, 40_000).unwrap(), &mut rng)
            .unwrap();
        let q1 = log.events_at_queue(QueueId(1));
        // Drop a warm-up prefix; compare the empirical sojourn CDF.
        let sojourns: Vec<f64> = q1[2_000..].iter().map(|&e| log.response_time(e)).collect();
        let d = qni_stats::ks::ks_statistic(&sojourns, |t| m.sojourn_cdf(t)).unwrap();
        // Sojourns are autocorrelated, so the i.i.d. critical value does
        // not apply; requiring d < 0.03 still sharply distinguishes the
        // correct law from e.g. the service-only exponential.
        assert!(d < 0.03, "ks={d}");
    }
}
