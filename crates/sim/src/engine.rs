//! The discrete-event engine.
//!
//! A straightforward calendar-queue simulator specialized to FIFO
//! single-server queues with FSM routing. Each task's route is sampled
//! from the network's FSM when the task enters; arrivals and service
//! completions are processed in global time order; the full ground-truth
//! trace is returned as a [`qni_model::EventLog`] (with the paper's
//! initial-event convention applied).

use crate::error::SimError;
use crate::fault::FaultPlan;
use crate::workload::Workload;
use qni_model::ids::{QueueId, StateId};
use qni_model::log::{EventLog, EventLogBuilder};
use qni_model::network::QueueingNetwork;
use rand::Rng;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Default cap on processed calendar entries, guarding against runaway
/// configurations (e.g. an FSM with a near-1 self-loop under heavy load).
pub const DEFAULT_EVENT_BUDGET: usize = 50_000_000;

/// A calendar entry. Ordered by time, then by insertion sequence so that
/// simultaneous entries are processed deterministically in FIFO order.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Entry {
    /// Task arrives at the `visit`-th queue on its route.
    Arrival { task: usize, visit: usize },
    /// The queue finishes serving its current task.
    ServiceComplete { queue: usize },
}

#[derive(Debug, Clone, Copy)]
struct Scheduled {
    time: f64,
    seq: u64,
    entry: Entry,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time
            .total_cmp(&other.time)
            .then(self.seq.cmp(&other.seq))
    }
}

/// Per-queue run-time state.
#[derive(Debug, Default)]
struct QueueState {
    /// Tasks waiting, FIFO. Entries are `(task, visit)`.
    waiting: VecDeque<(usize, usize)>,
    /// The task currently in service, if any.
    in_service: Option<(usize, usize)>,
}

/// Recorded times for one visit of one task.
#[derive(Debug, Clone, Copy)]
struct VisitRecord {
    state: StateId,
    queue: QueueId,
    arrival: f64,
    departure: f64,
}

/// The simulator.
///
/// Holds a reference to the network; [`Simulator::run`] is reentrant and
/// deterministic given the RNG.
#[derive(Debug)]
pub struct Simulator<'a> {
    network: &'a QueueingNetwork,
    faults: FaultPlan,
    event_budget: usize,
}

impl<'a> Simulator<'a> {
    /// Creates a simulator for a network.
    pub fn new(network: &'a QueueingNetwork) -> Self {
        Simulator {
            network,
            faults: FaultPlan::none(),
            event_budget: DEFAULT_EVENT_BUDGET,
        }
    }

    /// Installs a fault-injection plan.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Overrides the event budget.
    pub fn with_event_budget(mut self, budget: usize) -> Self {
        self.event_budget = budget;
        self
    }

    /// Runs the workload to completion and returns the ground-truth log.
    ///
    /// Every generated task is simulated until it leaves the system; the
    /// returned log therefore satisfies all deterministic constraints
    /// (validated in debug builds).
    pub fn run<R: Rng + ?Sized>(
        &self,
        workload: &Workload,
        rng: &mut R,
    ) -> Result<EventLog, SimError> {
        let entries = workload.sample(rng)?;
        self.run_with_entries(&entries, rng)
    }

    /// Runs with explicit task entry times (sorted, non-negative).
    pub fn run_with_entries<R: Rng + ?Sized>(
        &self,
        entries: &[f64],
        rng: &mut R,
    ) -> Result<EventLog, SimError> {
        let n_tasks = entries.len();
        // Sample each task's route upfront (the FSM is independent of the
        // timing dynamics).
        let mut routes: Vec<Vec<(StateId, QueueId)>> = Vec::with_capacity(n_tasks);
        for _ in 0..n_tasks {
            routes.push(self.network.fsm().sample_path(rng)?);
        }
        // Visit records, filled in as the simulation progresses.
        let mut records: Vec<Vec<VisitRecord>> = routes
            .iter()
            .map(|r| {
                r.iter()
                    .map(|&(state, queue)| VisitRecord {
                        state,
                        queue,
                        arrival: f64::NAN,
                        departure: f64::NAN,
                    })
                    .collect()
            })
            .collect();

        let mut queues: Vec<QueueState> = (0..self.network.num_queues())
            .map(|_| QueueState::default())
            .collect();
        let mut calendar: BinaryHeap<Reverse<Scheduled>> = BinaryHeap::new();
        let mut seq = 0u64;
        let schedule =
            |cal: &mut BinaryHeap<Reverse<Scheduled>>, seq: &mut u64, time: f64, entry: Entry| {
                *seq += 1;
                cal.push(Reverse(Scheduled {
                    time,
                    seq: *seq,
                    entry,
                }));
            };

        for (task, &t) in entries.iter().enumerate() {
            if !routes[task].is_empty() {
                schedule(
                    &mut calendar,
                    &mut seq,
                    t,
                    Entry::Arrival { task, visit: 0 },
                );
            }
        }

        let mut processed = 0usize;
        while let Some(Reverse(Scheduled { time, entry, .. })) = calendar.pop() {
            processed += 1;
            if processed > self.event_budget {
                return Err(SimError::EventBudgetExceeded {
                    budget: self.event_budget,
                });
            }
            match entry {
                Entry::Arrival { task, visit } => {
                    let q = records[task][visit].queue;
                    records[task][visit].arrival = time;
                    let qs = &mut queues[q.index()];
                    if qs.in_service.is_none() {
                        qs.in_service = Some((task, visit));
                        let s = self.sample_service(q, time, rng)?;
                        schedule(
                            &mut calendar,
                            &mut seq,
                            time + s,
                            Entry::ServiceComplete { queue: q.index() },
                        );
                    } else {
                        qs.waiting.push_back((task, visit));
                    }
                }
                Entry::ServiceComplete { queue } => {
                    let qs = &mut queues[queue];
                    let (task, visit) = qs
                        .in_service
                        .take()
                        .expect("service completion for an idle queue"); // qni-lint: allow(QNI-E002) — completions are only scheduled for busy queues
                    records[task][visit].departure = time;
                    // Route the task onward.
                    if visit + 1 < routes[task].len() {
                        schedule(
                            &mut calendar,
                            &mut seq,
                            time,
                            Entry::Arrival {
                                task,
                                visit: visit + 1,
                            },
                        );
                    }
                    // Start the next waiting task, if any.
                    if let Some((nt, nv)) = qs.waiting.pop_front() {
                        qs.in_service = Some((nt, nv));
                        let q = QueueId::from_index(queue);
                        let s = self.sample_service(q, time, rng)?;
                        schedule(
                            &mut calendar,
                            &mut seq,
                            time + s,
                            Entry::ServiceComplete { queue },
                        );
                    }
                }
            }
        }

        // Assemble the event log.
        let mut builder =
            EventLogBuilder::new(self.network.num_queues(), self.network.fsm().initial());
        for (task, recs) in records.iter().enumerate() {
            let visits: Vec<(StateId, QueueId, f64, f64)> = recs
                .iter()
                .map(|r| (r.state, r.queue, r.arrival, r.departure))
                .collect();
            debug_assert!(
                visits.iter().all(|v| v.2.is_finite() && v.3.is_finite()),
                "task {task} has unprocessed visits"
            );
            builder.add_task(entries[task], &visits)?;
        }
        let log = builder.build()?;
        debug_assert!(
            qni_model::constraints::validate(&log).is_ok(),
            "simulator produced an invalid log: {:?}",
            qni_model::constraints::validate(&log)
        );
        Ok(log)
    }

    /// Samples a service time for queue `q` beginning at time `t`,
    /// applying any fault slow-down.
    fn sample_service<R: Rng + ?Sized>(
        &self,
        q: QueueId,
        t: f64,
        rng: &mut R,
    ) -> Result<f64, SimError> {
        let base = self.network.service(q)?.sample(rng);
        Ok(base * self.faults.factor(q, t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::Fault;
    use qni_model::constraints::validate;
    use qni_model::ids::TaskId;
    use qni_model::topology::{single_queue, tandem, three_tier};
    use qni_stats::rng::rng_from_seed;

    #[test]
    fn single_queue_log_is_valid() {
        let bp = single_queue(2.0, 5.0).unwrap();
        let mut rng = rng_from_seed(1);
        let log = Simulator::new(&bp.network)
            .run(&Workload::poisson_n(2.0, 500).unwrap(), &mut rng)
            .unwrap();
        assert_eq!(log.num_tasks(), 500);
        assert_eq!(log.num_events(), 1000); // One visit + one initial each.
        validate(&log).unwrap();
    }

    #[test]
    fn tandem_routes_in_order() {
        let bp = tandem(1.0, &[4.0, 4.0]).unwrap();
        let mut rng = rng_from_seed(2);
        let log = Simulator::new(&bp.network)
            .run(&Workload::poisson_n(1.0, 200).unwrap(), &mut rng)
            .unwrap();
        validate(&log).unwrap();
        for k in 0..log.num_tasks() {
            let evs = log.task_events(TaskId::from_index(k));
            assert_eq!(evs.len(), 3);
            assert_eq!(log.queue_of(evs[1]), QueueId(1));
            assert_eq!(log.queue_of(evs[2]), QueueId(2));
        }
    }

    #[test]
    fn three_tier_overloaded_log_is_valid() {
        // The paper's §5.1 parameters: λ=10, µ=5, tier sizes (1,2,4): the
        // single-server tier is heavily overloaded.
        let bp = three_tier(10.0, 5.0, &[1, 2, 4], false).unwrap();
        let mut rng = rng_from_seed(3);
        let log = Simulator::new(&bp.network)
            .run(&Workload::poisson_n(10.0, 1000).unwrap(), &mut rng)
            .unwrap();
        validate(&log).unwrap();
        assert_eq!(log.num_tasks(), 1000);
        assert_eq!(log.num_events(), 4000);
        // The overloaded tier accumulates far more waiting than service.
        let avg = log.queue_averages();
        let t1 = bp.tiers[0][0];
        assert!(avg[t1.index()].mean_waiting > 3.0 * avg[t1.index()].mean_service);
    }

    #[test]
    fn empirical_service_means_match_parameters() {
        let bp = three_tier(10.0, 5.0, &[1, 2, 4], false).unwrap();
        let mut rng = rng_from_seed(4);
        let log = Simulator::new(&bp.network)
            .run(&Workload::poisson_n(10.0, 4000).unwrap(), &mut rng)
            .unwrap();
        let avg = log.queue_averages();
        // Every server queue has mean service ≈ 1/µ = 0.2.
        for tier in &bp.tiers {
            for &q in tier {
                let m = avg[q.index()].mean_service;
                assert!((m - 0.2).abs() < 0.03, "queue {q}: mean={m}");
            }
        }
        // q0 mean "service" ≈ 1/λ = 0.1 (interarrival gap).
        assert!((avg[0].mean_service - 0.1).abs() < 0.01);
    }

    #[test]
    fn deterministic_given_seed() {
        let bp = tandem(2.0, &[5.0, 5.0]).unwrap();
        let run = |seed| {
            let mut rng = rng_from_seed(seed);
            Simulator::new(&bp.network)
                .run(&Workload::poisson_n(2.0, 100).unwrap(), &mut rng)
                .unwrap()
        };
        let (a, b) = (run(7), run(7));
        for e in a.event_ids() {
            assert_eq!(a.arrival(e), b.arrival(e));
            assert_eq!(a.departure(e), b.departure(e));
        }
        let c = run(8);
        let diff = a
            .event_ids()
            .filter(|&e| a.arrival(e) != c.arrival(e))
            .count();
        assert!(diff > 0);
    }

    #[test]
    fn fault_injection_slows_service() {
        let bp = single_queue(1.0, 10.0).unwrap();
        let mut plan = FaultPlan::none();
        plan.push(Fault::new(QueueId(1), 0.0, 1e9, 5.0).unwrap());
        let mut rng = rng_from_seed(5);
        let log = Simulator::new(&bp.network)
            .with_faults(plan)
            .run(&Workload::poisson_n(1.0, 2000).unwrap(), &mut rng)
            .unwrap();
        let avg = log.queue_averages();
        // Base mean 0.1, slowed 5× → 0.5.
        assert!(
            (avg[1].mean_service - 0.5).abs() < 0.05,
            "mean={}",
            avg[1].mean_service
        );
        validate(&log).unwrap();
    }

    #[test]
    fn windowed_fault_only_affects_window() {
        let bp = single_queue(1.0, 10.0).unwrap();
        let mut plan = FaultPlan::none();
        plan.push(Fault::new(QueueId(1), 500.0, 1500.0, 10.0).unwrap());
        let mut rng = rng_from_seed(6);
        let log = Simulator::new(&bp.network)
            .with_faults(plan)
            .run(&Workload::poisson(1.0, 2500.0).unwrap(), &mut rng)
            .unwrap();
        let q1 = log.events_at_queue(QueueId(1));
        let (mut in_win, mut out_win) = (Vec::new(), Vec::new());
        for &e in q1 {
            let begin = log.begin_service(e);
            let s = log.service_time(e);
            if (500.0..1500.0).contains(&begin) {
                in_win.push(s);
            } else if !(400.0..=1700.0).contains(&begin) {
                out_win.push(s);
            }
        }
        let mean = |v: &Vec<f64>| v.iter().sum::<f64>() / v.len() as f64;
        assert!(mean(&in_win) > 4.0 * mean(&out_win));
    }

    #[test]
    fn event_budget_guard_trips() {
        let bp = single_queue(1.0, 10.0).unwrap();
        let mut rng = rng_from_seed(7);
        let err = Simulator::new(&bp.network)
            .with_event_budget(10)
            .run(&Workload::poisson_n(1.0, 100).unwrap(), &mut rng);
        assert!(matches!(err, Err(SimError::EventBudgetExceeded { .. })));
    }

    #[test]
    fn simultaneous_arrivals_processed_fifo() {
        // Two tasks entering at exactly the same time: processed in
        // insertion (task-index) order.
        let bp = single_queue(1.0, 1.0).unwrap();
        let mut rng = rng_from_seed(8);
        let log = Simulator::new(&bp.network)
            .run_with_entries(&[1.0, 1.0], &mut rng)
            .unwrap();
        validate(&log).unwrap();
        let q1 = log.events_at_queue(QueueId(1));
        assert_eq!(log.task_of(q1[0]), TaskId(0));
        assert_eq!(log.task_of(q1[1]), TaskId(1));
        assert!(log.departure(q1[0]) <= log.begin_service(q1[1]));
    }
}
