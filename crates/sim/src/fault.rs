//! Service-degradation fault injection.
//!
//! The paper motivates its inference technique with diagnosis questions
//! like *"five minutes ago a brief spike occurred — which component was
//! the bottleneck?"*. To evaluate localization we need ground truth, so
//! the simulator can inject faults: within a time window, a queue's
//! sampled service times are multiplied by a slow-down factor.

use crate::error::SimError;
use qni_model::ids::QueueId;
use serde::{Deserialize, Serialize};

/// One injected fault: queue `queue` is slowed by `slowdown`× while
/// service *begins* inside `[from, until)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fault {
    /// The degraded queue.
    pub queue: QueueId,
    /// Window start (service-begin time).
    pub from: f64,
    /// Window end (exclusive).
    pub until: f64,
    /// Multiplicative service-time inflation (> 1 slows the queue down).
    pub slowdown: f64,
}

impl Fault {
    /// Creates a fault after validating its parameters.
    pub fn new(queue: QueueId, from: f64, until: f64, slowdown: f64) -> Result<Self, SimError> {
        if !(from.is_finite() && until.is_finite() && until > from) {
            return Err(SimError::BadWorkload {
                what: "fault window must be a non-empty finite interval",
            });
        }
        if !(slowdown.is_finite() && slowdown > 0.0) {
            return Err(SimError::BadWorkload {
                what: "fault slowdown must be positive",
            });
        }
        Ok(Fault {
            queue,
            from,
            until,
            slowdown,
        })
    }

    /// Whether the fault applies to a service beginning at `t` on `q`.
    pub fn applies(&self, q: QueueId, t: f64) -> bool {
        q == self.queue && t >= self.from && t < self.until
    }
}

/// A set of faults; multiplicative factors stack if windows overlap.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct FaultPlan {
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Creates a plan from explicit faults.
    pub fn new(faults: Vec<Fault>) -> Self {
        FaultPlan { faults }
    }

    /// Adds one fault.
    pub fn push(&mut self, f: Fault) {
        self.faults.push(f);
    }

    /// The configured faults.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Combined slow-down factor for a service beginning at `t` on `q`.
    pub fn factor(&self, q: QueueId, t: f64) -> f64 {
        self.faults
            .iter()
            .filter(|f| f.applies(q, t))
            .map(|f| f.slowdown)
            .product()
    }

    /// Whether any fault is configured.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        assert!(Fault::new(QueueId(1), 0.0, 0.0, 2.0).is_err());
        assert!(Fault::new(QueueId(1), 0.0, 1.0, 0.0).is_err());
        assert!(Fault::new(QueueId(1), 0.0, 1.0, 2.0).is_ok());
    }

    #[test]
    fn applies_within_window_and_queue() {
        let f = Fault::new(QueueId(2), 1.0, 2.0, 3.0).unwrap();
        assert!(f.applies(QueueId(2), 1.0));
        assert!(f.applies(QueueId(2), 1.999));
        assert!(!f.applies(QueueId(2), 2.0));
        assert!(!f.applies(QueueId(1), 1.5));
    }

    #[test]
    fn factors_stack() {
        let mut plan = FaultPlan::none();
        assert!(plan.is_empty());
        plan.push(Fault::new(QueueId(1), 0.0, 10.0, 2.0).unwrap());
        plan.push(Fault::new(QueueId(1), 5.0, 10.0, 3.0).unwrap());
        assert_eq!(plan.factor(QueueId(1), 1.0), 2.0);
        assert_eq!(plan.factor(QueueId(1), 6.0), 6.0);
        assert_eq!(plan.factor(QueueId(1), 11.0), 1.0);
        assert_eq!(plan.factor(QueueId(9), 6.0), 1.0);
    }
}
