//! Jackson-network steady-state analysis.
//!
//! Our model is exactly an open Jackson network: Poisson external
//! arrivals, exponential single-server FIFO queues, probabilistic routing
//! (via the FSM). Jackson's theorem then gives the steady state in
//! product form: each queue behaves as an independent M/M/1 with arrival
//! rate `λ_q = λ · v_q`, where `v_q` is the expected number of visits a
//! task makes to queue `q`.
//!
//! Visit counts come from the FSM's absorbing-chain equations: with `P`
//! the transition matrix over non-final states and `e₀` the indicator of
//! the initial state, expected state-entry counts solve
//! `(I − Pᵀ) v = e₀`; queue visits then follow through the emission
//! distribution. The dense solve comes from `qni-lp`.
//!
//! This is the *classical* analysis the paper contrasts with: it answers
//! "what if?" questions in equilibrium but none of the paper's "what
//! happened?" questions. Here it serves as (i) an exact oracle validating
//! the simulator on whole networks and (ii) the extrapolation engine for
//! capacity planning once rates have been *inferred* from partial traces.

use crate::error::SimError;
use crate::mm1::Mm1;
use qni_lp::gauss::solve_dense;
use qni_model::ids::{QueueId, StateId};
use qni_model::network::QueueingNetwork;

/// Steady-state predictions for every queue of a network.
#[derive(Debug, Clone)]
pub struct JacksonAnalysis {
    /// Expected visits per task to each queue (entry 0, `q0`, is 1).
    pub visits: Vec<f64>,
    /// Effective arrival rate `λ_q = λ·v_q` at each queue.
    pub arrival_rates: Vec<f64>,
    /// Utilization `ρ_q = λ_q/µ_q` (NaN for `q0`).
    pub utilization: Vec<f64>,
    /// Steady-state mean waiting time per visit (infinite if `ρ_q ≥ 1`,
    /// NaN for `q0`).
    pub mean_waiting: Vec<f64>,
    /// Mean service time `1/µ_q` per queue.
    pub mean_service: Vec<f64>,
}

impl JacksonAnalysis {
    /// Whether every real queue is stable (`ρ_q < 1`).
    pub fn is_stable(&self) -> bool {
        self.utilization
            .iter()
            .skip(1)
            .all(|&rho| rho.is_finite() && rho < 1.0)
    }

    /// Steady-state mean end-to-end response time of a task: the sum over
    /// queues of `v_q · (W_q + 1/µ_q)`. Infinite if any queue is
    /// unstable.
    pub fn mean_response(&self) -> f64 {
        if !self.is_stable() {
            return f64::INFINITY;
        }
        (1..self.visits.len())
            .map(|q| self.visits[q] * (self.mean_waiting[q] + self.mean_service[q]))
            .sum()
    }
}

/// Computes the Jackson steady state of an M/M/1 network.
///
/// Errors if the network is not M/M/1 or the FSM's absorbing-chain system
/// is singular (no absorption — caught earlier by FSM validation).
pub fn analyze(net: &QueueingNetwork) -> Result<JacksonAnalysis, SimError> {
    let rates = net.rates()?;
    let lambda = rates[0];
    let fsm = net.fsm();
    let n_states = fsm.num_states();
    // Index map over non-final (transient) states.
    let transient: Vec<StateId> = (0..n_states)
        .map(StateId::from_index)
        .filter(|&s| !fsm.is_final(s))
        .collect();
    let index_of = |s: StateId| transient.iter().position(|&t| t == s);
    let m = transient.len();
    // (I − Pᵀ) v = e₀ over transient states.
    let mut a = vec![vec![0.0; m]; m];
    for (i, &s) in transient.iter().enumerate() {
        a[i][i] += 1.0;
        for &(t, p) in fsm.transitions_from(s) {
            if let Some(j) = index_of(t) {
                // Column of the source state contributes to the row of
                // the target: v_t = Σ_s v_s p(t|s) → row t, col s.
                a[j][i] -= p;
            }
        }
    }
    let mut b = vec![0.0; m];
    b[index_of(fsm.initial()).expect("initial is transient")] = 1.0; // qni-lint: allow(QNI-E002) — FSM validation guarantees the initial state is transient
    let v_states = solve_dense(a, b).map_err(|_| SimError::BadWorkload {
        what: "FSM visit equations are singular",
    })?;
    // Queue visit counts through the emissions.
    let mut visits = vec![0.0; net.num_queues()];
    visits[0] = 1.0; // Every task enters q0 exactly once.
    for (i, &s) in transient.iter().enumerate() {
        for &(q, p) in fsm.emissions_from(s) {
            visits[q.index()] += v_states[i] * p;
        }
    }
    let arrival_rates: Vec<f64> = visits.iter().map(|v| v * lambda).collect();
    let mut utilization = vec![f64::NAN; net.num_queues()];
    let mut mean_waiting = vec![f64::NAN; net.num_queues()];
    let mut mean_service = vec![f64::NAN; net.num_queues()];
    for q in 0..net.num_queues() {
        mean_service[q] = 1.0 / rates[q];
        if q == 0 {
            continue;
        }
        let lam_q = arrival_rates[q];
        utilization[q] = lam_q / rates[q];
        mean_waiting[q] = match Mm1::new(lam_q, rates[q]) {
            Ok(m) => m.mean_waiting(),
            Err(_) => {
                if lam_q == 0.0 {
                    0.0
                } else {
                    f64::INFINITY
                }
            }
        };
        if lam_q == 0.0 {
            utilization[q] = 0.0;
        }
    }
    Ok(JacksonAnalysis {
        visits,
        arrival_rates,
        utilization,
        mean_waiting,
        mean_service,
    })
}

/// Convenience: predicted mean waiting for queue `q`.
pub fn predicted_waiting(net: &QueueingNetwork, q: QueueId) -> Result<f64, SimError> {
    Ok(analyze(net)?.mean_waiting[q.index()])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Simulator;
    use crate::workload::Workload;
    use qni_model::fsm::FsmBuilder;
    use qni_model::topology::{tandem, three_tier};
    use qni_stats::rng::rng_from_seed;

    #[test]
    fn tandem_visits_are_one_each() {
        let bp = tandem(2.0, &[5.0, 8.0]).unwrap();
        let j = analyze(&bp.network).unwrap();
        assert!((j.visits[1] - 1.0).abs() < 1e-12);
        assert!((j.visits[2] - 1.0).abs() < 1e-12);
        assert!((j.utilization[1] - 0.4).abs() < 1e-12);
        assert!(j.is_stable());
        // W_q for M/M/1(2,5) = 0.4/3; for (2,8) = 0.25/6.
        assert!((j.mean_waiting[1] - 0.4 / 3.0).abs() < 1e-12);
        assert!((j.mean_waiting[2] - 0.25 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn load_balanced_tier_splits_arrivals() {
        let bp = three_tier(4.0, 10.0, &[2, 1, 4], false).unwrap();
        let j = analyze(&bp.network).unwrap();
        for &q in &bp.tiers[0] {
            assert!((j.visits[q.index()] - 0.5).abs() < 1e-12);
        }
        assert!((j.visits[bp.tiers[1][0].index()] - 1.0).abs() < 1e-12);
        for &q in &bp.tiers[2] {
            assert!((j.visits[q.index()] - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn overload_detected() {
        let bp = three_tier(10.0, 5.0, &[1, 2, 4], false).unwrap();
        let j = analyze(&bp.network).unwrap();
        let q = bp.tiers[0][0];
        assert!(j.utilization[q.index()] > 1.0);
        assert_eq!(j.mean_waiting[q.index()], f64::INFINITY);
        assert!(!j.is_stable());
        assert_eq!(j.mean_response(), f64::INFINITY);
    }

    #[test]
    fn cyclic_fsm_visit_counts() {
        // State s loops on itself with probability 0.4 → geometric visits
        // with mean 1/(1−0.4) = 5/3.
        let mut b = FsmBuilder::new();
        let i = b.add_state("i");
        let s = b.add_state("s");
        let f = b.add_final_state("f");
        b.set_initial(i);
        b.add_transition(i, s, 1.0);
        b.add_transition(s, s, 0.4);
        b.add_transition(s, f, 0.6);
        b.add_emission(s, QueueId(1), 1.0);
        let fsm = b.build().unwrap();
        let net = qni_model::network::QueueingNetwork::mm1(1.0, &[("loop", 10.0)], fsm).unwrap();
        let j = analyze(&net).unwrap();
        assert!((j.visits[1] - 5.0 / 3.0).abs() < 1e-12, "v={}", j.visits[1]);
        assert!((j.arrival_rates[1] - 5.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn simulator_matches_jackson_on_a_network() {
        // Moderate load so the steady state is reached quickly.
        let bp = three_tier(3.0, 8.0, &[2, 1, 2], false).unwrap();
        let j = analyze(&bp.network).unwrap();
        let mut rng = rng_from_seed(42);
        let log = Simulator::new(&bp.network)
            .run(&Workload::poisson_n(3.0, 40_000).unwrap(), &mut rng)
            .unwrap();
        let avg = log.queue_averages();
        // Middleware tier: λ_q = 3, µ = 8 → ρ = 0.375, Wq = 0.075.
        let mid = bp.tiers[1][0];
        let sim_w = avg[mid.index()].mean_waiting;
        let jack_w = j.mean_waiting[mid.index()];
        assert!(
            (sim_w - jack_w).abs() / jack_w < 0.15,
            "sim={sim_w} jackson={jack_w}"
        );
        // Visit counts: every queue's event count / tasks ≈ v_q.
        for (q, a) in avg.iter().enumerate().skip(1) {
            let emp = a.count as f64 / log.num_tasks() as f64;
            assert!(
                (emp - j.visits[q]).abs() < 0.05,
                "queue {q}: emp={emp} v={}",
                j.visits[q]
            );
        }
    }

    #[test]
    fn webapp_network_queue_visited_twice() {
        let cfg = qni_webapp_config_equivalent();
        let j = analyze(&cfg).unwrap();
        // Queue 1 is the shared network queue on the in and out path.
        assert!((j.visits[1] - 2.0).abs() < 1e-12);
    }

    /// A miniature of the webapp topology without depending on the
    /// `qni-webapp` crate (which depends on this one).
    fn qni_webapp_config_equivalent() -> qni_model::network::QueueingNetwork {
        use qni_model::fsm::Fsm;
        let fsm = Fsm::tiered(&[
            vec![QueueId(1)],
            vec![QueueId(2), QueueId(3)],
            vec![QueueId(4)],
            vec![QueueId(1)],
        ])
        .unwrap();
        qni_model::network::QueueingNetwork::mm1(
            1.0,
            &[("net", 20.0), ("web1", 2.5), ("web2", 2.5), ("db", 10.0)],
            fsm,
        )
        .unwrap()
    }

    #[test]
    fn mean_response_composes() {
        let bp = tandem(1.0, &[4.0, 4.0]).unwrap();
        let j = analyze(&bp.network).unwrap();
        // Two identical M/M/1(1,4): response each = 1/(4−1) = 1/3.
        assert!((j.mean_response() - 2.0 / 3.0).abs() < 1e-12);
    }
}
