//! Linear programming and difference-constraint solvers.
//!
//! The paper initializes its Gibbs sampler with "a linear program to
//! minimize `Σ_e |s_e − µ_{q_e}|` subject to the deterministic
//! constraints" (§3). This crate provides the optimization machinery:
//!
//! - [`simplex`]: a dense two-phase primal simplex solver with Bland's
//!   anti-cycling rule — sufficient for the initialization LPs, which are
//!   sparse but small once the observation structure decomposes them.
//! - [`diffcon`]: a solver for *difference-constraint systems*
//!   (`x_u ≤ x_v`, fixed values, box bounds). The initialization
//!   constraints are exactly such a system, so minimal/maximal feasible
//!   completions are computable in linear time by longest-path passes over
//!   the constraint DAG; `qni-core` uses this for large instances where a
//!   dense tableau would be wasteful.
//!
//! # Examples
//!
//! ```
//! use qni_lp::simplex::{LinearProgram, Relation};
//!
//! // minimize -x - y  s.t.  x + y <= 4, x <= 2  (max x+y = 4).
//! let mut lp = LinearProgram::new(2);
//! lp.set_objective(&[-1.0, -1.0]);
//! lp.add_constraint(&[(0, 1.0), (1, 1.0)], Relation::Le, 4.0);
//! lp.add_constraint(&[(0, 1.0)], Relation::Le, 2.0);
//! let sol = lp.solve().unwrap();
//! assert!((sol.objective + 4.0).abs() < 1e-9);
//! ```

pub mod diffcon;
pub mod error;
pub mod gauss;
pub mod simplex;

pub use error::LpError;
