//! Error type for the optimization layer.

use std::fmt;

/// Errors raised by LP and difference-constraint solvers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LpError {
    /// The problem is infeasible.
    Infeasible,
    /// The objective is unbounded below.
    Unbounded,
    /// A variable index was out of range.
    BadVariable {
        /// The offending index.
        index: usize,
    },
    /// The iteration limit was exceeded (defensive; Bland's rule prevents
    /// cycling, so this indicates a pathological instance size).
    IterationLimit,
    /// The constraint graph contains a cycle (difference systems must be
    /// acyclic after equality collapsing).
    CyclicConstraints,
    /// Input shapes disagree.
    ShapeMismatch,
}

impl fmt::Display for LpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LpError::Infeasible => write!(f, "problem is infeasible"),
            LpError::Unbounded => write!(f, "objective is unbounded"),
            LpError::BadVariable { index } => write!(f, "variable {index} out of range"),
            LpError::IterationLimit => write!(f, "simplex iteration limit exceeded"),
            LpError::CyclicConstraints => write!(f, "constraint graph is cyclic"),
            LpError::ShapeMismatch => write!(f, "input shapes disagree"),
        }
    }
}

impl std::error::Error for LpError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert_eq!(LpError::Infeasible.to_string(), "problem is infeasible");
        assert!(LpError::BadVariable { index: 3 }.to_string().contains('3'));
    }
}
