//! Dense two-phase primal simplex with Bland's rule.
//!
//! A deliberately classic implementation: all variables are non-negative
//! (times in our LPs are), constraints may be `≤`, `≥`, or `=`, and the
//! solver minimizes. Phase 1 drives artificial variables to zero to find a
//! basic feasible solution; phase 2 optimizes the real objective. Bland's
//! smallest-index rule guarantees termination on degenerate instances at
//! the cost of speed — acceptable for the initialization problems this
//! crate serves.

use crate::error::LpError;

/// Constraint relation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Relation {
    /// `Σ coeffs·x ≤ rhs`.
    Le,
    /// `Σ coeffs·x ≥ rhs`.
    Ge,
    /// `Σ coeffs·x = rhs`.
    Eq,
}

/// One linear constraint in sparse form.
#[derive(Debug, Clone)]
struct Constraint {
    coeffs: Vec<(usize, f64)>,
    rel: Relation,
    rhs: f64,
}

/// Solver status.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LpStatus {
    /// An optimal basic solution was found.
    Optimal,
}

/// An optimal solution.
#[derive(Debug, Clone)]
pub struct LpSolution {
    /// Status (always [`LpStatus::Optimal`]; failures are errors).
    pub status: LpStatus,
    /// Values of the structural variables.
    pub x: Vec<f64>,
    /// Objective value (minimization).
    pub objective: f64,
}

/// A linear program over non-negative variables, to be minimized.
///
/// # Examples
///
/// ```
/// use qni_lp::simplex::{LinearProgram, Relation};
///
/// // minimize x  s.t.  x >= 3.
/// let mut lp = LinearProgram::new(1);
/// lp.set_objective(&[1.0]);
/// lp.add_constraint(&[(0, 1.0)], Relation::Ge, 3.0);
/// assert!((lp.solve().unwrap().x[0] - 3.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct LinearProgram {
    num_vars: usize,
    objective: Vec<f64>,
    constraints: Vec<Constraint>,
}

impl LinearProgram {
    /// Creates a program with `num_vars` non-negative variables and a zero
    /// objective.
    pub fn new(num_vars: usize) -> Self {
        LinearProgram {
            num_vars,
            objective: vec![0.0; num_vars],
            constraints: Vec::new(),
        }
    }

    /// Number of structural variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Sets the (minimization) objective coefficients.
    ///
    /// # Panics
    ///
    /// Panics if `coeffs.len() != num_vars`.
    pub fn set_objective(&mut self, coeffs: &[f64]) {
        assert_eq!(coeffs.len(), self.num_vars, "objective length mismatch");
        self.objective.copy_from_slice(coeffs);
    }

    /// Sets a single objective coefficient.
    pub fn set_objective_coeff(&mut self, var: usize, coeff: f64) {
        assert!(var < self.num_vars, "variable out of range");
        self.objective[var] = coeff;
    }

    /// Adds a sparse constraint.
    pub fn add_constraint(&mut self, coeffs: &[(usize, f64)], rel: Relation, rhs: f64) {
        debug_assert!(
            coeffs.iter().all(|&(i, _)| i < self.num_vars),
            "constraint references unknown variable"
        );
        self.constraints.push(Constraint {
            coeffs: coeffs.to_vec(),
            rel,
            rhs,
        });
    }

    /// Solves the program.
    pub fn solve(&self) -> Result<LpSolution, LpError> {
        Tableau::build(self)?.solve()
    }
}

const EPS: f64 = 1e-9;

/// The dense simplex tableau.
struct Tableau {
    /// Rows: one per constraint. Columns: all variables then RHS.
    rows: Vec<Vec<f64>>,
    /// Objective row (reduced costs), same width as `rows` entries.
    obj: Vec<f64>,
    /// Basic variable of each row.
    basis: Vec<usize>,
    /// Total columns excluding RHS.
    width: usize,
    /// Structural variable count.
    structural: usize,
    /// Index of the first artificial column.
    first_artificial: usize,
    /// Original objective (padded to `width`).
    costs: Vec<f64>,
}

impl Tableau {
    fn build(lp: &LinearProgram) -> Result<Tableau, LpError> {
        let m = lp.constraints.len();
        let n = lp.num_vars;
        // Count slack/surplus and artificial columns.
        let mut num_slack = 0usize;
        let mut num_art = 0usize;
        for c in &lp.constraints {
            match normalized_rel(c) {
                Relation::Le => num_slack += 1,
                Relation::Ge => {
                    num_slack += 1;
                    num_art += 1;
                }
                Relation::Eq => num_art += 1,
            }
        }
        let width = n + num_slack + num_art;
        let first_artificial = n + num_slack;
        let mut rows = vec![vec![0.0; width + 1]; m];
        let mut basis = vec![usize::MAX; m];
        let mut slack_idx = n;
        let mut art_idx = first_artificial;
        for (i, c) in lp.constraints.iter().enumerate() {
            // Normalize to rhs >= 0.
            let flip = c.rhs < 0.0;
            let sign = if flip { -1.0 } else { 1.0 };
            for &(j, v) in &c.coeffs {
                if j >= n {
                    return Err(LpError::BadVariable { index: j });
                }
                rows[i][j] += sign * v;
            }
            rows[i][width] = sign * c.rhs;
            let rel = normalized_rel(c);
            match rel {
                Relation::Le => {
                    rows[i][slack_idx] = 1.0;
                    basis[i] = slack_idx;
                    slack_idx += 1;
                }
                Relation::Ge => {
                    rows[i][slack_idx] = -1.0;
                    slack_idx += 1;
                    rows[i][art_idx] = 1.0;
                    basis[i] = art_idx;
                    art_idx += 1;
                }
                Relation::Eq => {
                    rows[i][art_idx] = 1.0;
                    basis[i] = art_idx;
                    art_idx += 1;
                }
            }
        }
        let mut costs = vec![0.0; width];
        costs[..n].copy_from_slice(&lp.objective);
        Ok(Tableau {
            rows,
            obj: vec![0.0; width + 1],
            basis,
            width,
            structural: n,
            first_artificial,
            costs,
        })
    }

    fn solve(mut self) -> Result<LpSolution, LpError> {
        let has_artificials = self.first_artificial < self.width;
        if has_artificials {
            // Phase 1: minimize the sum of artificials.
            let mut phase1 = vec![0.0; self.width];
            for c in phase1.iter_mut().skip(self.first_artificial) {
                *c = 1.0;
            }
            self.load_objective(&phase1);
            self.iterate(self.width)?;
            if self.obj[self.width] > EPS {
                return Err(LpError::Infeasible);
            }
            // Drive any remaining artificial out of the basis.
            for i in 0..self.rows.len() {
                if self.basis[i] >= self.first_artificial {
                    if let Some(j) =
                        (0..self.first_artificial).find(|&j| self.rows[i][j].abs() > EPS)
                    {
                        self.pivot(i, j);
                    }
                    // A row with no eligible pivot is redundant; its
                    // artificial stays basic at value 0, harmless in
                    // phase 2 because the column is excluded below.
                }
            }
        }
        // Phase 2 over structural + slack columns only.
        let costs = self.costs.clone();
        self.load_objective(&costs);
        self.iterate(self.first_artificial)?;
        let mut x = vec![0.0; self.structural];
        for (i, &b) in self.basis.iter().enumerate() {
            if b < self.structural {
                x[b] = self.rows[i][self.width];
            }
        }
        Ok(LpSolution {
            status: LpStatus::Optimal,
            x,
            objective: self.obj[self.width],
        })
    }

    /// Loads an objective and reduces it against the current basis.
    fn load_objective(&mut self, costs: &[f64]) {
        let w = self.width;
        self.obj[..w].copy_from_slice(costs);
        self.obj[w] = 0.0;
        for i in 0..self.rows.len() {
            let cb = costs[self.basis[i]];
            if cb != 0.0 {
                for j in 0..=w {
                    self.obj[j] -= cb * self.rows[i][j];
                }
            }
        }
        // Objective row holds reduced costs; obj[w] is −(current value).
        // We store value directly by negating at read time; see iterate.
    }

    /// Runs simplex iterations over columns `< col_limit` (Bland's rule).
    fn iterate(&mut self, col_limit: usize) -> Result<(), LpError> {
        let max_iters = 50_000usize.max(100 * (self.rows.len() + self.width));
        for _ in 0..max_iters {
            // Entering column: smallest index with negative reduced cost.
            let Some(enter) = (0..col_limit).find(|&j| self.obj[j] < -EPS) else {
                // Optimal. Fix the sign convention of the stored value.
                self.obj[self.width] = -self.obj[self.width];
                return Ok(());
            };
            // Ratio test: smallest ratio; ties by smallest basis index
            // (Bland).
            let mut leave: Option<usize> = None;
            let mut best = f64::INFINITY;
            for i in 0..self.rows.len() {
                let a = self.rows[i][enter];
                if a > EPS {
                    let ratio = self.rows[i][self.width] / a;
                    let better = ratio < best - EPS
                        || (ratio < best + EPS
                            && leave.is_some_and(|l| self.basis[i] < self.basis[l]));
                    if better {
                        best = ratio;
                        leave = Some(i);
                    }
                }
            }
            let Some(leave) = leave else {
                return Err(LpError::Unbounded);
            };
            self.pivot(leave, enter);
        }
        Err(LpError::IterationLimit)
    }

    /// Pivots on `(row, col)`.
    fn pivot(&mut self, row: usize, col: usize) {
        let w = self.width;
        let p = self.rows[row][col];
        debug_assert!(p.abs() > EPS, "pivot on a zero element");
        for j in 0..=w {
            self.rows[row][j] /= p;
        }
        self.rows[row][col] = 1.0; // Exact.
        for i in 0..self.rows.len() {
            if i != row {
                let f = self.rows[i][col];
                if f != 0.0 {
                    for j in 0..=w {
                        self.rows[i][j] -= f * self.rows[row][j];
                    }
                    self.rows[i][col] = 0.0; // Exact.
                }
            }
        }
        let f = self.obj[col];
        if f != 0.0 {
            for j in 0..=w {
                self.obj[j] -= f * self.rows[row][j];
            }
            self.obj[col] = 0.0;
        }
        self.basis[row] = col;
    }
}

/// Relation after RHS normalization (`rhs < 0` flips Le/Ge).
fn normalized_rel(c: &Constraint) -> Relation {
    if c.rhs < 0.0 {
        match c.rel {
            Relation::Le => Relation::Ge,
            Relation::Ge => Relation::Le,
            Relation::Eq => Relation::Eq,
        }
    } else {
        c.rel
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feasible(lp: &LinearProgram, x: &[f64]) -> bool {
        lp.constraints.iter().all(|c| {
            let lhs: f64 = c.coeffs.iter().map(|&(j, v)| v * x[j]).sum();
            match c.rel {
                Relation::Le => lhs <= c.rhs + 1e-7,
                Relation::Ge => lhs >= c.rhs - 1e-7,
                Relation::Eq => (lhs - c.rhs).abs() < 1e-7,
            }
        }) && x.iter().all(|&v| v >= -1e-7)
    }

    #[test]
    fn textbook_maximization() {
        // max 3x + 5y s.t. x<=4, 2y<=12, 3x+2y<=18 → x=2, y=6, obj=36.
        let mut lp = LinearProgram::new(2);
        lp.set_objective(&[-3.0, -5.0]);
        lp.add_constraint(&[(0, 1.0)], Relation::Le, 4.0);
        lp.add_constraint(&[(1, 2.0)], Relation::Le, 12.0);
        lp.add_constraint(&[(0, 3.0), (1, 2.0)], Relation::Le, 18.0);
        let sol = lp.solve().unwrap();
        assert!((sol.x[0] - 2.0).abs() < 1e-8, "x={:?}", sol.x);
        assert!((sol.x[1] - 6.0).abs() < 1e-8);
        assert!((sol.objective + 36.0).abs() < 1e-8);
        assert!(feasible(&lp, &sol.x));
    }

    #[test]
    fn ge_and_eq_constraints() {
        // minimize 2x + 3y s.t. x + y = 10, x >= 4 → x=10,y=0? No:
        // min at y=0 → wait cost of y is 3 > 2, so x=10, y=0, obj=20.
        let mut lp = LinearProgram::new(2);
        lp.set_objective(&[2.0, 3.0]);
        lp.add_constraint(&[(0, 1.0), (1, 1.0)], Relation::Eq, 10.0);
        lp.add_constraint(&[(0, 1.0)], Relation::Ge, 4.0);
        let sol = lp.solve().unwrap();
        assert!((sol.objective - 20.0).abs() < 1e-8, "obj={}", sol.objective);
        assert!((sol.x[0] - 10.0).abs() < 1e-8);
        assert!(feasible(&lp, &sol.x));
    }

    #[test]
    fn infeasible_detected() {
        let mut lp = LinearProgram::new(1);
        lp.set_objective(&[1.0]);
        lp.add_constraint(&[(0, 1.0)], Relation::Le, 1.0);
        lp.add_constraint(&[(0, 1.0)], Relation::Ge, 2.0);
        assert!(matches!(lp.solve(), Err(LpError::Infeasible)));
    }

    #[test]
    fn unbounded_detected() {
        let mut lp = LinearProgram::new(1);
        lp.set_objective(&[-1.0]); // maximize x, no upper bound.
        lp.add_constraint(&[(0, 1.0)], Relation::Ge, 0.0);
        assert!(matches!(lp.solve(), Err(LpError::Unbounded)));
    }

    #[test]
    fn negative_rhs_normalization() {
        // x - y <= -2 with x,y >= 0: means y >= x + 2.
        // minimize y → x=0, y=2.
        let mut lp = LinearProgram::new(2);
        lp.set_objective(&[0.0, 1.0]);
        lp.add_constraint(&[(0, 1.0), (1, -1.0)], Relation::Le, -2.0);
        let sol = lp.solve().unwrap();
        assert!((sol.x[1] - 2.0).abs() < 1e-8, "x={:?}", sol.x);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Classic degeneracy: multiple constraints active at the optimum.
        let mut lp = LinearProgram::new(2);
        lp.set_objective(&[-1.0, -1.0]);
        lp.add_constraint(&[(0, 1.0), (1, 1.0)], Relation::Le, 1.0);
        lp.add_constraint(&[(0, 1.0)], Relation::Le, 1.0);
        lp.add_constraint(&[(1, 1.0)], Relation::Le, 1.0);
        lp.add_constraint(&[(0, 2.0), (1, 1.0)], Relation::Le, 2.0);
        let sol = lp.solve().unwrap();
        assert!((sol.objective + 1.0).abs() < 1e-8);
    }

    #[test]
    fn equality_only_system() {
        // x + y = 3, x − y = 1 → x=2, y=1; objective irrelevant.
        let mut lp = LinearProgram::new(2);
        lp.add_constraint(&[(0, 1.0), (1, 1.0)], Relation::Eq, 3.0);
        lp.add_constraint(&[(0, 1.0), (1, -1.0)], Relation::Eq, 1.0);
        let sol = lp.solve().unwrap();
        assert!((sol.x[0] - 2.0).abs() < 1e-8);
        assert!((sol.x[1] - 1.0).abs() < 1e-8);
    }

    #[test]
    fn redundant_equality_rows() {
        // Duplicate equality: must not break phase-1→2 transition.
        let mut lp = LinearProgram::new(2);
        lp.set_objective(&[1.0, 1.0]);
        lp.add_constraint(&[(0, 1.0), (1, 1.0)], Relation::Eq, 2.0);
        lp.add_constraint(&[(0, 1.0), (1, 1.0)], Relation::Eq, 2.0);
        let sol = lp.solve().unwrap();
        assert!((sol.objective - 2.0).abs() < 1e-8);
    }

    #[test]
    fn absolute_deviation_gadget() {
        // minimize |x − 5| with x free-ish (x >= 0): model as
        // x − 5 = p − n, minimize p + n.  Vars: x, p, n.
        let mut lp = LinearProgram::new(3);
        lp.set_objective(&[0.0, 1.0, 1.0]);
        lp.add_constraint(&[(0, 1.0), (1, -1.0), (2, 1.0)], Relation::Eq, 5.0);
        let sol = lp.solve().unwrap();
        assert!((sol.objective - 0.0).abs() < 1e-8);
        assert!((sol.x[0] - 5.0).abs() < 1e-8);
    }

    #[test]
    fn bad_variable_index_rejected() {
        let mut lp = LinearProgram::new(1);
        lp.constraints.push(Constraint {
            coeffs: vec![(5, 1.0)],
            rel: Relation::Le,
            rhs: 1.0,
        });
        assert!(matches!(lp.solve(), Err(LpError::BadVariable { index: 5 })));
    }

    #[test]
    fn random_lps_are_locally_optimal() {
        // For random feasible LPs (constraints x_i <= b_i, Σx <= B with a
        // negative objective), compare against sampled feasible points.
        use qni_stats::rng::rng_from_seed;
        use rand::Rng;
        let mut rng = rng_from_seed(77);
        for trial in 0..25 {
            let n = 3 + (trial % 3);
            let mut lp = LinearProgram::new(n);
            let costs: Vec<f64> = (0..n).map(|_| -(rng.random::<f64>() + 0.1)).collect();
            lp.set_objective(&costs);
            let caps: Vec<f64> = (0..n).map(|_| rng.random::<f64>() * 5.0 + 0.5).collect();
            for (i, &c) in caps.iter().enumerate() {
                lp.add_constraint(&[(i, 1.0)], Relation::Le, c);
            }
            let total: f64 = caps.iter().sum::<f64>() * 0.6;
            let all: Vec<(usize, f64)> = (0..n).map(|i| (i, 1.0)).collect();
            lp.add_constraint(&all, Relation::Le, total);
            let sol = lp.solve().unwrap();
            assert!(feasible(&lp, &sol.x), "trial {trial}");
            // Sampled feasible points can't beat the optimum.
            for _ in 0..50 {
                let x: Vec<f64> = caps.iter().map(|&c| rng.random::<f64>() * c).collect();
                let sum: f64 = x.iter().sum();
                if sum > total {
                    continue;
                }
                let val: f64 = x.iter().zip(&costs).map(|(a, b)| a * b).sum();
                assert!(val >= sol.objective - 1e-6, "trial {trial}");
            }
        }
    }
}
