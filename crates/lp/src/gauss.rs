//! Dense Gaussian elimination with partial pivoting.
//!
//! Used by the Jackson-network analysis in `qni-sim` to solve the
//! visit-ratio equations `(I − Pᵀ)v = b` over the FSM's transient states.
//! Kept here with the other numerical-linear-algebra code.

use crate::error::LpError;

/// Solves the dense linear system `A x = b` in place (partial pivoting).
///
/// Errors with [`LpError::Infeasible`] when the matrix is (numerically)
/// singular.
///
/// # Examples
///
/// ```
/// use qni_lp::gauss::solve_dense;
///
/// // 2x + y = 5, x - y = 1  →  x = 2, y = 1.
/// let a = vec![vec![2.0, 1.0], vec![1.0, -1.0]];
/// let x = solve_dense(a, vec![5.0, 1.0]).unwrap();
/// assert!((x[0] - 2.0).abs() < 1e-12);
/// assert!((x[1] - 1.0).abs() < 1e-12);
/// ```
pub fn solve_dense(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Result<Vec<f64>, LpError> {
    let n = a.len();
    if b.len() != n || a.iter().any(|row| row.len() != n) {
        return Err(LpError::ShapeMismatch);
    }
    for col in 0..n {
        // Partial pivot: largest magnitude in this column.
        let pivot = (col..n)
            .max_by(|&i, &j| a[i][col].abs().total_cmp(&a[j][col].abs()))
            .expect("non-empty range"); // qni-lint: allow(QNI-E002) — pivot search range k..n is non-empty while k < n
        if a[pivot][col].abs() < 1e-12 {
            return Err(LpError::Infeasible);
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        for row in (col + 1)..n {
            let f = a[row][col] / a[col][col];
            if f != 0.0 {
                let (upper, lower) = a.split_at_mut(row);
                let pivot_row = &upper[col];
                for (k, cell) in lower[0].iter_mut().enumerate().skip(col) {
                    *cell -= f * pivot_row[k];
                }
                b[row] -= f * b[col];
            }
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for col in (0..n).rev() {
        let mut acc = b[col];
        for k in (col + 1)..n {
            acc -= a[col][k] * x[k];
        }
        x[col] = acc / a[col][col];
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity() {
        let a = vec![vec![1.0, 0.0], vec![0.0, 1.0]];
        let x = solve_dense(a, vec![3.0, 4.0]).unwrap();
        assert_eq!(x, vec![3.0, 4.0]);
    }

    #[test]
    fn needs_pivoting() {
        // Zero on the diagonal forces a row swap.
        let a = vec![vec![0.0, 1.0], vec![1.0, 0.0]];
        let x = solve_dense(a, vec![2.0, 3.0]).unwrap();
        assert_eq!(x, vec![3.0, 2.0]);
    }

    #[test]
    fn singular_detected() {
        let a = vec![vec![1.0, 1.0], vec![2.0, 2.0]];
        assert!(solve_dense(a, vec![1.0, 2.0]).is_err());
    }

    #[test]
    fn shape_mismatch() {
        let a = vec![vec![1.0, 1.0]];
        assert!(solve_dense(a, vec![1.0, 2.0]).is_err());
    }

    #[test]
    fn random_systems_verify() {
        use qni_stats::rng::rng_from_seed;
        use rand::Rng;
        let mut rng = rng_from_seed(5);
        for _ in 0..20 {
            let n = 6;
            let a: Vec<Vec<f64>> = (0..n)
                .map(|i| {
                    (0..n)
                        .map(|j| {
                            // Diagonally dominant → well-conditioned.
                            rng.random::<f64>() + if i == j { 4.0 } else { 0.0 }
                        })
                        .collect()
                })
                .collect();
            let x_true: Vec<f64> = (0..n).map(|_| rng.random::<f64>() * 4.0 - 2.0).collect();
            let b: Vec<f64> = (0..n)
                .map(|i| (0..n).map(|j| a[i][j] * x_true[j]).sum())
                .collect();
            let x = solve_dense(a, b).unwrap();
            for (got, want) in x.iter().zip(&x_true) {
                assert!((got - want).abs() < 1e-9);
            }
        }
    }
}
