//! Difference-constraint systems solved by longest-path passes.
//!
//! The sampler-initialization constraints (`a_e = d_{π(e)}` collapsed,
//! queue-order inequalities, non-negative services) form a system of pure
//! precedence constraints `x_u ≤ x_v` over an acyclic graph, with some
//! variables fixed by observations. The *minimal* feasible completion is
//! the longest path from below (each variable as small as its
//! predecessors allow), the *maximal* one the symmetric pass from above;
//! any value between the two bounds is feasible for that variable given
//! the others are at their bounds' side. `qni-core` uses the pair as a
//! feasibility box for initialization.

use crate::error::LpError;

/// A system of `x_u ≤ x_v` constraints with fixed values and box bounds.
///
/// # Examples
///
/// ```
/// use qni_lp::diffcon::DiffSystem;
///
/// let mut sys = DiffSystem::new(3);
/// sys.le(0, 1).unwrap();
/// sys.le(1, 2).unwrap();
/// sys.fix(2, 5.0).unwrap();
/// let sol = sys.solve().unwrap();
/// assert_eq!(sol.min, vec![0.0, 0.0, 5.0]);
/// assert_eq!(sol.max, vec![5.0, 5.0, 5.0]);
/// ```
#[derive(Debug, Clone)]
pub struct DiffSystem {
    n: usize,
    lower: Vec<f64>,
    upper: Vec<f64>,
    fixed: Vec<Option<f64>>,
    /// Edges `u → v` meaning `x_u ≤ x_v`.
    edges: Vec<(usize, usize)>,
}

/// Minimal and maximal feasible completions.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffSolution {
    /// Smallest feasible value per variable.
    pub min: Vec<f64>,
    /// Largest feasible value per variable (`+inf` when unbounded).
    pub max: Vec<f64>,
}

impl DiffSystem {
    /// Creates a system of `n` variables with default bounds `[0, +inf)`.
    pub fn new(n: usize) -> Self {
        DiffSystem {
            n,
            lower: vec![0.0; n],
            upper: vec![f64::INFINITY; n],
            fixed: vec![None; n],
            edges: Vec::new(),
        }
    }

    /// Number of variables.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the system has no variables.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Adds `x_u ≤ x_v`.
    pub fn le(&mut self, u: usize, v: usize) -> Result<(), LpError> {
        if u >= self.n {
            return Err(LpError::BadVariable { index: u });
        }
        if v >= self.n {
            return Err(LpError::BadVariable { index: v });
        }
        if u != v {
            self.edges.push((u, v));
        }
        Ok(())
    }

    /// Fixes `x_v = value`.
    pub fn fix(&mut self, v: usize, value: f64) -> Result<(), LpError> {
        if v >= self.n {
            return Err(LpError::BadVariable { index: v });
        }
        if !value.is_finite() {
            return Err(LpError::ShapeMismatch);
        }
        self.fixed[v] = Some(value);
        Ok(())
    }

    /// Tightens the lower bound of `x_v`.
    pub fn set_lower(&mut self, v: usize, value: f64) -> Result<(), LpError> {
        if v >= self.n {
            return Err(LpError::BadVariable { index: v });
        }
        self.lower[v] = self.lower[v].max(value);
        Ok(())
    }

    /// Tightens the upper bound of `x_v`.
    pub fn set_upper(&mut self, v: usize, value: f64) -> Result<(), LpError> {
        if v >= self.n {
            return Err(LpError::BadVariable { index: v });
        }
        self.upper[v] = self.upper[v].min(value);
        Ok(())
    }

    /// Solves for the minimal and maximal feasible completions.
    ///
    /// Errors with [`LpError::CyclicConstraints`] if the precedence graph
    /// has a cycle and [`LpError::Infeasible`] if bounds/fixed values
    /// conflict.
    pub fn solve(&self) -> Result<DiffSolution, LpError> {
        let order = self.topo_order()?;
        // Effective bounds: fixed values collapse the box.
        let mut lo = self.lower.clone();
        let mut hi = self.upper.clone();
        for v in 0..self.n {
            if let Some(f) = self.fixed[v] {
                if f < self.lower[v] - 1e-12 || f > self.upper[v] + 1e-12 {
                    return Err(LpError::Infeasible);
                }
                lo[v] = f;
                hi[v] = f;
            }
        }
        let mut succs: Vec<Vec<usize>> = vec![Vec::new(); self.n];
        let mut preds: Vec<Vec<usize>> = vec![Vec::new(); self.n];
        for &(u, v) in &self.edges {
            succs[u].push(v);
            preds[v].push(u);
        }
        // Forward pass: minimal values.
        let mut min = vec![0.0f64; self.n];
        for &v in &order {
            let from_preds = preds[v]
                .iter()
                .map(|&u| min[u])
                .fold(f64::NEG_INFINITY, f64::max);
            min[v] = lo[v].max(from_preds);
            if min[v] > hi[v] + 1e-9 {
                return Err(LpError::Infeasible);
            }
            if self.fixed[v].is_some() && min[v] > lo[v] + 1e-9 {
                // A fixed value below what predecessors force.
                return Err(LpError::Infeasible);
            }
            if self.fixed[v].is_some() {
                min[v] = lo[v];
            }
        }
        // Backward pass: maximal values.
        let mut max = vec![f64::INFINITY; self.n];
        for &v in order.iter().rev() {
            let from_succs = succs[v]
                .iter()
                .map(|&u| max[u])
                .fold(f64::INFINITY, f64::min);
            max[v] = hi[v].min(from_succs);
            if self.fixed[v].is_some() {
                max[v] = hi[v].min(max[v]);
                if max[v] < hi[v] - 1e-9 {
                    // Successors force the fixed value lower than it is.
                    return Err(LpError::Infeasible);
                }
            }
            if max[v] < min[v] - 1e-9 {
                return Err(LpError::Infeasible);
            }
        }
        Ok(DiffSolution { min, max })
    }

    /// The precedence edges `(u, v)` meaning `x_u ≤ x_v`.
    pub fn edges(&self) -> &[(usize, usize)] {
        &self.edges
    }

    /// A topological order of the precedence graph (Kahn's algorithm);
    /// errors on cycles.
    pub fn topo_order(&self) -> Result<Vec<usize>, LpError> {
        let mut indeg = vec![0usize; self.n];
        let mut succs: Vec<Vec<usize>> = vec![Vec::new(); self.n];
        for &(u, v) in &self.edges {
            succs[u].push(v);
            indeg[v] += 1;
        }
        let mut stack: Vec<usize> = (0..self.n).filter(|&v| indeg[v] == 0).collect();
        let mut order = Vec::with_capacity(self.n);
        while let Some(v) = stack.pop() {
            order.push(v);
            for &s in &succs[v] {
                indeg[s] -= 1;
                if indeg[s] == 0 {
                    stack.push(s);
                }
            }
        }
        if order.len() != self.n {
            return Err(LpError::CyclicConstraints);
        }
        Ok(order)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_with_fixed_endpoint() {
        let mut sys = DiffSystem::new(4);
        sys.le(0, 1).unwrap();
        sys.le(1, 2).unwrap();
        sys.le(2, 3).unwrap();
        sys.fix(1, 2.0).unwrap();
        let sol = sys.solve().unwrap();
        assert_eq!(sol.min, vec![0.0, 2.0, 2.0, 2.0]);
        assert_eq!(sol.max[0], 2.0);
        assert_eq!(sol.max[1], 2.0);
        assert_eq!(sol.max[2], f64::INFINITY);
    }

    #[test]
    fn diamond() {
        // 0 ≤ {1,2} ≤ 3, with 0 fixed at 1 and 3 fixed at 4.
        let mut sys = DiffSystem::new(4);
        sys.le(0, 1).unwrap();
        sys.le(0, 2).unwrap();
        sys.le(1, 3).unwrap();
        sys.le(2, 3).unwrap();
        sys.fix(0, 1.0).unwrap();
        sys.fix(3, 4.0).unwrap();
        let sol = sys.solve().unwrap();
        assert_eq!(sol.min[1], 1.0);
        assert_eq!(sol.max[1], 4.0);
        assert_eq!(sol.min[2], 1.0);
        assert_eq!(sol.max[2], 4.0);
    }

    #[test]
    fn infeasible_fixed_order() {
        let mut sys = DiffSystem::new(2);
        sys.le(0, 1).unwrap();
        sys.fix(0, 5.0).unwrap();
        sys.fix(1, 3.0).unwrap();
        assert_eq!(sys.solve(), Err(LpError::Infeasible));
    }

    #[test]
    fn infeasible_bounds() {
        let mut sys = DiffSystem::new(1);
        sys.set_lower(0, 2.0).unwrap();
        sys.set_upper(0, 1.0).unwrap();
        assert_eq!(sys.solve(), Err(LpError::Infeasible));
        let mut sys = DiffSystem::new(1);
        sys.set_upper(0, 1.0).unwrap();
        sys.fix(0, 2.0).unwrap();
        assert_eq!(sys.solve(), Err(LpError::Infeasible));
    }

    #[test]
    fn cycle_detected() {
        let mut sys = DiffSystem::new(2);
        sys.le(0, 1).unwrap();
        sys.le(1, 0).unwrap();
        assert_eq!(sys.solve(), Err(LpError::CyclicConstraints));
    }

    #[test]
    fn self_loop_ignored() {
        let mut sys = DiffSystem::new(1);
        sys.le(0, 0).unwrap();
        assert!(sys.solve().is_ok());
    }

    #[test]
    fn bounds_propagate_through_chain() {
        let mut sys = DiffSystem::new(3);
        sys.le(0, 1).unwrap();
        sys.le(1, 2).unwrap();
        sys.set_lower(0, 1.5).unwrap();
        sys.set_upper(2, 9.0).unwrap();
        let sol = sys.solve().unwrap();
        assert_eq!(sol.min, vec![1.5, 1.5, 1.5]);
        assert_eq!(sol.max, vec![9.0, 9.0, 9.0]);
    }

    #[test]
    fn min_is_feasible_and_extreme() {
        // Property on a random DAG: the minimal solution satisfies every
        // constraint and is pointwise ≤ the maximal one.
        use qni_stats::rng::rng_from_seed;
        use rand::Rng;
        let mut rng = rng_from_seed(3);
        for _ in 0..50 {
            let n = 12;
            let mut sys = DiffSystem::new(n);
            for u in 0..n {
                for v in (u + 1)..n {
                    if rng.random::<f64>() < 0.2 {
                        sys.le(u, v).unwrap();
                    }
                }
            }
            sys.fix(n - 1, 10.0).unwrap();
            if rng.random::<f64>() < 0.5 {
                sys.fix(0, 1.0).unwrap();
            }
            let sol = sys.solve().unwrap();
            for &(u, v) in &sys.edges {
                assert!(sol.min[u] <= sol.min[v] + 1e-12);
                assert!(sol.max[u] <= sol.max[v] + 1e-12);
            }
            for v in 0..n {
                assert!(sol.min[v] <= sol.max[v] + 1e-12);
            }
        }
    }

    #[test]
    fn bad_indices() {
        let mut sys = DiffSystem::new(2);
        assert!(sys.le(0, 5).is_err());
        assert!(sys.fix(9, 0.0).is_err());
        assert!(sys.fix(0, f64::NAN).is_err());
        assert!(sys.set_lower(7, 0.0).is_err());
        assert!(sys.set_upper(7, 0.0).is_err());
    }
}
