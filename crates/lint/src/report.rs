//! Diagnostics and report rendering (human and JSON).

use crate::rules::{RuleId, Severity};
use serde::Serialize;

/// One finding, fully positioned and self-describing.
#[derive(Debug, Clone, Serialize)]
pub struct Diagnostic {
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column (characters).
    pub col: usize,
    /// Stable rule ID (`QNI-D001`, …).
    pub rule: RuleId,
    /// The rule's severity.
    pub severity: Severity,
    /// Site-specific message.
    pub message: String,
    /// The offending source line, trimmed.
    pub snippet: String,
    /// Crate the file belongs to.
    pub krate: String,
}

impl Diagnostic {
    /// `file:line:col` prefix used in human output.
    pub fn location(&self) -> String {
        format!("{}:{}:{}", self.file, self.line, self.col)
    }
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "{}: [{}] {}", self.location(), self.rule, self.message)?;
        write!(f, "    {}", self.snippet)
    }
}

/// How many allow directives suppressed findings of one rule. A single
/// directive listing several rules counts once per rule it suppressed —
/// this is the granularity the `lint.toml` budget is written in.
#[derive(Debug, Clone, Serialize)]
pub struct RuleSuppressions {
    /// The suppressed rule.
    pub rule: RuleId,
    /// Number of allow directives that suppressed at least one finding
    /// of this rule.
    pub directives: usize,
}

/// The result of one lint run.
#[derive(Debug, Clone, Serialize)]
pub struct LintReport {
    /// All diagnostics, sorted by (file, line, col, rule).
    pub diagnostics: Vec<Diagnostic>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Number of allow directives honored (suppressed at least one
    /// finding).
    pub suppressions_used: usize,
    /// Per-rule suppression counts, in catalog order (rules with zero
    /// suppressions omitted).
    pub suppressions_by_rule: Vec<RuleSuppressions>,
}

impl LintReport {
    /// Whether the run found any unsuppressed violation that fails the
    /// build.
    pub fn has_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
    }

    /// Renders the human-readable report.
    pub fn render_human(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for d in &self.diagnostics {
            // A trailing blank line between diagnostics keeps multi-hit
            // output scannable.
            let _ = writeln!(out, "{d}\n");
        }
        let _ = writeln!(
            out,
            "qni-lint: {} violation(s) in {} file(s) scanned ({} reviewed suppression(s))",
            self.diagnostics.len(),
            self.files_scanned,
            self.suppressions_used,
        );
        out
    }

    /// Renders the machine-readable JSON report (stable field names;
    /// diagnostics in deterministic order).
    pub fn render_json(&self) -> Result<String, crate::error::LintError> {
        serde_json::to_string(self).map_err(|e| crate::error::LintError::Json(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Diagnostic {
        Diagnostic {
            file: "crates/core/src/x.rs".to_owned(),
            line: 3,
            col: 9,
            rule: RuleId::E001,
            severity: Severity::Error,
            message: "`.unwrap()` panics in library code".to_owned(),
            snippet: "let v = m.unwrap();".to_owned(),
            krate: "qni-core".to_owned(),
        }
    }

    #[test]
    fn display_has_location_rule_and_snippet() {
        let s = sample().to_string();
        assert!(s.contains("crates/core/src/x.rs:3:9"));
        assert!(s.contains("QNI-E001"));
        assert!(s.contains("let v = m.unwrap();"));
    }

    #[test]
    fn json_report_is_machine_readable() {
        let r = LintReport {
            diagnostics: vec![sample()],
            files_scanned: 1,
            suppressions_used: 2,
            suppressions_by_rule: vec![RuleSuppressions {
                rule: RuleId::E002,
                directives: 2,
            }],
        };
        let json = r.render_json().expect("serializes");
        assert!(json.contains("\"rule\":\"QNI-E001\""));
        assert!(json.contains("\"severity\":\"error\""));
        assert!(json.contains("\"line\":3"));
        assert!(json.contains("\"suppressions_by_rule\""));
        assert!(json.contains("\"rule\":\"QNI-E002\""));
        assert!(r.has_errors());
    }
}
