//! R-family scanners: seed-flow discipline over the structure tree.
//!
//! - **QNI-R001**: an RNG constructor (`rng_from_seed`,
//!   `seed_from_u64`, `from_seed`) whose seed argument is not visibly
//!   `split_seed`-derived — no `split_seed` call in the argument, no
//!   seed-named identifier, and no local binding initialized from a
//!   `split_seed` call in the enclosing function.
//! - **QNI-R002**: two `split_seed(parent, k)` calls in one function
//!   with the same parent expression and the same literal index `k` —
//!   stream aliasing.
//! - **QNI-R003**: a literal seed in library code — a bare integer fed
//!   straight to an RNG constructor or `split_seed`, or a
//!   `const`/`static` whose SEED-named value is an integer literal.
//!
//! The analysis is lexical flow, not dataflow: a seed threaded through
//! a struct field or a helper's return value passes when its *name*
//! carries the provenance (`seed`, `master_seed`, …), which is exactly
//! the reviewable-at-a-glance convention the workspace already follows.

use crate::lexer::{Token, TokenKind};
use crate::rules::RuleId;
use crate::scan::{ident, is_op, matching_close, Finding};
use crate::tree::Tree;
use std::ops::Range;

/// RNG constructors whose first argument is a seed.
const RNG_CTORS: [&str; 3] = ["rng_from_seed", "seed_from_u64", "from_seed"];

/// Runs all R-rules. `skip[i]` marks `#[cfg(test)]` / `#[test]` tokens.
pub fn scan(tokens: &[Token], skip: &[bool], tree: &Tree) -> Vec<Finding> {
    let mut out = Vec::new();
    scan_r001_r003(tokens, skip, tree, &mut out);
    scan_r002(tokens, skip, tree, &mut out);
    out
}

fn scan_r001_r003(tokens: &[Token], skip: &[bool], tree: &Tree, out: &mut Vec<Finding>) {
    for (i, &skipped) in skip.iter().enumerate().take(tokens.len()) {
        if skipped {
            continue;
        }
        let Some(name) = ident(tokens, i) else {
            continue;
        };
        let is_ctor = RNG_CTORS.contains(&name);
        let is_split = name == "split_seed";
        if (!is_ctor && !is_split) || !is_op(tokens, i + 1, "(") {
            continue;
        }
        // Skip the *definition* sites (`fn rng_from_seed(seed: u64)`).
        if ident(tokens, i.wrapping_sub(1)) == Some("fn") {
            continue;
        }
        let Some(close) = matching_close(tokens, i + 1) else {
            continue;
        };
        let first_arg = first_arg_span(tokens, i + 2, close);
        // QNI-R003: a bare integer literal as the seed argument.
        if let Some(lit) = single_int_literal(tokens, first_arg.clone()) {
            out.push(Finding {
                rule: RuleId::R003,
                token_idx: lit,
                message: format!(
                    "literal seed `{}` passed to `{name}` in a library crate; thread the seed \
                     in as a parameter",
                    tokens[lit].text
                ),
            });
            continue;
        }
        // QNI-R001 (constructors only; `split_seed` IS the derivation).
        if is_ctor && !seed_arg_is_derived(tokens, first_arg, tree, i) {
            out.push(Finding {
                rule: RuleId::R001,
                token_idx: i,
                message: format!(
                    "`{name}(..)` builds an RNG from a seed with no visible `split_seed` \
                     derivation; derive it via `qni_stats::rng::split_seed` (or name it so the \
                     derivation is auditable)"
                ),
            });
        }
    }
    // QNI-R003 (b): SEED-named const/static with a literal value.
    for (i, &skipped) in skip.iter().enumerate().take(tokens.len()) {
        if skipped || !matches!(ident(tokens, i), Some("const" | "static")) {
            continue;
        }
        let Some(name) = ident(tokens, i + 1) else {
            continue;
        };
        if !name.to_ascii_uppercase().contains("SEED") {
            continue;
        }
        // `const NAME : TYPE = <int literal> ;`
        let mut j = i + 2;
        while j < tokens.len() && !is_op(tokens, j, "=") && !is_op(tokens, j, ";") {
            j += 1;
        }
        if is_op(tokens, j, "=")
            && tokens.get(j + 1).is_some_and(|t| t.kind == TokenKind::Int)
            && is_op(tokens, j + 2, ";")
        {
            out.push(Finding {
                rule: RuleId::R003,
                token_idx: j + 1,
                message: format!(
                    "literal seed constant `{name} = {}` in a library crate; seeds come from \
                     the caller's configuration",
                    tokens[j + 1].text
                ),
            });
        }
    }
}

/// The token span of the first call argument: `args_start` up to the
/// first depth-0 `,` or the call's closing paren.
fn first_arg_span(tokens: &[Token], args_start: usize, close: usize) -> Range<usize> {
    let mut depth = 0i64;
    for (k, tok) in tokens.iter().enumerate().take(close).skip(args_start) {
        if tok.kind == TokenKind::Op {
            match tok.text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                "," if depth == 0 => return args_start..k,
                _ => {}
            }
        }
    }
    args_start..close
}

/// If the span is exactly one integer literal, its token index.
fn single_int_literal(tokens: &[Token], span: Range<usize>) -> Option<usize> {
    if span.len() == 1 && tokens[span.start].kind == TokenKind::Int {
        Some(span.start)
    } else {
        None
    }
}

/// Whether a seed argument is visibly `split_seed`-derived:
/// the argument mentions `split_seed` itself, mentions an identifier
/// whose name carries seed provenance (`seed`, `master_seed`, …), or is
/// a local binding whose initializer statement in the enclosing
/// function contains a `split_seed` call.
fn seed_arg_is_derived(tokens: &[Token], span: Range<usize>, tree: &Tree, ctor_idx: usize) -> bool {
    let mut arg_idents: Vec<&str> = Vec::new();
    for k in span.clone() {
        if let Some(name) = ident(tokens, k) {
            if name == "split_seed" || name.to_ascii_lowercase().contains("seed") {
                return true;
            }
            arg_idents.push(name);
        }
    }
    // Binding flow: `let s = split_seed(m, 3); … rng_from_seed(s)`.
    let Some(f) = tree.enclosing_fn(ctor_idx) else {
        return false;
    };
    for range in tree.direct_body(f) {
        for stmt in crate::tree::statements(tokens, range) {
            let binds_split = stmt.clone().any(|k| ident(tokens, k) == Some("split_seed"));
            if !binds_split || ident(tokens, stmt.start) != Some("let") {
                continue;
            }
            // `let [mut] <name> [: ty] = …` — the bound name.
            let mut n = stmt.start + 1;
            if ident(tokens, n) == Some("mut") {
                n += 1;
            }
            if let Some(bound) = ident(tokens, n) {
                if arg_idents.contains(&bound) {
                    return true;
                }
            }
        }
    }
    false
}

fn scan_r002(tokens: &[Token], skip: &[bool], tree: &Tree, out: &mut Vec<Finding>) {
    for f in 0..tree.fns.len() {
        if skip[tree.fns[f].name_idx] {
            continue;
        }
        // (parent expression text, normalized literal index) → seen.
        let mut seen: Vec<(String, String)> = Vec::new();
        for range in tree.direct_body(f) {
            for i in range {
                if skip[i] || ident(tokens, i) != Some("split_seed") || !is_op(tokens, i + 1, "(") {
                    continue;
                }
                let Some(close) = matching_close(tokens, i + 1) else {
                    continue;
                };
                let parent = first_arg_span(tokens, i + 2, close);
                let index_span = if parent.end < close && is_op(tokens, parent.end, ",") {
                    parent.end + 1..close
                } else {
                    continue;
                };
                let Some(lit) = single_int_literal(tokens, index_span) else {
                    continue; // non-literal indices (loop vars) can't alias lexically
                };
                let parent_key: String = parent
                    .clone()
                    .map(|k| tokens[k].text.as_str())
                    .collect::<Vec<_>>()
                    .join(" ");
                let lit_key = normalize_int(&tokens[lit].text);
                if seen.iter().any(|(p, l)| *p == parent_key && *l == lit_key) {
                    out.push(Finding {
                        rule: RuleId::R002,
                        token_idx: i,
                        message: format!(
                            "`split_seed({parent_key}, {})` reuses stream index {} in this \
                             function; aliased streams correlate draws that the estimators \
                             assume independent",
                            tokens[lit].text, tokens[lit].text
                        ),
                    });
                } else {
                    seen.push((parent_key, lit_key));
                }
            }
        }
    }
}

/// Normalizes an integer literal for aliasing comparison: strips `_`
/// separators and a type suffix, so `1_000u64` == `1000`.
fn normalize_int(text: &str) -> String {
    let no_sep: String = text.chars().filter(|c| *c != '_').collect();
    let digits_end = no_sep
        .find(|c: char| c.is_ascii_alphabetic())
        .filter(|&p| p > 1 || !no_sep.starts_with('0')) // keep 0x/0b prefixes whole
        .unwrap_or(no_sep.len());
    no_sep[..digits_end].to_owned()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::scan::test_spans;

    fn findings(src: &str) -> Vec<Finding> {
        let out = lex(src);
        let skip = test_spans(&out.tokens);
        let tree = crate::tree::build(&out.tokens);
        scan(&out.tokens, &skip, &tree)
    }

    #[test]
    fn r001_fires_on_underived_seed() {
        let f = findings("fn f(x: u64) { let mut rng = rng_from_seed(x * 2 + 1); }");
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, RuleId::R001);
    }

    #[test]
    fn r001_passes_seed_named_args_and_split_calls() {
        let clean = [
            "fn f(seed: u64) { let rng = rng_from_seed(seed); }",
            "fn f(o: &Opts) { let rng = rng_from_seed(o.master_seed); }",
            "fn f(m: u64) { let rng = rng_from_seed(split_seed(m, 1)); }",
        ];
        for src in clean {
            assert!(findings(src).is_empty(), "{src}");
        }
    }

    #[test]
    fn r001_binding_flow_through_let() {
        let src = "fn f(m: u64) { let s = split_seed(m, 3); let rng = rng_from_seed(s); }";
        assert!(findings(src).is_empty());
        let bad = "fn f(m: u64) { let s = m + 1; let rng = rng_from_seed(s); }";
        assert_eq!(findings(bad).len(), 1);
    }

    #[test]
    fn r001_skips_tests_and_definitions() {
        let src = "#[cfg(test)]\nmod t { fn f(x: u64) { let r = rng_from_seed(x + 1); } }\n\
                   fn rng_from_seed(seed: u64) -> u64 { seed }";
        assert!(findings(src).is_empty());
    }

    #[test]
    fn r002_fires_on_aliased_literal_index() {
        let src = "fn f(m: u64) { let a = split_seed(m, 1); let b = split_seed(m, 1); }";
        let f = findings(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, RuleId::R002);
    }

    #[test]
    fn r002_distinct_indices_and_parents_are_clean() {
        let clean = [
            "fn f(m: u64) { let a = split_seed(m, 1); let b = split_seed(m, 2); }",
            "fn f(m: u64, n: u64) { let a = split_seed(m, 1); let b = split_seed(n, 1); }",
            "fn f(m: u64) { for k in 0..4 { let s = split_seed(m, k); } }",
        ];
        for src in clean {
            assert!(findings(src).is_empty(), "{src}");
        }
    }

    #[test]
    fn r002_does_not_leak_across_functions_or_nested_fns() {
        let src = "fn a(m: u64) { let x = split_seed(m, 1); }\n\
                   fn b(m: u64) { let x = split_seed(m, 1); }";
        assert!(findings(src).is_empty());
        let nested = "fn outer(m: u64) { let x = split_seed(m, 1); \
                      fn inner(m: u64) { let y = split_seed(m, 1); } }";
        assert!(findings(nested).is_empty());
    }

    #[test]
    fn r002_normalizes_literal_forms() {
        let src = "fn f(m: u64) { let a = split_seed(m, 1_0u64); let b = split_seed(m, 10); }";
        let f = findings(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, RuleId::R002);
    }

    #[test]
    fn r003_fires_on_literal_call_args_not_r001() {
        let f = findings("fn f() { let rng = rng_from_seed(42); }");
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, RuleId::R003);
        let f = findings("fn f() { let s = split_seed(0xDEAD, 1); }");
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, RuleId::R003);
    }

    #[test]
    fn r003_fires_on_seed_named_const() {
        let f = findings("const MASTER_SEED: u64 = 42;");
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, RuleId::R003);
        assert!(findings("const MAX_ITERS: u64 = 42;").is_empty());
        assert!(findings("#[cfg(test)]\nmod t { const SEED: u64 = 7; }").is_empty());
    }
}
