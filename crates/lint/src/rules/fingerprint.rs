//! F-family scanner: fingerprint coverage of estimate structs.
//!
//! **QNI-F001** runs only in files that define a non-test
//! `fn fingerprint`. In such a file, every named field of an
//! estimate-carrying struct (name ending in `Estimate`, `Result`, or
//! `Trajectory`) must appear as an identifier somewhere in a
//! `fingerprint` body — otherwise the field was added after the
//! byte-identity oracle was written and silently escapes the
//! live == replay check (the drift class PR 7 had to guard by hand).
//!
//! The cross-reference is by name, file-locally: a field mentioned in
//! *any* of the file's fingerprint bodies counts as covered. That is
//! deliberately coarse — the rule's job is to force the author of a new
//! field to visit the fingerprint function, not to prove the hash is
//! complete.

use crate::lexer::Token;
use crate::rules::RuleId;
use crate::scan::{ident, Finding};
use crate::tree::Tree;

/// Struct-name suffixes that mark a type as estimate-carrying.
const ESTIMATE_SUFFIXES: [&str; 3] = ["Estimate", "Result", "Trajectory"];

/// Runs QNI-F001. `skip[i]` marks `#[cfg(test)]` / `#[test]` tokens.
pub fn scan(tokens: &[Token], skip: &[bool], tree: &Tree) -> Vec<Finding> {
    // Gate: only files with a live (non-test) fingerprint body.
    let bodies: Vec<_> = tree
        .fns
        .iter()
        .filter(|f| f.name == "fingerprint" && !skip[f.name_idx])
        .collect();
    if bodies.is_empty() {
        return Vec::new();
    }
    let mut covered: Vec<&str> = Vec::new();
    for f in &bodies {
        for i in f.body.clone() {
            if let Some(name) = ident(tokens, i) {
                covered.push(name);
            }
        }
    }
    let mut out = Vec::new();
    for s in &tree.structs {
        if skip[s.name_idx] || !ESTIMATE_SUFFIXES.iter().any(|suf| s.name.ends_with(suf)) {
            continue;
        }
        for field in &s.fields {
            if skip[field.token_idx] {
                continue;
            }
            if !covered.iter().any(|c| *c == field.name) {
                out.push(Finding {
                    rule: RuleId::F001,
                    token_idx: field.token_idx,
                    message: format!(
                        "field `{}.{}` never appears in this file's `fingerprint()` body; \
                         fold it into the fingerprint or carry a reasoned allow",
                        s.name, field.name
                    ),
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::scan::test_spans;

    fn findings(src: &str) -> Vec<Finding> {
        let out = lex(src);
        let skip = test_spans(&out.tokens);
        let tree = crate::tree::build(&out.tokens);
        scan(&out.tokens, &skip, &tree)
    }

    #[test]
    fn f001_fires_on_unfingerprinted_field() {
        let src = "pub struct WindowEstimate { pub rate: f64, pub wall: f64 }\n\
                   impl WindowEstimate { pub fn fingerprint(&self) -> String { \
                   format!(\"{}\", self.rate) } }";
        let f = findings(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, RuleId::F001);
        assert!(f[0].message.contains("wall"));
    }

    #[test]
    fn f001_clean_when_all_fields_covered() {
        let src = "pub struct StemResult { pub rate: f64, pub ess: f64 }\n\
                   impl StemResult { pub fn fingerprint(&self) -> String { \
                   format!(\"{} {}\", self.rate, self.ess) } }";
        assert!(findings(src).is_empty());
    }

    #[test]
    fn f001_silent_without_a_fingerprint_fn() {
        let src = "pub struct WindowEstimate { pub rate: f64, pub wall: f64 }";
        assert!(findings(src).is_empty());
    }

    #[test]
    fn f001_ignores_non_estimate_structs() {
        let src = "pub struct Options { pub verbose: bool }\n\
                   pub struct Trajectory { pub rates: Vec<f64> }\n\
                   impl Trajectory { pub fn fingerprint(&self) -> String { \
                   format!(\"{:?}\", self.rates) } }";
        assert!(findings(src).is_empty());
    }

    #[test]
    fn f001_skips_test_only_structs_and_fingerprints() {
        let src = "#[cfg(test)]\nmod t {\n\
                   pub struct FakeEstimate { pub rate: f64, pub wall: f64 }\n\
                   impl FakeEstimate { pub fn fingerprint(&self) -> String { \
                   format!(\"{}\", self.rate) } }\n}";
        assert!(findings(src).is_empty());
    }
}
