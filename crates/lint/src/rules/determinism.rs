//! D-family scanners: wall-clock reads, nondeterministic RNG sources,
//! and `HashMap`/`HashSet` iteration.

use crate::lexer::{Token, TokenKind};
use crate::rules::RuleId;
use crate::scan::{ident, is_op, Finding};

/// Names whose mere appearance in library code is a determinism bug.
const RNG_SOURCES: [&str; 4] = ["thread_rng", "from_entropy", "OsRng", "getrandom"];

/// Iteration methods that observe a hash collection's (randomized)
/// order.
const ITER_METHODS: [&str; 8] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "drain",
    "retain",
];

/// Runs all D-rules over the token stream. `skip[i]` marks tokens
/// inside `#[cfg(test)]` / `#[test]` items.
pub fn scan(tokens: &[Token], skip: &[bool]) -> Vec<Finding> {
    let mut out = Vec::new();
    let tracked = tracked_hash_bindings(tokens);
    for i in 0..tokens.len() {
        if skip[i] {
            continue;
        }
        // QNI-D001: `Instant::now` / `SystemTime::now`.
        if matches!(ident(tokens, i), Some("Instant" | "SystemTime"))
            && is_op(tokens, i + 1, "::")
            && ident(tokens, i + 2) == Some("now")
        {
            out.push(Finding {
                rule: RuleId::D001,
                token_idx: i,
                message: format!(
                    "`{}::now()` reads the wall clock in a library crate",
                    tokens[i].text
                ),
            });
        }
        // QNI-D002: OS-entropy / thread-local RNG sources.
        if let Some(name) = ident(tokens, i) {
            if RNG_SOURCES.contains(&name) {
                out.push(Finding {
                    rule: RuleId::D002,
                    token_idx: i,
                    message: format!(
                        "`{name}` draws nondeterministic randomness; derive streams from an \
                         explicit seed via `qni_stats::rng`"
                    ),
                });
            }
        }
        // QNI-D003 (a): iteration method on a tracked hash binding.
        if let Some(name) = ident(tokens, i) {
            if tracked.iter().any(|t| t == name)
                && is_op(tokens, i + 1, ".")
                && ident(tokens, i + 2).is_some_and(|m| ITER_METHODS.contains(&m))
            {
                out.push(Finding {
                    rule: RuleId::D003,
                    token_idx: i + 2,
                    message: format!(
                        "`{name}.{}()` iterates a HashMap/HashSet in hash order",
                        tokens[i + 2].text
                    ),
                });
            }
        }
        // QNI-D003 (b): `for … in <tracked>` loops.
        if ident(tokens, i) == Some("for") {
            if let Some(f) = for_loop_over_tracked(tokens, i, &tracked) {
                out.push(f);
            }
        }
    }
    out
}

/// Collects identifiers that are lexically bound to a `HashMap` /
/// `HashSet`: type ascriptions (`x: HashMap<…>` — also covers fn params
/// and struct fields) and `let`-bindings initialized from an associated
/// function (`let x = HashMap::new()`). A heuristic, not type
/// inference — but one that covers how these types actually get
/// introduced, and misses only aliased or deeply nested uses (which the
/// clean-fixture corpus keeps honest).
fn tracked_hash_bindings(tokens: &[Token]) -> Vec<String> {
    let mut tracked = Vec::new();
    for i in 0..tokens.len() {
        if !matches!(ident(tokens, i), Some("HashMap" | "HashSet")) {
            continue;
        }
        // Walk back over a path prefix (`std :: collections ::`).
        let mut j = i;
        while j >= 2 && is_op(tokens, j - 1, "::") && tokens[j - 2].kind == TokenKind::Ident {
            j -= 2;
        }
        // Type ascription: `name : [&] [mut] Path`.
        let mut k = j;
        while k >= 1 && (is_op(tokens, k - 1, "&") || ident(tokens, k - 1) == Some("mut")) {
            k -= 1;
        }
        if k >= 2 && is_op(tokens, k - 1, ":") && tokens[k - 2].kind == TokenKind::Ident {
            tracked.push(tokens[k - 2].text.clone());
            continue;
        }
        // Initializer: `let [mut] name = Path :: …`.
        if j >= 2 && is_op(tokens, j - 1, "=") && tokens[j - 2].kind == TokenKind::Ident {
            let name = j - 2;
            let before = name.checked_sub(1).map(|b| tokens[b].text.as_str());
            if matches!(before, Some("let" | "mut")) {
                tracked.push(tokens[name].text.clone());
            }
        }
    }
    tracked.sort();
    tracked.dedup();
    tracked
}

/// Detects `for <pat> in [&] [mut] <tracked> {` — iteration over the
/// collection itself (method-call iteration is handled separately).
fn for_loop_over_tracked(tokens: &[Token], for_idx: usize, tracked: &[String]) -> Option<Finding> {
    // Find the `in` keyword at bracket depth 0 (the pattern may contain
    // tuples: `for (k, v) in …`).
    let mut depth = 0i32;
    let mut j = for_idx + 1;
    loop {
        let t = tokens.get(j)?;
        match (t.kind, t.text.as_str()) {
            (TokenKind::Op, "(" | "[") => depth += 1,
            (TokenKind::Op, ")" | "]") => depth -= 1,
            (TokenKind::Ident, "in") if depth == 0 => break,
            (TokenKind::Op, "{" | ";") => return None,
            _ => {}
        }
        j += 1;
    }
    // Expression: strip leading `&` / `mut`, then require a bare
    // tracked identifier followed by the loop body brace.
    let mut k = j + 1;
    while is_op(tokens, k, "&") || ident(tokens, k) == Some("mut") {
        k += 1;
    }
    let name = ident(tokens, k)?;
    if tracked.iter().any(|t| t == name) && is_op(tokens, k + 1, "{") {
        return Some(Finding {
            rule: RuleId::D003,
            token_idx: k,
            message: format!("`for … in {name}` iterates a HashMap/HashSet in hash order"),
        });
    }
    None
}
