//! E-family scanners: panicking constructs in library code.

use crate::lexer::Token;
use crate::rules::RuleId;
use crate::scan::{ident, is_op, Finding};

/// Runs all E-rules. `skip[i]` marks test-code tokens.
///
/// `.unwrap()` / `.expect()` sites that are the tail of a
/// `partial_cmp(..)` chain are *not* flagged here — QNI-N002 owns them
/// (the engine drops E-findings that collide with an N002 finding at
/// the same token, so the sharper message wins).
pub fn scan(tokens: &[Token], skip: &[bool]) -> Vec<Finding> {
    let mut out = Vec::new();
    for i in 0..tokens.len() {
        if skip[i] {
            continue;
        }
        // `.unwrap()` / `.expect(` — the dot requirement keeps
        // `unwrap_or`, `unwrap_or_else`, and local functions that happen
        // to be named `unwrap` honest (identifiers tokenize whole).
        if is_op(tokens, i, ".") {
            match ident(tokens, i + 1) {
                Some("unwrap") if is_op(tokens, i + 2, "(") => out.push(Finding {
                    rule: RuleId::E001,
                    token_idx: i + 1,
                    message: "`.unwrap()` panics in library code; return a typed error".to_owned(),
                }),
                Some("expect") if is_op(tokens, i + 2, "(") => out.push(Finding {
                    rule: RuleId::E002,
                    token_idx: i + 1,
                    message: "`.expect(..)` panics in library code; return a typed error or \
                              carry a reviewed allow directive"
                        .to_owned(),
                }),
                _ => {}
            }
        }
        // `panic!` / `todo!` / `unimplemented!` invocations. `assert!`
        // and `debug_assert!` are deliberately not flagged: they are
        // contract checks on internal invariants, not error paths.
        if matches!(ident(tokens, i), Some("panic" | "todo" | "unimplemented"))
            && is_op(tokens, i + 1, "!")
        {
            out.push(Finding {
                rule: RuleId::E003,
                token_idx: i,
                message: format!(
                    "`{}!` aborts the caller; surface the failure as a typed error",
                    tokens[i].text
                ),
            });
        }
    }
    out
}
