//! N-family scanners: exact float comparisons and NaN-unsafe ordering.

use crate::lexer::{Token, TokenKind};
use crate::rules::RuleId;
use crate::scan::{ident, is_op, matching_close, Finding};

/// Runs all N-rules. `skip[i]` marks test-code tokens.
pub fn scan(tokens: &[Token], skip: &[bool]) -> Vec<Finding> {
    let mut out = Vec::new();
    for i in 0..tokens.len() {
        if skip[i] {
            continue;
        }
        if tokens[i].kind == TokenKind::Op && (tokens[i].text == "==" || tokens[i].text == "!=") {
            scan_float_eq(tokens, i, &mut out);
        }
        if ident(tokens, i) == Some("partial_cmp") && is_op(tokens, i.wrapping_sub(1), ".") {
            scan_partial_cmp(tokens, i, &mut out);
        }
    }
    out
}

/// What a comparison operand lexically is, when it is recognizably a
/// float.
enum FloatOperand {
    /// A float literal with its parsed value.
    Literal(f64),
    /// A `f64::`/`f32::` associated constant, by name.
    Const(&'static str),
}

/// QNI-N001. The scanner is a heuristic over the tokens *adjacent* to
/// the operator (full expression typing is out of scope for a lexer):
/// it fires when either side is a float literal or an `f64::`/`f32::`
/// constant. Exact comparisons against `0.0` and against
/// `INFINITY`/`NEG_INFINITY` are sentinel checks — the workspace's
/// numeric kernels use them to skip structurally-zero terms and detect
/// saturated log-domain values — and are exempt. NaN comparisons get a
/// sharper message: they are vacuous, not merely fragile.
fn scan_float_eq(tokens: &[Token], op_idx: usize, out: &mut Vec<Finding>) {
    let operand = right_operand(tokens, op_idx).or_else(|| left_operand(tokens, op_idx));
    let Some(operand) = operand else {
        return;
    };
    let op = &tokens[op_idx].text;
    let message = match operand {
        FloatOperand::Const("NAN") => format!(
            "`{op} f64::NAN` is always {} — use `.is_nan()`",
            if op == "==" { "false" } else { "true" }
        ),
        FloatOperand::Const("INFINITY" | "NEG_INFINITY") => return, // sentinel
        FloatOperand::Const(name) => format!(
            "exact float `{op}` against `{name}`; compare with a tolerance \
             (`qni_stats::approx`)"
        ),
        FloatOperand::Literal(0.0) => return, // sentinel (matches -0.0 too)
        FloatOperand::Literal(_) => format!(
            "exact float `{op}` against a constant; compare with a tolerance \
             (`qni_stats::approx::approx_eq`)"
        ),
    };
    out.push(Finding {
        rule: RuleId::N001,
        token_idx: op_idx,
        message,
    });
}

/// The operand starting right of the operator, if recognizably float.
fn right_operand(tokens: &[Token], op_idx: usize) -> Option<FloatOperand> {
    let mut j = op_idx + 1;
    if is_op(tokens, j, "-") {
        j += 1;
    }
    if tokens.get(j)?.kind == TokenKind::Float {
        return parse_float(&tokens[j].text).map(FloatOperand::Literal);
    }
    // `f64 :: CONST` (optionally `std :: f64 :: CONST`).
    if ident(tokens, j) == Some("std") && is_op(tokens, j + 1, "::") {
        j += 2;
    }
    if matches!(ident(tokens, j), Some("f64" | "f32")) && is_op(tokens, j + 1, "::") {
        return float_const(ident(tokens, j + 2)?).map(FloatOperand::Const);
    }
    None
}

/// The operand ending left of the operator, if recognizably float.
fn left_operand(tokens: &[Token], op_idx: usize) -> Option<FloatOperand> {
    let k = op_idx.checked_sub(1)?;
    if tokens[k].kind == TokenKind::Float {
        return parse_float(&tokens[k].text).map(FloatOperand::Literal);
    }
    if k >= 2 && is_op(tokens, k - 1, "::") && matches!(ident(tokens, k - 2), Some("f64" | "f32")) {
        return float_const(ident(tokens, k)?).map(FloatOperand::Const);
    }
    None
}

/// Recognized `f64::`/`f32::` associated constants.
fn float_const(name: &str) -> Option<&'static str> {
    const CONSTS: [&str; 7] = [
        "NAN",
        "INFINITY",
        "NEG_INFINITY",
        "EPSILON",
        "MIN",
        "MAX",
        "MIN_POSITIVE",
    ];
    CONSTS.into_iter().find(|c| *c == name)
}

/// Parses a float literal's text (underscores and `f32`/`f64` suffixes
/// stripped).
fn parse_float(text: &str) -> Option<f64> {
    let cleaned: String = text.chars().filter(|c| *c != '_').collect();
    let cleaned = cleaned
        .strip_suffix("f64")
        .or_else(|| cleaned.strip_suffix("f32"))
        .unwrap_or(&cleaned);
    cleaned.parse().ok()
}

/// QNI-N002: `.partial_cmp(…).unwrap()` / `.expect(…)`.
fn scan_partial_cmp(tokens: &[Token], pc_idx: usize, out: &mut Vec<Finding>) {
    if !is_op(tokens, pc_idx + 1, "(") {
        return;
    }
    let Some(close) = matching_close(tokens, pc_idx + 1) else {
        return;
    };
    if is_op(tokens, close + 1, ".")
        && matches!(ident(tokens, close + 2), Some("unwrap" | "expect"))
    {
        out.push(Finding {
            rule: RuleId::N002,
            token_idx: close + 2,
            message: format!(
                "`partial_cmp(..).{}()` panics on NaN; use `f64::total_cmp`",
                tokens[close + 2].text
            ),
        });
    }
}
