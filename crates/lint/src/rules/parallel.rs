//! P-family scanners: the parallel prepare/drain split.
//!
//! - **QNI-P001**: an RNG draw (`sample`/`gen`-family method call)
//!   lexically inside a closure passed to `spawn`. PR 4's shard
//!   byte-identity rests on "parallel prepare phases are draw-free;
//!   draws happen in the serial drain" — this rule mechanizes the
//!   lexical half of that audit. Draws hidden behind a function called
//!   from the closure are out of lexical reach (the rationale says so),
//!   which is exactly why spawned work should keep its draws visible or
//!   absent.
//! - **QNI-P002**: a statement that both receives values from a channel
//!   (`recv`-family call, or a `for` loop over a receiver bound from
//!   `channel()`) and accumulates floats (`+=` with a non-trivial
//!   right-hand side, or `.sum()`). Channel arrival order is
//!   scheduler-dependent and float addition is not associative; collect
//!   into an index-keyed buffer and reduce sequentially instead.
//!   Joining `JoinHandle`s in spawn order is index-ordered and clean.

use crate::lexer::{Token, TokenKind};
use crate::rules::RuleId;
use crate::scan::{ident, is_op, Finding};
use crate::tree::{statements, Tree};
use std::ops::Range;

/// Method names that consume RNG state.
const DRAW_METHODS: [&str; 10] = [
    "sample",
    "sample_iter",
    "gen",
    "gen_range",
    "gen_bool",
    "gen_ratio",
    "random",
    "next_u32",
    "next_u64",
    "fill_bytes",
];

/// Channel receive methods.
const RECV_METHODS: [&str; 4] = ["recv", "try_recv", "recv_timeout", "try_iter"];

/// Runs all P-rules. `skip[i]` marks `#[cfg(test)]` / `#[test]` tokens.
pub fn scan(tokens: &[Token], skip: &[bool], tree: &Tree) -> Vec<Finding> {
    let mut out = Vec::new();
    scan_p001(tokens, skip, tree, &mut out);
    scan_p002(tokens, skip, tree, &mut out);
    out
}

fn scan_p001(tokens: &[Token], skip: &[bool], tree: &Tree, out: &mut Vec<Finding>) {
    // Nested spawn closures overlap; report each draw token once.
    let mut flagged: Vec<usize> = Vec::new();
    for sc in &tree.spawns {
        if skip[sc.spawn_idx] {
            continue;
        }
        for i in sc.body.clone() {
            if skip[i] || flagged.contains(&i) {
                continue;
            }
            let Some(name) = ident(tokens, i) else {
                continue;
            };
            if DRAW_METHODS.contains(&name)
                && i >= 1
                && is_op(tokens, i - 1, ".")
                && is_op(tokens, i + 1, "(")
            {
                flagged.push(i);
                out.push(Finding {
                    rule: RuleId::P001,
                    token_idx: i,
                    message: format!(
                        "`.{name}(..)` draws from an RNG inside a `spawn` closure; draws \
                         belong in the serial drain (shard byte-identity contract)"
                    ),
                });
            }
        }
    }
}

fn scan_p002(tokens: &[Token], skip: &[bool], tree: &Tree, out: &mut Vec<Finding>) {
    for f in 0..tree.fns.len() {
        if skip[tree.fns[f].name_idx] {
            continue;
        }
        let receivers = channel_receivers(tokens, &tree.fns[f].body);
        for range in tree.direct_body(f) {
            for stmt in statements(tokens, range) {
                if !has_receive(tokens, stmt.clone(), &receivers) {
                    continue;
                }
                if let Some(acc) = accumulation_site(tokens, stmt.clone()) {
                    if !skip[acc] {
                        out.push(Finding {
                            rule: RuleId::P002,
                            token_idx: acc,
                            message: "float accumulation over channel-received values; \
                                      arrival order is scheduler-dependent — collect into an \
                                      index-keyed buffer, then reduce in order"
                                .to_owned(),
                        });
                    }
                }
            }
        }
    }
}

/// Identifiers bound as the receiver half of `let (tx, rx) = channel()`.
fn channel_receivers(tokens: &[Token], body: &Range<usize>) -> Vec<String> {
    let mut out = Vec::new();
    for i in body.clone() {
        if ident(tokens, i) != Some("channel") || !is_op(tokens, i + 1, "(") {
            continue;
        }
        // Walk back over a path prefix (`std :: sync :: mpsc ::`).
        let mut j = i;
        while j >= 2 && is_op(tokens, j - 1, "::") && tokens[j - 2].kind == TokenKind::Ident {
            j -= 2;
        }
        // `let ( tx , rx ) = channel ( … )` — rx is the ident before `)`.
        if j >= 4 && is_op(tokens, j - 1, "=") && is_op(tokens, j - 2, ")") {
            if let Some(rx) = ident(tokens, j - 3) {
                out.push(rx.to_owned());
            }
        }
    }
    out
}

/// Whether the statement chunk receives from a channel: a
/// `.recv`-family call, or a `for … in <receiver>` header.
fn has_receive(tokens: &[Token], stmt: Range<usize>, receivers: &[String]) -> bool {
    for i in stmt.clone() {
        let Some(name) = ident(tokens, i) else {
            continue;
        };
        if RECV_METHODS.contains(&name) && i >= 1 && is_op(tokens, i - 1, ".") {
            return true;
        }
        if name == "in" && ident(tokens, i + 1).is_some_and(|n| receivers.iter().any(|r| r == n)) {
            return true;
        }
    }
    false
}

/// The token index of a float-accumulation site in the chunk: a `+=`
/// whose right-hand side is more than a bare small-integer literal
/// (`count += 1` is a counter, not a reduction), or a `.sum()` call.
fn accumulation_site(tokens: &[Token], stmt: Range<usize>) -> Option<usize> {
    for i in stmt.clone() {
        if is_op(tokens, i, "+=") {
            let trivial = tokens.get(i + 1).is_some_and(|t| t.kind == TokenKind::Int)
                && is_op(tokens, i + 2, ";");
            if !trivial {
                return Some(i);
            }
        }
        if ident(tokens, i) == Some("sum") && i >= 1 && is_op(tokens, i - 1, ".") {
            return Some(i);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::scan::test_spans;

    fn findings(src: &str) -> Vec<Finding> {
        let out = lex(src);
        let skip = test_spans(&out.tokens);
        let tree = crate::tree::build(&out.tokens);
        scan(&out.tokens, &skip, &tree)
    }

    #[test]
    fn p001_fires_on_draw_in_spawn_closure() {
        let src = "fn f() { std::thread::scope(|s| { s.spawn(move || { \
                   let v = rng.sample(dist); use_it(v); }); }); }";
        let f = findings(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, RuleId::P001);
    }

    #[test]
    fn p001_clean_when_draws_stay_outside() {
        let src = "fn f() { let v = rng.sample(dist); \
                   std::thread::scope(|s| { s.spawn(move || prepare(v)); }); }";
        assert!(findings(src).is_empty());
    }

    #[test]
    fn p001_spawn_in_loop_flags_each_closure_once() {
        let src = "fn f() { std::thread::scope(|s| { for k in 0..4 { \
                   s.spawn(move || { let a = rng.gen_range(0..k); touch(a); }); } }); }";
        let f = findings(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, RuleId::P001);
    }

    #[test]
    fn p001_skips_test_code() {
        let src = "#[cfg(test)]\nmod t { fn f() { \
                   thread::spawn(|| { let x = rng.gen(); use_it(x); }); } }";
        assert!(findings(src).is_empty());
    }

    #[test]
    fn p002_fires_on_recv_accumulation() {
        let src = "fn f(rx: Receiver<f64>) -> f64 { let mut total = 0.0; \
                   while let Ok(v) = rx.recv() { total += v; } total }";
        let f = findings(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, RuleId::P002);
    }

    #[test]
    fn p002_fires_on_for_over_channel_receiver() {
        let src = "fn f() -> f64 { let (tx, rx) = std::sync::mpsc::channel(); \
                   spawn_all(tx); let mut t = 0.0; for v in rx { t += v; } t }";
        let f = findings(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, RuleId::P002);
    }

    #[test]
    fn p002_counter_increment_is_clean() {
        let src = "fn f(rx: Receiver<f64>) -> u64 { let mut n = 0; \
                   while let Ok(_v) = rx.recv() { n += 1; } n }";
        assert!(findings(src).is_empty());
    }

    #[test]
    fn p002_indexed_collection_is_clean() {
        let src = "fn f(rx: Receiver<(usize, f64)>) -> f64 { \
                   let mut slots = vec![0.0; 8]; \
                   while let Ok((i, v)) = rx.recv() { slots[i] = v; } \
                   let mut t = 0.0; for v in slots { t += v; } t }";
        assert!(findings(src).is_empty());
    }

    #[test]
    fn p002_join_in_spawn_order_is_clean() {
        let src = "fn f(handles: Vec<JoinHandle<f64>>) -> f64 { \
                   let mut t = 0.0; for h in handles { t += h.join().unwrap(); } t }";
        assert!(findings(src).is_empty());
    }
}
