//! The rule catalog: stable IDs, severities, rationale text, and the
//! per-family token scanners.
//!
//! Families:
//!
//! - **D — determinism** ([`determinism`]): wall-clock reads,
//!   nondeterministic RNG sources, and `HashMap`/`HashSet` iteration are
//!   forbidden in library crates. These are the rules that make the
//!   workspace's byte-reproducibility contract *machine-checked*: every
//!   seeded run must be bit-identical at any `--shards`/`--chains`
//!   configuration, so no library path may consult the clock, the OS
//!   entropy pool, or a randomized iteration order.
//! - **N — numerics** ([`numerics`]): exact float equality against
//!   non-sentinel constants and `partial_cmp(..).unwrap()` are forbidden
//!   everywhere; use `qni_stats::approx` and `f64::total_cmp`.
//! - **E — error discipline** ([`errors`]): `.unwrap()` / `.expect()` /
//!   `panic!`-family macros are forbidden in library crates outside
//!   `#[cfg(test)]` code; invariants that genuinely cannot fail carry a
//!   reviewed `// qni-lint: allow(…) — reason` directive instead.
//! - **R — seed flow** ([`seed_flow`]): RNGs in library code must be
//!   constructed from `split_seed`-derived seeds, two `split_seed`
//!   calls in one function must not reuse a literal stream index, and
//!   literal seed constants stay out of library crates. These are the
//!   flow-level rules behind the chain-k == solo and live == replay
//!   guarantees: distinct, reproducible streams everywhere.
//! - **P — parallel phase** ([`parallel`]): no RNG draw may happen
//!   lexically inside a closure passed to `spawn` (PR 4's "draws stay
//!   in the serial drain" contract), and float accumulation over
//!   channel-received values needs index-ordered collection.
//! - **F — fingerprint coverage** ([`fingerprint`]): fields of
//!   estimate-carrying structs (`…Estimate`/`…Result`/`…Trajectory`)
//!   must appear in the same file's `fingerprint()` body, so a new
//!   field cannot silently escape the live == replay byte-identity
//!   check.
//! - **L — lint hygiene**: malformed or unused allow directives (emitted
//!   by the [`crate::directives`] layer, not a scanner; not
//!   suppressible).

pub mod determinism;
pub mod errors;
pub mod fingerprint;
pub mod numerics;
pub mod parallel;
pub mod seed_flow;

/// Stable identifier of one lint rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[allow(missing_docs)] // Variant meaning is the catalog entry below.
pub enum RuleId {
    D001,
    D002,
    D003,
    N001,
    N002,
    E001,
    E002,
    E003,
    R001,
    R002,
    R003,
    P001,
    P002,
    F001,
    L001,
    L002,
}

/// How severe a violation of a rule is. Every shipped rule is
/// [`Severity::Error`] — the CI contract is "no unsuppressed
/// violations", and a severity that did not fail the build would let
/// exceptions accumulate unreviewed. The variant exists so a future
/// advisory rule does not need a schema change.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Fails the lint run (nonzero exit).
    Error,
    /// Reported but does not fail the run.
    Warning,
}

impl RuleId {
    /// Every rule, in catalog order.
    pub const ALL: [RuleId; 16] = [
        RuleId::D001,
        RuleId::D002,
        RuleId::D003,
        RuleId::N001,
        RuleId::N002,
        RuleId::E001,
        RuleId::E002,
        RuleId::E003,
        RuleId::R001,
        RuleId::R002,
        RuleId::R003,
        RuleId::P001,
        RuleId::P002,
        RuleId::F001,
        RuleId::L001,
        RuleId::L002,
    ];

    /// The stable textual ID (`QNI-D001`, …) used in reports and in
    /// allow directives.
    pub fn as_str(self) -> &'static str {
        match self {
            RuleId::D001 => "QNI-D001",
            RuleId::D002 => "QNI-D002",
            RuleId::D003 => "QNI-D003",
            RuleId::N001 => "QNI-N001",
            RuleId::N002 => "QNI-N002",
            RuleId::E001 => "QNI-E001",
            RuleId::E002 => "QNI-E002",
            RuleId::E003 => "QNI-E003",
            RuleId::R001 => "QNI-R001",
            RuleId::R002 => "QNI-R002",
            RuleId::R003 => "QNI-R003",
            RuleId::P001 => "QNI-P001",
            RuleId::P002 => "QNI-P002",
            RuleId::F001 => "QNI-F001",
            RuleId::L001 => "QNI-L001",
            RuleId::L002 => "QNI-L002",
        }
    }

    /// Parses a textual ID (as written in an allow directive).
    pub fn parse(s: &str) -> Option<RuleId> {
        RuleId::ALL.into_iter().find(|r| r.as_str() == s)
    }

    /// One-line summary of what the rule forbids.
    pub fn summary(self) -> &'static str {
        match self {
            RuleId::D001 => "wall-clock read (`Instant::now`/`SystemTime::now`) in a library crate",
            RuleId::D002 => {
                "nondeterministic randomness (`thread_rng`/`from_entropy`/`OsRng`) in a library crate"
            }
            RuleId::D003 => "iteration over a `HashMap`/`HashSet` in a library crate",
            RuleId::N001 => "exact float `==`/`!=` against a non-sentinel constant",
            RuleId::N002 => "`partial_cmp(..).unwrap()`/`.expect(..)` on floats",
            RuleId::E001 => "`.unwrap()` in library code outside tests",
            RuleId::E002 => "`.expect(..)` in library code outside tests",
            RuleId::E003 => "`panic!`/`todo!`/`unimplemented!` in library code outside tests",
            RuleId::R001 => {
                "RNG constructed from a seed not derived via `split_seed(..)` in library code"
            }
            RuleId::R002 => {
                "two `split_seed` calls with the same literal stream index in one function"
            }
            RuleId::R003 => "literal seed constant in a library crate",
            RuleId::P001 => "RNG draw (`sample`/`gen`-family) inside a closure passed to `spawn`",
            RuleId::P002 => {
                "float accumulation over channel-received values without index-ordered collection"
            }
            RuleId::F001 => "estimate-struct field missing from the file's `fingerprint()` body",
            RuleId::L001 => "malformed `qni-lint: allow` directive",
            RuleId::L002 => "allow directive that suppresses nothing",
        }
    }

    /// Why the rule exists — the contract it enforces.
    pub fn rationale(self) -> &'static str {
        match self {
            RuleId::D001 => {
                "Seeded runs must be byte-reproducible at any shards/chains configuration; a \
                 wall-clock read in a library path either leaks into results or tempts \
                 time-dependent control flow. Inject a clock from the binary instead (see \
                 `qni_core::stream::StreamOptions::clock`)."
            }
            RuleId::D002 => {
                "All randomness must flow from an explicit `u64` seed through \
                 `qni_stats::rng::{rng_from_seed, split_seed}`; OS-entropy or thread-local RNGs \
                 make every downstream estimate irreproducible."
            }
            RuleId::D003 => {
                "`HashMap`/`HashSet` iteration order is randomized per process; iterating one in \
                 a library path reorders floating-point reductions and RNG consumption, silently \
                 breaking bit-identity. Use `BTreeMap`/`BTreeSet`, `Vec`, or index by dense ids."
            }
            RuleId::N001 => {
                "`==`/`!=` against a non-sentinel float constant is almost always a \
                 rounding-hazard bug (and `== f64::NAN` is always false). Compare with a \
                 tolerance via `qni_stats::approx::{approx_eq, close}`. Exact comparisons \
                 against `0.0` and `f64::INFINITY`/`NEG_INFINITY` are recognized sentinel \
                 checks and exempt."
            }
            RuleId::N002 => {
                "`partial_cmp` returns `None` on NaN, so `.unwrap()` on it is a latent panic in \
                 exactly the runs that are already numerically wrong. Use `f64::total_cmp` (the \
                 workspace-wide idiom) or handle the NaN case."
            }
            RuleId::E001 => {
                "Library crates return `Result` with typed errors; `.unwrap()` turns a \
                 recoverable condition into an abort in the caller's process. If the invariant \
                 truly cannot fail, document it with an allow directive and its reason."
            }
            RuleId::E002 => {
                "Same contract as QNI-E001: `.expect()` panics in library code. An invariant \
                 message is not error handling — either return an error or carry a reviewed \
                 allow directive explaining why failure is impossible."
            }
            RuleId::E003 => {
                "`panic!`, `todo!`, and `unimplemented!` abort the caller. Library paths must \
                 surface failures as typed errors (`assert!`-style contract checks on internal \
                 invariants are permitted and not flagged)."
            }
            RuleId::R001 => {
                "Every RNG stream must descend from the run's master seed through \
                 `qni_stats::rng::split_seed`; constructing one from an ad-hoc value forks an \
                 unaccounted stream and breaks the chain-k == solo and live == replay \
                 byte-identity contracts. Derive the seed with `split_seed(parent, index)` (or \
                 name it so the derivation is visible) before handing it to \
                 `rng_from_seed`/`seed_from_u64`."
            }
            RuleId::R002 => {
                "`split_seed(parent, k)` with the same parent and literal `k` yields the *same* \
                 stream; two such calls reachable in one function alias their draws and \
                 correlate estimates that the pooling math assumes independent. Give each \
                 stream a distinct index (the `SeedTree` helper hands them out by construction)."
            }
            RuleId::R003 => {
                "A literal seed baked into a library crate pins every caller to one stream and \
                 hides the seed from the CLI/experiment config. Thread the seed in as a \
                 parameter; literals belong in tests, benches, and binaries only."
            }
            RuleId::P001 => {
                "The shard contract (PR 4) is: parallel prepare phases are draw-free, all draws \
                 happen in the serial drain — that is what makes every shard count \
                 byte-identical. A `sample`/`gen`-family call inside a `spawn` closure reorders \
                 RNG consumption with the scheduler. The check is lexical: draws hidden behind \
                 a function called from the closure are out of its reach, so keep spawned work \
                 visibly draw-free."
            }
            RuleId::P002 => {
                "Float addition is not associative; folding values in channel-arrival or \
                 thread-completion order makes the sum depend on the scheduler. Collect into an \
                 index-keyed buffer (e.g. `results[i] = v`) or join handles in spawn order, \
                 then reduce sequentially."
            }
            RuleId::F001 => {
                "`fingerprint()` is the byte-identity oracle for live == replay (PR 7); a field \
                 added to an estimate struct but not to its fingerprint is exactly the drift \
                 that check exists to catch. Fold the field in, or carry a reasoned allow \
                 directive on the field (e.g. wall-clock timings that are deliberately outside \
                 the contract)."
            }
            RuleId::L001 => {
                "Every suppression must name a known rule and carry a reason \
                 (`// qni-lint: allow(QNI-E002) — why it cannot fail`); an unexplained allow is \
                 an unreviewed exception."
            }
            RuleId::L002 => {
                "An allow directive that no longer suppresses anything is stale documentation; \
                 remove it so the allowlist stays an accurate inventory of reviewed exceptions."
            }
        }
    }

    /// The rule's severity (currently [`Severity::Error`] for all).
    pub fn severity(self) -> Severity {
        Severity::Error
    }

    /// Whether an allow directive may suppress this rule. The L-rules
    /// police the directives themselves and cannot be allowed away.
    pub fn suppressible(self) -> bool {
        !matches!(self, RuleId::L001 | RuleId::L002)
    }

    /// The family letter (`'D'`, `'N'`, `'E'`, `'R'`, `'P'`, `'F'`,
    /// `'L'`).
    pub fn family(self) -> char {
        match self {
            RuleId::D001 | RuleId::D002 | RuleId::D003 => 'D',
            RuleId::N001 | RuleId::N002 => 'N',
            RuleId::E001 | RuleId::E002 | RuleId::E003 => 'E',
            RuleId::R001 | RuleId::R002 | RuleId::R003 => 'R',
            RuleId::P001 | RuleId::P002 => 'P',
            RuleId::F001 => 'F',
            RuleId::L001 | RuleId::L002 => 'L',
        }
    }
}

impl std::fmt::Display for RuleId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

// JSON reports carry the stable textual forms, not variant names.
impl serde::Serialize for RuleId {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self.as_str())
    }
}

impl serde::Serialize for Severity {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_round_trip() {
        for r in RuleId::ALL {
            assert_eq!(RuleId::parse(r.as_str()), Some(r));
        }
        assert_eq!(RuleId::parse("QNI-X999"), None);
    }

    #[test]
    fn catalog_is_complete() {
        for r in RuleId::ALL {
            assert!(!r.summary().is_empty());
            assert!(!r.rationale().is_empty());
            assert!("DNERPFL".contains(r.family()));
        }
        assert!(!RuleId::L001.suppressible());
        assert!(RuleId::E001.suppressible());
    }
}
