//! The lint engine: file walking, per-file scanning, suppression, and
//! report assembly.

use crate::config::{workspace_crates, CrateConfig};
use crate::directives::parse_directives;
use crate::error::LintError;
use crate::lexer::lex;
use crate::report::{Diagnostic, LintReport, RuleSuppressions};
use crate::rules::{determinism, errors, fingerprint, numerics, parallel, seed_flow, RuleId};
use crate::scan::{test_spans, Finding};
use std::path::{Path, PathBuf};

/// Lints the whole workspace rooted at `root` under the default scan
/// policy ([`workspace_crates`]).
pub fn lint_workspace(root: &Path) -> Result<LintReport, LintError> {
    lint_filtered(root, None)
}

/// Lints the workspace, restricted to files whose workspace-relative
/// path starts with one of `filters` (empty filter list = everything).
/// Crate scoping still comes from the policy, so pointing the CLI at
/// one file applies exactly the rules that CI would.
pub fn lint_paths(root: &Path, filters: &[String]) -> Result<LintReport, LintError> {
    lint_filtered(root, Some(filters))
}

fn lint_filtered(root: &Path, filters: Option<&[String]>) -> Result<LintReport, LintError> {
    let mut diagnostics = Vec::new();
    let mut files_scanned = 0usize;
    let mut suppressions_used = 0usize;
    let mut by_rule = vec![0usize; RuleId::ALL.len()];
    for krate in workspace_crates() {
        let src_root = root.join(krate.src);
        if !src_root.is_dir() {
            continue;
        }
        let mut files = Vec::new();
        collect_rs_files(&src_root, &mut files)?;
        for path in files {
            let rel = relative_display(root, &path);
            if let Some(filters) = filters {
                let keep = filters.is_empty()
                    || filters.iter().any(|f| {
                        let f = f.trim_start_matches("./");
                        rel.starts_with(f)
                    });
                if !keep {
                    continue;
                }
            }
            let source = std::fs::read_to_string(&path)
                .map_err(|e| LintError::Io(format!("{}: {e}", path.display())))?;
            files_scanned += 1;
            let mut file = lint_source_full(&krate, &rel, &source);
            suppressions_used += file.suppressions_used;
            for (rule, n) in file.suppressions_by_rule {
                let idx = RuleId::ALL
                    .iter()
                    .position(|r| *r == rule)
                    .unwrap_or(by_rule.len() - 1);
                by_rule[idx] += n;
            }
            diagnostics.append(&mut file.diagnostics);
        }
    }
    diagnostics
        .sort_by(|a, b| (&a.file, a.line, a.col, a.rule).cmp(&(&b.file, b.line, b.col, b.rule)));
    let suppressions_by_rule = RuleId::ALL
        .iter()
        .zip(&by_rule)
        .filter(|(_, n)| **n > 0)
        .map(|(r, n)| RuleSuppressions {
            rule: *r,
            directives: *n,
        })
        .collect();
    Ok(LintReport {
        diagnostics,
        files_scanned,
        suppressions_used,
        suppressions_by_rule,
    })
}

/// Per-file lint result including the per-rule suppression counts the
/// budget layer consumes.
#[derive(Debug, Clone)]
pub struct FileLint {
    /// Diagnostics for this file (unsorted; the workspace walk sorts).
    pub diagnostics: Vec<Diagnostic>,
    /// Allow directives that suppressed at least one finding.
    pub suppressions_used: usize,
    /// `(rule, directives)` pairs: how many directives suppressed at
    /// least one finding of each rule. A multi-rule directive counts
    /// once per rule it suppressed.
    pub suppressions_by_rule: Vec<(RuleId, usize)>,
}

/// Lints one source text under a crate's policy. Pure (no filesystem) —
/// this is the entry point the fixture tests and proptests drive.
/// Returns the diagnostics plus the number of allow directives that
/// suppressed at least one finding.
pub fn lint_source(krate: &CrateConfig, file: &str, source: &str) -> (Vec<Diagnostic>, usize) {
    let full = lint_source_full(krate, file, source);
    (full.diagnostics, full.suppressions_used)
}

/// [`lint_source`] with per-rule suppression accounting.
pub fn lint_source_full(krate: &CrateConfig, file: &str, source: &str) -> FileLint {
    let lexed = lex(source);
    let skip = test_spans(&lexed.tokens);
    let tree = crate::tree::build(&lexed.tokens);
    let mut findings: Vec<Finding> = Vec::new();
    if krate.families.determinism {
        findings.extend(determinism::scan(&lexed.tokens, &skip));
    }
    if krate.families.numerics {
        findings.extend(numerics::scan(&lexed.tokens, &skip));
    }
    if krate.families.errors {
        findings.extend(errors::scan(&lexed.tokens, &skip));
    }
    if krate.families.seed_flow {
        findings.extend(seed_flow::scan(&lexed.tokens, &skip, &tree));
    }
    if krate.families.parallel_phase {
        findings.extend(parallel::scan(&lexed.tokens, &skip, &tree));
    }
    if krate.families.fingerprint {
        findings.extend(fingerprint::scan(&lexed.tokens, &skip, &tree));
    }
    // Where an N002 finding and an E-finding land on the same token
    // (`partial_cmp(..).unwrap()`), the sharper N002 message wins.
    // (The analogous R003-beats-R001 overlap on literal seed args is
    // resolved inside the seed-flow scanner itself.)
    let n002_tokens: Vec<usize> = findings
        .iter()
        .filter(|f| f.rule == RuleId::N002)
        .map(|f| f.token_idx)
        .collect();
    findings.retain(|f| {
        !(matches!(f.rule, RuleId::E001 | RuleId::E002) && n002_tokens.contains(&f.token_idx))
    });

    let directives = parse_directives(&lexed.comments);
    let lines: Vec<&str> = source.lines().collect();
    let snippet = |line: usize| -> String {
        lines
            .get(line.saturating_sub(1))
            .map(|l| l.trim().to_owned())
            .unwrap_or_default()
    };

    // used[i][j] — directive i suppressed a finding of its j-th listed
    // rule. Staleness (L002) is per (directive, rule-list entry), so a
    // multi-rule allow with one dead entry is flagged for exactly that
    // entry.
    let mut used: Vec<Vec<bool>> = directives
        .allows
        .iter()
        .map(|a| vec![false; a.rules.len()])
        .collect();
    let mut out = Vec::new();
    for f in findings {
        let tok = &lexed.tokens[f.token_idx];
        let suppressed = directives.allows.iter().enumerate().find_map(|(i, a)| {
            if a.target_line != tok.line {
                return None;
            }
            a.rules.iter().position(|r| *r == f.rule).map(|j| (i, j))
        });
        if let Some((i, j)) = suppressed {
            used[i][j] = true;
            continue;
        }
        out.push(Diagnostic {
            file: file.to_owned(),
            line: tok.line,
            col: tok.col,
            rule: f.rule,
            severity: f.rule.severity(),
            message: f.message,
            snippet: snippet(tok.line),
            krate: krate.name.to_owned(),
        });
    }
    // Directive hygiene (QNI-L001/L002) applies in every crate.
    for m in &directives.malformed {
        out.push(Diagnostic {
            file: file.to_owned(),
            line: m.line,
            col: m.col,
            rule: RuleId::L001,
            severity: RuleId::L001.severity(),
            message: format!("malformed allow directive: {}", m.problem),
            snippet: snippet(m.line),
            krate: krate.name.to_owned(),
        });
    }
    for (i, a) in directives.allows.iter().enumerate() {
        let stale: Vec<&str> = a
            .rules
            .iter()
            .zip(&used[i])
            .filter(|(_, u)| !**u)
            .map(|(r, _)| r.as_str())
            .collect();
        if stale.is_empty() {
            continue;
        }
        let message = if stale.len() == a.rules.len() {
            format!(
                "allow({}) suppresses nothing on line {}; remove the stale directive",
                stale.join(", "),
                a.target_line
            )
        } else {
            format!(
                "allow list entr{} {} suppress{} nothing on line {}; drop {} from the list",
                if stale.len() == 1 { "y" } else { "ies" },
                stale.join(", "),
                if stale.len() == 1 { "es" } else { "" },
                a.target_line,
                if stale.len() == 1 { "it" } else { "them" },
            )
        };
        out.push(Diagnostic {
            file: file.to_owned(),
            line: a.line,
            col: a.col,
            rule: RuleId::L002,
            severity: RuleId::L002.severity(),
            message,
            snippet: snippet(a.line),
            krate: krate.name.to_owned(),
        });
    }
    let suppressions_used = used.iter().filter(|u| u.iter().any(|x| *x)).count();
    let mut by_rule: Vec<(RuleId, usize)> = Vec::new();
    for (i, a) in directives.allows.iter().enumerate() {
        for (j, r) in a.rules.iter().enumerate() {
            if used[i][j] {
                match by_rule.iter_mut().find(|(rule, _)| rule == r) {
                    Some((_, n)) => *n += 1,
                    None => by_rule.push((*r, 1)),
                }
            }
        }
    }
    FileLint {
        diagnostics: out,
        suppressions_used,
        suppressions_by_rule: by_rule,
    }
}

/// Recursively collects `.rs` files under `dir`, in sorted order — the
/// lint's own output must be deterministic, and `read_dir` order is
/// filesystem-dependent.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), LintError> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| LintError::Io(format!("{}: {e}", dir.display())))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Workspace-relative display path with `/` separators (stable across
/// platforms, so reports and fixtures compare bytewise).
fn relative_display(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FamilySet;

    fn lib_crate() -> CrateConfig {
        CrateConfig {
            name: "fixture",
            src: "src",
            families: FamilySet::LIBRARY,
        }
    }

    fn diags(source: &str) -> Vec<Diagnostic> {
        lint_source(&lib_crate(), "src/f.rs", source).0
    }

    #[test]
    fn suppression_consumes_and_counts() {
        let src = "fn f(m: Option<u32>) -> u32 {\n    // qni-lint: allow(QNI-E001) — checked by caller\n    m.unwrap()\n}\n";
        let (d, used) = lint_source(&lib_crate(), "src/f.rs", src);
        assert!(d.is_empty(), "{d:?}");
        assert_eq!(used, 1);
    }

    #[test]
    fn unused_allow_is_flagged() {
        let d = diags("// qni-lint: allow(QNI-E001) — nothing here\nfn f() {}\n");
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, RuleId::L002);
    }

    #[test]
    fn wrong_rule_in_allow_does_not_suppress() {
        let src = "fn f(m: Option<u32>) -> u32 {\n    m.unwrap() // qni-lint: allow(QNI-E002) — wrong rule\n}\n";
        let d = diags(src);
        // The unwrap still fires (E001), and the directive is unused (L002).
        assert!(d.iter().any(|x| x.rule == RuleId::E001));
        assert!(d.iter().any(|x| x.rule == RuleId::L002));
    }

    #[test]
    fn multi_rule_allow_suppresses_each_listed_rule() {
        // One directive, two rules, both matched on the target line.
        let src = "fn f(m: u64) -> u64 {\n    \
                   // qni-lint: allow(QNI-R003, QNI-E001) — fixture generator\n    \
                   rng_from_seed(42).checked_add(m).unwrap()\n}\n";
        let full = lint_source_full(&lib_crate(), "src/f.rs", src);
        assert!(full.diagnostics.is_empty(), "{:?}", full.diagnostics);
        assert_eq!(full.suppressions_used, 1);
        let mut by_rule = full.suppressions_by_rule.clone();
        by_rule.sort();
        assert_eq!(by_rule, vec![(RuleId::E001, 1), (RuleId::R003, 1)]);
    }

    #[test]
    fn partially_stale_multi_rule_allow_flags_only_dead_entries() {
        let src = "fn f(m: Option<u32>) -> u32 {\n    \
                   // qni-lint: allow(QNI-E001, QNI-D001) — checked by caller\n    \
                   m.unwrap()\n}\n";
        let full = lint_source_full(&lib_crate(), "src/f.rs", src);
        // E001 is suppressed; the D001 entry is stale — exactly one
        // L002 naming only the dead entry.
        assert_eq!(full.diagnostics.len(), 1, "{:?}", full.diagnostics);
        assert_eq!(full.diagnostics[0].rule, RuleId::L002);
        assert!(full.diagnostics[0].message.contains("QNI-D001"));
        assert!(!full.diagnostics[0].message.contains("QNI-E001"));
        assert_eq!(full.suppressions_used, 1);
        assert_eq!(full.suppressions_by_rule, vec![(RuleId::E001, 1)]);
    }

    #[test]
    fn new_family_rules_run_in_library_crates_only() {
        let src = "fn f(x: u64) { let r = rng_from_seed(x * 3); let _ = r; }\n";
        let d = diags(src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, RuleId::R001);
        let bench = CrateConfig {
            name: "bench",
            src: "src",
            families: FamilySet::NUMERICS_ONLY,
        };
        let (d, _) = lint_source(&bench, "src/b.rs", src);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn n002_beats_e001_on_same_token() {
        let src =
            "fn f(a: f64, b: f64) -> std::cmp::Ordering {\n    a.partial_cmp(&b).unwrap()\n}\n";
        let d = diags(src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, RuleId::N002);
    }

    #[test]
    fn numerics_only_crate_skips_d_and_e() {
        let krate = CrateConfig {
            name: "bench",
            src: "src",
            families: FamilySet::NUMERICS_ONLY,
        };
        let src = "fn f(m: Option<u32>) { let t = Instant::now(); m.unwrap(); let _ = t; }\n";
        let (d, _) = lint_source(&krate, "src/b.rs", src);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn diagnostics_carry_position_and_snippet() {
        let d = diags("fn f(m: Option<u32>) -> u32 {\n    m.unwrap()\n}\n");
        assert_eq!(d.len(), 1);
        assert_eq!((d[0].line, d[0].col), (2, 7));
        assert_eq!(d[0].snippet, "m.unwrap()");
    }
}
