//! SARIF 2.1.0 output — the interchange format CI code-scanning UIs
//! ingest to annotate diagnostics on the lines that caused them.
//!
//! The document is emitted by hand rather than through the vendored
//! `serde_json`: SARIF's schema needs field names (`$schema`,
//! `ruleId`, `startLine`) that the vendored `serde_derive` stand-in
//! cannot rename to, and the emitter is ~100 lines against a fixed
//! shape. Output is deterministic: rules in catalog order, results in
//! the report's (file, line, col, rule) order, and no timestamps.

use crate::report::LintReport;
use crate::rules::{RuleId, Severity};

/// The SARIF version this module emits.
pub const SARIF_VERSION: &str = "2.1.0";

/// The `$schema` URI embedded in every document.
pub const SARIF_SCHEMA: &str = "https://json.schemastore.org/sarif-2.1.0.json";

/// Renders a lint report as a SARIF 2.1.0 document with a single run.
/// Every catalog rule appears in `tool.driver.rules` (so rule metadata
/// is present even for clean runs) and each result's `ruleIndex` points
/// into that array.
pub fn render_sarif(report: &LintReport) -> String {
    let mut out = String::with_capacity(4096 + report.diagnostics.len() * 512);
    out.push_str("{\n");
    out.push_str(&format!("  \"$schema\": {},\n", json_str(SARIF_SCHEMA)));
    out.push_str(&format!("  \"version\": {},\n", json_str(SARIF_VERSION)));
    out.push_str("  \"runs\": [\n    {\n");
    out.push_str("      \"tool\": {\n        \"driver\": {\n");
    out.push_str("          \"name\": \"qni-lint\",\n");
    out.push_str("          \"informationUri\": \"https://github.com/qni/qni#static-analysis\",\n");
    out.push_str("          \"rules\": [\n");
    for (i, rule) in RuleId::ALL.into_iter().enumerate() {
        out.push_str("            {\n");
        out.push_str(&format!(
            "              \"id\": {},\n",
            json_str(rule.as_str())
        ));
        out.push_str(&format!(
            "              \"shortDescription\": {{ \"text\": {} }},\n",
            json_str(rule.summary())
        ));
        out.push_str(&format!(
            "              \"fullDescription\": {{ \"text\": {} }},\n",
            json_str(rule.rationale())
        ));
        out.push_str(&format!(
            "              \"defaultConfiguration\": {{ \"level\": {} }}\n",
            json_str(level(rule.severity()))
        ));
        out.push_str(if i + 1 < RuleId::ALL.len() {
            "            },\n"
        } else {
            "            }\n"
        });
    }
    out.push_str("          ]\n        }\n      },\n");
    out.push_str("      \"results\": [\n");
    for (i, d) in report.diagnostics.iter().enumerate() {
        let rule_index = RuleId::ALL
            .iter()
            .position(|r| *r == d.rule)
            .unwrap_or_default();
        out.push_str("        {\n");
        out.push_str(&format!(
            "          \"ruleId\": {},\n",
            json_str(d.rule.as_str())
        ));
        out.push_str(&format!("          \"ruleIndex\": {rule_index},\n"));
        out.push_str(&format!(
            "          \"level\": {},\n",
            json_str(level(d.severity))
        ));
        out.push_str(&format!(
            "          \"message\": {{ \"text\": {} }},\n",
            json_str(&d.message)
        ));
        out.push_str("          \"locations\": [\n            {\n");
        out.push_str("              \"physicalLocation\": {\n");
        out.push_str(&format!(
            "                \"artifactLocation\": {{ \"uri\": {}, \"uriBaseId\": \"SRCROOT\" }},\n",
            json_str(&d.file)
        ));
        out.push_str(&format!(
            "                \"region\": {{ \"startLine\": {}, \"startColumn\": {}, \"snippet\": {{ \"text\": {} }} }}\n",
            d.line,
            d.col,
            json_str(&d.snippet)
        ));
        out.push_str("              }\n            }\n          ]\n");
        out.push_str(if i + 1 < report.diagnostics.len() {
            "        },\n"
        } else {
            "        }\n"
        });
    }
    out.push_str("      ]\n    }\n  ]\n}\n");
    out
}

fn level(sev: Severity) -> &'static str {
    match sev {
        Severity::Error => "error",
        Severity::Warning => "warning",
    }
}

/// JSON string literal with the escapes RFC 8259 requires.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::Diagnostic;

    // A minimal JSON parser (test-only) so the SARIF emitter is
    // validated against parsed structure, not substring luck. The
    // vendored serde_json has no text → tree entry point, hence this.
    #[derive(Debug, Clone, PartialEq)]
    enum Json {
        Null,
        Bool(bool),
        Num(f64),
        Str(String),
        Arr(Vec<Json>),
        Obj(Vec<(String, Json)>),
    }

    impl Json {
        fn get(&self, key: &str) -> &Json {
            match self {
                Json::Obj(fields) => fields
                    .iter()
                    .find(|(k, _)| k == key)
                    .map(|(_, v)| v)
                    .unwrap_or_else(|| panic!("missing key {key:?} in {self:?}")),
                _ => panic!("not an object: {self:?}"),
            }
        }
        fn arr(&self) -> &[Json] {
            match self {
                Json::Arr(v) => v,
                _ => panic!("not an array: {self:?}"),
            }
        }
        fn str(&self) -> &str {
            match self {
                Json::Str(s) => s,
                _ => panic!("not a string: {self:?}"),
            }
        }
        fn num(&self) -> f64 {
            match self {
                Json::Num(n) => *n,
                _ => panic!("not a number: {self:?}"),
            }
        }
    }

    struct Parser<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    fn parse_json(text: &str) -> Json {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        let v = p.value();
        p.ws();
        assert_eq!(p.pos, p.bytes.len(), "trailing garbage");
        v
    }

    impl Parser<'_> {
        fn ws(&mut self) {
            while self
                .bytes
                .get(self.pos)
                .is_some_and(|b| b.is_ascii_whitespace())
            {
                self.pos += 1;
            }
        }
        fn eat(&mut self, b: u8) {
            self.ws();
            assert_eq!(self.bytes.get(self.pos), Some(&b), "at byte {}", self.pos);
            self.pos += 1;
        }
        fn peek(&mut self) -> u8 {
            self.ws();
            self.bytes[self.pos]
        }
        fn value(&mut self) -> Json {
            match self.peek() {
                b'{' => self.object(),
                b'[' => self.array(),
                b'"' => Json::Str(self.string()),
                b't' => self.lit("true", Json::Bool(true)),
                b'f' => self.lit("false", Json::Bool(false)),
                b'n' => self.lit("null", Json::Null),
                _ => self.number(),
            }
        }
        fn lit(&mut self, word: &str, v: Json) -> Json {
            self.ws();
            assert!(self.bytes[self.pos..].starts_with(word.as_bytes()));
            self.pos += word.len();
            v
        }
        fn object(&mut self) -> Json {
            self.eat(b'{');
            let mut fields = Vec::new();
            if self.peek() == b'}' {
                self.pos += 1;
                return Json::Obj(fields);
            }
            loop {
                let key = self.string();
                self.eat(b':');
                fields.push((key, self.value()));
                match self.peek() {
                    b',' => self.pos += 1,
                    b'}' => {
                        self.pos += 1;
                        return Json::Obj(fields);
                    }
                    b => panic!("unexpected {:?} in object", b as char),
                }
            }
        }
        fn array(&mut self) -> Json {
            self.eat(b'[');
            let mut items = Vec::new();
            if self.peek() == b']' {
                self.pos += 1;
                return Json::Arr(items);
            }
            loop {
                items.push(self.value());
                match self.peek() {
                    b',' => self.pos += 1,
                    b']' => {
                        self.pos += 1;
                        return Json::Arr(items);
                    }
                    b => panic!("unexpected {:?} in array", b as char),
                }
            }
        }
        fn string(&mut self) -> String {
            self.eat(b'"');
            let mut s = String::new();
            loop {
                match self.bytes[self.pos] {
                    b'"' => {
                        self.pos += 1;
                        return s;
                    }
                    b'\\' => {
                        self.pos += 1;
                        match self.bytes[self.pos] {
                            b'"' => s.push('"'),
                            b'\\' => s.push('\\'),
                            b'/' => s.push('/'),
                            b'n' => s.push('\n'),
                            b'r' => s.push('\r'),
                            b't' => s.push('\t'),
                            b'u' => {
                                let hex =
                                    std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                        .expect("utf8 hex");
                                let code = u32::from_str_radix(hex, 16).expect("hex escape");
                                s.push(char::from_u32(code).expect("scalar"));
                                self.pos += 4;
                            }
                            b => panic!("bad escape {:?}", b as char),
                        }
                        self.pos += 1;
                    }
                    _ => {
                        // Multi-byte UTF-8 sequences pass through whole.
                        let rest = std::str::from_utf8(&self.bytes[self.pos..]).expect("utf8");
                        let c = rest.chars().next().expect("char");
                        s.push(c);
                        self.pos += c.len_utf8();
                    }
                }
            }
        }
        fn number(&mut self) -> Json {
            self.ws();
            let start = self.pos;
            while self.bytes.get(self.pos).is_some_and(|b| {
                b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E')
            }) {
                self.pos += 1;
            }
            let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("utf8");
            Json::Num(text.parse().expect("number"))
        }
    }

    fn sample_report() -> LintReport {
        LintReport {
            diagnostics: vec![
                Diagnostic {
                    file: "crates/core/src/x.rs".to_owned(),
                    line: 3,
                    col: 9,
                    rule: RuleId::R001,
                    severity: Severity::Error,
                    message: "seed with \"no\" derivation — bad".to_owned(),
                    snippet: "let rng = rng_from_seed(x * 2);".to_owned(),
                    krate: "qni-core".to_owned(),
                },
                Diagnostic {
                    file: "crates/core/src/y.rs".to_owned(),
                    line: 10,
                    col: 1,
                    rule: RuleId::P001,
                    severity: Severity::Error,
                    message: "draw in spawn closure".to_owned(),
                    snippet: "let v = rng.sample(d);".to_owned(),
                    krate: "qni-core".to_owned(),
                },
            ],
            files_scanned: 2,
            suppressions_used: 0,
            suppressions_by_rule: Vec::new(),
        }
    }

    #[test]
    fn sarif_document_has_the_2_1_0_shape() {
        let doc = parse_json(&render_sarif(&sample_report()));
        assert_eq!(doc.get("$schema").str(), SARIF_SCHEMA);
        assert_eq!(doc.get("version").str(), "2.1.0");
        let runs = doc.get("runs").arr();
        assert_eq!(runs.len(), 1);
        let driver = runs[0].get("tool").get("driver");
        assert_eq!(driver.get("name").str(), "qni-lint");
        let rules = driver.get("rules").arr();
        assert_eq!(rules.len(), RuleId::ALL.len());
        for (rule, entry) in RuleId::ALL.iter().zip(rules) {
            assert_eq!(entry.get("id").str(), rule.as_str());
            assert!(!entry.get("shortDescription").get("text").str().is_empty());
            assert!(!entry.get("fullDescription").get("text").str().is_empty());
            assert_eq!(
                entry.get("defaultConfiguration").get("level").str(),
                "error"
            );
        }
        let results = runs[0].get("results").arr();
        assert_eq!(results.len(), 2);
        let first = &results[0];
        assert_eq!(first.get("ruleId").str(), "QNI-R001");
        let idx = first.get("ruleIndex").num() as usize;
        assert_eq!(rules[idx].get("id").str(), "QNI-R001");
        assert_eq!(first.get("level").str(), "error");
        assert!(first.get("message").get("text").str().contains("\"no\""));
        let loc = first.get("locations").arr()[0].get("physicalLocation");
        assert_eq!(
            loc.get("artifactLocation").get("uri").str(),
            "crates/core/src/x.rs"
        );
        let region = loc.get("region");
        assert_eq!(region.get("startLine").num() as usize, 3);
        assert_eq!(region.get("startColumn").num() as usize, 9);
    }

    #[test]
    fn clean_report_still_carries_full_rule_metadata() {
        let report = LintReport {
            diagnostics: Vec::new(),
            files_scanned: 5,
            suppressions_used: 0,
            suppressions_by_rule: Vec::new(),
        };
        let doc = parse_json(&render_sarif(&report));
        let runs = doc.get("runs").arr();
        assert!(runs[0].get("results").arr().is_empty());
        assert_eq!(
            runs[0].get("tool").get("driver").get("rules").arr().len(),
            RuleId::ALL.len()
        );
    }

    #[test]
    fn escaping_survives_round_trip() {
        let mut report = sample_report();
        report.diagnostics[0].message = "quote \" backslash \\ newline \n tab \t".to_owned();
        let doc = parse_json(&render_sarif(&report));
        let msg = doc.get("runs").arr()[0].get("results").arr()[0]
            .get("message")
            .get("text")
            .str()
            .to_owned();
        assert_eq!(msg, "quote \" backslash \\ newline \n tab \t");
    }
}
