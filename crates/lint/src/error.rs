//! Error type for the lint engine.

/// Failures of the lint *run* itself (rule violations are not errors —
/// they are the report's payload).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LintError {
    /// Filesystem failure while walking or reading sources.
    Io(String),
    /// JSON report rendering failed.
    Json(String),
    /// `lint.toml` (the suppression budget) is malformed.
    Budget(String),
    /// The workspace root could not be located.
    NoWorkspaceRoot,
}

impl std::fmt::Display for LintError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LintError::Io(msg) => write!(f, "io error: {msg}"),
            LintError::Json(msg) => write!(f, "json error: {msg}"),
            LintError::Budget(msg) => write!(f, "lint.toml: {msg}"),
            LintError::NoWorkspaceRoot => write!(
                f,
                "could not find the workspace root (a directory with Cargo.toml and crates/)"
            ),
        }
    }
}

impl std::error::Error for LintError {}
