//! The checked-in suppression budget (`lint.toml`).
//!
//! Allow directives are reviewed exceptions; the budget is the ceiling
//! that keeps them from silently accumulating. `lint.toml` at the
//! workspace root declares, per rule, the maximum number of allow
//! directives a full-workspace run may consume:
//!
//! ```toml
//! [suppressions]
//! QNI-E002 = 29
//! QNI-R001 = 1
//! ```
//!
//! A rule absent from the table has budget **zero** — the first allow
//! for a new rule is itself a reviewable event (it must land with a
//! budget bump in the same diff). Only *over*-budget is an error:
//! removing a suppression without shrinking the budget is fine, and
//! tightening then becomes a follow-up cleanup, not a revert hazard.
//! The budget is enforced on unfiltered runs (the bin with no path
//! arguments, CI, `workspace_clean`); a path-filtered run sees only a
//! slice of the suppressions and would under-count.

use crate::error::LintError;
use crate::report::LintReport;
use crate::rules::RuleId;
use std::path::Path;

/// File name of the budget at the workspace root.
pub const BUDGET_FILE: &str = "lint.toml";

/// Per-rule ceilings on allow-directive use.
#[derive(Debug, Clone, Default)]
pub struct SuppressionBudget {
    /// `(rule, max directives)` — rules not listed have max 0.
    entries: Vec<(RuleId, usize)>,
}

/// One rule over its budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BudgetViolation {
    /// The over-budget rule.
    pub rule: RuleId,
    /// Directives actually used in the run.
    pub used: usize,
    /// The configured ceiling.
    pub max: usize,
}

impl std::fmt::Display for BudgetViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {} allow directive(s) used, budget is {} (raise {} in lint.toml only with \
             review)",
            self.rule, self.used, self.max, self.rule
        )
    }
}

impl SuppressionBudget {
    /// Parses the budget from `lint.toml` text. The only recognized
    /// section is `[suppressions]`; entries must name known,
    /// suppressible rules (a typo'd rule ID would silently mean
    /// "budget zero" otherwise).
    pub fn parse(text: &str) -> Result<SuppressionBudget, LintError> {
        let mut entries: Vec<(RuleId, usize)> = Vec::new();
        let mut in_section = false;
        for (lineno, raw) in text.lines().enumerate() {
            let line = strip_comment(raw).trim();
            if line.is_empty() {
                continue;
            }
            if let Some(section) = line.strip_prefix('[') {
                let name = section.strip_suffix(']').ok_or_else(|| {
                    LintError::Budget(format!("line {}: unterminated section", lineno + 1))
                })?;
                in_section = name.trim() == "suppressions";
                continue;
            }
            if !in_section {
                return Err(LintError::Budget(format!(
                    "line {}: entry outside [suppressions]",
                    lineno + 1
                )));
            }
            let (key, value) = line.split_once('=').ok_or_else(|| {
                LintError::Budget(format!("line {}: expected `QNI-XXXX = N`", lineno + 1))
            })?;
            let key = key.trim().trim_matches('"');
            let rule = RuleId::parse(key).ok_or_else(|| {
                LintError::Budget(format!("line {}: unknown rule `{key}`", lineno + 1))
            })?;
            if !rule.suppressible() {
                return Err(LintError::Budget(format!(
                    "line {}: {rule} cannot be suppressed, so it cannot be budgeted",
                    lineno + 1
                )));
            }
            let max: usize = value.trim().parse().map_err(|_| {
                LintError::Budget(format!(
                    "line {}: `{}` is not a count",
                    lineno + 1,
                    value.trim()
                ))
            })?;
            if entries.iter().any(|(r, _)| *r == rule) {
                return Err(LintError::Budget(format!(
                    "line {}: duplicate entry for {rule}",
                    lineno + 1
                )));
            }
            entries.push((rule, max));
        }
        Ok(SuppressionBudget { entries })
    }

    /// Loads `lint.toml` from the workspace root. `Ok(None)` when the
    /// file does not exist (throwaway test workspaces have no budget).
    pub fn load(root: &Path) -> Result<Option<SuppressionBudget>, LintError> {
        let path = root.join(BUDGET_FILE);
        if !path.is_file() {
            return Ok(None);
        }
        let text = std::fs::read_to_string(&path)
            .map_err(|e| LintError::Io(format!("{}: {e}", path.display())))?;
        Self::parse(&text).map(Some)
    }

    /// The ceiling for one rule (0 when unlisted).
    pub fn max_for(&self, rule: RuleId) -> usize {
        self.entries
            .iter()
            .find(|(r, _)| *r == rule)
            .map(|(_, n)| *n)
            .unwrap_or(0)
    }

    /// Checks a report's per-rule suppression counts against the
    /// budget; returns the over-budget rules in catalog order.
    pub fn check(&self, report: &LintReport) -> Vec<BudgetViolation> {
        let mut out = Vec::new();
        for s in &report.suppressions_by_rule {
            let max = self.max_for(s.rule);
            if s.directives > max {
                out.push(BudgetViolation {
                    rule: s.rule,
                    used: s.directives,
                    max,
                });
            }
        }
        out
    }
}

/// Strips a `#` comment, honoring `"`-quoted keys.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::RuleSuppressions;

    fn report_with(suppressions: Vec<(RuleId, usize)>) -> LintReport {
        LintReport {
            diagnostics: Vec::new(),
            files_scanned: 1,
            suppressions_used: suppressions.iter().map(|(_, n)| n).sum(),
            suppressions_by_rule: suppressions
                .into_iter()
                .map(|(rule, directives)| RuleSuppressions { rule, directives })
                .collect(),
        }
    }

    #[test]
    fn parses_and_checks() {
        let b = SuppressionBudget::parse(
            "# workspace suppression budget\n[suppressions]\nQNI-E002 = 29 # legacy\nQNI-R001 = 1\n",
        )
        .expect("parses");
        assert_eq!(b.max_for(RuleId::E002), 29);
        assert_eq!(b.max_for(RuleId::R001), 1);
        assert_eq!(b.max_for(RuleId::F001), 0);
        assert!(b.check(&report_with(vec![(RuleId::E002, 29)])).is_empty());
        let over = b.check(&report_with(vec![(RuleId::E002, 30), (RuleId::F001, 1)]));
        assert_eq!(over.len(), 2);
        assert_eq!(
            (over[0].rule, over[0].used, over[0].max),
            (RuleId::E002, 30, 29)
        );
        assert_eq!(
            (over[1].rule, over[1].used, over[1].max),
            (RuleId::F001, 1, 0)
        );
    }

    #[test]
    fn under_budget_is_not_an_error() {
        let b = SuppressionBudget::parse("[suppressions]\nQNI-E002 = 40\n").expect("parses");
        assert!(b.check(&report_with(vec![(RuleId::E002, 29)])).is_empty());
    }

    #[test]
    fn rejects_unknown_rules_and_bad_counts() {
        assert!(SuppressionBudget::parse("[suppressions]\nQNI-Z999 = 1\n").is_err());
        assert!(SuppressionBudget::parse("[suppressions]\nQNI-E002 = many\n").is_err());
        assert!(SuppressionBudget::parse("[suppressions]\nQNI-L002 = 1\n").is_err());
        assert!(SuppressionBudget::parse("[suppressions]\nQNI-E002 = 1\nQNI-E002 = 2\n").is_err());
        assert!(SuppressionBudget::parse("QNI-E002 = 1\n").is_err());
    }

    #[test]
    fn quoted_keys_and_comments_are_tolerated() {
        let b = SuppressionBudget::parse("[suppressions] # section\n\"QNI-E002\" = 3\n")
            .expect("parses");
        assert_eq!(b.max_for(RuleId::E002), 3);
    }
}
