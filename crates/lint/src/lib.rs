//! `qni-lint` — workspace static analysis enforcing the determinism and
//! numerical-soundness contracts.
//!
//! The repo's core asset is a contract no general-purpose tool checks:
//! **every seeded run is byte-reproducible at any `--shards`/`--chains`
//! configuration**. That only holds if library code never consults the
//! wall clock or the OS entropy pool, never iterates a hash-ordered
//! collection, never compares floats exactly, and never panics instead
//! of returning an error. Those rules used to be re-audited by hand
//! every PR; this crate machine-checks them on every commit.
//!
//! # Architecture
//!
//! - [`lexer`]: a hand-rolled Rust lexer (no `syn` — the build
//!   environment has no crates.io access) whose job is to be exactly
//!   right about what is code and what is a string/char/comment.
//! - [`tree`]: a brace-matched structure skeleton (functions, spawn
//!   closures, struct fields) built over the token stream — the layer
//!   that lets the R/P/F families reason about *where* a token sits,
//!   still with no external parser.
//! - [`rules`]: the rule catalog (stable IDs, severities, rationale)
//!   and the D/N/E token scanners plus the flow-aware R (seed flow),
//!   P (parallel phase), and F (fingerprint coverage) scanners.
//! - [`directives`]: inline `// qni-lint: allow(RULE) — reason`
//!   suppressions; the reason is mandatory and stale directives are
//!   themselves violations (per rule-list entry, so a half-dead
//!   multi-rule allow is flagged for exactly its dead entries).
//! - [`config`]: per-crate scoping — which rule families apply to which
//!   crate is policy in one place, not scattered allows.
//! - [`engine`]: walks sources (in sorted order: the linter itself obeys
//!   the determinism contract), applies scanners and suppressions,
//!   assembles a [`report::LintReport`].
//! - [`sarif`]: renders a report as SARIF 2.1.0 for CI code-scanning
//!   annotations (`--sarif FILE`).
//! - [`budget`]: the checked-in suppression budget (`lint.toml`) — a
//!   per-rule ceiling on allow directives, so reviewed exceptions
//!   cannot silently accumulate.
//!
//! # Example
//!
//! ```
//! use qni_lint::config::{CrateConfig, FamilySet};
//! use qni_lint::engine::lint_source;
//! use qni_lint::rules::RuleId;
//!
//! let krate = CrateConfig { name: "demo", src: "src", families: FamilySet::LIBRARY };
//! let (diags, _) = lint_source(&krate, "src/demo.rs", "fn f(x: Option<u32>) -> u32 { x.unwrap() }");
//! assert_eq!(diags.len(), 1);
//! assert_eq!(diags[0].rule, RuleId::E001);
//! assert_eq!((diags[0].line, diags[0].col), (1, 33));
//! ```

pub mod budget;
pub mod config;
pub mod directives;
pub mod engine;
pub mod error;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod sarif;
pub mod scan;
pub mod tree;

pub use budget::SuppressionBudget;
pub use engine::{lint_paths, lint_source, lint_source_full, lint_workspace};
pub use report::{Diagnostic, LintReport};
pub use rules::{RuleId, Severity};
