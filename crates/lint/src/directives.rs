//! `// qni-lint: allow(RULE_ID) — reason` directives.
//!
//! Every suppression is inline, names the rule it silences, and must
//! carry a reason — so the allowlist *is* the review record. Syntax:
//!
//! ```text
//! // qni-lint: allow(QNI-E002) — slots are filled for every event by construction
//! // qni-lint: allow(QNI-E001, QNI-E002) - ASCII dash separators work too
//! ```
//!
//! Binding: a trailing directive (code before it on the same line)
//! applies to its own line; a standalone directive line applies to the
//! *next* line. A directive with no reason, an unknown rule ID, or an
//! unparseable body is QNI-L001; a well-formed directive that suppressed
//! nothing in its run is QNI-L002 (stale allows must not accumulate).
//! The L-rules themselves are not suppressible.

use crate::lexer::Comment;
use crate::rules::RuleId;

/// A parsed, well-formed allow directive.
#[derive(Debug, Clone)]
pub struct AllowDirective {
    /// Rules this directive suppresses.
    pub rules: Vec<RuleId>,
    /// The required justification text.
    pub reason: String,
    /// Line the directive comment starts on.
    pub line: usize,
    /// Column of the comment.
    pub col: usize,
    /// The source line the directive applies to.
    pub target_line: usize,
}

/// A directive that failed to parse (reported as QNI-L001).
#[derive(Debug, Clone)]
pub struct MalformedDirective {
    /// Line of the directive comment.
    pub line: usize,
    /// Column of the directive comment.
    pub col: usize,
    /// What is wrong with it.
    pub problem: String,
}

/// The directives found in one file's comments.
#[derive(Debug, Clone, Default)]
pub struct Directives {
    /// Well-formed directives.
    pub allows: Vec<AllowDirective>,
    /// Malformed ones (each becomes a QNI-L001 diagnostic).
    pub malformed: Vec<MalformedDirective>,
}

/// The marker that introduces a directive inside a comment.
const MARKER: &str = "qni-lint:";

/// Extracts directives from a file's comments.
pub fn parse_directives(comments: &[Comment]) -> Directives {
    let mut out = Directives::default();
    for c in comments {
        // Doc comments are documentation, not pragmas: rustdoc prose
        // (and doctest code) showing the directive syntax must not
        // create live directives.
        if c.text.starts_with("///") || c.text.starts_with("//!") {
            continue;
        }
        if c.text.starts_with("/**") || c.text.starts_with("/*!") {
            continue;
        }
        let Some(pos) = c.text.find(MARKER) else {
            continue;
        };
        let body = c.text[pos + MARKER.len()..].trim();
        let target_line = if c.code_before_on_line {
            c.line
        } else {
            c.line + 1
        };
        match parse_body(body) {
            Ok((rules, reason)) => out.allows.push(AllowDirective {
                rules,
                reason,
                line: c.line,
                col: c.col,
                target_line,
            }),
            Err(problem) => out.malformed.push(MalformedDirective {
                line: c.line,
                col: c.col,
                problem,
            }),
        }
    }
    out
}

/// Parses `allow(ID[, ID…]) <sep> reason`.
fn parse_body(body: &str) -> Result<(Vec<RuleId>, String), String> {
    let rest = body
        .strip_prefix("allow")
        .ok_or_else(|| format!("expected `allow(…)` after `{MARKER}`"))?
        .trim_start();
    let rest = rest
        .strip_prefix('(')
        .ok_or_else(|| "expected `(` after `allow`".to_owned())?;
    let close = rest
        .find(')')
        .ok_or_else(|| "unclosed `allow(` list".to_owned())?;
    let mut rules = Vec::new();
    for raw in rest[..close].split(',') {
        let name = raw.trim();
        let rule = RuleId::parse(name).ok_or_else(|| format!("unknown rule `{name}`"))?;
        if !rule.suppressible() {
            return Err(format!("rule {rule} cannot be suppressed"));
        }
        rules.push(rule);
    }
    if rules.is_empty() {
        return Err("empty rule list".to_owned());
    }
    // The reason: everything after the closing paren, minus a leading
    // separator (em dash, hyphen run, or colon). Required.
    let mut reason = rest[close + 1..].trim_start();
    for sep in ["—", "–", "-", ":"] {
        if let Some(r) = reason.strip_prefix(sep) {
            reason = r.trim_start();
            break;
        }
    }
    // Block-comment directives may carry the comment terminator.
    let reason = reason.trim_end_matches("*/").trim();
    if reason.is_empty() {
        return Err(
            "missing reason — write `allow(RULE) — why this exception is sound`".to_owned(),
        );
    }
    Ok((rules, reason.to_owned()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn directives(src: &str) -> Directives {
        parse_directives(&lex(src).comments)
    }

    #[test]
    fn trailing_directive_targets_own_line() {
        let d = directives("let x = y.expect(\"z\"); // qni-lint: allow(QNI-E002) — proven\n");
        assert_eq!(d.allows.len(), 1);
        assert_eq!(d.allows[0].target_line, 1);
        assert_eq!(d.allows[0].rules, [RuleId::E002]);
        assert_eq!(d.allows[0].reason, "proven");
    }

    #[test]
    fn standalone_directive_targets_next_line() {
        let d = directives("// qni-lint: allow(QNI-E001) - invariant holds\nlet x = y.unwrap();");
        assert_eq!(d.allows[0].target_line, 2);
    }

    #[test]
    fn multi_rule_list() {
        let d = directives("// qni-lint: allow(QNI-E001, QNI-E002) — both reviewed\n");
        assert_eq!(d.allows[0].rules, [RuleId::E001, RuleId::E002]);
    }

    #[test]
    fn missing_reason_is_malformed() {
        let d = directives("// qni-lint: allow(QNI-E001)\n");
        assert_eq!(d.allows.len(), 0);
        assert_eq!(d.malformed.len(), 1);
        assert!(d.malformed[0].problem.contains("missing reason"));
    }

    #[test]
    fn unknown_rule_is_malformed() {
        let d = directives("// qni-lint: allow(QNI-Z999) — whatever\n");
        assert!(d.malformed[0].problem.contains("unknown rule"));
    }

    #[test]
    fn l_rules_cannot_be_suppressed() {
        let d = directives("// qni-lint: allow(QNI-L002) — trying to silence the police\n");
        assert!(d.malformed[0].problem.contains("cannot be suppressed"));
    }

    #[test]
    fn doc_comments_are_not_pragmas() {
        let d = directives("/// qni-lint: allow(QNI-E001) — doc example\nfn f() {}");
        assert!(d.allows.is_empty() && d.malformed.is_empty());
    }

    #[test]
    fn non_directive_comments_ignored() {
        let d = directives("// plain comment about qni-lint the tool\nlet x = 1;");
        // Mentions the tool by name, but lacks the marker's colon form.
        assert!(d.allows.is_empty() && d.malformed.is_empty());
    }
}
