//! Lightweight structure layer over the lexer's token stream.
//!
//! The R/P/F rule families reason about *where* a token sits — inside
//! which function, inside a closure passed to `spawn`, inside a struct
//! definition — not just what it says. Full parsing is out of reach
//! without `syn`, but the flow questions those rules ask only need a
//! brace-matched skeleton:
//!
//! - [`FnNode`]: every `fn` item with its name and body token span
//!   (nested functions are separate nodes; [`Tree::direct_body`] yields
//!   a function's body minus any nested function bodies, so "reachable
//!   in one function" means what it says).
//! - [`SpawnClosure`]: the body span of every closure passed to a
//!   `.spawn(…)` method call (`thread::scope` workers, `s.spawn`) or a
//!   `thread::spawn(…)` path call — the parallel prepare phase the
//!   P-rules police.
//! - [`StructNode`]: every braced struct with its named fields — what
//!   the F-rules cross-reference against `fingerprint()` bodies.
//! - [`statements`]: splits a body span into statement-sized chunks
//!   (depth-0 `;` or a depth-0 brace block), the granularity at which
//!   P002 pairs a channel receive with a float accumulation.
//!
//! Everything here is a heuristic over tokens, deliberately: the lexer
//! already guarantees that strings, chars, and comments never reach us,
//! and the fixture corpus plus `tests/tree_structure.rs` keep the
//! skeleton honest on nested closures, closures in macro arguments, and
//! `spawn` calls inside loops.

use crate::lexer::{Token, TokenKind};
use crate::scan::{ident, is_op, matching_close};
use std::ops::Range;

/// One `fn` item: its name and the token span of its body (exclusive of
/// the braces themselves).
#[derive(Debug, Clone)]
pub struct FnNode {
    /// The function's name.
    pub name: String,
    /// Token index of the name identifier.
    pub name_idx: usize,
    /// Body content span: `open_brace + 1 .. close_brace`.
    pub body: Range<usize>,
}

/// One closure passed to a `spawn` call.
#[derive(Debug, Clone)]
pub struct SpawnClosure {
    /// Token index of the `spawn` identifier.
    pub spawn_idx: usize,
    /// Token span of the closure body (braces excluded for block
    /// bodies; the whole expression for expression bodies).
    pub body: Range<usize>,
}

/// A named field of a braced struct.
#[derive(Debug, Clone)]
pub struct FieldDef {
    /// Field name.
    pub name: String,
    /// Token index of the field-name identifier.
    pub token_idx: usize,
}

/// One braced struct definition with its named fields.
#[derive(Debug, Clone)]
pub struct StructNode {
    /// The struct's name.
    pub name: String,
    /// Token index of the name identifier.
    pub name_idx: usize,
    /// Named fields, in declaration order.
    pub fields: Vec<FieldDef>,
}

/// The structure skeleton of one file's token stream.
#[derive(Debug, Clone, Default)]
pub struct Tree {
    /// Every `fn` item, in source order (nested fns included).
    pub fns: Vec<FnNode>,
    /// Every closure passed to a `spawn` call, in source order.
    pub spawns: Vec<SpawnClosure>,
    /// Every braced struct, in source order.
    pub structs: Vec<StructNode>,
}

impl Tree {
    /// The token spans of `fns[i]`'s body that belong to it *directly*
    /// — the body minus any strictly nested function bodies. Seed-flow
    /// reachability ("two aliased streams in one function") must not
    /// leak across a nested `fn` boundary.
    pub fn direct_body(&self, i: usize) -> Vec<Range<usize>> {
        let outer = &self.fns[i].body;
        // Nested bodies, in source order (fns is source-ordered).
        let nested: Vec<&Range<usize>> = self
            .fns
            .iter()
            .enumerate()
            .filter(|(j, f)| *j != i && f.body.start > outer.start && f.body.end <= outer.end)
            .map(|(_, f)| &f.body)
            .collect();
        let mut out = Vec::new();
        let mut cursor = outer.start;
        for n in nested {
            // `fn` keyword + name + signature precede n.start; cutting at
            // the body is enough — the signature tokens carry no draws.
            if n.start > cursor {
                out.push(cursor..n.start);
            }
            cursor = cursor.max(n.end);
        }
        if cursor < outer.end {
            out.push(cursor..outer.end);
        }
        out
    }

    /// Index of the innermost function whose body contains `token_idx`.
    pub fn enclosing_fn(&self, token_idx: usize) -> Option<usize> {
        self.fns
            .iter()
            .enumerate()
            .filter(|(_, f)| f.body.contains(&token_idx))
            .min_by_key(|(_, f)| f.body.end - f.body.start)
            .map(|(i, _)| i)
    }
}

/// Builds the structure skeleton for one token stream.
pub fn build(tokens: &[Token]) -> Tree {
    let mut tree = Tree::default();
    for i in 0..tokens.len() {
        if ident(tokens, i) == Some("fn") {
            if let Some(node) = fn_node(tokens, i) {
                tree.fns.push(node);
            }
        }
        if ident(tokens, i) == Some("struct") {
            if let Some(node) = struct_node(tokens, i) {
                tree.structs.push(node);
            }
        }
        if ident(tokens, i) == Some("spawn") && is_spawn_call(tokens, i) {
            if let Some(closure) = spawn_closure(tokens, i) {
                tree.spawns.push(closure);
            }
        }
    }
    tree
}

/// Parses a `fn` item starting at the `fn` keyword: name + body span.
/// Returns `None` for bodyless declarations (trait methods, externs).
fn fn_node(tokens: &[Token], fn_idx: usize) -> Option<FnNode> {
    let name = ident(tokens, fn_idx + 1)?.to_owned();
    // Scan the signature for the body's opening brace at bracket depth
    // 0. A depth-0 `;` first means a bodyless declaration.
    let mut depth = 0i64;
    let mut j = fn_idx + 2;
    loop {
        let t = tokens.get(j)?;
        if t.kind == TokenKind::Op {
            match t.text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                ";" if depth == 0 => return None,
                "{" if depth == 0 => break,
                _ => {}
            }
        }
        j += 1;
    }
    let close = matching_close(tokens, j)?;
    Some(FnNode {
        name,
        name_idx: fn_idx + 1,
        body: j + 1..close,
    })
}

/// Whether the `spawn` identifier at `idx` is a spawn *call*: a method
/// call (`handle.spawn(…)` — scoped spawns) or the `thread::spawn(…)`
/// path form, with an argument list.
fn is_spawn_call(tokens: &[Token], idx: usize) -> bool {
    if !is_op(tokens, idx + 1, "(") {
        return false;
    }
    if idx >= 1 && is_op(tokens, idx - 1, ".") {
        return true;
    }
    idx >= 2 && is_op(tokens, idx - 1, "::") && ident(tokens, idx - 2) == Some("thread")
}

/// Extracts the closure argument of the spawn call at `spawn_idx`.
/// Returns `None` when the first argument is not a closure
/// (`Command::spawn()` takes none).
fn spawn_closure(tokens: &[Token], spawn_idx: usize) -> Option<SpawnClosure> {
    let open = spawn_idx + 1;
    let close = matching_close(tokens, open)?;
    let mut j = open + 1;
    if ident(tokens, j) == Some("move") {
        j += 1;
    }
    // `||` lexes as one token; `|args|` as two `|` with the parameter
    // list between them (patterns may nest brackets).
    let body_start = if is_op(tokens, j, "||") {
        j + 1
    } else if is_op(tokens, j, "|") {
        let mut depth = 0i64;
        let mut k = j + 1;
        loop {
            let t = tokens.get(k)?;
            if k >= close {
                return None;
            }
            if t.kind == TokenKind::Op {
                match t.text.as_str() {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => depth -= 1,
                    "|" if depth == 0 => break,
                    _ => {}
                }
            }
            k += 1;
        }
        k + 1
    } else {
        return None;
    };
    let body = if is_op(tokens, body_start, "{") {
        let body_close = matching_close(tokens, body_start)?;
        body_start + 1..body_close
    } else {
        body_start..close
    };
    Some(SpawnClosure { spawn_idx, body })
}

/// Parses a `struct` item starting at the keyword. Tuple and unit
/// structs yield no named fields and are skipped.
fn struct_node(tokens: &[Token], struct_idx: usize) -> Option<StructNode> {
    let name = ident(tokens, struct_idx + 1)?.to_owned();
    // Find the field-block brace at depth 0 (skipping generics and a
    // where-clause); `;` or `(` first means unit/tuple struct.
    let mut depth = 0i64;
    let mut j = struct_idx + 2;
    loop {
        let t = tokens.get(j)?;
        if t.kind == TokenKind::Op {
            match t.text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                ";" if depth == 0 => return None,
                "{" if depth == 0 => break,
                _ => {}
            }
        }
        j += 1;
    }
    let close = matching_close(tokens, j)?;
    let mut fields = Vec::new();
    let mut depth = 0i64;
    let mut k = j + 1;
    while k < close {
        let t = &tokens[k];
        if t.kind == TokenKind::Op {
            match t.text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                _ => {}
            }
        }
        // A field is an identifier directly inside the braces followed
        // by a single `:` (the lexer emits `::` as one token, so path
        // segments never match). Skip to the field's `,` so type tokens
        // cannot masquerade as further fields.
        if depth == 0 && t.kind == TokenKind::Ident && is_op(tokens, k + 1, ":") {
            fields.push(FieldDef {
                name: t.text.clone(),
                token_idx: k,
            });
            let mut d = 0i64;
            while k < close {
                let t = &tokens[k];
                if t.kind == TokenKind::Op {
                    match t.text.as_str() {
                        "(" | "[" | "{" => d += 1,
                        ")" | "]" | "}" => d -= 1,
                        "," if d == 0 => break,
                        _ => {}
                    }
                }
                k += 1;
            }
        }
        k += 1;
    }
    Some(StructNode {
        name,
        name_idx: struct_idx + 1,
        fields,
    })
}

/// Splits a body span into statement-sized chunks: a chunk ends at a
/// depth-0 `;` or at the close of a depth-0 brace block (loop/if/match
/// bodies stay whole — `for v in rx { total += v; }` is one chunk).
pub fn statements(tokens: &[Token], range: Range<usize>) -> Vec<Range<usize>> {
    let mut out = Vec::new();
    let mut start = range.start;
    let mut k = range.start;
    while k < range.end {
        let t = &tokens[k];
        if t.kind == TokenKind::Op {
            match t.text.as_str() {
                ";" => {
                    out.push(start..k + 1);
                    start = k + 1;
                }
                "(" | "[" => {
                    k = matching_close(tokens, k).unwrap_or(range.end);
                }
                "{" => {
                    let close = matching_close(tokens, k).unwrap_or(range.end);
                    out.push(start..(close + 1).min(range.end));
                    start = close + 1;
                    k = close;
                }
                _ => {}
            }
        }
        k += 1;
    }
    if start < range.end {
        out.push(start..range.end);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn tree_of(src: &str) -> (Vec<Token>, Tree) {
        let out = lex(src);
        let tree = build(&out.tokens);
        (out.tokens, tree)
    }

    #[test]
    fn fn_names_and_bodies() {
        let (tokens, tree) = tree_of("fn a() { let x = 1; }\nfn b(v: u32) -> u32 { v }");
        assert_eq!(tree.fns.len(), 2);
        assert_eq!(tree.fns[0].name, "a");
        assert_eq!(tree.fns[1].name, "b");
        let body: Vec<&str> = tree.fns[1]
            .body
            .clone()
            .map(|i| tokens[i].text.as_str())
            .collect();
        assert_eq!(body, ["v"]);
    }

    #[test]
    fn bodyless_declarations_are_skipped() {
        let (_, tree) = tree_of("trait T { fn sig(&self) -> u32; fn with_body(&self) {} }");
        assert_eq!(tree.fns.len(), 1);
        assert_eq!(tree.fns[0].name, "with_body");
    }

    #[test]
    fn nested_fn_bodies_are_subtracted() {
        let src = "fn outer() { before(); fn inner() { nested(); } after(); }";
        let (tokens, tree) = tree_of(src);
        assert_eq!(tree.fns.len(), 2);
        let outer = tree
            .fns
            .iter()
            .position(|f| f.name == "outer")
            .expect("outer");
        let direct: Vec<&str> = tree
            .direct_body(outer)
            .into_iter()
            .flatten()
            .map(|i| tokens[i].text.as_str())
            .collect();
        assert!(direct.contains(&"before"));
        assert!(direct.contains(&"after"));
        assert!(!direct.contains(&"nested"));
    }

    #[test]
    fn spawn_closure_block_body() {
        let src = "fn f() { std::thread::scope(|s| { s.spawn(move || { work(); }); }); }";
        let (tokens, tree) = tree_of(src);
        assert_eq!(tree.spawns.len(), 1);
        let body: Vec<&str> = tree.spawns[0]
            .body
            .clone()
            .map(|i| tokens[i].text.as_str())
            .collect();
        assert_eq!(body, ["work", "(", ")", ";"]);
    }

    #[test]
    fn spawn_closure_expression_body_and_args() {
        let src = "fn f() { s.spawn(|(a, b)| prepare(a, b)); }";
        let (tokens, tree) = tree_of(src);
        assert_eq!(tree.spawns.len(), 1);
        let body: Vec<&str> = tree.spawns[0]
            .body
            .clone()
            .map(|i| tokens[i].text.as_str())
            .collect();
        assert_eq!(body[0], "prepare");
        assert_eq!(body.last().copied(), Some(")"));
    }

    #[test]
    fn command_spawn_is_not_a_closure() {
        let (_, tree) = tree_of("fn f() { Command::new(\"ls\").spawn().unwrap(); }");
        assert!(tree.spawns.is_empty());
    }

    #[test]
    fn thread_spawn_path_form_detected() {
        let (_, tree) = tree_of("fn f() { thread::spawn(|| work()); }");
        assert_eq!(tree.spawns.len(), 1);
    }

    #[test]
    fn struct_fields_including_generics_and_attrs() {
        let src = "pub struct Est<T> { pub a: Vec<T>, #[serde(flatten)] b: std::ops::Range<usize>, c: f64 }";
        let (_, tree) = tree_of(src);
        assert_eq!(tree.structs.len(), 1);
        assert_eq!(tree.structs[0].name, "Est");
        let names: Vec<&str> = tree.structs[0]
            .fields
            .iter()
            .map(|f| f.name.as_str())
            .collect();
        assert_eq!(names, ["a", "b", "c"]);
    }

    #[test]
    fn tuple_and_unit_structs_have_no_fields() {
        let (_, tree) = tree_of("struct A(u32, f64);\nstruct B;\nstruct C { x: u8 }");
        assert_eq!(tree.structs.len(), 1);
        assert_eq!(tree.structs[0].name, "C");
    }

    #[test]
    fn statements_split_at_semicolons_and_blocks() {
        let src = "fn f() { let a = 1; for v in rx { t += v; } let b = 2; }";
        let (tokens, tree) = tree_of(src);
        let stmts = statements(&tokens, tree.fns[0].body.clone());
        assert_eq!(stmts.len(), 3);
        let texts: Vec<String> = stmts
            .iter()
            .map(|r| {
                r.clone()
                    .map(|i| tokens[i].text.clone())
                    .collect::<Vec<_>>()
                    .join(" ")
            })
            .collect();
        assert!(texts[0].starts_with("let a"));
        assert!(texts[1].contains("for v in rx"));
        assert!(texts[1].contains("+="));
        assert!(texts[2].starts_with("let b"));
    }

    #[test]
    fn enclosing_fn_picks_innermost() {
        let src = "fn outer() { fn inner() { target(); } }";
        let (tokens, tree) = tree_of(src);
        let target = tokens
            .iter()
            .position(|t| t.text == "target")
            .expect("target");
        let f = tree.enclosing_fn(target).expect("enclosing");
        assert_eq!(tree.fns[f].name, "inner");
    }
}
