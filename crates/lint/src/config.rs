//! Per-crate rule scoping.
//!
//! Which rule families apply where is workspace policy, declared here
//! in one place — *not* scattered through source files as allow
//! directives. Library crates carry the full determinism and
//! error-discipline contract; binaries and the experiment harness are
//! allowed to read the clock and panic on bad input, but nobody gets to
//! compare floats exactly.

use crate::rules::RuleId;
use std::path::PathBuf;

/// Which rule families run for a crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FamilySet {
    /// D-rules: determinism (wall clock, RNG sources, hash iteration).
    pub determinism: bool,
    /// N-rules: numerical soundness.
    pub numerics: bool,
    /// E-rules: error discipline (no panicking constructs).
    pub errors: bool,
    /// R-rules: seed-flow discipline (`split_seed` derivation,
    /// stream-index aliasing, literal seeds).
    pub seed_flow: bool,
    /// P-rules: parallel-phase contract (draw-free spawn closures,
    /// ordered reductions).
    pub parallel_phase: bool,
    /// F-rules: fingerprint coverage of estimate structs.
    pub fingerprint: bool,
}

impl FamilySet {
    /// Everything on — the library-crate contract.
    pub const LIBRARY: FamilySet = FamilySet {
        determinism: true,
        numerics: true,
        errors: true,
        seed_flow: true,
        parallel_phase: true,
        fingerprint: true,
    };

    /// Numerics only — binaries and benches may time, panic, and pick
    /// their own literal seeds, but float comparison hygiene is
    /// universal.
    pub const NUMERICS_ONLY: FamilySet = FamilySet {
        determinism: false,
        numerics: true,
        errors: false,
        seed_flow: false,
        parallel_phase: false,
        fingerprint: false,
    };

    /// Whether a given rule's family is enabled.
    pub fn enables(&self, rule: RuleId) -> bool {
        match rule.family() {
            'D' => self.determinism,
            'N' => self.numerics,
            'E' => self.errors,
            'R' => self.seed_flow,
            'P' => self.parallel_phase,
            'F' => self.fingerprint,
            // L-rules (directive hygiene) always run: a malformed or
            // stale directive is wrong wherever it is.
            _ => true,
        }
    }
}

/// One crate (or source tree) to scan.
#[derive(Debug, Clone)]
pub struct CrateConfig {
    /// Crate name as reported in diagnostics.
    pub name: &'static str,
    /// Source root, relative to the workspace root. Only `.rs` files
    /// under this directory are scanned (so `tests/`, `benches/`, and
    /// `examples/` trees — integration-test code — are out of scope by
    /// construction).
    pub src: &'static str,
    /// Enabled rule families.
    pub families: FamilySet,
}

/// The workspace scan policy: every first-party crate, with its
/// contract level.
///
/// - The six library crates (`qni-core`, `qni-stats`, `qni-model`,
///   `qni-trace`, `qni-sim`, `qni-lp`) plus `qni-lint` itself carry the
///   full contract.
/// - The root facade/CLI, `qni-webapp` (the experiment testbed), and
///   `qni-bench` (the measurement harness — it exists to read the
///   clock) are exempt from D- and E-rules *here, by policy*, not by
///   scattered allow directives.
/// - Vendored stand-ins under `vendor/` are third-party API surface and
///   are not scanned at all.
pub fn workspace_crates() -> Vec<CrateConfig> {
    vec![
        CrateConfig {
            name: "qni",
            src: "src",
            families: FamilySet::NUMERICS_ONLY,
        },
        CrateConfig {
            name: "qni-core",
            src: "crates/core/src",
            families: FamilySet::LIBRARY,
        },
        CrateConfig {
            name: "qni-lp",
            src: "crates/lp/src",
            families: FamilySet::LIBRARY,
        },
        CrateConfig {
            name: "qni-model",
            src: "crates/model/src",
            families: FamilySet::LIBRARY,
        },
        CrateConfig {
            name: "qni-sim",
            src: "crates/sim/src",
            families: FamilySet::LIBRARY,
        },
        CrateConfig {
            name: "qni-stats",
            src: "crates/stats/src",
            families: FamilySet::LIBRARY,
        },
        CrateConfig {
            name: "qni-trace",
            src: "crates/trace/src",
            families: FamilySet::LIBRARY,
        },
        CrateConfig {
            name: "qni-lint",
            src: "crates/lint/src",
            families: FamilySet::LIBRARY,
        },
        CrateConfig {
            name: "qni-webapp",
            src: "crates/webapp/src",
            families: FamilySet::NUMERICS_ONLY,
        },
        CrateConfig {
            name: "qni-bench",
            src: "crates/bench/src",
            families: FamilySet::NUMERICS_ONLY,
        },
    ]
}

/// Resolves the workspace root: walks up from `start` to the first
/// directory containing both `Cargo.toml` and `crates/`.
pub fn find_workspace_root(start: &std::path::Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn library_set_enables_all_families() {
        for r in RuleId::ALL {
            assert!(FamilySet::LIBRARY.enables(r), "{r}");
        }
    }

    #[test]
    fn numerics_only_still_polices_directives() {
        assert!(!FamilySet::NUMERICS_ONLY.enables(RuleId::D001));
        assert!(!FamilySet::NUMERICS_ONLY.enables(RuleId::E003));
        assert!(!FamilySet::NUMERICS_ONLY.enables(RuleId::R001));
        assert!(!FamilySet::NUMERICS_ONLY.enables(RuleId::P001));
        assert!(!FamilySet::NUMERICS_ONLY.enables(RuleId::F001));
        assert!(FamilySet::NUMERICS_ONLY.enables(RuleId::N002));
        assert!(FamilySet::NUMERICS_ONLY.enables(RuleId::L002));
    }

    #[test]
    fn the_six_library_crates_carry_the_full_contract() {
        let crates = workspace_crates();
        for name in [
            "qni-core",
            "qni-stats",
            "qni-model",
            "qni-trace",
            "qni-sim",
            "qni-lp",
        ] {
            let c = crates
                .iter()
                .find(|c| c.name == name)
                .unwrap_or_else(|| panic!("{name} missing from scan policy"));
            assert_eq!(c.families, FamilySet::LIBRARY, "{name}");
        }
    }
}
