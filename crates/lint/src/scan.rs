//! Shared scanning machinery: token-slice helpers, the raw [`Finding`]
//! type the rule scanners emit, and `#[cfg(test)]` span detection.

use crate::lexer::{Token, TokenKind};
use crate::rules::RuleId;

/// A raw rule hit, positioned by token index (the engine turns it into
/// a [`crate::report::Diagnostic`] with file/line/col/snippet context).
#[derive(Debug, Clone)]
pub struct Finding {
    /// Which rule fired.
    pub rule: RuleId,
    /// Index into the token stream of the offending token.
    pub token_idx: usize,
    /// Site-specific message.
    pub message: String,
}

/// The identifier text at `idx`, if that token is an identifier.
pub fn ident(tokens: &[Token], idx: usize) -> Option<&str> {
    match tokens.get(idx) {
        Some(t) if t.kind == TokenKind::Ident => Some(&t.text),
        _ => None,
    }
}

/// Whether the token at `idx` is the operator `op`.
pub fn is_op(tokens: &[Token], idx: usize, op: &str) -> bool {
    matches!(tokens.get(idx), Some(t) if t.kind == TokenKind::Op && t.text == op)
}

/// Index of the delimiter closing the one at `open_idx` (`(`/`[`/`{`),
/// or `None` if unbalanced.
pub fn matching_close(tokens: &[Token], open_idx: usize) -> Option<usize> {
    let mut depth = 0i64;
    for (k, t) in tokens.iter().enumerate().skip(open_idx) {
        if t.kind == TokenKind::Op {
            match t.text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    depth -= 1;
                    if depth == 0 {
                        return Some(k);
                    }
                }
                _ => {}
            }
        }
    }
    None
}

/// Marks every token belonging to a `#[cfg(test)]` or `#[test]` item:
/// the attribute itself plus the item it decorates, up to the item's
/// closing brace (for `mod tests { … }`, `fn …() { … }`, `impl … { … }`)
/// or terminating semicolon (for `#[cfg(test)] use …;`). Doctests need
/// no handling here — they live inside doc comments, which the lexer
/// never presents as code.
pub fn test_spans(tokens: &[Token]) -> Vec<bool> {
    let mut skip = vec![false; tokens.len()];
    let mut i = 0;
    while i < tokens.len() {
        if let Some(after_attr) = test_attribute_end(tokens, i) {
            let end = item_end(tokens, after_attr).unwrap_or(tokens.len());
            for s in skip.iter_mut().take(end.min(tokens.len())).skip(i) {
                *s = true;
            }
            i = end;
        } else {
            i += 1;
        }
    }
    skip
}

/// If a test-marking attribute (`#[cfg(test)]`, `#[cfg(all(test, …))]`,
/// `#[test]`) starts at `idx`, returns the index one past its `]`.
fn test_attribute_end(tokens: &[Token], idx: usize) -> Option<usize> {
    if !is_op(tokens, idx, "#") || !is_op(tokens, idx + 1, "[") {
        return None;
    }
    let close = matching_close(tokens, idx + 1)?;
    let body = &tokens[idx + 2..close];
    let is_test = match ident(body, 0) {
        Some("test") => body.len() == 1,
        // Any cfg predicate mentioning `test` (cfg(test),
        // cfg(all(test, feature = "x")), …) marks test-only code.
        Some("cfg") => body
            .iter()
            .any(|t| t.kind == TokenKind::Ident && t.text == "test"),
        _ => false,
    };
    is_test.then_some(close + 1)
}

/// The end (exclusive token index) of the item starting at `idx`:
/// skips any further attributes, then runs to the first `;` at depth 0
/// or through the first brace-block.
fn item_end(tokens: &[Token], mut idx: usize) -> Option<usize> {
    // Skip stacked attributes (`#[cfg(test)] #[allow(…)] mod t {}`).
    while is_op(tokens, idx, "#") && is_op(tokens, idx + 1, "[") {
        idx = matching_close(tokens, idx + 1)? + 1;
    }
    let mut depth = 0i64;
    let mut k = idx;
    while let Some(t) = tokens.get(k) {
        if t.kind == TokenKind::Op {
            match t.text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                ";" if depth == 0 => return Some(k + 1),
                "{" => return matching_close(tokens, k).map(|c| c + 1),
                _ => {}
            }
        }
        k += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn cfg_test_mod_is_skipped() {
        let src = "fn live() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n fn t() { y.unwrap(); }\n}\nfn live2() {}";
        let out = lex(src);
        let skip = test_spans(&out.tokens);
        let unwraps: Vec<bool> = out
            .tokens
            .iter()
            .zip(&skip)
            .filter(|(t, _)| t.text == "unwrap")
            .map(|(_, s)| *s)
            .collect();
        assert_eq!(unwraps, [false, true]);
        // Code after the test mod is live again.
        let live2 = out.tokens.iter().position(|t| t.text == "live2");
        assert_eq!(live2.map(|i| skip[i]), Some(false));
    }

    #[test]
    fn test_fn_and_cfg_use_are_skipped() {
        let src = "#[test]\nfn t() { a.unwrap(); }\n#[cfg(test)]\nuse std::collections::HashMap;\nfn live() {}";
        let out = lex(src);
        let skip = test_spans(&out.tokens);
        let hm = out.tokens.iter().position(|t| t.text == "HashMap");
        assert_eq!(hm.map(|i| skip[i]), Some(true));
        let uw = out.tokens.iter().position(|t| t.text == "unwrap");
        assert_eq!(uw.map(|i| skip[i]), Some(true));
        let live = out.tokens.iter().position(|t| t.text == "live");
        assert_eq!(live.map(|i| skip[i]), Some(false));
    }

    #[test]
    fn stacked_attributes_are_covered() {
        let src = "#[cfg(test)]\n#[allow(dead_code)]\nmod t { fn f() { p.unwrap(); } }";
        let out = lex(src);
        let skip = test_spans(&out.tokens);
        assert!(skip.iter().all(|s| *s));
    }

    #[test]
    fn matching_close_handles_nesting() {
        let out = lex("f(a(b), c[d{e}])");
        assert_eq!(matching_close(&out.tokens, 1), Some(out.tokens.len() - 1));
        assert_eq!(matching_close(&out.tokens, 3), Some(5));
    }
}
