//! Hand-rolled Rust lexer for the lint engine.
//!
//! The container has no crates.io access, so `qni-lint` cannot lean on
//! `syn` or `proc-macro2`; instead this module tokenizes Rust source
//! directly. It is *not* a full grammar — the rule scanners only need a
//! token stream that is exactly right about one thing: **what is code
//! and what is not**. A forbidden pattern inside a string literal, raw
//! string, char literal, doc comment, or block comment must never reach
//! a rule scanner (pinned by `tests/proptest_lexer.rs`), and the allow
//! directives that suppress rules live *in* comments, so comments are
//! lexed losslessly rather than discarded.
//!
//! Coverage beyond the basics that matters for correctness here:
//!
//! - raw strings with arbitrary `#` fences (`r##"…"##`), byte and C
//!   string prefixes (`b"…"`, `br#"…"#`, `c"…"`, `cr"…"`),
//! - raw identifiers (`r#type` is an identifier, not a raw string),
//! - lifetimes vs. char literals (`'a>` vs `'a'`),
//! - nested block comments (`/* /* */ */`),
//! - float vs. integer vs. tuple-index lexing (`1.0` is a float, `1.` is
//!   a float, `1.max(2)` is an integer plus a method call, `x.0.1` is
//!   two tuple indexes, `0..n` is an integer plus a range operator).

/// What a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (including raw identifiers, with the `r#`
    /// prefix stripped so `r#fn` compares equal to `fn`).
    Ident,
    /// Integer literal (any base, any suffix except `f32`/`f64`).
    Int,
    /// Float literal (decimal point, exponent, or `f32`/`f64` suffix).
    Float,
    /// String literal of any flavor: `"…"`, `r"…"`, `r#"…"#`, `b"…"`,
    /// `br"…"`, `c"…"`, `cr"…"` — content is opaque to rule scanners.
    Str,
    /// Char or byte literal (`'x'`, `b'\n'`).
    Char,
    /// Lifetime (`'a`, `'_`, `'static`).
    Lifetime,
    /// Operator or punctuation, longest-match (`==`, `!=`, `::`, …).
    Op,
}

/// One code token with its 1-based source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Kind of the token.
    pub kind: TokenKind,
    /// Token text. For [`TokenKind::Str`]/[`TokenKind::Char`] this is
    /// the full literal including quotes and prefixes; for raw
    /// identifiers the `r#` prefix is stripped.
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: usize,
    /// 1-based column (in characters) of the token's first character.
    pub col: usize,
}

/// One comment with its position and layout context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// Comment text including the `//` / `/*` markers.
    pub text: String,
    /// 1-based line on which the comment starts.
    pub line: usize,
    /// 1-based column of the comment's first character.
    pub col: usize,
    /// Whether any code token precedes the comment on its start line
    /// (distinguishes trailing `code(); // note` comments from
    /// standalone comment lines — allow directives bind differently).
    pub code_before_on_line: bool,
}

/// The lexer's output: code tokens and comments, each in source order.
#[derive(Debug, Clone, Default)]
pub struct LexOutput {
    /// Code tokens (comments and whitespace removed).
    pub tokens: Vec<Token>,
    /// Comments (line and block, doc and plain).
    pub comments: Vec<Comment>,
}

/// Tokenizes `source`. Unterminated strings/comments are tolerated (the
/// rest of the file becomes one literal/comment token): the linter must
/// degrade gracefully on code that `rustc` would reject anyway.
pub fn lex(source: &str) -> LexOutput {
    Lexer::new(source).run()
}

struct Lexer<'a> {
    chars: Vec<char>,
    src: &'a str,
    pos: usize,
    line: usize,
    col: usize,
    out: LexOutput,
    last_code_line: usize,
}

impl<'a> Lexer<'a> {
    fn new(source: &'a str) -> Self {
        Lexer {
            chars: source.chars().collect(),
            src: source,
            pos: 0,
            line: 1,
            col: 1,
            out: LexOutput::default(),
            last_code_line: 0,
        }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn slice_from(&self, start: usize) -> String {
        self.chars[start..self.pos].iter().collect()
    }

    fn push_token(&mut self, kind: TokenKind, text: String, line: usize, col: usize) {
        self.last_code_line = line.max(self.last_code_line);
        self.out.tokens.push(Token {
            kind,
            text,
            line,
            col,
        });
    }

    fn run(mut self) -> LexOutput {
        // A shebang line is skipped wholesale (only legal at byte 0).
        if self.src.starts_with("#!") && self.peek(1) == Some('!') && self.peek(2) != Some('[') {
            while let Some(c) = self.peek(0) {
                if c == '\n' {
                    break;
                }
                self.bump();
            }
        }
        while let Some(c) = self.peek(0) {
            let (line, col) = (self.line, self.col);
            match c {
                _ if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(line, col),
                '/' if self.peek(1) == Some('*') => self.block_comment(line, col),
                _ if is_ident_start(c) => self.ident_or_prefixed_literal(line, col),
                _ if c.is_ascii_digit() => self.number(line, col),
                '"' => self.string_literal(0, line, col),
                '\'' => self.char_or_lifetime(line, col),
                _ => self.operator(line, col),
            }
        }
        self.out
    }

    fn line_comment(&mut self, line: usize, col: usize) {
        let start = self.pos;
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            self.bump();
        }
        let text = self.slice_from(start);
        self.out.comments.push(Comment {
            text,
            line,
            col,
            code_before_on_line: self.last_code_line == line,
        });
    }

    fn block_comment(&mut self, line: usize, col: usize) {
        let start = self.pos;
        self.bump();
        self.bump();
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    self.bump();
                    self.bump();
                    depth += 1;
                }
                (Some('*'), Some('/')) => {
                    self.bump();
                    self.bump();
                    depth -= 1;
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => break,
            }
        }
        let text = self.slice_from(start);
        self.out.comments.push(Comment {
            text,
            line,
            col,
            code_before_on_line: self.last_code_line == line,
        });
    }

    /// Identifier, keyword, raw identifier, or a string/char literal
    /// with an identifier-like prefix (`r"…"`, `b'…'`, `br#"…"#`, …).
    fn ident_or_prefixed_literal(&mut self, line: usize, col: usize) {
        // Raw-string / byte / C-string prefixes. Longest first.
        for prefix in ["br", "cr", "b", "c", "r"] {
            if self.matches_word_prefix(prefix) {
                let after = prefix.chars().count();
                match self.peek(after) {
                    Some('"') => {
                        for _ in 0..after {
                            self.bump();
                        }
                        if prefix.ends_with('r') {
                            self.raw_string_body(line, col);
                        } else {
                            self.string_literal(after, line, col);
                        }
                        return;
                    }
                    Some('#') if prefix.ends_with('r') => {
                        // Could be r#"…"# (raw string) or r#ident (raw
                        // identifier). Hashes followed by a quote mean a
                        // raw string.
                        let mut k = after;
                        while self.peek(k) == Some('#') {
                            k += 1;
                        }
                        if self.peek(k) == Some('"') {
                            for _ in 0..after {
                                self.bump();
                            }
                            self.raw_string_body(line, col);
                            return;
                        }
                        if prefix == "r" && k == after + 1 {
                            // Raw identifier r#foo: strip the prefix so
                            // keyword comparison still works.
                            self.bump();
                            self.bump();
                            let start = self.pos;
                            self.consume_ident();
                            let text = self.slice_from(start);
                            self.push_token(TokenKind::Ident, text, line, col);
                            return;
                        }
                    }
                    Some('\'') if !prefix.ends_with('r') => {
                        for _ in 0..after {
                            self.bump();
                        }
                        self.char_literal_body(line, col);
                        return;
                    }
                    _ => {}
                }
            }
        }
        let start = self.pos;
        self.consume_ident();
        let text = self.slice_from(start);
        self.push_token(TokenKind::Ident, text, line, col);
    }

    /// Whether the word at the cursor starts with `prefix` (chars).
    fn matches_word_prefix(&self, prefix: &str) -> bool {
        prefix
            .chars()
            .enumerate()
            .all(|(i, p)| self.peek(i) == Some(p))
    }

    fn consume_ident(&mut self) {
        while let Some(c) = self.peek(0) {
            if is_ident_continue(c) {
                self.bump();
            } else {
                break;
            }
        }
    }

    /// Ordinary (escaped) string literal. `back` is how many chars of
    /// prefix before the cursor belong to the literal.
    fn string_literal(&mut self, back: usize, line: usize, col: usize) {
        let start = self.pos - back;
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '"' => break,
                _ => {}
            }
        }
        let text = self.slice_from(start);
        self.push_token(TokenKind::Str, text, line, col);
    }

    /// Raw string body starting at the `#`s or quote (prefix consumed).
    fn raw_string_body(&mut self, line: usize, col: usize) {
        let start = self.pos;
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            hashes += 1;
            self.bump();
        }
        self.bump(); // opening quote
        'outer: while let Some(c) = self.bump() {
            if c == '"' {
                // A closing quote must be followed by `hashes` hashes.
                for k in 0..hashes {
                    if self.peek(k) != Some('#') {
                        continue 'outer;
                    }
                }
                for _ in 0..hashes {
                    self.bump();
                }
                break;
            }
        }
        let text = self.slice_from(start);
        self.push_token(TokenKind::Str, text, line, col);
    }

    fn char_or_lifetime(&mut self, line: usize, col: usize) {
        // 'a' is a char, 'a is a lifetime; disambiguate by whether the
        // identifier after the quote is immediately followed by a quote.
        if let Some(c1) = self.peek(1) {
            if is_ident_start(c1) {
                let mut k = 2;
                while self.peek(k).is_some_and(is_ident_continue) {
                    k += 1;
                }
                if self.peek(k) != Some('\'') {
                    // Lifetime.
                    let start = self.pos;
                    self.bump();
                    self.consume_ident();
                    let text = self.slice_from(start);
                    self.push_token(TokenKind::Lifetime, text, line, col);
                    return;
                }
            }
        }
        self.char_literal_body(line, col);
    }

    fn char_literal_body(&mut self, line: usize, col: usize) {
        let start = self.pos;
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '\'' => break,
                _ => {}
            }
        }
        let text = self.slice_from(start);
        self.push_token(TokenKind::Char, text, line, col);
    }

    fn number(&mut self, line: usize, col: usize) {
        let start = self.pos;
        let mut is_float = false;
        // A number directly after `.` is a tuple index (`x.0`, `x.0.1`):
        // digits only, never a float.
        if matches!(self.out.tokens.last(), Some(t) if t.kind == TokenKind::Op && t.text == ".") {
            self.consume_digits();
            let text = self.slice_from(start);
            self.push_token(TokenKind::Int, text, line, col);
            return;
        }
        if self.peek(0) == Some('0') && matches!(self.peek(1), Some('x' | 'o' | 'b' | 'X')) {
            // Radix literal: digits (liberally) plus underscores.
            self.bump();
            self.bump();
            while self
                .peek(0)
                .is_some_and(|c| c.is_ascii_alphanumeric() || c == '_')
            {
                self.bump();
            }
            let text = self.slice_from(start);
            self.push_token(TokenKind::Int, text, line, col);
            return;
        }
        self.consume_digits();
        // Decimal point: only when followed by a digit, end-of-number
        // context, or nothing — `1.max()` and `0..n` keep the int.
        if self.peek(0) == Some('.') {
            match self.peek(1) {
                Some(c) if c.is_ascii_digit() => {
                    is_float = true;
                    self.bump();
                    self.consume_digits();
                }
                Some(c) if is_ident_start(c) || c == '.' => {}
                _ => {
                    // `1.` trailing-dot float (e.g. `(1., 2.)`).
                    is_float = true;
                    self.bump();
                }
            }
        }
        // Exponent.
        if matches!(self.peek(0), Some('e' | 'E')) {
            let (sign, digit) = (self.peek(1), self.peek(2));
            let direct_digit = sign.is_some_and(|c| c.is_ascii_digit());
            let signed_digit =
                matches!(sign, Some('+' | '-')) && digit.is_some_and(|c| c.is_ascii_digit());
            if direct_digit || signed_digit {
                is_float = true;
                self.bump();
                if signed_digit {
                    self.bump();
                }
                self.consume_digits();
            }
        }
        // Suffix (`u32`, `f64`, …).
        let suffix_start = self.pos;
        while self.peek(0).is_some_and(is_ident_continue) {
            self.bump();
        }
        let suffix = self.slice_from(suffix_start);
        if suffix == "f32" || suffix == "f64" {
            is_float = true;
        }
        let text = self.slice_from(start);
        let kind = if is_float {
            TokenKind::Float
        } else {
            TokenKind::Int
        };
        self.push_token(kind, text, line, col);
    }

    fn consume_digits(&mut self) {
        while self.peek(0).is_some_and(|c| c.is_ascii_digit() || c == '_') {
            self.bump();
        }
    }

    fn operator(&mut self, line: usize, col: usize) {
        const THREE: [&str; 4] = ["<<=", ">>=", "..=", "..."];
        const TWO: [&str; 18] = [
            "==", "!=", "<=", ">=", "::", "->", "=>", "..", "&&", "||", "<<", ">>", "+=", "-=",
            "*=", "/=", "%=", "^=",
        ];
        for op in THREE {
            if self.matches_word_prefix(op) {
                for _ in 0..3 {
                    self.bump();
                }
                self.push_token(TokenKind::Op, op.to_owned(), line, col);
                return;
            }
        }
        for op in TWO {
            if self.matches_word_prefix(op) {
                self.bump();
                self.bump();
                self.push_token(TokenKind::Op, op.to_owned(), line, col);
                return;
            }
        }
        if let Some(c) = self.bump() {
            self.push_token(TokenKind::Op, c.to_string(), line, col);
        }
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src)
            .tokens
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn basic_tokens() {
        let t = kinds("let x = a.unwrap();");
        assert_eq!(t[0], (TokenKind::Ident, "let".to_owned()));
        assert_eq!(t[3], (TokenKind::Ident, "a".to_owned()));
        assert_eq!(t[4], (TokenKind::Op, ".".to_owned()));
        assert_eq!(t[5], (TokenKind::Ident, "unwrap".to_owned()));
    }

    #[test]
    fn strings_are_opaque() {
        let out = lex(r#"let s = "a.unwrap() == 1.0"; s"#);
        assert!(out
            .tokens
            .iter()
            .all(|t| t.kind != TokenKind::Ident || t.text != "unwrap"));
        assert_eq!(
            out.tokens
                .iter()
                .filter(|t| t.kind == TokenKind::Str)
                .count(),
            1
        );
    }

    #[test]
    fn raw_strings_with_fences() {
        let out = lex(r###"let s = r#"thread_rng() "quoted" panic!"#; x"###);
        let strs: Vec<_> = out
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Str)
            .collect();
        assert_eq!(strs.len(), 1);
        assert!(strs[0].text.contains("thread_rng"));
        assert_eq!(out.tokens.last().map(|t| t.text.as_str()), Some("x"));
    }

    #[test]
    fn raw_identifier_is_ident_not_string() {
        let t = kinds("fn r#type() {}");
        assert_eq!(t[1], (TokenKind::Ident, "type".to_owned()));
    }

    #[test]
    fn byte_and_c_strings() {
        let t = kinds(r##"(b"x", br#"y"#, c"z", cr"w", b'q')"##);
        let n_str = t.iter().filter(|(k, _)| *k == TokenKind::Str).count();
        let n_char = t.iter().filter(|(k, _)| *k == TokenKind::Char).count();
        assert_eq!((n_str, n_char), (4, 1));
    }

    #[test]
    fn lifetimes_vs_chars() {
        let t = kinds("fn f<'a>(x: &'a str) { let c = 'a'; let u = '_'; let l: &'_ str = x; }");
        let lifetimes = t.iter().filter(|(k, _)| *k == TokenKind::Lifetime).count();
        let chars = t.iter().filter(|(k, _)| *k == TokenKind::Char).count();
        assert_eq!((lifetimes, chars), (3, 2));
    }

    #[test]
    fn nested_block_comments() {
        let out = lex("a /* outer /* inner */ still comment */ b");
        assert_eq!(out.tokens.len(), 2);
        assert_eq!(out.comments.len(), 1);
        assert!(out.comments[0].text.contains("inner"));
    }

    #[test]
    fn float_vs_int_vs_tuple_index() {
        assert_eq!(kinds("1.0")[0].0, TokenKind::Float);
        assert_eq!(kinds("1.")[0].0, TokenKind::Float);
        assert_eq!(kinds("2e-3")[0].0, TokenKind::Float);
        assert_eq!(kinds("2f64")[0].0, TokenKind::Float);
        assert_eq!(kinds("1_000.5")[0].0, TokenKind::Float);
        assert_eq!(kinds("1.max(2)")[0].0, TokenKind::Int);
        assert_eq!(kinds("0..n")[0].0, TokenKind::Int);
        assert_eq!(kinds("0xff")[0].0, TokenKind::Int);
        // x.0.1 — two tuple indexes, no floats.
        assert!(kinds("x.0.1").iter().all(|(k, _)| *k != TokenKind::Float));
    }

    #[test]
    fn operators_longest_match() {
        let t = kinds("a == b != c <= d ..= e :: f");
        let ops: Vec<_> = t
            .iter()
            .filter(|(k, _)| *k == TokenKind::Op)
            .map(|(_, s)| s.as_str())
            .collect();
        assert_eq!(ops, ["==", "!=", "<=", "..=", "::"]);
    }

    #[test]
    fn comment_layout_flags() {
        let out = lex("let x = 1; // trailing\n// standalone\nlet y = 2;");
        assert!(out.comments[0].code_before_on_line);
        assert!(!out.comments[1].code_before_on_line);
    }

    #[test]
    fn positions_are_one_based() {
        let out = lex("ab\n  cd");
        assert_eq!((out.tokens[0].line, out.tokens[0].col), (1, 1));
        assert_eq!((out.tokens[1].line, out.tokens[1].col), (2, 3));
    }

    #[test]
    fn unterminated_string_does_not_loop() {
        let out = lex("let s = \"oops");
        assert_eq!(
            out.tokens
                .iter()
                .filter(|t| t.kind == TokenKind::Str)
                .count(),
            1
        );
    }
}
