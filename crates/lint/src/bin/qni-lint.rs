//! `qni-lint` — CI entry point.
//!
//! ```console
//! $ qni-lint                        # lint the whole workspace
//! $ qni-lint crates/core            # restrict to paths under a prefix
//! $ qni-lint --json report.json     # also write the machine report
//! $ qni-lint --sarif report.sarif   # also write SARIF 2.1.0
//! $ qni-lint --root /path/to/repo   # explicit workspace root
//! $ qni-lint --rules                # print the rule catalog
//! ```
//!
//! Unfiltered runs also enforce the suppression budget (`lint.toml` at
//! the workspace root, when present): the run fails if any rule's allow
//! directives exceed its budgeted ceiling. Path-filtered runs see only
//! a slice of the suppressions and skip the check.
//!
//! Exit code 0 when clean, 1 on any unsuppressed violation or budget
//! overrun, 2 when the run itself failed (bad flag, unreadable file).

use qni_lint::budget::SuppressionBudget;
use qni_lint::config::find_workspace_root;
use qni_lint::rules::RuleId;
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
qni-lint — determinism & numerical-soundness static analysis

USAGE:
  qni-lint [--root DIR] [--json FILE] [--sarif FILE] [--rules] [path-prefix…]";

fn main() -> ExitCode {
    match run() {
        Ok(clean) => {
            if clean {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn run() -> Result<bool, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut root: Option<PathBuf> = None;
    let mut json_out: Option<PathBuf> = None;
    let mut sarif_out: Option<PathBuf> = None;
    let mut filters: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--root" => {
                root = Some(PathBuf::from(
                    args.get(i + 1).ok_or("--root needs a value")?,
                ));
                i += 2;
            }
            "--json" => {
                json_out = Some(PathBuf::from(
                    args.get(i + 1).ok_or("--json needs a value")?,
                ));
                i += 2;
            }
            "--sarif" => {
                sarif_out = Some(PathBuf::from(
                    args.get(i + 1).ok_or("--sarif needs a value")?,
                ));
                i += 2;
            }
            "--rules" => {
                print_rules();
                return Ok(true);
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(true);
            }
            flag if flag.starts_with("--") => {
                return Err(format!("unknown flag `{flag}`"));
            }
            path => {
                filters.push(path.to_owned());
                i += 1;
            }
        }
    }
    let root = match root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().map_err(|e| e.to_string())?;
            find_workspace_root(&cwd)
                .ok_or_else(|| "could not find the workspace root; pass --root DIR".to_owned())?
        }
    };
    let report = if filters.is_empty() {
        qni_lint::lint_workspace(&root)
    } else {
        qni_lint::lint_paths(&root, &filters)
    }
    .map_err(|e| e.to_string())?;
    if let Some(path) = &json_out {
        let json = report.render_json().map_err(|e| e.to_string())?;
        std::fs::write(path, json).map_err(|e| format!("{}: {e}", path.display()))?;
    }
    if let Some(path) = &sarif_out {
        let sarif = qni_lint::sarif::render_sarif(&report);
        std::fs::write(path, sarif).map_err(|e| format!("{}: {e}", path.display()))?;
    }
    print!("{}", report.render_human());
    let mut clean = !report.has_errors();
    // Budget enforcement: full-workspace runs only (a filtered run
    // under-counts suppressions by construction).
    if filters.is_empty() {
        if let Some(budget) = SuppressionBudget::load(&root).map_err(|e| e.to_string())? {
            for v in budget.check(&report) {
                println!("qni-lint: over budget — {v}");
                clean = false;
            }
        }
    }
    Ok(clean)
}

fn print_rules() {
    println!("{:<10} {:<9} summary", "rule", "severity");
    for rule in RuleId::ALL {
        println!(
            "{:<10} {:<9} {}",
            rule.as_str(),
            match rule.severity() {
                qni_lint::Severity::Error => "error",
                qni_lint::Severity::Warning => "warning",
            },
            rule.summary()
        );
        println!("{:21}{}", "", rule.rationale());
    }
}
