//! README drift gate: the rule table in the top-level README must list
//! every rule the engine can emit. A new `RuleId` variant without a
//! documented row fails here, not in review.

use qni_lint::rules::RuleId;
use std::path::Path;

fn readme() -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../README.md");
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

#[test]
fn every_rule_id_has_a_readme_table_row() {
    let text = readme();
    for rule in RuleId::ALL {
        // A table row, not a passing mention: the ID set in backticks at
        // the start of a `|`-delimited row.
        let row = format!("| `{}` |", rule.as_str());
        assert!(
            text.contains(&row),
            "{rule}: README.md rule table is missing a row starting {row:?}"
        );
    }
}

#[test]
fn readme_table_does_not_document_phantom_rules() {
    // The converse drift: a row for a rule the engine no longer knows.
    let known: Vec<&str> = RuleId::ALL.iter().map(|r| r.as_str()).collect();
    for line in readme().lines() {
        let Some(rest) = line.strip_prefix("| `QNI-") else {
            continue;
        };
        let Some(id) = rest.split('`').next() else {
            continue;
        };
        let full = format!("QNI-{id}");
        assert!(
            known.contains(&full.as_str()),
            "README.md documents {full}, which is not in RuleId::ALL"
        );
    }
}
