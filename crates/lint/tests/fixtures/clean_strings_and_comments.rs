// Clean: every forbidden pattern below is inert — inside a string, a
// raw string, a char, a comment, or documentation. A lexer that is
// sloppy about literal boundaries flags all of them.

// Instant::now() and thread_rng() in a line comment do nothing.

/* Block comment: x.unwrap(); panic!("boom"); a == 1.5 */

/// Doc comments may show the syntax under discussion:
/// `Instant::now()`, `.unwrap()`, even `// qni-lint: allow(QNI-E001)`.
pub fn messages() -> Vec<String> {
    vec![
        "Instant::now() is forbidden".to_string(),
        "call .unwrap() and .expect(\"msg\") carefully".to_string(),
        r#"panic!("with a raw string payload")"#.to_string(),
        r##"nested fence: r#"thread_rng()"# stays inert"##.to_string(),
        String::from("for (k, v) in map.iter() { a == 1.5 }"),
    ]
}

pub fn delimiters() -> [char; 2] {
    ['"', '\'']
}
