// Clean: exact comparisons against the sentinel values 0.0 and
// ±INFINITY are the workspace's structural-zero and saturation checks,
// exempt from QNI-N001 by design.

pub fn classify(x: f64) -> &'static str {
    if x == 0.0 {
        "zero"
    } else if x == f64::INFINITY || x == f64::NEG_INFINITY {
        "saturated"
    } else if x != 0.0 && x.is_finite() {
        "finite"
    } else {
        "nan"
    }
}
