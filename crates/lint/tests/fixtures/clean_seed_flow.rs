// Clean: the sanctioned seed-flow discipline — distinct split_seed
// indices, derivation visible at every RNG construction, draws kept
// out of spawned prepare closures, join-in-spawn-order reduction.

pub fn fit(master_seed: u64, chains: usize) -> f64 {
    let sim_seed = split_seed(master_seed, 0);
    let gibbs = rng_from_seed(split_seed(master_seed, 1));
    let mut acc = init(sim_seed, gibbs);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..chains)
            .map(|k| {
                let chain_seed = split_seed(master_seed, 2 + k as u64);
                s.spawn(move || prepare_chain(chain_seed))
            })
            .collect();
        for h in handles {
            acc = merge(acc, h.join());
        }
    });
    finish(acc)
}
