// Seeded violation: QNI-E001 (`.unwrap()` in library code).

pub fn head(xs: &[u64]) -> u64 {
    *xs.first().unwrap()
}
