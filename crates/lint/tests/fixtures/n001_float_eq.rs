// Seeded violation: QNI-N001 (exact float comparison against a
// non-sentinel constant).

pub fn converged(rate: f64) -> bool {
    rate == 1.5
}
