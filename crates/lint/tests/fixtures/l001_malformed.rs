// Seeded violation: QNI-L001 — the directive below has no reason, so it
// is malformed (and the unwrap it fails to cover still fires as E001).

pub fn head(xs: &[u64]) -> u64 {
    // qni-lint: allow(QNI-E001)
    *xs.first().unwrap()
}
