// Seeded violation: QNI-R001 (RNG built from a seed with no visible
// split_seed derivation).

pub fn sampler(trial: u64) -> Rng {
    rng_from_seed(trial.wrapping_mul(31) + 7)
}
