// Seeded violation: QNI-R002 (two split_seed calls with the same
// literal stream index in one function — the streams alias).

pub fn fit(master_seed: u64) -> (f64, f64) {
    let sim_seed = split_seed(master_seed, 1);
    let gibbs_seed = split_seed(master_seed, 1);
    (run_sim(sim_seed), run_gibbs(gibbs_seed))
}
