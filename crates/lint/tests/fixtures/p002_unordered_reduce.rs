// Seeded violation: QNI-P002 (float accumulation in channel-arrival
// order — the sum depends on the scheduler).

pub fn pooled_rate(rx: Receiver<f64>, workers: usize) -> f64 {
    let mut total = 0.0;
    let mut seen = 0;
    while seen < workers {
        if let Ok(v) = rx.recv() {
            total += v;
            seen += 1;
        }
    }
    total / workers as f64
}
