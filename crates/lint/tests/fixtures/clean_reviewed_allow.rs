// Clean: the one violation present carries a reviewed, reasoned allow
// directive, so the file lints clean and the suppression is counted.

pub fn head(xs: &[u64]) -> u64 {
    *xs.first().expect("validated non-empty") // qni-lint: allow(QNI-E002) — caller checks emptiness first
}
