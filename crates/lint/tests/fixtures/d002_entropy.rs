// Seeded violation: QNI-D002 (nondeterministic randomness source).

pub fn roll() -> u64 {
    let mut rng = thread_rng();
    rng.next()
}
