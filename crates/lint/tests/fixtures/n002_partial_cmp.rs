// Seeded violation: QNI-N002 (NaN-unsafe ordering). The `.unwrap()`
// here reports as N002, not E001: the sharper message wins the dedup.

pub fn sort_rates(rates: &mut [f64]) {
    rates.sort_by(|a, b| a.partial_cmp(b).unwrap());
}
