// Seeded violation: QNI-D003 (hash-order iteration) on `counts.keys()`.

use std::collections::HashMap;

pub fn first_key(counts: &HashMap<String, u64>) -> Option<&String> {
    counts.keys().next()
}
