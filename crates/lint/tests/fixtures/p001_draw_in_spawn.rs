// Seeded violation: QNI-P001 (RNG draw lexically inside a closure
// passed to spawn — draws belong in the serial drain).

pub fn prepare_wave(members: &[Member], seed: u64) {
    let mut rng = rng_from_seed(seed);
    std::thread::scope(|s| {
        for chunk in members.chunks(8) {
            s.spawn(move || {
                let jitter = rng.sample(Exp::new(1.0));
                prepare_chunk(chunk, jitter);
            });
        }
    });
}
