// Seeded violation: QNI-D003 (hash-order iteration) via a `for` loop
// over the collection itself.

use std::collections::HashSet;

pub fn total(seen: HashSet<u64>) -> u64 {
    let mut sum = 0;
    for v in &seen {
        sum += v;
    }
    sum
}
