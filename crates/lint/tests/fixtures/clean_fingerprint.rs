// Clean: every estimate-struct field is folded into the fingerprint
// body, and the one deliberate exclusion carries a reasoned allow.

pub struct StemResult {
    pub rates: Vec<f64>,
    pub ess: Vec<f64>,
    // qni-lint: allow(QNI-F001) — timing is measurement, not estimate
    pub wall_secs: f64,
}

impl StemResult {
    pub fn fingerprint(&self) -> Vec<u64> {
        self.rates
            .iter()
            .chain(&self.ess)
            .map(|v| v.to_bits())
            .collect()
    }
}
