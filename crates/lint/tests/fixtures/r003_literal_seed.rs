// Seeded violation: QNI-R003 (literal seed constant in a library
// crate) — twice: a bare literal fed to a constructor and a SEED-named
// const.

const DEFAULT_SEED: u64 = 0xDEAD_BEEF;

pub fn sampler() -> Rng {
    rng_from_seed(42)
}
