// Seeded violation: QNI-E003 (`panic!` in library code).

pub fn checked(x: i64) -> i64 {
    if x < 0 {
        panic!("negative input");
    }
    x
}
