// Clean: everything inside `#[cfg(test)]` / `#[test]` items is out of
// scope for the D- and E-families — tests may panic and may read the
// clock.

pub fn double(x: u64) -> u64 {
    x * 2
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn doubles() {
        let t = std::time::Instant::now();
        assert_eq!(double(2), "4".parse().unwrap());
        assert!(t.elapsed().as_secs_f64() >= 0.0);
    }

    #[test]
    #[should_panic]
    fn panics_on_purpose() {
        panic!("tests may panic");
    }
}
