// Seeded violation: QNI-E002 (`.expect(..)` in library code).

pub fn head(xs: &[u64]) -> u64 {
    *xs.first().expect("non-empty input")
}
