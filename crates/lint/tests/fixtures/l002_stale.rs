// Seeded violation: QNI-L002 — a well-formed directive that suppresses
// nothing.

pub fn double(x: u64) -> u64 {
    // qni-lint: allow(QNI-E001) — left behind after a refactor
    x * 2
}
