// Seeded violation: QNI-D001 (wall-clock read) on the Instant::now call.

pub fn stamp() -> f64 {
    let start = std::time::Instant::now();
    start.elapsed().as_secs_f64()
}
