// Seeded violation: QNI-F001 (estimate-struct field missing from the
// file's fingerprint body — the field escapes the byte-identity check).

pub struct WindowEstimate {
    pub start: f64,
    pub end: f64,
    pub rates: Vec<f64>,
    pub retries: usize,
}

impl WindowEstimate {
    pub fn fingerprint(&self) -> Vec<u64> {
        let mut bits = vec![self.start.to_bits(), self.end.to_bits()];
        bits.extend(self.rates.iter().map(|r| r.to_bits()));
        bits
    }
}
