//! Structure-layer coverage: the brace-matched skeleton (`tree.rs`)
//! must stay honest on the shapes real workspace code throws at it —
//! nested closures, closures inside macro arguments, `scope.spawn`
//! inside loops — and, property-tested, must never let `spawn` /
//! `sample` / `split_seed` tokens inside strings or comments reach a
//! rule.

use proptest::prelude::*;
use qni_lint::config::{CrateConfig, FamilySet};
use qni_lint::engine::lint_source;
use qni_lint::lexer::lex;
use qni_lint::rules::RuleId;
use qni_lint::tree;

fn lib_crate() -> CrateConfig {
    CrateConfig {
        name: "fixture",
        src: "src",
        families: FamilySet::LIBRARY,
    }
}

fn rules_of(source: &str) -> Vec<RuleId> {
    let (diags, _) = lint_source(&lib_crate(), "src/t.rs", source);
    let mut rules: Vec<RuleId> = diags.iter().map(|d| d.rule).collect();
    rules.sort();
    rules
}

#[test]
fn nested_closures_inside_spawn_are_part_of_its_body() {
    // The draw hides inside an iterator closure nested in the spawn
    // closure — still lexically inside the spawned work.
    let src = "pub fn f(xs: &[f64], seed: u64) {\n\
               let mut rng = rng_from_seed(split_seed(seed, 0));\n\
               std::thread::scope(|s| {\n\
                   s.spawn(move || {\n\
                       let v: Vec<f64> = xs.iter().map(|x| x + rng.sample(d)).collect();\n\
                       consume(v);\n\
                   });\n\
               });\n}\n";
    assert_eq!(rules_of(src), vec![RuleId::P001]);
}

#[test]
fn closure_passed_through_macro_args_is_still_seen() {
    // Macro bodies are token streams too; a spawn closure inside a
    // macro argument list must still be detected (brace matching does
    // not care about the macro name).
    let src = "pub fn f(seed: u64) {\n\
               let mut rng = rng_from_seed(split_seed(seed, 0));\n\
               run_in!(pool, s.spawn(move || {\n\
                   let x = rng.gen_range(0..9);\n\
                   push(x);\n\
               }));\n}\n";
    assert_eq!(rules_of(src), vec![RuleId::P001]);
}

#[test]
fn spawn_inside_loop_and_match_arms() {
    let src = "pub fn f(seed: u64, shards: usize) {\n\
               let mut rng = rng_from_seed(split_seed(seed, 0));\n\
               std::thread::scope(|s| {\n\
                   for k in 0..shards {\n\
                       match k % 2 {\n\
                           0 => { s.spawn(move || prepare(k)); }\n\
                           _ => { s.spawn(move || { let v = rng.gen(); seed_slot(k, v); }); }\n\
                       }\n\
                   }\n\
               });\n}\n";
    assert_eq!(rules_of(src), vec![RuleId::P001]);
}

#[test]
fn draw_free_spawns_in_loops_are_clean() {
    let src = "pub fn f(members: &[u64]) {\n\
               std::thread::scope(|s| {\n\
                   for chunk in members.chunks(8) {\n\
                       s.spawn(move || prepare_chunk(chunk));\n\
                   }\n\
               });\n}\n";
    assert!(rules_of(src).is_empty());
}

#[test]
fn tree_sees_fns_structs_and_spawns_through_macros() {
    let src = "pub struct AEstimate { pub a: f64 }\n\
               macro_rules! wrap { ($b:block) => { $b } }\n\
               pub fn outer() { inner_helper(); }\n\
               fn inner_helper() { std::thread::scope(|s| { s.spawn(|| work()); }); }\n";
    let lexed = lex(src);
    let t = tree::build(&lexed.tokens);
    let names: Vec<&str> = t.fns.iter().map(|f| f.name.as_str()).collect();
    assert!(names.contains(&"outer") && names.contains(&"inner_helper"));
    assert_eq!(t.structs.len(), 1);
    assert_eq!(t.structs[0].fields.len(), 1);
    assert_eq!(t.spawns.len(), 1);
}

/// Payloads that would fire R/P rules if treated as code.
const STRUCTURAL: &[&str] = &[
    "s.spawn(move || rng.sample(d))",
    "thread::spawn(|| x.gen())",
    "split_seed(m, 1); split_seed(m, 1)",
    "rng_from_seed(42)",
    "const MASTER_SEED: u64 = 7;",
    "rng.gen_range(0..9)",
];

/// Embeds `payload` where it must be inert. Contexts mirror
/// `proptest_lexer.rs`: plain strings, raw strings, comments, doc
/// comments, nested block comments.
fn embed(context: usize, payload: &str) -> String {
    match context {
        0 => format!("pub fn f() -> String {{\n    \"{payload}\".to_string()\n}}\n"),
        1 => format!("pub fn f() -> &'static str {{\n    r#\"{payload}\"#\n}}\n"),
        2 => format!("pub fn f() -> &'static str {{\n    r##\"{payload}\"##\n}}\n"),
        3 => format!("// {payload}\npub fn f() {{}}\n"),
        4 => format!("/* {payload} */\npub fn f() {{}}\n"),
        5 => format!("/// {payload}\npub fn f() {{}}\n"),
        6 => format!("/* outer /* {payload} */ still a comment */\npub fn f() {{}}\n"),
        _ => format!("pub const C: &str = \"prefix {payload} suffix\";\n"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 512, ..ProptestConfig::default() })]

    #[test]
    fn spawn_sample_split_seed_in_literals_never_flag(
        picks in collection::vec((0usize..8, 0usize..STRUCTURAL.len()), 1..=4),
    ) {
        for (context, which) in picks {
            let source = embed(context, STRUCTURAL[which]);
            let (diags, _) = lint_source(&lib_crate(), "src/p.rs", &source);
            prop_assert!(
                diags.is_empty(),
                "context {} flagged inert text: {:?}\nsource:\n{}",
                context,
                diags,
                source
            );
        }
    }

    #[test]
    fn tree_build_never_panics_on_arbitrary_brace_soup(
        tokens in collection::vec(0usize..12, 0..64),
    ) {
        // Fuzz the skeleton builder with unbalanced/odd token streams
        // assembled from the vocabulary the tree layer cares about.
        const VOCAB: [&str; 12] = [
            "fn", "struct", "spawn", "{", "}", "(", ")", "|", "||",
            "move", "f", ";",
        ];
        let src: String = tokens
            .iter()
            .map(|t| VOCAB[*t])
            .collect::<Vec<_>>()
            .join(" ");
        let lexed = lex(&src);
        let t = tree::build(&lexed.tokens);
        // Sanity: every recorded span stays inside the token stream.
        for f in &t.fns {
            prop_assert!(f.body.end <= lexed.tokens.len());
        }
        for s in &t.spawns {
            prop_assert!(s.body.end <= lexed.tokens.len());
        }
    }
}
