//! Fixture corpus: each seeded-violation fixture must report exactly its
//! rule, every clean fixture must report nothing, and the `qni-lint`
//! binary must exit nonzero on the violations and zero on the clean set.

use qni_lint::config::{CrateConfig, FamilySet};
use qni_lint::engine::lint_source;
use qni_lint::{Diagnostic, RuleId};
use std::path::Path;

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

fn lint_fixture(name: &str) -> (Vec<Diagnostic>, usize) {
    let krate = CrateConfig {
        name: "fixture",
        src: "src",
        families: FamilySet::LIBRARY,
    };
    lint_source(&krate, &format!("src/{name}"), &fixture(name))
}

/// The seeded-violation corpus: file → exactly these rules, in order.
const SEEDED: &[(&str, &[RuleId])] = &[
    ("d001_wall_clock.rs", &[RuleId::D001]),
    ("d002_entropy.rs", &[RuleId::D002]),
    ("d003_hash_iteration.rs", &[RuleId::D003]),
    ("d003_for_loop.rs", &[RuleId::D003]),
    ("n001_float_eq.rs", &[RuleId::N001]),
    ("n002_partial_cmp.rs", &[RuleId::N002]),
    ("e001_unwrap.rs", &[RuleId::E001]),
    ("e002_expect.rs", &[RuleId::E002]),
    ("e003_panic.rs", &[RuleId::E003]),
    ("r001_unseeded_rng.rs", &[RuleId::R001]),
    ("r002_stream_alias.rs", &[RuleId::R002]),
    ("r003_literal_seed.rs", &[RuleId::R003, RuleId::R003]),
    ("p001_draw_in_spawn.rs", &[RuleId::P001]),
    ("p002_unordered_reduce.rs", &[RuleId::P002]),
    ("f001_unfingerprinted_field.rs", &[RuleId::F001]),
    ("l001_malformed.rs", &[RuleId::E001, RuleId::L001]),
    ("l002_stale.rs", &[RuleId::L002]),
];

const CLEAN: &[&str] = &[
    "clean_sentinels.rs",
    "clean_strings_and_comments.rs",
    "clean_test_module.rs",
    "clean_reviewed_allow.rs",
    "clean_seed_flow.rs",
    "clean_fingerprint.rs",
];

#[test]
fn every_rule_has_a_fixture_that_triggers_it() {
    let mut covered: Vec<RuleId> = SEEDED.iter().flat_map(|(_, r)| r.iter().copied()).collect();
    covered.sort();
    covered.dedup();
    assert_eq!(covered, RuleId::ALL, "rule without a seeded fixture");
}

#[test]
fn seeded_fixtures_report_exactly_their_rule() {
    for (name, want) in SEEDED {
        let (diags, _) = lint_fixture(name);
        let mut got: Vec<RuleId> = diags.iter().map(|d| d.rule).collect();
        got.sort();
        assert_eq!(&got, want, "{name}: {diags:?}");
    }
}

#[test]
fn clean_fixtures_report_nothing() {
    for name in CLEAN {
        let (diags, _) = lint_fixture(name);
        assert!(diags.is_empty(), "{name}: {diags:?}");
    }
}

#[test]
fn reviewed_allow_counts_as_a_used_suppression() {
    let (diags, used) = lint_fixture("clean_reviewed_allow.rs");
    assert!(diags.is_empty(), "{diags:?}");
    assert_eq!(used, 1);
}

#[test]
fn diagnostics_point_at_the_seeded_line() {
    let (diags, _) = lint_fixture("d001_wall_clock.rs");
    assert_eq!(diags.len(), 1);
    // The `Instant::now()` call sits on line 4 of the fixture.
    assert_eq!(diags[0].line, 4, "{:?}", diags[0]);
    assert!(diags[0].snippet.contains("Instant::now"));
}

#[test]
fn new_rule_diagnostics_point_at_the_seeded_lines() {
    // (fixture, rule, expected line, snippet substring) — the exact
    // file:line contract for every flow-aware rule.
    let expect: &[(&str, RuleId, usize, &str)] = &[
        ("r001_unseeded_rng.rs", RuleId::R001, 5, "rng_from_seed"),
        (
            "r002_stream_alias.rs",
            RuleId::R002,
            6,
            "split_seed(master_seed, 1)",
        ),
        ("r003_literal_seed.rs", RuleId::R003, 5, "DEFAULT_SEED"),
        ("r003_literal_seed.rs", RuleId::R003, 8, "rng_from_seed(42)"),
        ("p001_draw_in_spawn.rs", RuleId::P001, 9, "rng.sample"),
        ("p002_unordered_reduce.rs", RuleId::P002, 9, "total += v"),
        ("f001_unfingerprinted_field.rs", RuleId::F001, 8, "retries"),
    ];
    for (name, rule, line, snippet) in expect {
        let (diags, _) = lint_fixture(name);
        let hit = diags
            .iter()
            .find(|d| d.rule == *rule && d.line == *line)
            .unwrap_or_else(|| panic!("{name}: no {rule} at line {line}: {diags:?}"));
        assert!(
            hit.snippet.contains(snippet),
            "{name}: snippet {:?} lacks {snippet:?}",
            hit.snippet
        );
    }
}

/// Runs the `qni-lint` binary against a throwaway workspace containing
/// one source file; returns (exit code, stdout).
fn run_bin_on(source: &str) -> (i32, String) {
    let dir = std::env::temp_dir().join(format!(
        "qni-lint-fixture-{}-{:p}",
        std::process::id(),
        &source
    ));
    let src = dir.join("crates/core/src");
    std::fs::create_dir_all(&src).expect("mkdir");
    std::fs::write(dir.join("Cargo.toml"), "[workspace]\n").expect("write manifest");
    std::fs::write(src.join("lib.rs"), source).expect("write source");
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_qni-lint"))
        .args(["--root", dir.to_str().expect("utf-8 tmp path")])
        .output()
        .expect("spawn qni-lint");
    std::fs::remove_dir_all(&dir).ok();
    (
        out.status.code().expect("exit code"),
        String::from_utf8_lossy(&out.stdout).into_owned(),
    )
}

#[test]
fn binary_exits_nonzero_on_each_seeded_violation() {
    for (name, want) in SEEDED {
        let (code, stdout) = run_bin_on(&fixture(name));
        assert_eq!(code, 1, "{name}: expected failing exit\n{stdout}");
        assert!(
            stdout.contains(want[0].as_str()),
            "{name}: report does not mention {}\n{stdout}",
            want[0]
        );
    }
}

#[test]
fn binary_exits_zero_on_clean_fixtures() {
    for name in CLEAN {
        let (code, stdout) = run_bin_on(&fixture(name));
        assert_eq!(code, 0, "{name}: expected clean exit\n{stdout}");
    }
}
