//! Property test: forbidden patterns embedded in string literals, raw
//! strings, chars, or comments are inert — the lexer must never let a
//! rule fire on text that is not code.

use proptest::prelude::*;
use qni_lint::config::{CrateConfig, FamilySet};
use qni_lint::engine::lint_source;

/// Rule-triggering snippets (each would fire if lexed as code).
const FORBIDDEN: &[&str] = &[
    "Instant::now()",
    "SystemTime::now()",
    "thread_rng()",
    "OsRng.fill_bytes(buf)",
    "x.unwrap()",
    "x.expect(\\\"msg\\\")",
    "panic!(oops)",
    "a.partial_cmp(&b).unwrap()",
    "a == 1.5",
    "qni-lint: allow(QNI-E001)",
];

/// Embeds `payload` in a non-code context, yielding a complete source
/// file that must lint clean. Escapes in `FORBIDDEN` are written for the
/// plain-string context; raw-string contexts strip the backslashes.
fn embed(context: usize, payload: &str) -> String {
    let raw = payload.replace('\\', "");
    match context {
        0 => format!("pub fn f() -> &'static str {{\n    \"{payload}\"\n}}\n"),
        1 => format!("pub fn f() -> &'static str {{\n    r#\"{raw}\"#\n}}\n"),
        2 => format!("pub fn f() -> &'static str {{\n    r##\"{raw}\"##\n}}\n"),
        3 => format!("// {raw}\npub fn f() {{}}\n"),
        4 => format!("/* {raw} */\npub fn f() {{}}\n"),
        5 => format!("/// {raw}\npub fn f() {{}}\n"),
        6 => format!("/* outer /* {raw} */ still a comment */\npub fn f() {{}}\n"),
        _ => format!("pub const C: &str = \"prefix {payload} suffix\";\n"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 512, ..ProptestConfig::default() })]

    #[test]
    fn forbidden_text_in_literals_and_comments_never_flags(
        picks in collection::vec((0usize..8, 0usize..FORBIDDEN.len()), 1..=4),
    ) {
        let krate = CrateConfig {
            name: "fixture",
            src: "src",
            families: FamilySet::LIBRARY,
        };
        for (context, which) in picks {
            // A directive inside a live (non-doc) comment is not inert —
            // comments are exactly where directives live — so route the
            // directive payload to a string context there.
            let payload = FORBIDDEN[which];
            let context = if payload.contains("qni-lint") && matches!(context, 3 | 4 | 6) {
                context % 3
            } else {
                context
            };
            let source = embed(context, payload);
            let (diags, _) = lint_source(&krate, "src/p.rs", &source);
            prop_assert!(
                diags.is_empty(),
                "context {} flagged inert text: {:?}\nsource:\n{}",
                context,
                diags,
                source
            );
        }
    }
}
