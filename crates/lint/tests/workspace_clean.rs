//! The workspace at HEAD lints clean: the acceptance gate for the rule
//! catalog and the reviewed allowlist. A regression here means either a
//! new violation landed, a directive went stale, or suppressions grew
//! past the checked-in `lint.toml` budget.

use qni_lint::budget::SuppressionBudget;
use qni_lint::rules::RuleId;
use std::path::Path;

fn workspace_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint has a workspace root two levels up")
}

#[test]
fn workspace_at_head_has_zero_violations() {
    let report = qni_lint::lint_workspace(workspace_root()).expect("lint run");
    assert!(
        report.files_scanned > 50,
        "scanned only {} files — wrong root?",
        report.files_scanned
    );
    assert!(
        report.diagnostics.is_empty(),
        "workspace is not lint-clean:\n{}",
        report.render_human()
    );
}

#[test]
fn workspace_at_head_has_zero_flow_rule_violations() {
    // The R/P/F families are pinned explicitly: a diagnostics.is_empty()
    // regression names the offender, but this test documents that the
    // *flow* contract — seed derivation, draw-free spawns, fingerprint
    // coverage — holds at HEAD, not merely the token-level one.
    let report = qni_lint::lint_workspace(workspace_root()).expect("lint run");
    let flow: Vec<_> = report
        .diagnostics
        .iter()
        .filter(|d| matches!(d.rule.family(), 'R' | 'P' | 'F'))
        .collect();
    assert!(flow.is_empty(), "flow-rule violations at HEAD: {flow:?}");
}

#[test]
fn suppressions_stay_inside_the_checked_in_budget() {
    let root = workspace_root();
    let budget = SuppressionBudget::load(root)
        .expect("lint.toml parses")
        .expect("lint.toml exists at the workspace root");
    let report = qni_lint::lint_workspace(root).expect("lint run");
    let over = budget.check(&report);
    assert!(
        over.is_empty(),
        "suppressions exceed the lint.toml budget:\n{}",
        over.iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    // The budget must stay an inventory, not a wishlist: every budgeted
    // rule's directives are actually in use (a ceiling with zero usage
    // is a stale entry someone forgot to lower).
    for rule in RuleId::ALL {
        let max = budget.max_for(rule);
        if max == 0 {
            continue;
        }
        let used = report
            .suppressions_by_rule
            .iter()
            .find(|s| s.rule == rule)
            .map(|s| s.directives)
            .unwrap_or(0);
        assert!(
            used > 0,
            "{rule}: budget {max} but zero directives in use — lower or remove the entry"
        );
    }
}
