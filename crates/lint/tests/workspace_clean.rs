//! The workspace at HEAD lints clean: the acceptance gate for the rule
//! catalog and the reviewed allowlist. A regression here means either a
//! new violation landed or a directive went stale.

use std::path::Path;

#[test]
fn workspace_at_head_has_zero_violations() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint has a workspace root two levels up");
    let report = qni_lint::lint_workspace(root).expect("lint run");
    assert!(
        report.files_scanned > 50,
        "scanned only {} files — wrong root?",
        report.files_scanned
    );
    assert!(
        report.diagnostics.is_empty(),
        "workspace is not lint-clean:\n{}",
        report.render_human()
    );
}
