//! Property-based tests of model-layer invariants.

use proptest::prelude::*;
use qni_model::constraints::validate;
use qni_model::ids::{QueueId, StateId, TaskId};
use qni_model::log::EventLogBuilder;

/// Strategy: a random one-queue schedule built directly from service and
/// interarrival gaps (always valid by construction).
fn gapped_schedule() -> impl Strategy<Value = (Vec<f64>, Vec<f64>)> {
    let n = 1usize..12;
    n.prop_flat_map(|n| {
        (
            prop::collection::vec(0.01f64..2.0, n), // Interarrival gaps.
            prop::collection::vec(0.0f64..2.0, n),  // Service times.
        )
    })
}

/// Builds a valid single-queue log from gaps via the Lindley recursion.
fn build_log(gaps: &[f64], services: &[f64]) -> qni_model::log::EventLog {
    let mut builder = EventLogBuilder::new(2, StateId(0));
    let mut arrivals = Vec::with_capacity(gaps.len());
    let mut t = 0.0;
    for g in gaps {
        t += g;
        arrivals.push(t);
    }
    let mut prev_dep: f64 = 0.0;
    for (i, &a) in arrivals.iter().enumerate() {
        let begin = a.max(prev_dep);
        let d = begin + services[i];
        builder
            .add_task(a, &[(StateId(1), QueueId(1), a, d)])
            .expect("valid task");
        prev_dep = d;
    }
    builder.build().expect("buildable")
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn constructed_logs_validate((gaps, services) in gapped_schedule()) {
        let log = build_log(&gaps, &services);
        prop_assert!(validate(&log).is_ok());
        // Derived services equal the generating ones.
        let q1: Vec<_> = log.events_at_queue(QueueId(1)).to_vec();
        for (i, &e) in q1.iter().enumerate() {
            prop_assert!((log.service_time(e) - services[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn serde_round_trip_preserves_log((gaps, services) in gapped_schedule()) {
        let log = build_log(&gaps, &services);
        let json = serde_json::to_string(&log).expect("serialize");
        let back: qni_model::log::EventLog =
            serde_json::from_str(&json).expect("deserialize");
        prop_assert_eq!(log.num_events(), back.num_events());
        for e in log.event_ids() {
            prop_assert_eq!(log.event(e), back.event(e));
            prop_assert_eq!(log.rho(e), back.rho(e));
            prop_assert_eq!(log.pi(e), back.pi(e));
        }
    }

    #[test]
    fn corruption_is_always_detected(
        (gaps, services) in gapped_schedule(),
        which in 0usize..3,
        bump in 0.5f64..5.0,
    ) {
        // Corrupt one time by a large amount; the validator must notice
        // (unless the log has a single task and the corruption hits the
        // final departure, which has slack upward).
        let mut log = build_log(&gaps, &services);
        let n = log.num_tasks();
        if n < 2 {
            return Ok(());
        }
        let k = TaskId::from_index(which % n);
        let events: Vec<_> = log.task_events(k).to_vec();
        let e = events[1];
        match which % 3 {
            0 => {
                // Move an arrival far ahead of its own departure.
                let d = log.departure(e);
                log.set_transition_time(e, d + bump);
            }
            1 => {
                // Move a final departure before its arrival.
                let a = log.arrival(e);
                log.set_final_departure(e, a - bump);
            }
            _ => {
                // Break the q0 entry order (if there is an earlier task).
                let a = log.arrival(e);
                log.set_transition_time(e, (a - 100.0 * bump).max(-1.0));
            }
        }
        prop_assert!(validate(&log).is_err());
    }

    #[test]
    fn queue_averages_match_manual((gaps, services) in gapped_schedule()) {
        let log = build_log(&gaps, &services);
        let avg = log.queue_averages();
        let mean_s: f64 = services.iter().sum::<f64>() / services.len() as f64;
        prop_assert!((avg[1].mean_service - mean_s).abs() < 1e-9);
        prop_assert_eq!(avg[1].count, services.len());
    }
}
