//! The queueing network: queue metadata plus the routing FSM.

use crate::error::ModelError;
use crate::fsm::Fsm;
use crate::ids::QueueId;
use qni_stats::distributions::ServiceDistribution;
use serde::{Deserialize, Serialize};

/// Metadata for one queue.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QueueInfo {
    /// Human-readable name.
    pub name: String,
    /// Service-time distribution. Exponential for M/M/1 queues.
    pub service: ServiceDistribution,
}

impl QueueInfo {
    /// Creates queue metadata.
    pub fn new(name: impl Into<String>, service: ServiceDistribution) -> Self {
        QueueInfo {
            name: name.into(),
            service,
        }
    }
}

/// A network of FIFO single-server queues with FSM routing.
///
/// Queue 0 is always the virtual initial queue `q0`; its "service"
/// distribution is the system interarrival law, so for an M/M/1 network
/// `q0` is exponential with the arrival rate λ.
///
/// # Examples
///
/// ```
/// use qni_model::network::QueueingNetwork;
/// use qni_model::fsm::Fsm;
/// use qni_model::ids::QueueId;
///
/// let fsm = Fsm::linear(&[QueueId(1)]).unwrap();
/// let net = QueueingNetwork::mm1(2.0, &[("server", 5.0)], fsm).unwrap();
/// assert_eq!(net.arrival_rate().unwrap(), 2.0);
/// assert_eq!(net.service_rate(QueueId(1)).unwrap(), 5.0);
/// ```
#[derive(Debug, Clone)]
pub struct QueueingNetwork {
    queues: Vec<QueueInfo>,
    fsm: Fsm,
}

impl QueueingNetwork {
    /// Builds a network from explicit queue metadata (`q0` excluded; it is
    /// created internally from `arrival`).
    pub fn new(
        arrival: ServiceDistribution,
        queues: Vec<QueueInfo>,
        fsm: Fsm,
    ) -> Result<Self, ModelError> {
        let mut all = Vec::with_capacity(queues.len() + 1);
        all.push(QueueInfo::new("q0(arrivals)", arrival));
        all.extend(queues);
        // Every queue the FSM can emit must exist.
        for s in 0..fsm.num_states() {
            for &(q, _) in fsm.emissions_from(crate::ids::StateId::from_index(s)) {
                if q.index() >= all.len() {
                    return Err(ModelError::UnknownQueue(q));
                }
            }
        }
        Ok(QueueingNetwork { queues: all, fsm })
    }

    /// Builds an M/M/1 network: Poisson arrivals at rate `lambda`,
    /// exponential service at the given named rates.
    pub fn mm1(lambda: f64, rates: &[(&str, f64)], fsm: Fsm) -> Result<Self, ModelError> {
        let arrival = ServiceDistribution::exponential(lambda)?;
        let queues = rates
            .iter()
            .map(|(name, r)| Ok(QueueInfo::new(*name, ServiceDistribution::exponential(*r)?)))
            .collect::<Result<Vec<_>, ModelError>>()?;
        QueueingNetwork::new(arrival, queues, fsm)
    }

    /// Number of queues including `q0`.
    pub fn num_queues(&self) -> usize {
        self.queues.len()
    }

    /// The routing FSM.
    pub fn fsm(&self) -> &Fsm {
        &self.fsm
    }

    /// Queue metadata.
    pub fn queue(&self, q: QueueId) -> Result<&QueueInfo, ModelError> {
        self.queues
            .get(q.index())
            .ok_or(ModelError::UnknownQueue(q))
    }

    /// Human-readable queue name.
    pub fn queue_name(&self, q: QueueId) -> &str {
        self.queues
            .get(q.index())
            .map_or("<unknown>", |i| i.name.as_str())
    }

    /// Service distribution of a queue.
    pub fn service(&self, q: QueueId) -> Result<&ServiceDistribution, ModelError> {
        Ok(&self.queue(q)?.service)
    }

    /// Exponential service rate of a queue; errors for non-exponential
    /// queues (the Gibbs sampler requires M/M/1).
    pub fn service_rate(&self, q: QueueId) -> Result<f64, ModelError> {
        match &self.queue(q)?.service {
            ServiceDistribution::Exponential(e) => Ok(e.rate()),
            _ => Err(ModelError::BadQueueParameter {
                queue: q,
                what: "queue service is not exponential",
            }),
        }
    }

    /// System arrival rate λ (= `q0`'s exponential rate).
    pub fn arrival_rate(&self) -> Result<f64, ModelError> {
        self.service_rate(QueueId::INITIAL)
    }

    /// All exponential rates indexed by queue (including `q0` = λ).
    pub fn rates(&self) -> Result<Vec<f64>, ModelError> {
        (0..self.num_queues())
            .map(|i| self.service_rate(QueueId::from_index(i)))
            .collect()
    }

    /// Replaces the service distribution of a queue with an exponential of
    /// the given rate.
    pub fn set_exponential_rate(&mut self, q: QueueId, rate: f64) -> Result<(), ModelError> {
        if q.index() >= self.queues.len() {
            return Err(ModelError::UnknownQueue(q));
        }
        self.queues[q.index()].service = ServiceDistribution::exponential(rate)?;
        Ok(())
    }

    /// Replaces the service distribution of a queue.
    pub fn set_service(
        &mut self,
        q: QueueId,
        service: ServiceDistribution,
    ) -> Result<(), ModelError> {
        if q.index() >= self.queues.len() {
            return Err(ModelError::UnknownQueue(q));
        }
        self.queues[q.index()].service = service;
        Ok(())
    }

    /// Whether every queue (including arrivals) is exponential, i.e. the
    /// network is M/M/1 and the Gibbs sampler applies exactly.
    pub fn is_mm1(&self) -> bool {
        self.queues
            .iter()
            .all(|q| matches!(q.service, ServiceDistribution::Exponential(_)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::StateId;

    fn tiny() -> QueueingNetwork {
        let fsm = Fsm::linear(&[QueueId(1), QueueId(2)]).unwrap();
        QueueingNetwork::mm1(10.0, &[("a", 5.0), ("b", 7.0)], fsm).unwrap()
    }

    #[test]
    fn mm1_constructor() {
        let net = tiny();
        assert_eq!(net.num_queues(), 3);
        assert_eq!(net.arrival_rate().unwrap(), 10.0);
        assert_eq!(net.service_rate(QueueId(2)).unwrap(), 7.0);
        assert_eq!(net.queue_name(QueueId(1)), "a");
        assert!(net.is_mm1());
        assert_eq!(net.rates().unwrap(), vec![10.0, 5.0, 7.0]);
    }

    #[test]
    fn fsm_emission_must_reference_existing_queue() {
        let fsm = Fsm::linear(&[QueueId(5)]).unwrap();
        let err = QueueingNetwork::mm1(1.0, &[("only", 2.0)], fsm);
        assert!(matches!(err, Err(ModelError::UnknownQueue(QueueId(5)))));
    }

    #[test]
    fn set_rate_and_non_mm1_detection() {
        let mut net = tiny();
        net.set_exponential_rate(QueueId(1), 9.0).unwrap();
        assert_eq!(net.service_rate(QueueId(1)).unwrap(), 9.0);
        net.set_service(QueueId(1), ServiceDistribution::deterministic(0.1).unwrap())
            .unwrap();
        assert!(!net.is_mm1());
        assert!(net.service_rate(QueueId(1)).is_err());
        assert!(net.rates().is_err());
    }

    #[test]
    fn unknown_queue_errors() {
        let net = tiny();
        assert!(net.queue(QueueId(99)).is_err());
        let mut net = tiny();
        assert!(net.set_exponential_rate(QueueId(99), 1.0).is_err());
    }

    #[test]
    fn fsm_accessor_round_trip() {
        let net = tiny();
        assert_eq!(net.fsm().initial(), StateId(0));
    }
}
