//! The event log: a flat arena of events with queue- and task-order
//! pointers.
//!
//! Every quantity the sampler and estimators need — service time, waiting
//! time, the within-queue predecessor ρ(e) and within-task predecessor
//! π(e) — is derived from this structure. The log stores only arrival and
//! departure times; service times are always computed on demand from
//! `s_e = d_e − max(a_e, d_{ρ(e)})`, so mutating a time can never leave a
//! stale cached value behind.

use crate::error::ModelError;
use crate::event::Event;
use crate::ids::{EventId, QueueId, StateId, TaskId};
use serde::{Deserialize, Serialize};

/// An event log over a fixed set of tasks and queues.
///
/// Construct with [`EventLogBuilder`]. The *arrival order* of events at
/// each queue is fixed at construction time; the Gibbs sampler relies on
/// the paper's assumption that this order is known (via event counters)
/// and never reorders events.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EventLog {
    events: Vec<Event>,
    /// Per queue: events in arrival order.
    queue_order: Vec<Vec<EventId>>,
    /// Per task: events in task order (first entry is the initial event).
    task_order: Vec<Vec<EventId>>,
    /// Position of each event within its queue's order.
    pos_in_queue: Vec<u32>,
    /// Position of each event within its task's order.
    pos_in_task: Vec<u32>,
}

impl EventLog {
    /// Number of events (including initial events).
    pub fn num_events(&self) -> usize {
        self.events.len()
    }

    /// Number of tasks.
    pub fn num_tasks(&self) -> usize {
        self.task_order.len()
    }

    /// Number of queues this log was built over (including `q0`).
    pub fn num_queues(&self) -> usize {
        self.queue_order.len()
    }

    /// The event record.
    pub fn event(&self, e: EventId) -> &Event {
        &self.events[e.index()]
    }

    /// Arrival time of `e`.
    #[inline]
    pub fn arrival(&self, e: EventId) -> f64 {
        self.events[e.index()].arrival
    }

    /// Departure time of `e`.
    #[inline]
    pub fn departure(&self, e: EventId) -> f64 {
        self.events[e.index()].departure
    }

    /// Queue of `e`.
    #[inline]
    pub fn queue_of(&self, e: EventId) -> QueueId {
        self.events[e.index()].queue
    }

    /// Task of `e`.
    #[inline]
    pub fn task_of(&self, e: EventId) -> TaskId {
        self.events[e.index()].task
    }

    /// FSM state of `e`.
    #[inline]
    pub fn state_of(&self, e: EventId) -> StateId {
        self.events[e.index()].state
    }

    /// Position of `e` within its queue's arrival order (0-based): the
    /// index such that `events_at_queue(queue_of(e))[pos] == e`. Fixed at
    /// construction except across [`EventLog::reassign_queue`] calls.
    pub fn queue_position(&self, e: EventId) -> usize {
        self.pos_in_queue[e.index()] as usize
    }

    /// Within-queue predecessor ρ(e): the previous arrival at `e`'s queue.
    pub fn rho(&self, e: EventId) -> Option<EventId> {
        let pos = self.pos_in_queue[e.index()] as usize;
        if pos == 0 {
            None
        } else {
            Some(self.queue_order[self.queue_of(e).index()][pos - 1])
        }
    }

    /// Within-queue successor ρ⁻¹(e): the next arrival at `e`'s queue.
    pub fn rho_inv(&self, e: EventId) -> Option<EventId> {
        let order = &self.queue_order[self.queue_of(e).index()];
        let pos = self.pos_in_queue[e.index()] as usize;
        order.get(pos + 1).copied()
    }

    /// Within-task predecessor π(e): the task's previous event.
    pub fn pi(&self, e: EventId) -> Option<EventId> {
        let pos = self.pos_in_task[e.index()] as usize;
        if pos == 0 {
            None
        } else {
            Some(self.task_order[self.task_of(e).index()][pos - 1])
        }
    }

    /// Within-task successor π⁻¹(e): the task's next event.
    pub fn pi_inv(&self, e: EventId) -> Option<EventId> {
        let order = &self.task_order[self.task_of(e).index()];
        let pos = self.pos_in_task[e.index()] as usize;
        order.get(pos + 1).copied()
    }

    /// Whether `e` is a system-entry event at `q0`.
    pub fn is_initial_event(&self, e: EventId) -> bool {
        self.pos_in_task[e.index()] == 0
    }

    /// Whether `e` is the last event of its task.
    pub fn is_final_event(&self, e: EventId) -> bool {
        let order = &self.task_order[self.task_of(e).index()];
        self.pos_in_task[e.index()] as usize == order.len() - 1
    }

    /// Time service began: `max(a_e, d_{ρ(e)})`.
    pub fn begin_service(&self, e: EventId) -> f64 {
        let a = self.arrival(e);
        match self.rho(e) {
            Some(p) => a.max(self.departure(p)),
            None => a,
        }
    }

    /// Service time `s_e = d_e − max(a_e, d_{ρ(e)})`.
    pub fn service_time(&self, e: EventId) -> f64 {
        self.departure(e) - self.begin_service(e)
    }

    /// Waiting time `w_e = max(0, d_{ρ(e)} − a_e)`.
    pub fn waiting_time(&self, e: EventId) -> f64 {
        (self.begin_service(e) - self.arrival(e)).max(0.0)
    }

    /// Response time at this queue: `d_e − a_e = w_e + s_e`.
    pub fn response_time(&self, e: EventId) -> f64 {
        self.departure(e) - self.arrival(e)
    }

    /// System entry time of a task (departure of its initial event).
    pub fn task_entry(&self, k: TaskId) -> f64 {
        let first = self.task_order[k.index()][0];
        self.departure(first)
    }

    /// System exit time of a task (departure of its last event).
    pub fn task_exit(&self, k: TaskId) -> f64 {
        let last = *self.task_order[k.index()]
            .last()
            .expect("tasks are non-empty"); // qni-lint: allow(QNI-E002) — TaskLog validates tasks non-empty at construction
        self.departure(last)
    }

    /// End-to-end response time of a task.
    pub fn task_response(&self, k: TaskId) -> f64 {
        self.task_exit(k) - self.task_entry(k)
    }

    /// Events at a queue, in arrival order.
    pub fn events_at_queue(&self, q: QueueId) -> &[EventId] {
        &self.queue_order[q.index()]
    }

    /// Events of a task, in task order (initial event first).
    pub fn task_events(&self, k: TaskId) -> &[EventId] {
        &self.task_order[k.index()]
    }

    /// Iterates over all event ids.
    pub fn event_ids(&self) -> impl Iterator<Item = EventId> + '_ {
        (0..self.events.len()).map(EventId::from_index)
    }

    /// Sets the *transition time* of a non-initial event: its arrival and,
    /// simultaneously, the departure of its within-task predecessor, which
    /// are equal by the deterministic constraint `a_e = d_{π(e)}`.
    ///
    /// # Panics
    ///
    /// Panics if `e` is an initial event (its arrival is pinned at 0; its
    /// departure is owned by the *next* event's transition time).
    pub fn set_transition_time(&mut self, e: EventId, t: f64) {
        let p = self
            .pi(e)
            .expect("set_transition_time requires a within-task predecessor"); // qni-lint: allow(QNI-E002) — documented precondition of this crate-internal setter
        self.events[e.index()].arrival = t;
        self.events[p.index()].departure = t;
    }

    /// Sets the departure of a task's final event (the system exit time).
    ///
    /// # Panics
    ///
    /// Panics if `e` is not the last event of its task — interior
    /// departures are owned by the successor's transition time.
    pub fn set_final_departure(&mut self, e: EventId, t: f64) {
        assert!(
            self.is_final_event(e),
            "set_final_departure requires a final event"
        );
        self.events[e.index()].departure = t;
    }

    /// Moves event `e` to `new_queue`, preserving arrival-sorted order in
    /// both queues.
    ///
    /// This is the structural edit behind Metropolis–Hastings *path*
    /// resampling (the paper's §3 note that unknown FSM paths "can be
    /// resampled by an outer Metropolis-Hastings step"): the caller is
    /// responsible for accepting/rejecting based on the density change
    /// and for feasibility (services at the insertion point must remain
    /// non-negative — see [`crate::constraints::validate`]).
    ///
    /// # Panics
    ///
    /// Panics if `e` is an initial event (q0 membership is structural) or
    /// `new_queue` is `q0` / out of range.
    pub fn reassign_queue(&mut self, e: EventId, new_queue: QueueId) {
        assert!(
            !self.is_initial_event(e),
            "initial events cannot change queue"
        );
        assert!(
            !new_queue.is_initial() && new_queue.index() < self.queue_order.len(),
            "invalid target queue"
        );
        let old_queue = self.queue_of(e);
        if old_queue == new_queue {
            return;
        }
        // Remove from the old order.
        let old_pos = self.pos_in_queue[e.index()] as usize;
        self.queue_order[old_queue.index()].remove(old_pos);
        for (pos, &ev) in self.queue_order[old_queue.index()]
            .iter()
            .enumerate()
            .skip(old_pos)
        {
            self.pos_in_queue[ev.index()] = pos as u32;
        }
        // Insert into the new order by arrival time (ties by departure,
        // then id — the builder's ordering).
        let a = self.arrival(e);
        let d = self.departure(e);
        let order = &self.queue_order[new_queue.index()];
        let ins = order.partition_point(|&o| {
            let oe = &self.events[o.index()];
            (oe.arrival, oe.departure, o) < (a, d, e)
        });
        self.queue_order[new_queue.index()].insert(ins, e);
        for (pos, &ev) in self.queue_order[new_queue.index()]
            .iter()
            .enumerate()
            .skip(ins)
        {
            self.pos_in_queue[ev.index()] = pos as u32;
        }
        self.events[e.index()].queue = new_queue;
    }

    /// Per-queue count and sum of service times — the sufficient
    /// statistics of the exponential M-step. Entry 0 is `q0`, whose
    /// "service" sum is the total of interarrival gaps.
    pub fn service_sufficient_stats(&self) -> Vec<(usize, f64)> {
        let mut stats = vec![(0usize, 0.0f64); self.num_queues()];
        for e in self.event_ids() {
            let q = self.queue_of(e).index();
            stats[q].0 += 1;
            stats[q].1 += self.service_time(e);
        }
        stats
    }

    /// Per-queue mean service and waiting times.
    ///
    /// Queues with no events report `count == 0` and NaN means.
    pub fn queue_averages(&self) -> Vec<QueueAverages> {
        let mut out = Vec::new();
        self.queue_averages_into(&mut out);
        out
    }

    /// [`EventLog::queue_averages`] into a caller-owned buffer, so hot
    /// loops that summarize the log once per sweep allocate nothing in
    /// the steady state. `out` is cleared first; the computed values are
    /// bit-identical to [`EventLog::queue_averages`].
    pub fn queue_averages_into(&self, out: &mut Vec<QueueAverages>) {
        out.clear();
        out.resize(
            self.num_queues(),
            QueueAverages {
                count: 0,
                mean_service: 0.0,
                mean_waiting: 0.0,
            },
        );
        for e in self.event_ids() {
            let a = &mut out[self.queue_of(e).index()];
            a.count += 1;
            a.mean_service += self.service_time(e);
            a.mean_waiting += self.waiting_time(e);
        }
        for a in out.iter_mut() {
            if a.count > 0 {
                a.mean_service /= a.count as f64;
                a.mean_waiting /= a.count as f64;
            } else {
                a.mean_service = f64::NAN;
                a.mean_waiting = f64::NAN;
            }
        }
    }
}

/// Per-queue empirical averages.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueueAverages {
    /// Number of events observed at the queue.
    pub count: usize,
    /// Mean service time (NaN if `count == 0`).
    pub mean_service: f64,
    /// Mean waiting time (NaN if `count == 0`).
    pub mean_waiting: f64,
}

/// Builder for [`EventLog`].
///
/// Add tasks in any order; [`EventLogBuilder::build`] sorts each queue's
/// events by arrival time (ties broken by departure, then insertion order)
/// and wires the ρ/π pointers.
///
/// # Examples
///
/// ```
/// use qni_model::log::EventLogBuilder;
/// use qni_model::ids::{QueueId, StateId};
///
/// let mut b = EventLogBuilder::new(2, StateId(0));
/// // One task entering at t=1.0, visiting queue 1 from 1.0 to 2.5.
/// b.add_task(1.0, &[(StateId(1), QueueId(1), 1.0, 2.5)]).unwrap();
/// let log = b.build().unwrap();
/// assert_eq!(log.num_events(), 2); // initial event + one visit.
/// ```
#[derive(Debug)]
pub struct EventLogBuilder {
    num_queues: usize,
    initial_state: StateId,
    events: Vec<Event>,
    task_order: Vec<Vec<EventId>>,
}

impl EventLogBuilder {
    /// Creates a builder for a network with `num_queues` queues (including
    /// `q0`). `initial_state` is recorded on each task's entry event.
    pub fn new(num_queues: usize, initial_state: StateId) -> Self {
        EventLogBuilder {
            num_queues,
            initial_state,
            events: Vec::new(),
            task_order: Vec::new(),
        }
    }

    /// Adds a task that enters the system at `entry` and performs the
    /// given `(state, queue, arrival, departure)` visits in task order.
    ///
    /// The entry event at `q0` (arrival 0, departure `entry`) is created
    /// automatically. Errors if the visit list is empty or references an
    /// out-of-range queue.
    pub fn add_task(
        &mut self,
        entry: f64,
        visits: &[(StateId, QueueId, f64, f64)],
    ) -> Result<TaskId, ModelError> {
        let task = TaskId::from_index(self.task_order.len());
        if visits.is_empty() {
            return Err(ModelError::EmptyTask(task));
        }
        for &(_, q, _, _) in visits {
            if q.index() >= self.num_queues {
                return Err(ModelError::UnknownQueue(q));
            }
            if q.is_initial() {
                return Err(ModelError::BadQueueParameter {
                    queue: q,
                    what: "task visits may not target the virtual queue q0",
                });
            }
        }
        let mut order = Vec::with_capacity(visits.len() + 1);
        let init_id = EventId::from_index(self.events.len());
        self.events.push(Event {
            task,
            state: self.initial_state,
            queue: QueueId::INITIAL,
            arrival: 0.0,
            departure: entry,
        });
        order.push(init_id);
        for &(state, queue, arrival, departure) in visits {
            let id = EventId::from_index(self.events.len());
            self.events.push(Event {
                task,
                state,
                queue,
                arrival,
                departure,
            });
            order.push(id);
        }
        self.task_order.push(order);
        Ok(task)
    }

    /// Finalizes the log: sorts per-queue arrival orders and computes
    /// positional indices.
    pub fn build(self) -> Result<EventLog, ModelError> {
        let mut queue_order: Vec<Vec<EventId>> = vec![Vec::new(); self.num_queues];
        for (i, ev) in self.events.iter().enumerate() {
            queue_order[ev.queue.index()].push(EventId::from_index(i));
        }
        for order in &mut queue_order {
            order.sort_by(|&a, &b| {
                let ea = &self.events[a.index()];
                let eb = &self.events[b.index()];
                ea.arrival
                    .total_cmp(&eb.arrival)
                    .then(ea.departure.total_cmp(&eb.departure))
                    .then(a.cmp(&b))
            });
        }
        let mut pos_in_queue = vec![0u32; self.events.len()];
        for order in &queue_order {
            for (pos, &e) in order.iter().enumerate() {
                pos_in_queue[e.index()] = pos as u32;
            }
        }
        let mut pos_in_task = vec![0u32; self.events.len()];
        for order in &self.task_order {
            for (pos, &e) in order.iter().enumerate() {
                pos_in_task[e.index()] = pos as u32;
            }
        }
        Ok(EventLog {
            events: self.events,
            queue_order,
            task_order: self.task_order,
            pos_in_queue,
            pos_in_task,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two tasks through a single queue, overlapping so task 1 must wait.
    fn two_task_log() -> EventLog {
        let mut b = EventLogBuilder::new(2, StateId(0));
        // Task 0: enters at 1.0, served 1.0 → 3.0 (service 2.0, no wait).
        b.add_task(1.0, &[(StateId(1), QueueId(1), 1.0, 3.0)])
            .unwrap();
        // Task 1: enters at 2.0, must wait until 3.0, departs 4.0.
        b.add_task(2.0, &[(StateId(1), QueueId(1), 2.0, 4.0)])
            .unwrap();
        b.build().unwrap()
    }

    #[test]
    fn shapes_and_pointers() {
        let log = two_task_log();
        assert_eq!(log.num_events(), 4);
        assert_eq!(log.num_tasks(), 2);
        assert_eq!(log.num_queues(), 2);

        let q1 = log.events_at_queue(QueueId(1));
        assert_eq!(q1.len(), 2);
        let (e0, e1) = (q1[0], q1[1]);
        assert_eq!(log.rho(e0), None);
        assert_eq!(log.rho(e1), Some(e0));
        assert_eq!(log.rho_inv(e0), Some(e1));
        assert_eq!(log.rho_inv(e1), None);

        // π of a first real visit is the initial event.
        let init0 = log.task_events(TaskId(0))[0];
        assert_eq!(log.pi(e0), Some(init0));
        assert_eq!(log.pi_inv(init0), Some(e0));
        assert!(log.is_initial_event(init0));
        assert!(log.is_final_event(e0));
        assert!(!log.is_final_event(init0));
    }

    #[test]
    fn q0_holds_all_initial_events_in_entry_order() {
        let log = two_task_log();
        let q0 = log.events_at_queue(QueueId::INITIAL);
        assert_eq!(q0.len(), 2);
        // Both arrive at 0; ordered by departure (= entry time).
        assert!(log.departure(q0[0]) < log.departure(q0[1]));
        // q0 service times are the interarrival gaps: 1.0 then 1.0.
        assert!((log.service_time(q0[0]) - 1.0).abs() < 1e-12);
        assert!((log.service_time(q0[1]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn service_and_waiting_times() {
        let log = two_task_log();
        let q1 = log.events_at_queue(QueueId(1));
        // First event: no predecessor, service = 2.0, wait = 0.
        assert!((log.service_time(q1[0]) - 2.0).abs() < 1e-12);
        assert!((log.waiting_time(q1[0]) - 0.0).abs() < 1e-12);
        // Second event: arrives at 2.0, predecessor departs 3.0 → waits 1.0,
        // service = 4.0 − 3.0 = 1.0.
        assert!((log.waiting_time(q1[1]) - 1.0).abs() < 1e-12);
        assert!((log.service_time(q1[1]) - 1.0).abs() < 1e-12);
        assert!((log.begin_service(q1[1]) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn task_level_times() {
        let log = two_task_log();
        assert_eq!(log.task_entry(TaskId(1)), 2.0);
        assert_eq!(log.task_exit(TaskId(1)), 4.0);
        assert_eq!(log.task_response(TaskId(1)), 2.0);
    }

    #[test]
    fn set_transition_time_updates_both_sides() {
        let mut log = two_task_log();
        let e = log.events_at_queue(QueueId(1))[1];
        let p = log.pi(e).unwrap();
        log.set_transition_time(e, 2.5);
        assert_eq!(log.arrival(e), 2.5);
        assert_eq!(log.departure(p), 2.5);
    }

    #[test]
    #[should_panic(expected = "within-task predecessor")]
    fn set_transition_time_rejects_initial_events() {
        let mut log = two_task_log();
        let init = log.task_events(TaskId(0))[0];
        log.set_transition_time(init, 1.0);
    }

    #[test]
    fn set_final_departure() {
        let mut log = two_task_log();
        let e = log.events_at_queue(QueueId(1))[1];
        log.set_final_departure(e, 5.0);
        assert_eq!(log.departure(e), 5.0);
    }

    #[test]
    #[should_panic(expected = "final event")]
    fn set_final_departure_rejects_interior_events() {
        let mut log = two_task_log();
        let init = log.task_events(TaskId(0))[0];
        log.set_final_departure(init, 1.0);
    }

    #[test]
    fn sufficient_stats() {
        let log = two_task_log();
        let stats = log.service_sufficient_stats();
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].0, 2); // Two initial events.
        assert!((stats[0].1 - 2.0).abs() < 1e-12); // Gaps 1.0 + 1.0.
        assert_eq!(stats[1].0, 2);
        assert!((stats[1].1 - 3.0).abs() < 1e-12); // Services 2.0 + 1.0.
    }

    #[test]
    fn queue_averages() {
        let log = two_task_log();
        let avg = log.queue_averages();
        assert_eq!(avg[1].count, 2);
        assert!((avg[1].mean_service - 1.5).abs() < 1e-12);
        assert!((avg[1].mean_waiting - 0.5).abs() < 1e-12);
    }

    #[test]
    fn builder_rejects_bad_tasks() {
        let mut b = EventLogBuilder::new(2, StateId(0));
        assert!(matches!(
            b.add_task(0.0, &[]),
            Err(ModelError::EmptyTask(_))
        ));
        assert!(b
            .add_task(0.0, &[(StateId(1), QueueId(7), 0.0, 1.0)])
            .is_err());
        assert!(b
            .add_task(0.0, &[(StateId(1), QueueId::INITIAL, 0.0, 1.0)])
            .is_err());
    }

    #[test]
    fn reassign_queue_moves_between_orders() {
        // Two queues; move task 1's event from queue 1 to queue 2.
        let mut b = EventLogBuilder::new(3, StateId(0));
        b.add_task(1.0, &[(StateId(1), QueueId(1), 1.0, 2.0)])
            .unwrap();
        b.add_task(1.5, &[(StateId(1), QueueId(1), 1.5, 3.0)])
            .unwrap();
        b.add_task(1.2, &[(StateId(1), QueueId(2), 1.2, 1.6)])
            .unwrap();
        let mut log = b.build().unwrap();
        let e = log.task_events(TaskId(1))[1];
        log.reassign_queue(e, QueueId(2));
        assert_eq!(log.queue_of(e), QueueId(2));
        // Queue 1 keeps only task 0's event.
        assert_eq!(log.events_at_queue(QueueId(1)).len(), 1);
        // Queue 2 is ordered by arrival: task 2 (1.2) then task 1 (1.5).
        let q2 = log.events_at_queue(QueueId(2));
        assert_eq!(q2.len(), 2);
        assert_eq!(log.task_of(q2[0]), TaskId(2));
        assert_eq!(log.task_of(q2[1]), TaskId(1));
        assert_eq!(log.rho(e), Some(q2[0]));
        // Positions are consistent after the move.
        for (pos, &ev) in q2.iter().enumerate() {
            assert_eq!(log.rho(ev).is_none(), pos == 0);
        }
        crate::constraints::validate(&log).unwrap();
        // Moving back restores the original shape.
        log.reassign_queue(e, QueueId(1));
        assert_eq!(log.events_at_queue(QueueId(1)).len(), 2);
        assert_eq!(log.events_at_queue(QueueId(2)).len(), 1);
        crate::constraints::validate(&log).unwrap();
    }

    #[test]
    #[should_panic(expected = "initial events")]
    fn reassign_rejects_initial_events() {
        let mut log = two_task_log();
        let init = log.task_events(TaskId(0))[0];
        log.reassign_queue(init, QueueId(1));
    }

    #[test]
    fn consecutive_same_queue_visits() {
        // A task visiting queue 1 twice in a row: π(e2) == ρ(e2).
        let mut b = EventLogBuilder::new(2, StateId(0));
        b.add_task(
            1.0,
            &[
                (StateId(1), QueueId(1), 1.0, 2.0),
                (StateId(1), QueueId(1), 2.0, 3.5),
            ],
        )
        .unwrap();
        let log = b.build().unwrap();
        let q1 = log.events_at_queue(QueueId(1));
        assert_eq!(q1.len(), 2);
        assert_eq!(log.pi(q1[1]), Some(q1[0]));
        assert_eq!(log.rho(q1[1]), Some(q1[0]));
        // Second visit: begin = max(2.0, d_prev=2.0) = 2.0; service 1.5.
        assert!((log.service_time(q1[1]) - 1.5).abs() < 1e-12);
        assert!((log.waiting_time(q1[1]) - 0.0).abs() < 1e-12);
    }
}
