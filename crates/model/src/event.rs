//! The event record: one queue visit by one task.

use crate::ids::{QueueId, StateId, TaskId};
use serde::{Deserialize, Serialize};

/// One event `e = (k_e, σ_e, q_e, a_e, d_e)`: task `k_e` entered FSM state
/// `σ_e`, arrived at queue `q_e` at time `a_e`, waited, was serviced, and
/// departed at time `d_e`.
///
/// Service and waiting times are *derived* quantities — they depend on the
/// departure of the within-queue predecessor — and therefore live on
/// [`crate::log::EventLog`], not here.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Event {
    /// The task that changed state.
    pub task: TaskId,
    /// The FSM state the task entered.
    pub state: StateId,
    /// The queue the task arrived at.
    pub queue: QueueId,
    /// Arrival time at the queue.
    pub arrival: f64,
    /// Departure time from the queue (end of service).
    pub departure: f64,
}

impl Event {
    /// Total time the task spent at this queue (waiting + service).
    pub fn response_time(&self) -> f64 {
        self.departure - self.arrival
    }

    /// Whether this is a system-entry event at the virtual queue `q0`.
    pub fn is_initial(&self) -> bool {
        self.queue.is_initial()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn response_time() {
        let e = Event {
            task: TaskId(0),
            state: StateId(1),
            queue: QueueId(2),
            arrival: 1.5,
            departure: 4.0,
        };
        assert!((e.response_time() - 2.5).abs() < 1e-12);
        assert!(!e.is_initial());
    }

    #[test]
    fn initial_event_detection() {
        let e = Event {
            task: TaskId(0),
            state: StateId(0),
            queue: QueueId::INITIAL,
            arrival: 0.0,
            departure: 3.0,
        };
        assert!(e.is_initial());
    }
}
