//! Validation of the deterministic dependencies of an event log.
//!
//! The paper's Section 3 emphasizes that arrival and departure times carry
//! hard deterministic constraints — `a_e = d_{π(e)}`,
//! `d_e = s_e + max(a_e, d_{ρ(e)})` with `s_e ≥ 0`, FIFO ordering — which
//! the Gibbs sampler must never violate. This module checks them all; it
//! is used by tests, by property-based fuzzing of the sampler, and as a
//! debug assertion hook after every sweep.

use crate::ids::EventId;
use crate::log::EventLog;
use std::fmt;

/// Default absolute tolerance for time comparisons.
pub const DEFAULT_TOL: f64 = 1e-7;

/// A single violated constraint.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Violation {
    /// A time is NaN or infinite.
    NonFiniteTime {
        /// Offending event.
        event: EventId,
    },
    /// An initial event does not arrive at time 0.
    InitialArrivalNotZero {
        /// Offending event.
        event: EventId,
        /// Its recorded arrival.
        arrival: f64,
    },
    /// `a_e ≠ d_{π(e)}`.
    TransitionMismatch {
        /// Offending event.
        event: EventId,
        /// Its arrival.
        arrival: f64,
        /// Predecessor's departure.
        predecessor_departure: f64,
    },
    /// Computed service time is negative.
    NegativeService {
        /// Offending event.
        event: EventId,
        /// The computed service time.
        service: f64,
    },
    /// Arrivals at a queue are out of order.
    ArrivalOrder {
        /// The event arriving earlier than its queue predecessor.
        event: EventId,
    },
    /// Departures at a queue are out of order (violates FIFO).
    DepartureOrder {
        /// The event departing earlier than its queue predecessor.
        event: EventId,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::NonFiniteTime { event } => {
                write!(f, "event {event} has a non-finite time")
            }
            Violation::InitialArrivalNotZero { event, arrival } => {
                write!(f, "initial event {event} arrives at {arrival}, not 0")
            }
            Violation::TransitionMismatch {
                event,
                arrival,
                predecessor_departure,
            } => write!(
                f,
                "event {event}: arrival {arrival} != predecessor departure \
                 {predecessor_departure}"
            ),
            Violation::NegativeService { event, service } => {
                write!(f, "event {event} has negative service time {service}")
            }
            Violation::ArrivalOrder { event } => {
                write!(f, "event {event} arrives before its queue predecessor")
            }
            Violation::DepartureOrder { event } => {
                write!(f, "event {event} departs before its queue predecessor")
            }
        }
    }
}

impl std::error::Error for Violation {}

/// Validates all deterministic constraints with the default tolerance.
pub fn validate(log: &EventLog) -> Result<(), Violation> {
    validate_with_tol(log, DEFAULT_TOL)
}

/// Validates all deterministic constraints with an explicit absolute
/// tolerance.
///
/// Ordering violations are reported before per-event violations: a FIFO
/// departure-order break always implies a negative service time for the
/// later event, and the ordering diagnosis is the more actionable one.
pub fn validate_with_tol(log: &EventLog, tol: f64) -> Result<(), Violation> {
    for q in 0..log.num_queues() {
        let order = log.events_at_queue(crate::ids::QueueId::from_index(q));
        for w in order.windows(2) {
            let (prev, next) = (w[0], w[1]);
            if log.arrival(next) < log.arrival(prev) - tol {
                return Err(Violation::ArrivalOrder { event: next });
            }
            if log.departure(next) < log.departure(prev) - tol {
                return Err(Violation::DepartureOrder { event: next });
            }
        }
    }
    for e in log.event_ids() {
        let a = log.arrival(e);
        let d = log.departure(e);
        if !a.is_finite() || !d.is_finite() {
            return Err(Violation::NonFiniteTime { event: e });
        }
        if log.is_initial_event(e) {
            if a != 0.0 {
                return Err(Violation::InitialArrivalNotZero {
                    event: e,
                    arrival: a,
                });
            }
        } else {
            let p = log.pi(e).expect("non-initial events have a predecessor"); // qni-lint: allow(QNI-E002) — loop skips initial events, so pi(e) exists
            let dp = log.departure(p);
            if (a - dp).abs() > tol {
                return Err(Violation::TransitionMismatch {
                    event: e,
                    arrival: a,
                    predecessor_departure: dp,
                });
            }
        }
        let s = log.service_time(e);
        if s < -tol {
            return Err(Violation::NegativeService {
                event: e,
                service: s,
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{QueueId, StateId, TaskId};
    use crate::log::EventLogBuilder;

    fn valid_log() -> EventLog {
        let mut b = EventLogBuilder::new(3, StateId(0));
        b.add_task(
            1.0,
            &[
                (StateId(1), QueueId(1), 1.0, 2.0),
                (StateId(2), QueueId(2), 2.0, 2.75),
            ],
        )
        .unwrap();
        b.add_task(
            1.5,
            &[
                (StateId(1), QueueId(1), 1.5, 3.0),
                (StateId(2), QueueId(2), 3.0, 4.0),
            ],
        )
        .unwrap();
        b.build().unwrap()
    }

    #[test]
    fn valid_log_passes() {
        assert_eq!(validate(&valid_log()), Ok(()));
    }

    #[test]
    fn final_departure_moves_stay_valid_within_slack() {
        let mut log = valid_log();
        // Task 0's final (queue 2) event may move up to task 1's departure
        // at that queue without breaking anything.
        let e = log.task_events(TaskId(0))[2];
        log.set_final_departure(e, 3.2);
        assert_eq!(validate(&log), Ok(()));
    }

    #[test]
    fn detects_negative_service_after_transition_move() {
        let mut log = valid_log();
        let mid = log.task_events(TaskId(0))[1];
        // Shift the transition time (a_mid, d_init) past mid's departure
        // (2.0): service becomes −0.5, and both q0 (entry order) and q1
        // (arrival order) are now out of order. The first detected
        // violation is q0's departure order.
        log.set_transition_time(mid, 2.5);
        assert!(matches!(
            validate(&log),
            Err(Violation::NegativeService { .. })
                | Err(Violation::ArrivalOrder { .. })
                | Err(Violation::DepartureOrder { .. })
        ));
        // An order-preserving shift that pushes an arrival past its own
        // departure is diagnosed as negative service.
        let mut log2 = valid_log();
        let mid2 = log2.task_events(TaskId(1))[1];
        log2.set_transition_time(mid2, 3.5);
        assert!(matches!(
            validate(&log2),
            Err(Violation::NegativeService { .. })
        ));
    }

    #[test]
    fn detects_negative_service() {
        let mut log = valid_log();
        let last = log.task_events(TaskId(0))[2];
        // Final departure before its arrival → negative service.
        log.set_final_departure(last, 0.5);
        assert!(matches!(
            validate(&log),
            Err(Violation::NegativeService { .. })
        ));
    }

    #[test]
    fn detects_fifo_departure_violation() {
        let mut log = valid_log();
        // Task 0 and task 1 both use queue 2; task 0 arrives first
        // (a=2.0 < 3.0). Push task 0's final departure past task 1's.
        let e0 = log.task_events(TaskId(0))[2];
        log.set_final_departure(e0, 4.5);
        assert!(matches!(
            validate(&log),
            Err(Violation::DepartureOrder { .. })
        ));
    }

    #[test]
    fn detects_non_finite() {
        let mut log = valid_log();
        let last = log.task_events(TaskId(1))[2];
        log.set_final_departure(last, f64::NAN);
        assert!(matches!(
            validate(&log),
            Err(Violation::NonFiniteTime { .. })
        ));
    }

    #[test]
    fn tolerance_is_respected() {
        let mut log = valid_log();
        let mid = log.task_events(TaskId(1))[1];
        // A 1e-9 perturbation is within the default tolerance.
        let t = log.arrival(mid);
        log.set_transition_time(mid, t + 1e-9);
        assert_eq!(validate(&log), Ok(()));
        // But not within a zero tolerance (service becomes −1e-9 at the
        // boundary only if it breaks order; transition equality remains
        // intact because both sides move together).
        assert!(validate_with_tol(&log, 0.0).is_ok());
    }

    #[test]
    fn violation_display() {
        let v = Violation::NegativeService {
            event: EventId(3),
            service: -0.5,
        };
        assert!(v.to_string().contains("e3"));
    }
}
