//! The probabilistic finite-state machine that routes tasks.
//!
//! Per Section 2 of the paper, a task's passage through the system is a
//! probabilistic FSM: after each transition `σ → σ′` (with probability
//! `p(σ′|σ)`) the machine emits the next queue `q ~ p(q|σ′)`, the task is
//! serviced there, and the process repeats until a *final* (absorbing)
//! state is entered. The FSM is assumed known in advance — from a protocol
//! or application architecture — and the inference machinery conditions on
//! it.

use crate::error::ModelError;
use crate::ids::{QueueId, StateId};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Guard against runaway path sampling in cyclic FSMs.
const MAX_PATH_LEN: usize = 1_000_000;

/// A task-routing finite-state machine.
///
/// Build one with [`FsmBuilder`], or use the convenience constructors
/// [`Fsm::linear`] (deterministic queue sequence) and [`Fsm::tiered`]
/// (load-balanced tiers, as in the paper's three-tier web service).
///
/// # Examples
///
/// ```
/// use qni_model::fsm::Fsm;
/// use qni_model::ids::QueueId;
///
/// let fsm = Fsm::linear(&[QueueId(1), QueueId(2)]).unwrap();
/// assert_eq!(fsm.num_states(), 4); // initial, two stages, final.
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fsm {
    names: Vec<String>,
    initial: StateId,
    /// Per state: outgoing transition distribution (empty iff final).
    transitions: Vec<Vec<(StateId, f64)>>,
    /// Per state: queue emission distribution (empty for initial/final).
    emissions: Vec<Vec<(QueueId, f64)>>,
    is_final: Vec<bool>,
}

impl Fsm {
    /// Number of states, including initial and final.
    pub fn num_states(&self) -> usize {
        self.names.len()
    }

    /// The initial state.
    pub fn initial(&self) -> StateId {
        self.initial
    }

    /// Whether `s` is a final (absorbing) state.
    pub fn is_final(&self, s: StateId) -> bool {
        self.is_final[s.index()]
    }

    /// Human-readable state name.
    pub fn state_name(&self, s: StateId) -> &str {
        &self.names[s.index()]
    }

    /// Outgoing transition distribution of `s`.
    pub fn transitions_from(&self, s: StateId) -> &[(StateId, f64)] {
        &self.transitions[s.index()]
    }

    /// Queue emission distribution of `s`.
    pub fn emissions_from(&self, s: StateId) -> &[(QueueId, f64)] {
        &self.emissions[s.index()]
    }

    /// Transition probability `p(to | from)`.
    pub fn transition_prob(&self, from: StateId, to: StateId) -> f64 {
        self.transitions[from.index()]
            .iter()
            .find(|(s, _)| *s == to)
            .map_or(0.0, |(_, p)| *p)
    }

    /// Emission probability `p(queue | state)`.
    pub fn emission_prob(&self, state: StateId, queue: QueueId) -> f64 {
        self.emissions[state.index()]
            .iter()
            .find(|(q, _)| *q == queue)
            .map_or(0.0, |(_, p)| *p)
    }

    /// Probability that `s` transitions directly into some final state.
    pub fn completion_prob(&self, s: StateId) -> f64 {
        self.transitions[s.index()]
            .iter()
            .filter(|(t, _)| self.is_final(*t))
            .map(|(_, p)| p)
            .sum()
    }

    /// Samples one task path: the sequence of `(state, queue)` visits
    /// between system entry and completion.
    ///
    /// Errors with [`ModelError::NoFinalState`] if the walk exceeds an
    /// internal step guard (which indicates an FSM whose absorbing states
    /// are unreachable in practice).
    pub fn sample_path<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
    ) -> Result<Vec<(StateId, QueueId)>, ModelError> {
        let mut path = Vec::new();
        let mut state = self.initial;
        loop {
            state = weighted_choice(&self.transitions[state.index()], rng);
            if self.is_final(state) {
                return Ok(path);
            }
            let queue = weighted_choice(&self.emissions[state.index()], rng);
            path.push((state, queue));
            if path.len() > MAX_PATH_LEN {
                return Err(ModelError::NoFinalState);
            }
        }
    }

    /// Log-probability of a complete task path (including the final
    /// transition into an absorbing state).
    pub fn log_prob_path(&self, path: &[(StateId, QueueId)]) -> f64 {
        let mut lp = 0.0;
        let mut prev = self.initial;
        for &(s, q) in path {
            lp += self.transition_prob(prev, s).ln();
            lp += self.emission_prob(s, q).ln();
            prev = s;
        }
        lp + self.completion_prob(prev).ln()
    }

    /// Builds a deterministic FSM that visits the given queues in order.
    pub fn linear(queues: &[QueueId]) -> Result<Fsm, ModelError> {
        let tiers: Vec<Vec<(QueueId, f64)>> = queues.iter().map(|&q| vec![(q, 1.0)]).collect();
        Fsm::tiered_weighted(&tiers)
    }

    /// Builds a tiered FSM: one state per tier, visiting tiers in order,
    /// choosing uniformly among each tier's queues.
    ///
    /// This is the paper's three-tier web-service structure (Figure 1) for
    /// `tiers.len() == 3` with redundant servers per tier.
    pub fn tiered(tiers: &[Vec<QueueId>]) -> Result<Fsm, ModelError> {
        let weighted: Vec<Vec<(QueueId, f64)>> = tiers
            .iter()
            .map(|qs| {
                let w = 1.0 / qs.len() as f64;
                qs.iter().map(|&q| (q, w)).collect()
            })
            .collect();
        Fsm::tiered_weighted(&weighted)
    }

    /// Builds a tiered FSM with explicit per-queue weights in each tier.
    pub fn tiered_weighted(tiers: &[Vec<(QueueId, f64)>]) -> Result<Fsm, ModelError> {
        let mut b = FsmBuilder::new();
        let init = b.add_state("entry");
        b.set_initial(init);
        let mut prev = init;
        for (i, tier) in tiers.iter().enumerate() {
            let s = b.add_state(&format!("tier{}", i + 1));
            b.add_transition(prev, s, 1.0);
            for &(q, w) in tier {
                b.add_emission(s, q, w);
            }
            prev = s;
        }
        let done = b.add_final_state("done");
        b.add_transition(prev, done, 1.0);
        b.build()
    }
}

/// Samples from a discrete distribution given as `(value, weight)` pairs.
fn weighted_choice<T: Copy, R: Rng + ?Sized>(pairs: &[(T, f64)], rng: &mut R) -> T {
    debug_assert!(!pairs.is_empty());
    let u: f64 = rng.random();
    let mut acc = 0.0;
    for &(v, w) in pairs {
        acc += w;
        if u < acc {
            return v;
        }
    }
    pairs.last().expect("non-empty distribution").0 // qni-lint: allow(QNI-E002) — FSM validation rejects empty transition distributions
}

/// Incremental builder for [`Fsm`].
#[derive(Debug, Default)]
pub struct FsmBuilder {
    names: Vec<String>,
    transitions: Vec<Vec<(StateId, f64)>>,
    emissions: Vec<Vec<(QueueId, f64)>>,
    is_final: Vec<bool>,
    initial: Option<StateId>,
}

impl FsmBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        FsmBuilder::default()
    }

    /// Adds a non-final state and returns its id.
    pub fn add_state(&mut self, name: &str) -> StateId {
        self.push_state(name, false)
    }

    /// Adds a final (absorbing) state and returns its id.
    pub fn add_final_state(&mut self, name: &str) -> StateId {
        self.push_state(name, true)
    }

    fn push_state(&mut self, name: &str, is_final: bool) -> StateId {
        let id = StateId::from_index(self.names.len());
        self.names.push(name.to_owned());
        self.transitions.push(Vec::new());
        self.emissions.push(Vec::new());
        self.is_final.push(is_final);
        id
    }

    /// Marks the initial state.
    pub fn set_initial(&mut self, s: StateId) {
        self.initial = Some(s);
    }

    /// Adds a transition `from → to` with probability `p`.
    pub fn add_transition(&mut self, from: StateId, to: StateId, p: f64) {
        self.transitions[from.index()].push((to, p));
    }

    /// Adds an emission `state → queue` with probability `p`.
    pub fn add_emission(&mut self, state: StateId, queue: QueueId, p: f64) {
        self.emissions[state.index()].push((queue, p));
    }

    /// Validates and builds the FSM.
    ///
    /// Checks: an initial state is set and is not final; every non-final
    /// state's transition row sums to 1; every emitting state's emission
    /// row sums to 1 and never targets the reserved `q0`; all probabilities
    /// lie in `[0, 1]`; some final state is reachable from the initial
    /// state.
    pub fn build(self) -> Result<Fsm, ModelError> {
        let initial = self.initial.ok_or(ModelError::NoFinalState)?;
        if self.is_final[initial.index()] {
            return Err(ModelError::DegenerateFsm);
        }
        let n = self.names.len();
        for s in 0..n {
            let sid = StateId::from_index(s);
            for &(t, p) in &self.transitions[s] {
                if t.index() >= n {
                    return Err(ModelError::UnknownState(t));
                }
                if !(0.0..=1.0 + 1e-12).contains(&p) {
                    return Err(ModelError::BadProbability { value: p });
                }
            }
            for &(q, p) in &self.emissions[s] {
                if q.is_initial() {
                    return Err(ModelError::EmissionToInitialQueue { state: sid });
                }
                if !(0.0..=1.0 + 1e-12).contains(&p) {
                    return Err(ModelError::BadProbability { value: p });
                }
            }
            if !self.is_final[s] {
                let sum: f64 = self.transitions[s].iter().map(|(_, p)| p).sum();
                if (sum - 1.0).abs() > 1e-9 {
                    return Err(ModelError::UnnormalizedDistribution { state: sid, sum });
                }
            }
            // Emitting states: any state that can be *entered* (non-initial,
            // non-final) must emit a queue.
            if !self.is_final[s] && sid != initial {
                let sum: f64 = self.emissions[s].iter().map(|(_, p)| p).sum();
                if (sum - 1.0).abs() > 1e-9 {
                    return Err(ModelError::UnnormalizedDistribution { state: sid, sum });
                }
            }
        }
        // Reachability of a final state (BFS).
        let mut seen = vec![false; n];
        let mut stack = vec![initial];
        seen[initial.index()] = true;
        let mut final_reachable = false;
        while let Some(s) = stack.pop() {
            if self.is_final[s.index()] {
                final_reachable = true;
                break;
            }
            for &(t, p) in &self.transitions[s.index()] {
                if p > 0.0 && !seen[t.index()] {
                    seen[t.index()] = true;
                    stack.push(t);
                }
            }
        }
        if !final_reachable {
            return Err(ModelError::NoFinalState);
        }
        Ok(Fsm {
            names: self.names,
            initial,
            transitions: self.transitions,
            emissions: self.emissions,
            is_final: self.is_final,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qni_stats::rng::rng_from_seed;

    fn two_stage() -> Fsm {
        Fsm::linear(&[QueueId(1), QueueId(2)]).unwrap()
    }

    #[test]
    fn linear_fsm_shape() {
        let f = two_stage();
        assert_eq!(f.num_states(), 4);
        assert!(!f.is_final(f.initial()));
        let path = f.sample_path(&mut rng_from_seed(1)).unwrap();
        assert_eq!(path.len(), 2);
        assert_eq!(path[0].1, QueueId(1));
        assert_eq!(path[1].1, QueueId(2));
    }

    #[test]
    fn linear_fsm_path_prob_is_one() {
        let f = two_stage();
        let path = f.sample_path(&mut rng_from_seed(2)).unwrap();
        assert!((f.log_prob_path(&path) - 0.0).abs() < 1e-12);
    }

    #[test]
    fn tiered_fsm_balances_uniformly() {
        let f = Fsm::tiered(&[vec![QueueId(1), QueueId(2)], vec![QueueId(3)]]).unwrap();
        let mut rng = rng_from_seed(3);
        let mut count_q1 = 0;
        let n = 20_000;
        for _ in 0..n {
            let p = f.sample_path(&mut rng).unwrap();
            assert_eq!(p.len(), 2);
            assert_eq!(p[1].1, QueueId(3));
            if p[0].1 == QueueId(1) {
                count_q1 += 1;
            }
        }
        let frac = count_q1 as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.02, "frac={frac}");
    }

    #[test]
    fn tiered_weighted_respects_weights() {
        let f = Fsm::tiered_weighted(&[vec![(QueueId(1), 0.9), (QueueId(2), 0.1)]]).unwrap();
        let mut rng = rng_from_seed(4);
        let n = 20_000;
        let hits = (0..n)
            .filter(|_| f.sample_path(&mut rng).unwrap()[0].1 == QueueId(1))
            .count();
        let frac = hits as f64 / n as f64;
        assert!((frac - 0.9).abs() < 0.02, "frac={frac}");
    }

    #[test]
    fn log_prob_of_tiered_path() {
        let f = Fsm::tiered(&[vec![QueueId(1), QueueId(2)]]).unwrap();
        let mut rng = rng_from_seed(5);
        let p = f.sample_path(&mut rng).unwrap();
        // One uniform choice among two queues: log(1/2).
        assert!((f.log_prob_path(&p) - 0.5f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn builder_rejects_unnormalized_transitions() {
        let mut b = FsmBuilder::new();
        let i = b.add_state("i");
        let s = b.add_state("s");
        let f = b.add_final_state("f");
        b.set_initial(i);
        b.add_transition(i, s, 0.5); // Missing half the mass.
        b.add_transition(s, f, 1.0);
        b.add_emission(s, QueueId(1), 1.0);
        assert!(matches!(
            b.build(),
            Err(ModelError::UnnormalizedDistribution { .. })
        ));
    }

    #[test]
    fn builder_rejects_emission_to_q0() {
        let mut b = FsmBuilder::new();
        let i = b.add_state("i");
        let s = b.add_state("s");
        let f = b.add_final_state("f");
        b.set_initial(i);
        b.add_transition(i, s, 1.0);
        b.add_transition(s, f, 1.0);
        b.add_emission(s, QueueId::INITIAL, 1.0);
        assert!(matches!(
            b.build(),
            Err(ModelError::EmissionToInitialQueue { .. })
        ));
    }

    #[test]
    fn builder_rejects_unreachable_final() {
        let mut b = FsmBuilder::new();
        let i = b.add_state("i");
        let s = b.add_state("s");
        let _f = b.add_final_state("f");
        b.set_initial(i);
        b.add_transition(i, s, 1.0);
        b.add_transition(s, i, 1.0);
        b.add_emission(s, QueueId(1), 1.0);
        b.add_emission(i, QueueId(1), 1.0);
        assert!(matches!(b.build(), Err(ModelError::NoFinalState)));
    }

    #[test]
    fn builder_rejects_final_initial() {
        let mut b = FsmBuilder::new();
        let i = b.add_final_state("i");
        b.set_initial(i);
        assert!(matches!(b.build(), Err(ModelError::DegenerateFsm)));
    }

    #[test]
    fn cyclic_fsm_samples_geometric_lengths() {
        // State s loops back to itself with probability 0.5.
        let mut b = FsmBuilder::new();
        let i = b.add_state("i");
        let s = b.add_state("s");
        let f = b.add_final_state("f");
        b.set_initial(i);
        b.add_transition(i, s, 1.0);
        b.add_transition(s, s, 0.5);
        b.add_transition(s, f, 0.5);
        b.add_emission(s, QueueId(1), 1.0);
        let fsm = b.build().unwrap();
        let mut rng = rng_from_seed(6);
        let n = 10_000;
        let total: usize = (0..n)
            .map(|_| fsm.sample_path(&mut rng).unwrap().len())
            .sum();
        let mean = total as f64 / n as f64;
        // Geometric with success 0.5 starting at 1: mean 2.
        assert!((mean - 2.0).abs() < 0.1, "mean={mean}");
    }

    #[test]
    fn completion_prob() {
        let f = two_stage();
        // The last tier state transitions to final w.p. 1.
        let path = f.sample_path(&mut rng_from_seed(7)).unwrap();
        let last_state = path.last().unwrap().0;
        assert_eq!(f.completion_prob(last_state), 1.0);
        assert_eq!(f.completion_prob(f.initial()), 0.0);
    }
}
