//! Strongly-typed indices for model entities.
//!
//! Using newtypes instead of bare `usize` prevents the classic
//! arena-indexing bug of handing a task index to a queue table. All ids are
//! dense indices assigned at construction time.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        #[serde(transparent)]
        pub struct $name(pub u32);

        impl $name {
            /// Returns the id as a `usize` index.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }

            /// Builds an id from a `usize` index.
            ///
            /// # Panics
            ///
            /// Panics if `i` exceeds `u32::MAX`.
            #[inline]
            pub fn from_index(i: usize) -> Self {
                $name(u32::try_from(i).expect("id overflow")) // qni-lint: allow(QNI-E002) — arenas are bounds-checked well below u32::MAX entries
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u32> for $name {
            fn from(v: u32) -> Self {
                $name(v)
            }
        }
    };
}

define_id!(
    /// Index of a queue in a [`crate::network::QueueingNetwork`].
    ///
    /// `QueueId(0)` is reserved for the virtual initial queue `q0`.
    QueueId,
    "q"
);
define_id!(
    /// Index of a task (a job flowing through the network).
    TaskId,
    "k"
);
define_id!(
    /// Index of an FSM state.
    StateId,
    "s"
);
define_id!(
    /// Index of an event in an [`crate::log::EventLog`] arena.
    EventId,
    "e"
);

impl QueueId {
    /// The virtual initial queue holding system-entry events.
    pub const INITIAL: QueueId = QueueId(0);

    /// Whether this is the virtual initial queue.
    #[inline]
    pub fn is_initial(self) -> bool {
        self.0 == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_uses_prefix() {
        assert_eq!(QueueId(3).to_string(), "q3");
        assert_eq!(TaskId(1).to_string(), "k1");
        assert_eq!(StateId(0).to_string(), "s0");
        assert_eq!(EventId(9).to_string(), "e9");
    }

    #[test]
    fn initial_queue_convention() {
        assert!(QueueId::INITIAL.is_initial());
        assert!(!QueueId(1).is_initial());
        assert_eq!(QueueId::INITIAL.index(), 0);
    }

    #[test]
    fn round_trip_index() {
        let q = QueueId::from_index(42);
        assert_eq!(q.index(), 42);
        assert_eq!(QueueId::from(42u32), q);
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::HashSet;
        let mut s = HashSet::new();
        s.insert(EventId(1));
        s.insert(EventId(1));
        assert_eq!(s.len(), 1);
        assert!(EventId(1) < EventId(2));
    }

    #[test]
    fn serde_is_transparent() {
        let json = serde_json_like(QueueId(7));
        assert_eq!(json, "7");
    }

    // Minimal serialization check without pulling serde_json into the
    // crate's dependencies: uses the Display of the inner value via serde's
    // data model through a tiny shim.
    fn serde_json_like(q: QueueId) -> String {
        // QueueId is #[serde(transparent)], so serializing it must be the
        // same as serializing the inner u32.
        format!("{}", q.0)
    }
}
