//! The joint log-density of an event set — Equation (1) of the paper.
//!
//! ```text
//! p(E) = Π_e  1{a_e = d_{π(e)}} · 1{d_e = s_e + max(a_e, d_{ρ(e)})}
//!             · p(s_e | q_e) · p(q_e | σ_e) · p(σ_e | σ_{π(e)})
//! ```
//!
//! The indicator factors are enforced structurally by
//! [`crate::constraints::validate`]; this module evaluates the continuous
//! and discrete factors. Initial events contribute only their service
//! factor (under `q0`'s law, i.e. the interarrival density); each task
//! additionally contributes the probability of its final transition into
//! an absorbing state.

use crate::error::ModelError;
use crate::ids::TaskId;
use crate::log::EventLog;
use crate::network::QueueingNetwork;
use qni_stats::distributions::ServiceDistribution;
use qni_stats::exponential::Exponential;

/// Log-density of the service factors only: `Σ_e log p(s_e | q_e)`.
///
/// This is the part of Eq. (1) that depends on the continuous times, and
/// hence the quantity tracked across Gibbs sweeps.
pub fn service_log_likelihood(log: &EventLog, net: &QueueingNetwork) -> Result<f64, ModelError> {
    let mut total = 0.0;
    for e in log.event_ids() {
        let q = log.queue_of(e);
        let s = log.service_time(e);
        total += service_log_pdf(net.service(q)?, s);
    }
    Ok(total)
}

/// Log-density of the FSM factors: `Σ_e log p(q_e|σ_e) p(σ_e|σ_{π(e)})`
/// plus each task's final-transition probability.
pub fn path_log_probability(log: &EventLog, net: &QueueingNetwork) -> f64 {
    let fsm = net.fsm();
    let mut total = 0.0;
    for k in 0..log.num_tasks() {
        let events = log.task_events(TaskId::from_index(k));
        let mut prev_state = fsm.initial();
        for &e in &events[1..] {
            let s = log.state_of(e);
            total += fsm.transition_prob(prev_state, s).ln();
            total += fsm.emission_prob(s, log.queue_of(e)).ln();
            prev_state = s;
        }
        total += fsm.completion_prob(prev_state).ln();
    }
    total
}

/// Full joint log-density of Eq. (1): service factors + FSM factors.
///
/// Returns `-inf` if any deterministic constraint is violated (checked via
/// [`crate::constraints::validate`]).
pub fn joint_log_density(log: &EventLog, net: &QueueingNetwork) -> Result<f64, ModelError> {
    if crate::constraints::validate(log).is_err() {
        return Ok(f64::NEG_INFINITY);
    }
    Ok(service_log_likelihood(log, net)? + path_log_probability(log, net))
}

/// Log-pdf of a service time under a service distribution.
fn service_log_pdf(dist: &ServiceDistribution, s: f64) -> f64 {
    match dist {
        ServiceDistribution::Exponential(e) => e.log_pdf(s),
        // Non-exponential laws are supported by the simulator but the
        // inference layer is exponential-only; evaluate densities where a
        // closed form exists and fall back to -inf boundary handling.
        ServiceDistribution::Deterministic { value } => {
            if (s - value).abs() < 1e-12 {
                0.0
            } else {
                f64::NEG_INFINITY
            }
        }
        ServiceDistribution::Erlang { k, rate } => {
            if s < 0.0 {
                return f64::NEG_INFINITY;
            }
            let k = *k as i32;
            let lgamma = ln_factorial((k - 1) as u64);
            f64::from(k) * rate.ln() + f64::from(k - 1) * s.ln() - rate * s - lgamma
        }
        ServiceDistribution::HyperExponential { weights, rates } => {
            let parts: Vec<f64> = weights
                .iter()
                .zip(rates)
                .map(|(w, r)| {
                    w.ln()
                        + Exponential::new(*r)
                            .map(|e| e.log_pdf(s))
                            .unwrap_or(f64::NEG_INFINITY)
                })
                .collect();
            qni_stats::logspace::log_sum_exp(&parts)
        }
        ServiceDistribution::LogNormal { mu, sigma } => {
            if s <= 0.0 {
                return f64::NEG_INFINITY;
            }
            let z = (s.ln() - mu) / sigma;
            -0.5 * z * z - s.ln() - sigma.ln() - 0.5 * (2.0 * std::f64::consts::PI).ln()
        }
    }
}

/// `ln(n!)` by direct summation (exact for the small stage counts used by
/// Erlang service laws).
fn ln_factorial(n: u64) -> f64 {
    (2..=n).map(|i| (i as f64).ln()).sum()
}

/// The exponential-network special case: log-likelihood as a function of
/// per-queue rates, given sufficient statistics. Used to verify that the
/// M-step maximizes this expression.
pub fn mm1_log_likelihood(stats: &[(usize, f64)], rates: &[f64]) -> f64 {
    stats
        .iter()
        .zip(rates)
        .map(|(&(n, sum), &r)| n as f64 * r.ln() - r * sum)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fsm::Fsm;
    use crate::ids::{QueueId, StateId};
    use crate::log::EventLogBuilder;

    fn setup() -> (EventLog, QueueingNetwork) {
        let fsm = Fsm::linear(&[QueueId(1)]).unwrap();
        let net = QueueingNetwork::mm1(2.0, &[("a", 4.0)], fsm).unwrap();
        let mut b = EventLogBuilder::new(2, StateId(0));
        // Entry at 0.5, service 0.5 → 0.8.
        b.add_task(0.5, &[(StateId(1), QueueId(1), 0.5, 0.8)])
            .unwrap();
        (b.build().unwrap(), net)
    }

    #[test]
    fn service_likelihood_hand_computed() {
        let (log, net) = setup();
        // q0 event: service 0.5 under Exp(2): ln2 − 2·0.5.
        // q1 event: service 0.3 under Exp(4): ln4 − 4·0.3.
        let expect = (2.0f64.ln() - 1.0) + (4.0f64.ln() - 1.2);
        let got = service_log_likelihood(&log, &net).unwrap();
        assert!((got - expect).abs() < 1e-12, "got={got}, expect={expect}");
    }

    #[test]
    fn path_probability_deterministic_fsm_is_zero() {
        let (log, net) = setup();
        assert!((path_log_probability(&log, &net) - 0.0).abs() < 1e-12);
    }

    #[test]
    fn joint_includes_both_factors() {
        let (log, net) = setup();
        let j = joint_log_density(&log, &net).unwrap();
        let s = service_log_likelihood(&log, &net).unwrap();
        assert!((j - s).abs() < 1e-12);
    }

    #[test]
    fn joint_is_neg_inf_for_invalid_log() {
        let (mut log, net) = setup();
        let e = log.task_events(TaskId(0))[1];
        log.set_final_departure(e, 0.1); // Negative service.
        assert_eq!(joint_log_density(&log, &net).unwrap(), f64::NEG_INFINITY);
    }

    #[test]
    fn tiered_fsm_path_probability() {
        let fsm = Fsm::tiered(&[vec![QueueId(1), QueueId(2)]]).unwrap();
        let net = QueueingNetwork::mm1(1.0, &[("a", 1.0), ("b", 1.0)], fsm).unwrap();
        let mut b = EventLogBuilder::new(3, StateId(0));
        b.add_task(0.5, &[(StateId(1), QueueId(2), 0.5, 0.9)])
            .unwrap();
        let log = b.build().unwrap();
        // One emission choice of probability 1/2.
        let lp = path_log_probability(&log, &net);
        assert!((lp - 0.5f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn mm1_likelihood_peaks_at_mle() {
        let stats = vec![(10usize, 2.0f64), (5usize, 10.0f64)];
        let mle: Vec<f64> = stats.iter().map(|&(n, s)| n as f64 / s).collect();
        let at_mle = mm1_log_likelihood(&stats, &mle);
        for scale in [0.5, 0.9, 1.1, 2.0] {
            let perturbed: Vec<f64> = mle.iter().map(|r| r * scale).collect();
            assert!(mm1_log_likelihood(&stats, &perturbed) < at_mle);
        }
    }

    #[test]
    fn erlang_log_pdf_matches_exponential_when_k1() {
        let d1 = ServiceDistribution::erlang(1, 3.0).unwrap();
        let e = Exponential::new(3.0).unwrap();
        for &s in &[0.1, 0.5, 2.0] {
            assert!((super::service_log_pdf(&d1, s) - e.log_pdf(s)).abs() < 1e-12);
        }
    }

    #[test]
    fn lognormal_log_pdf_integrates_to_one() {
        let d = ServiceDistribution::log_normal(0.0, 0.7).unwrap();
        let n = 40_000;
        let h = 30.0 / n as f64;
        let mut acc = 0.0;
        for i in 1..n {
            acc += super::service_log_pdf(&d, i as f64 * h).exp() * h;
        }
        assert!((acc - 1.0).abs() < 1e-3, "integral={acc}");
    }
}
