//! The probabilistic queueing-network model of Sutton & Jordan.
//!
//! This crate defines the *model* half of the paper: networks of FIFO
//! single-server queues through which tasks are routed by a probabilistic
//! finite-state machine, and the event representation that makes the joint
//! density of all arrival/departure times tractable to write down
//! (Equation 1 of the paper).
//!
//! The key objects are:
//!
//! - [`ids`]: strongly-typed indices for queues, tasks, FSM states, and
//!   events.
//! - [`fsm::Fsm`]: the task-routing finite-state machine with transition
//!   distribution `p(σ′|σ)` and queue-emission distribution `p(q|σ)`.
//! - [`network::QueueingNetwork`]: queue metadata (service distributions)
//!   plus the FSM; the virtual *initial queue* `q0` holds one event per
//!   task that arrives at time 0 and departs at the task's system-entry
//!   time, so the interarrival law is simply `q0`'s service law (rate λ).
//! - [`event::Event`] and [`log::EventLog`]: the flat arena of events with
//!   within-queue predecessor ρ(e) and within-task predecessor π(e)
//!   pointers, plus derived quantities (service, waiting, response).
//! - [`joint`]: the joint log-density of an event set, Eq. (1).
//! - [`constraints`]: the deterministic-dependency validator
//!   (`a_e = d_{π(e)}`, `d_e = s_e + max(a_e, d_{ρ(e)})`, FIFO order).
//! - [`topology`]: builders for the paper's networks (tandem, the
//!   three-tier web service of Figure 1, with or without network queues).
//!
//! # Examples
//!
//! ```
//! use qni_model::topology::three_tier;
//!
//! // Figure 1 of the paper: 2 web servers, 1 middleware, 2 storage, with
//! // network queues between tiers.
//! let t = three_tier(1.0, 5.0, &[2, 1, 2], true).unwrap();
//! assert_eq!(t.tiers.len(), 3);
//! ```

pub mod constraints;
pub mod error;
pub mod event;
pub mod fsm;
pub mod ids;
pub mod joint;
pub mod log;
pub mod network;
pub mod topology;

pub use error::ModelError;
pub use event::Event;
pub use fsm::Fsm;
pub use ids::{EventId, QueueId, StateId, TaskId};
pub use log::EventLog;
pub use network::QueueingNetwork;
