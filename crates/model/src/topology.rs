//! Builders for the network topologies used in the paper.
//!
//! - [`single_queue`]: one M/M/1 queue (the textbook case, used heavily in
//!   validation against analytic formulas).
//! - [`tandem`]: a chain of queues visited in order.
//! - [`three_tier`]: the paper's Figure 1 — a web service with redundant
//!   servers per tier and optional network queues at entry and exit.

use crate::error::ModelError;
use crate::fsm::Fsm;
use crate::ids::QueueId;
use crate::network::QueueingNetwork;

/// A constructed network together with its logical structure.
#[derive(Debug, Clone)]
pub struct Blueprint {
    /// The network (queue 0 is `q0`).
    pub network: QueueingNetwork,
    /// Queues grouped by tier, in visit order (network queues excluded).
    pub tiers: Vec<Vec<QueueId>>,
    /// Entry/exit network queues, if any.
    pub network_queues: Vec<QueueId>,
}

/// Builds a single M/M/1 queue with arrival rate `lambda` and service rate
/// `mu`.
pub fn single_queue(lambda: f64, mu: f64) -> Result<Blueprint, ModelError> {
    let fsm = Fsm::linear(&[QueueId(1)])?;
    let network = QueueingNetwork::mm1(lambda, &[("server", mu)], fsm)?;
    Ok(Blueprint {
        network,
        tiers: vec![vec![QueueId(1)]],
        network_queues: vec![],
    })
}

/// Builds a tandem network: queues with the given rates visited in order.
pub fn tandem(lambda: f64, rates: &[f64]) -> Result<Blueprint, ModelError> {
    if rates.is_empty() {
        return Err(ModelError::BadQueueParameter {
            queue: QueueId(1),
            what: "tandem needs at least one queue",
        });
    }
    let queues: Vec<QueueId> = (1..=rates.len()).map(QueueId::from_index).collect();
    let fsm = Fsm::linear(&queues)?;
    let named: Vec<(String, f64)> = rates
        .iter()
        .enumerate()
        .map(|(i, &r)| (format!("stage{}", i + 1), r))
        .collect();
    let refs: Vec<(&str, f64)> = named.iter().map(|(n, r)| (n.as_str(), *r)).collect();
    let network = QueueingNetwork::mm1(lambda, &refs, fsm)?;
    Ok(Blueprint {
        network,
        tiers: queues.into_iter().map(|q| vec![q]).collect(),
        network_queues: vec![],
    })
}

/// Builds the paper's three-tier (or n-tier) web service of Figure 1.
///
/// Each entry of `tier_sizes` is the number of redundant servers in that
/// tier; each server is one queue with exponential rate `mu`, and tasks
/// choose a server uniformly at random (the FSM emission). With
/// `with_network`, a network queue is visited before the first tier and
/// after the last (rate `mu` as well; adjust afterwards with
/// [`QueueingNetwork::set_exponential_rate`]).
///
/// The synthetic experiments of §5.1 use `with_network = false` and
/// `lambda = 10, mu = 5`, so that a one-server tier is heavily overloaded,
/// a two-server tier barely overloaded, and a four-server tier moderately
/// loaded.
pub fn three_tier(
    lambda: f64,
    mu: f64,
    tier_sizes: &[usize],
    with_network: bool,
) -> Result<Blueprint, ModelError> {
    if tier_sizes.is_empty() || tier_sizes.contains(&0) {
        return Err(ModelError::BadQueueParameter {
            queue: QueueId(1),
            what: "every tier needs at least one server",
        });
    }
    let mut names: Vec<String> = Vec::new();
    let mut tiers: Vec<Vec<QueueId>> = Vec::new();
    let mut network_queues: Vec<QueueId> = Vec::new();
    // Queue ids start at 1 (0 is q0).
    let mut next = 1usize;
    let mut alloc = |count: usize, label: &str, names: &mut Vec<String>| -> Vec<QueueId> {
        let ids: Vec<QueueId> = (next..next + count).map(QueueId::from_index).collect();
        for i in 0..count {
            names.push(if count == 1 {
                label.to_owned()
            } else {
                format!("{label}{}", i + 1)
            });
        }
        next += count;
        ids
    };
    let net_in = if with_network {
        let ids = alloc(1, "net-in", &mut names);
        network_queues.extend(&ids);
        Some(ids[0])
    } else {
        None
    };
    for (t, &size) in tier_sizes.iter().enumerate() {
        let ids = alloc(size, &format!("tier{}-srv", t + 1), &mut names);
        tiers.push(ids);
    }
    let net_out = if with_network {
        let ids = alloc(1, "net-out", &mut names);
        network_queues.extend(&ids);
        Some(ids[0])
    } else {
        None
    };
    // Visit order: [net_in], tier1..tierN, [net_out].
    let mut visit_tiers: Vec<Vec<QueueId>> = Vec::new();
    if let Some(q) = net_in {
        visit_tiers.push(vec![q]);
    }
    visit_tiers.extend(tiers.iter().cloned());
    if let Some(q) = net_out {
        visit_tiers.push(vec![q]);
    }
    let fsm = Fsm::tiered(&visit_tiers)?;
    let rates: Vec<(&str, f64)> = names.iter().map(|n| (n.as_str(), mu)).collect();
    let network = QueueingNetwork::mm1(lambda, &rates, fsm)?;
    Ok(Blueprint {
        network,
        tiers,
        network_queues,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use qni_stats::rng::rng_from_seed;

    #[test]
    fn single_queue_shape() {
        let b = single_queue(2.0, 5.0).unwrap();
        assert_eq!(b.network.num_queues(), 2);
        assert_eq!(b.tiers, vec![vec![QueueId(1)]]);
    }

    #[test]
    fn tandem_shape_and_routing() {
        let b = tandem(1.0, &[3.0, 4.0, 5.0]).unwrap();
        assert_eq!(b.network.num_queues(), 4);
        let path = b.network.fsm().sample_path(&mut rng_from_seed(1)).unwrap();
        let queues: Vec<QueueId> = path.iter().map(|&(_, q)| q).collect();
        assert_eq!(queues, vec![QueueId(1), QueueId(2), QueueId(3)]);
        assert!(tandem(1.0, &[]).is_err());
    }

    #[test]
    fn three_tier_paper_config() {
        // §5.1 example structure: (1, 2, 4) servers.
        let b = three_tier(10.0, 5.0, &[1, 2, 4], false).unwrap();
        assert_eq!(b.network.num_queues(), 1 + 7);
        assert_eq!(b.tiers.len(), 3);
        assert_eq!(b.tiers[0].len(), 1);
        assert_eq!(b.tiers[1].len(), 2);
        assert_eq!(b.tiers[2].len(), 4);
        assert!(b.network_queues.is_empty());
        // Every sampled path visits exactly one server per tier.
        let mut rng = rng_from_seed(2);
        for _ in 0..100 {
            let path = b.network.fsm().sample_path(&mut rng).unwrap();
            assert_eq!(path.len(), 3);
            for (i, &(_, q)) in path.iter().enumerate() {
                assert!(b.tiers[i].contains(&q), "queue {q} not in tier {i}");
            }
        }
    }

    #[test]
    fn three_tier_with_network_queues() {
        let b = three_tier(1.0, 5.0, &[2, 1, 2], true).unwrap();
        assert_eq!(b.network_queues.len(), 2);
        assert_eq!(b.network.num_queues(), 1 + 2 + 5);
        let path = b.network.fsm().sample_path(&mut rng_from_seed(3)).unwrap();
        assert_eq!(path.len(), 5);
        assert_eq!(path[0].1, b.network_queues[0]);
        assert_eq!(path[4].1, b.network_queues[1]);
        assert_eq!(b.network.queue_name(b.network_queues[0]), "net-in");
    }

    #[test]
    fn three_tier_rejects_empty_tier() {
        assert!(three_tier(1.0, 1.0, &[2, 0, 1], false).is_err());
        assert!(three_tier(1.0, 1.0, &[], false).is_err());
    }

    #[test]
    fn queue_names_are_distinct() {
        let b = three_tier(1.0, 5.0, &[2, 2, 2], true).unwrap();
        let mut names: Vec<String> = (0..b.network.num_queues())
            .map(|i| b.network.queue_name(QueueId::from_index(i)).to_owned())
            .collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), b.network.num_queues());
    }
}
