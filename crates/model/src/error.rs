//! Error types for model construction and validation.

use crate::ids::{EventId, QueueId, StateId, TaskId};
use std::fmt;

/// Errors raised while building or validating model objects.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// An FSM row (transition or emission) does not sum to one.
    UnnormalizedDistribution {
        /// State whose distribution is invalid.
        state: StateId,
        /// The actual sum.
        sum: f64,
    },
    /// A referenced state does not exist.
    UnknownState(StateId),
    /// A referenced queue does not exist.
    UnknownQueue(QueueId),
    /// A referenced task does not exist.
    UnknownTask(TaskId),
    /// A referenced event does not exist.
    UnknownEvent(EventId),
    /// A probability was outside `[0, 1]`.
    BadProbability {
        /// The offending value.
        value: f64,
    },
    /// The FSM has no final (absorbing) state or it is unreachable.
    NoFinalState,
    /// The FSM's initial state is final, so tasks would visit no queue.
    DegenerateFsm,
    /// A queue parameter was invalid (e.g. non-positive rate).
    BadQueueParameter {
        /// Queue with the bad parameter.
        queue: QueueId,
        /// Description of the problem.
        what: &'static str,
    },
    /// Emission assigned to the reserved initial queue `q0`.
    EmissionToInitialQueue {
        /// State with the offending emission.
        state: StateId,
    },
    /// A task path was empty.
    EmptyTask(TaskId),
    /// A deterministic constraint of the event log is violated.
    ConstraintViolation(crate::constraints::Violation),
    /// A statistics-layer error bubbled up.
    Stats(qni_stats::StatsError),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::UnnormalizedDistribution { state, sum } => {
                write!(f, "distribution for state {state} sums to {sum}, not 1")
            }
            ModelError::UnknownState(s) => write!(f, "unknown state {s}"),
            ModelError::UnknownQueue(q) => write!(f, "unknown queue {q}"),
            ModelError::UnknownTask(k) => write!(f, "unknown task {k}"),
            ModelError::UnknownEvent(e) => write!(f, "unknown event {e}"),
            ModelError::BadProbability { value } => write!(f, "invalid probability {value}"),
            ModelError::NoFinalState => write!(f, "FSM has no reachable final state"),
            ModelError::DegenerateFsm => {
                write!(f, "FSM initial state is final; tasks visit no queue")
            }
            ModelError::BadQueueParameter { queue, what } => {
                write!(f, "bad parameter for queue {queue}: {what}")
            }
            ModelError::EmissionToInitialQueue { state } => {
                write!(f, "state {state} emits the reserved initial queue q0")
            }
            ModelError::EmptyTask(k) => write!(f, "task {k} has an empty path"),
            ModelError::ConstraintViolation(v) => write!(f, "constraint violation: {v}"),
            ModelError::Stats(e) => write!(f, "statistics error: {e}"),
        }
    }
}

impl std::error::Error for ModelError {}

impl From<qni_stats::StatsError> for ModelError {
    fn from(e: qni_stats::StatsError) -> Self {
        ModelError::Stats(e)
    }
}

impl From<crate::constraints::Violation> for ModelError {
    fn from(v: crate::constraints::Violation) -> Self {
        ModelError::ConstraintViolation(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ModelError::UnnormalizedDistribution {
            state: StateId(2),
            sum: 0.5,
        };
        let s = e.to_string();
        assert!(s.contains("s2") && s.contains("0.5"));
    }

    #[test]
    fn stats_error_converts() {
        let e: ModelError = qni_stats::StatsError::EmptyData.into();
        assert!(matches!(e, ModelError::Stats(_)));
    }
}
