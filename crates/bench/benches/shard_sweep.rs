//! Criterion benches for the intra-trace sharded sweep engine: the same
//! giant-trace batched sweep at shard counts {1, 2, 4}. On a 1-core
//! host the sharded points measure spawn overhead only; the
//! `shard_speedup` binary is the tracked experiment.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qni_core::gibbs::sweep::sweep_batched_sharded;
use qni_core::init::InitStrategy;
use qni_core::{GibbsState, ShardMode};
use qni_model::topology::{tandem, Blueprint};
use qni_sim::{Simulator, Workload};
use qni_stats::rng::rng_from_seed;
use qni_trace::ObservationScheme;

fn make_state(bp: &Blueprint, lambda: f64, tasks: usize, seed: u64) -> GibbsState {
    let mut rng = rng_from_seed(seed);
    let truth = Simulator::new(&bp.network)
        .run(
            &Workload::poisson_n(lambda, tasks).expect("workload"),
            &mut rng,
        )
        .expect("simulation");
    let masked = ObservationScheme::task_sampling(0.1)
        .expect("fraction")
        .apply(truth, &mut rng)
        .expect("mask");
    let rates = bp.network.rates().expect("rates");
    GibbsState::new(&masked, rates, InitStrategy::default()).expect("init")
}

fn bench_sharded_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("sweep_sharded");
    group.sample_size(10);
    // One giant single-queue trace: waves large enough to fan out.
    let state = make_state(&tandem(2.0, &[5.0]).expect("bp"), 2.0, 3000, 1);
    for shards in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("mm1_3000", shards),
            &shards,
            |b, &shards| {
                let mut st = state.clone();
                let mut rng = rng_from_seed(3);
                b.iter(|| {
                    sweep_batched_sharded(&mut st, ShardMode::Sharded(shards), &mut rng)
                        .expect("sweep")
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_sharded_sweep);
criterion_main!(benches);
