//! Criterion benches for the piecewise log-linear density engine — the
//! inner loop of every Gibbs move.

use criterion::{criterion_group, criterion_main, Criterion};
use qni_stats::piecewise::PiecewiseExpDensity;
use qni_stats::rng::rng_from_seed;

fn bench_build(c: &mut Criterion) {
    c.bench_function("piecewise_build_3seg", |b| {
        b.iter(|| {
            PiecewiseExpDensity::continuous_from_slopes(
                std::hint::black_box(0.0),
                std::hint::black_box(3.0),
                &[1.0, 2.0],
                &[-2.0, 0.5, 4.0],
            )
            .expect("density")
        });
    });
}

fn bench_sample(c: &mut Criterion) {
    let d = PiecewiseExpDensity::continuous_from_slopes(0.0, 3.0, &[1.0, 2.0], &[-2.0, 0.5, 4.0])
        .expect("density");
    c.bench_function("piecewise_sample", |b| {
        let mut rng = rng_from_seed(1);
        b.iter(|| d.sample(&mut rng));
    });
}

fn bench_build_and_sample(c: &mut Criterion) {
    // The real per-move workload: construct + one draw.
    c.bench_function("piecewise_build_plus_sample", |b| {
        let mut rng = rng_from_seed(2);
        b.iter(|| {
            let d = PiecewiseExpDensity::continuous_from_slopes(
                0.0,
                3.0,
                &[1.0, 2.0],
                &[-2.0, 0.5, 4.0],
            )
            .expect("density");
            d.sample(&mut rng)
        });
    });
}

criterion_group!(benches, bench_build, bench_sample, bench_build_and_sample);
criterion_main!(benches);
