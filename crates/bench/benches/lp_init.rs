//! Criterion benches for sampler initialization: longest-path vs. LP.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qni_core::init::{initialize_with, InitStrategy};
use qni_model::topology::tandem;
use qni_sim::{Simulator, Workload};
use qni_stats::rng::rng_from_seed;
use qni_trace::{MaskedLog, ObservationScheme};

fn masked(tasks: usize, seed: u64) -> (MaskedLog, Vec<f64>) {
    let bp = tandem(2.0, &[5.0, 4.0]).expect("topology");
    let mut rng = rng_from_seed(seed);
    let truth = Simulator::new(&bp.network)
        .run(
            &Workload::poisson_n(2.0, tasks).expect("workload"),
            &mut rng,
        )
        .expect("simulation");
    let m = ObservationScheme::task_sampling(0.1)
        .expect("fraction")
        .apply(truth, &mut rng)
        .expect("mask");
    (m, bp.network.rates().expect("mm1"))
}

fn bench_longest_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("init_longest_path");
    group.sample_size(10);
    for &tasks in &[250usize, 1000, 4000] {
        let (m, rates) = masked(tasks, 1);
        group.bench_with_input(BenchmarkId::from_parameter(tasks), &tasks, |b, _| {
            b.iter(|| {
                initialize_with(&m, &rates, InitStrategy::LongestPath { use_targets: true })
                    .expect("init")
            });
        });
    }
    group.finish();
}

fn bench_lp(c: &mut Criterion) {
    let mut group = c.benchmark_group("init_lp");
    group.sample_size(10);
    // The LP is dense; bench only small instances.
    for &tasks in &[10usize, 25] {
        let (m, rates) = masked(tasks, 2);
        group.bench_with_input(BenchmarkId::from_parameter(tasks), &tasks, |b, _| {
            b.iter(|| initialize_with(&m, &rates, InitStrategy::Lp).expect("init"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_longest_path, bench_lp);
criterion_main!(benches);
