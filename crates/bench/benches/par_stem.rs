//! Criterion bench for the multi-chain parallel StEM engine: fixed total
//! kept-sample budget swept across chain counts, so the timings expose the
//! parallel speedup (and its Amdahl burn-in ceiling) directly.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qni_bench::chain_scaling::ChainWorkload;
use qni_core::chains::run_stem_parallel;

fn bench_par_sweep(c: &mut Criterion) {
    let workload = ChainWorkload {
        tasks: 200,
        fraction: 0.1,
        samples_total: 64,
        burn_in: 8,
        seed: 7,
    };
    let masked = workload.build();
    let mut group = c.benchmark_group("par_stem_vs_chains");
    group.sample_size(10);
    for &chains in &[1usize, 2, 4] {
        let opts = workload.options_for(chains);
        group.bench_with_input(BenchmarkId::from_parameter(chains), &opts, |b, opts| {
            b.iter(|| run_stem_parallel(&masked, None, opts).expect("parallel stem"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_par_sweep);
criterion_main!(benches);
