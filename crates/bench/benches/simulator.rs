//! Criterion bench for the discrete-event engine's throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qni_model::topology::three_tier;
use qni_sim::{Simulator, Workload};
use qni_stats::rng::rng_from_seed;

fn bench_three_tier(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate_three_tier");
    group.sample_size(10);
    for &tasks in &[500usize, 2000] {
        let bp = three_tier(10.0, 5.0, &[1, 2, 4], false).expect("structure");
        group.bench_with_input(BenchmarkId::from_parameter(tasks), &tasks, |b, &n| {
            b.iter(|| {
                let mut rng = rng_from_seed(1);
                Simulator::new(&bp.network)
                    .run(&Workload::poisson_n(10.0, n).expect("workload"), &mut rng)
                    .expect("simulation")
            });
        });
    }
    group.finish();
}

fn bench_webapp_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate_webapp");
    group.sample_size(10);
    let cfg = qni_webapp::WebAppConfig {
        requests: 1000,
        duration: 600.0,
        ramp: (0.5, 2.8),
        ..qni_webapp::WebAppConfig::default()
    };
    let tb = qni_webapp::WebAppTestbed::build(&cfg).expect("testbed");
    group.bench_function("1000_requests", |b| {
        b.iter(|| {
            let mut rng = rng_from_seed(2);
            tb.generate(&mut rng).expect("generation")
        });
    });
    group.finish();
}

criterion_group!(benches, bench_three_tier, bench_webapp_generation);
criterion_main!(benches);
