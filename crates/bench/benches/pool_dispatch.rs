//! Criterion benches for wave-dispatch overhead: the same giant-trace
//! batched sweep at shard counts {2, 4}, once through per-wave
//! `std::thread::scope` spawns and once through the persistent
//! `WavePool` (created outside the timing loop, so what is measured is
//! the steady-state enqueue + rendezvous per wave). On a 1-core host
//! both variants mostly measure context-switch overhead; the
//! `pool_speedup` binary is the tracked experiment.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qni_core::gibbs::sweep::sweep_batched_pooled;
use qni_core::init::InitStrategy;
use qni_core::{GibbsState, ShardMode, WavePool};
use qni_model::topology::{tandem, Blueprint};
use qni_sim::{Simulator, Workload};
use qni_stats::rng::rng_from_seed;
use qni_trace::ObservationScheme;

fn make_state(bp: &Blueprint, lambda: f64, tasks: usize, seed: u64) -> GibbsState {
    let mut rng = rng_from_seed(seed);
    let truth = Simulator::new(&bp.network)
        .run(
            &Workload::poisson_n(lambda, tasks).expect("workload"),
            &mut rng,
        )
        .expect("simulation");
    let masked = ObservationScheme::task_sampling(0.1)
        .expect("fraction")
        .apply(truth, &mut rng)
        .expect("mask");
    let rates = bp.network.rates().expect("rates");
    GibbsState::new(&masked, rates, InitStrategy::default()).expect("init")
}

fn bench_pool_dispatch(c: &mut Criterion) {
    let mut group = c.benchmark_group("sweep_dispatch");
    group.sample_size(10);
    // One giant single-queue trace: waves large enough to fan out.
    let state = make_state(&tandem(2.0, &[5.0]).expect("bp"), 2.0, 3000, 1);
    for shards in [2usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("scoped_mm1_3000", shards),
            &shards,
            |b, &shards| {
                let mut st = state.clone();
                let mut rng = rng_from_seed(3);
                b.iter(|| {
                    sweep_batched_pooled(&mut st, ShardMode::Sharded(shards), None, &mut rng)
                        .expect("sweep")
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("pooled_mm1_3000", shards),
            &shards,
            |b, &shards| {
                let mut st = state.clone();
                let mut rng = rng_from_seed(3);
                let mut pool = WavePool::new(shards);
                b.iter(|| {
                    sweep_batched_pooled(
                        &mut st,
                        ShardMode::Sharded(shards),
                        Some(&mut pool),
                        &mut rng,
                    )
                    .expect("sweep")
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_pool_dispatch);
criterion_main!(benches);
