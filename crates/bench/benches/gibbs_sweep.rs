//! Criterion benches for the Gibbs sweep: scaling in unobserved events
//! (should be linear) and in server count (should be flat per move).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qni_core::gibbs::sweep::sweep;
use qni_core::init::InitStrategy;
use qni_core::GibbsState;
use qni_model::topology::three_tier;
use qni_sim::{Simulator, Workload};
use qni_stats::rng::rng_from_seed;
use qni_trace::ObservationScheme;

fn make_state(tier_sizes: &[usize; 3], tasks: usize, seed: u64) -> GibbsState {
    let lambda = 2.5 * tier_sizes.iter().copied().min().unwrap_or(1) as f64;
    let bp = three_tier(lambda, 5.0, tier_sizes, false).expect("structure");
    let mut rng = rng_from_seed(seed);
    let truth = Simulator::new(&bp.network)
        .run(
            &Workload::poisson_n(lambda, tasks).expect("workload"),
            &mut rng,
        )
        .expect("simulation");
    let masked = ObservationScheme::task_sampling(0.05)
        .expect("fraction")
        .apply(truth, &mut rng)
        .expect("mask");
    let rates = bp.network.rates().expect("mm1");
    GibbsState::new(&masked, rates, InitStrategy::default()).expect("init")
}

fn bench_scaling_in_events(c: &mut Criterion) {
    let mut group = c.benchmark_group("sweep_vs_unobserved_events");
    group.sample_size(10);
    for &tasks in &[250usize, 500, 1000] {
        let state = make_state(&[1, 2, 4], tasks, 1);
        group.bench_with_input(BenchmarkId::from_parameter(tasks), &tasks, |b, _| {
            let mut st = state.clone();
            let mut rng = rng_from_seed(2);
            b.iter(|| sweep(&mut st, &mut rng).expect("sweep"));
        });
    }
    group.finish();
}

fn bench_scaling_in_servers(c: &mut Criterion) {
    let mut group = c.benchmark_group("sweep_vs_servers");
    group.sample_size(10);
    for sizes in [[1usize, 2, 4], [4, 8, 16], [16, 32, 64]] {
        let label = format!("{}-{}-{}", sizes[0], sizes[1], sizes[2]);
        let state = make_state(&sizes, 500, 3);
        group.bench_with_input(BenchmarkId::from_parameter(label), &sizes, |b, _| {
            let mut st = state.clone();
            let mut rng = rng_from_seed(4);
            b.iter(|| sweep(&mut st, &mut rng).expect("sweep"));
        });
    }
    group.finish();
}

fn bench_single_move(c: &mut Criterion) {
    let state = make_state(&[1, 2, 4], 500, 5);
    let free = state.free_arrivals().to_vec();
    c.bench_function("gibbs_arrival_move", |b| {
        let mut st = state.clone();
        let mut rng = rng_from_seed(6);
        let mut i = 0usize;
        b.iter(|| {
            let e = free[i % free.len()];
            i += 1;
            st.move_arrival(e, &mut rng).expect("move")
        });
    });
}

criterion_group!(
    benches,
    bench_scaling_in_events,
    bench_scaling_in_servers,
    bench_single_move
);
criterion_main!(benches);
