//! Criterion benches for the batched arrival-move engine: the grouped
//! sweep vs the scalar sweep on the same state, per topology.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qni_core::gibbs::sweep::{sweep, sweep_batched};
use qni_core::init::InitStrategy;
use qni_core::GibbsState;
use qni_model::topology::{tandem, three_tier, Blueprint};
use qni_sim::{Simulator, Workload};
use qni_stats::rng::rng_from_seed;
use qni_trace::ObservationScheme;

fn make_state(bp: &Blueprint, lambda: f64, tasks: usize, seed: u64) -> GibbsState {
    let mut rng = rng_from_seed(seed);
    let truth = Simulator::new(&bp.network)
        .run(
            &Workload::poisson_n(lambda, tasks).expect("workload"),
            &mut rng,
        )
        .expect("simulation");
    let masked = ObservationScheme::task_sampling(0.1)
        .expect("fraction")
        .apply(truth, &mut rng)
        .expect("mask");
    let rates = bp.network.rates().expect("mm1");
    GibbsState::new(&masked, rates, InitStrategy::default()).expect("init")
}

fn bench_batched_vs_scalar(c: &mut Criterion) {
    let mut group = c.benchmark_group("sweep_batched_vs_scalar");
    group.sample_size(10);
    let cases = [
        (
            "tandem3",
            make_state(&tandem(2.0, &[5.0, 4.0, 6.0]).expect("bp"), 2.0, 400, 1),
        ),
        (
            "forkjoin",
            make_state(
                &three_tier(8.0, 5.0, &[3, 3], false).expect("bp"),
                8.0,
                400,
                2,
            ),
        ),
    ];
    for (name, state) in cases {
        group.bench_with_input(BenchmarkId::new("scalar", name), &state, |b, st| {
            let mut st = st.clone();
            let mut rng = rng_from_seed(3);
            b.iter(|| sweep(&mut st, &mut rng).expect("sweep"));
        });
        group.bench_with_input(BenchmarkId::new("batched", name), &state, |b, st| {
            let mut st = st.clone();
            let mut rng = rng_from_seed(3);
            b.iter(|| sweep_batched(&mut st, &mut rng).expect("sweep"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_batched_vs_scalar);
criterion_main!(benches);
