//! Parallel replication running.

/// Maps `f` over `items` using `threads` scoped worker threads, preserving
/// input order in the output.
///
/// # Examples
///
/// ```
/// let squares = qni_bench::jobs::parallel_map(vec![1, 2, 3, 4], 2, |x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
pub fn parallel_map<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let threads = threads.max(1);
    if threads == 1 || items.len() <= 1 {
        return items.into_iter().map(f).collect();
    }
    let n = items.len();
    let chunk = n.div_ceil(threads);
    let mut chunks: Vec<Vec<T>> = Vec::new();
    let mut iter = items.into_iter();
    loop {
        let c: Vec<T> = iter.by_ref().take(chunk).collect();
        if c.is_empty() {
            break;
        }
        chunks.push(c);
    }
    let f = &f;
    let mut results: Vec<Vec<R>> = std::thread::scope(|s| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|c| s.spawn(move || c.into_iter().map(f).collect::<Vec<R>>()))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });
    let mut out = Vec::with_capacity(n);
    for v in results.drain(..) {
        out.extend(v);
    }
    out
}

/// Number of worker threads to use: `QNI_THREADS` or available
/// parallelism.
pub fn default_threads() -> usize {
    std::env::var("QNI_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(usize::from)
                .unwrap_or(4)
        })
        .max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let out = parallel_map((0..100).collect(), 7, |x| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_path() {
        let out = parallel_map(vec![5], 1, |x| x + 1);
        assert_eq!(out, vec![6]);
    }

    #[test]
    fn empty_input() {
        let out: Vec<i32> = parallel_map(Vec::<i32>::new(), 4, |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn default_threads_positive() {
        assert!(default_threads() >= 1);
    }
}
