//! Streaming-vs-fixed tracking experiment on a piecewise-constant
//! workload.
//!
//! The scenario an offline estimator *cannot* fit: an M/M/1 queue whose
//! arrival rate switches abruptly mid-trace. The fixed-log StEM engine
//! reports one blended λ̂ (close to neither segment); the streaming
//! engine's windowed trajectory should track each segment's true rate
//! once a window lies fully inside it. The experiment measures
//!
//! - per-window tracking error (relative λ̂ error vs. the owning
//!   segment's ground truth) for **warm** and **cold** window starts,
//! - per-window and total wall time for both modes,
//! - the fixed-log λ̂ and its error against *both* segments,
//!
//! and emits `results/BENCH_stream.json` (consumed by the CI gate and
//! the cross-run `bench_compare` check) plus the full per-window
//! trajectory as `results/stream_trajectory.csv` (uploaded as a CI
//! artifact).

use qni_core::stem::{run_stem, StemOptions};
use qni_core::stream::{run_stream, RateTrajectory, StreamOptions};
use qni_model::topology::tandem;
use qni_sim::{Simulator, Workload};
use qni_stats::rng::rng_from_seed;
use qni_trace::{MaskedLog, ObservationScheme, WindowSchedule};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Monotonic seconds since the first call — the wall clock injected into
/// [`StreamOptions::clock`] so `qni-core` itself stays wall-clock-free.
fn monotonic_secs() -> f64 {
    use std::sync::OnceLock;
    static START: OnceLock<Instant> = OnceLock::new();
    START.get_or_init(Instant::now).elapsed().as_secs_f64()
}

/// The piecewise-constant M/M/1 scenario every point runs on.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StreamScenario {
    /// Arrival rate of the first segment (`[0, switchpoint)`).
    pub lambda1: f64,
    /// Arrival rate of the second segment (`[switchpoint, horizon)`).
    pub lambda2: f64,
    /// The switch time.
    pub switchpoint: f64,
    /// Workload horizon.
    pub horizon: f64,
    /// Service rate of the single queue.
    pub mu: f64,
    /// Fraction of tasks with observed arrivals.
    pub fraction: f64,
    /// Window width of the schedule.
    pub width: f64,
    /// Window stride of the schedule.
    pub stride: f64,
    /// Per-window (and fixed-log) StEM iterations.
    pub iterations: usize,
    /// Per-window (and fixed-log) burn-in.
    pub burn_in: usize,
    /// Simulation/masking/inference master seed.
    pub seed: u64,
}

impl StreamScenario {
    /// The full-size scenario used by the `stream_tracking` binary.
    pub fn default_full() -> Self {
        StreamScenario {
            lambda1: 2.0,
            lambda2: 6.0,
            switchpoint: 100.0,
            horizon: 200.0,
            mu: 8.0,
            fraction: 0.5,
            width: 50.0,
            stride: 25.0,
            iterations: 80,
            burn_in: 40,
            seed: 7,
        }
    }

    /// A reduced scenario for CI smoke runs (`QNI_QUICK=1`).
    pub fn quick() -> Self {
        StreamScenario {
            switchpoint: 60.0,
            horizon: 120.0,
            width: 30.0,
            stride: 15.0,
            iterations: 40,
            burn_in: 20,
            ..StreamScenario::default_full()
        }
    }

    /// Simulates and masks the scenario's trace.
    pub fn build(&self) -> MaskedLog {
        let bp = tandem((self.lambda1 + self.lambda2) / 2.0, &[self.mu]).expect("topology");
        let mut rng = rng_from_seed(self.seed);
        let workload = Workload::piecewise_constant(
            vec![self.lambda1, self.lambda2],
            vec![self.switchpoint],
            self.horizon,
        )
        .expect("workload");
        let truth = Simulator::new(&bp.network)
            .run(&workload, &mut rng)
            .expect("simulation");
        ObservationScheme::task_sampling(self.fraction)
            .expect("fraction")
            .apply(truth, &mut rng)
            .expect("mask")
    }

    /// The shared per-window StEM options.
    pub fn stem_options(&self) -> StemOptions {
        StemOptions {
            iterations: self.iterations,
            burn_in: self.burn_in,
            waiting_sweeps: 1,
            ..StemOptions::default()
        }
    }

    /// The segment (0 or 1) a `[start, end)` window lies fully inside,
    /// if any. Windows straddling the switchpoint or running past the
    /// horizon are ineligible for tracking-error measurement.
    pub fn segment_of(&self, start: f64, end: f64) -> Option<usize> {
        if end <= self.switchpoint {
            Some(0)
        } else if start >= self.switchpoint && end <= self.horizon {
            Some(1)
        } else {
            None
        }
    }

    /// Ground-truth arrival rate of a segment.
    pub fn true_lambda(&self, segment: usize) -> f64 {
        if segment == 0 {
            self.lambda1
        } else {
            self.lambda2
        }
    }
}

/// Tracking-error summary of one streaming mode (warm or cold).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrackingSummary {
    /// `"warm"` or `"cold"`.
    pub mode: String,
    /// Scheduled windows in the trajectory.
    pub windows: usize,
    /// Windows fully inside one segment (tracking error is measured on
    /// these only).
    pub eligible_windows: usize,
    /// Mean relative λ̂ error over eligible windows.
    pub mean_rel_err: f64,
    /// Largest relative λ̂ error over eligible windows.
    pub max_rel_err: f64,
    /// Total wall-clock seconds for the whole stream.
    pub total_secs: f64,
    /// Mean per-window wall-clock seconds.
    pub mean_window_secs: f64,
}

/// The fixed-log baseline on the same trace.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FixedSummary {
    /// The single blended λ̂ of the whole trace.
    pub lambda_hat: f64,
    /// Relative error of `lambda_hat` against segment 1's true rate.
    pub rel_err_seg1: f64,
    /// Relative error of `lambda_hat` against segment 2's true rate.
    pub rel_err_seg2: f64,
    /// Wall-clock seconds of the fixed-log fit.
    pub secs: f64,
}

/// The full JSON report written to `BENCH_stream.json`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StreamTrackingReport {
    /// Report schema / experiment name.
    pub bench: String,
    /// Whether the reduced `QNI_QUICK` scenario was used.
    pub quick: bool,
    /// The scenario every point ran on.
    pub scenario: StreamScenario,
    /// Tasks in the simulated trace.
    pub tasks: usize,
    /// Warm-start streaming summary.
    pub warm: TrackingSummary,
    /// Cold-start streaming summary.
    pub cold: TrackingSummary,
    /// Fixed-log baseline summary.
    pub fixed: FixedSummary,
}

/// Summarizes one trajectory's tracking behaviour against the scenario.
pub fn summarize(
    scenario: &StreamScenario,
    traj: &RateTrajectory,
    mode: &str,
    total_secs: f64,
) -> TrackingSummary {
    let mut errs = Vec::new();
    for w in &traj.windows {
        if w.carried {
            continue;
        }
        if let Some(seg) = scenario.segment_of(w.start, w.end) {
            let truth = scenario.true_lambda(seg);
            errs.push((w.rates[0] - truth).abs() / truth);
        }
    }
    let eligible = errs.len();
    let mean = if eligible > 0 {
        errs.iter().sum::<f64>() / eligible as f64
    } else {
        f64::NAN
    };
    let max = errs.iter().copied().fold(f64::NAN, f64::max);
    TrackingSummary {
        mode: mode.to_owned(),
        windows: traj.windows.len(),
        eligible_windows: eligible,
        mean_rel_err: mean,
        max_rel_err: max,
        total_secs,
        mean_window_secs: total_secs / traj.windows.len().max(1) as f64,
    }
}

/// Runs the full experiment: warm stream, cold stream, fixed baseline.
///
/// Returns the report plus both trajectories (for the CSV artifact).
pub fn run_experiment(quick: bool) -> (StreamTrackingReport, RateTrajectory, RateTrajectory) {
    let scenario = if quick {
        StreamScenario::quick()
    } else {
        StreamScenario::default_full()
    };
    let masked = scenario.build();
    let schedule = WindowSchedule::new(scenario.width, scenario.stride).expect("schedule");
    let stream_opts = |warm: bool| StreamOptions {
        stem: scenario.stem_options(),
        chains: 1,
        master_seed: scenario.seed,
        thread_budget: None,
        warm_start: warm,
        warm_burn_in: None,
        occupancy_carry: true,
        clock: Some(monotonic_secs),
    };

    let start = Instant::now();
    let warm_traj = run_stream(&masked, &schedule, &stream_opts(true)).expect("warm stream");
    let warm_secs = start.elapsed().as_secs_f64();
    let start = Instant::now();
    let cold_traj = run_stream(&masked, &schedule, &stream_opts(false)).expect("cold stream");
    let cold_secs = start.elapsed().as_secs_f64();

    let start = Instant::now();
    let mut rng = rng_from_seed(scenario.seed);
    let fixed = run_stem(&masked, None, &scenario.stem_options(), &mut rng).expect("fixed fit");
    let fixed_secs = start.elapsed().as_secs_f64();
    let lambda_hat = fixed.rates[0];

    let report = StreamTrackingReport {
        bench: "stream_tracking".to_owned(),
        quick,
        tasks: masked.ground_truth().num_tasks(),
        warm: summarize(&scenario, &warm_traj, "warm", warm_secs),
        cold: summarize(&scenario, &cold_traj, "cold", cold_secs),
        fixed: FixedSummary {
            lambda_hat,
            rel_err_seg1: (lambda_hat - scenario.lambda1).abs() / scenario.lambda1,
            rel_err_seg2: (lambda_hat - scenario.lambda2).abs() / scenario.lambda2,
            secs: fixed_secs,
        },
        scenario,
    };
    (report, warm_traj, cold_traj)
}

/// Writes both trajectories as one CSV: per window and mode, the λ̂
/// against the owning segment's ground truth (empty segment for
/// straddling windows).
pub fn write_trajectory_csv<W: std::io::Write>(
    scenario: &StreamScenario,
    warm: &RateTrajectory,
    cold: &RateTrajectory,
    out: W,
) -> Result<(), qni_trace::TraceError> {
    let mut w = qni_trace::csv::CsvWriter::new(
        out,
        &[
            "mode",
            "window",
            "start",
            "end",
            "tasks",
            "lambda_hat",
            "lambda_true",
            "rel_err",
            "wall_secs",
        ],
    )?;
    for (mode, traj) in [("warm", warm), ("cold", cold)] {
        for win in &traj.windows {
            let (truth, err) = match scenario.segment_of(win.start, win.end) {
                Some(seg) if !win.carried => {
                    let t = scenario.true_lambda(seg);
                    (format!("{t}"), format!("{}", (win.rates[0] - t).abs() / t))
                }
                _ => (String::new(), String::new()),
            };
            w.row(&[
                mode.to_owned(),
                win.index.to_string(),
                format!("{}", win.start),
                format!("{}", win.end),
                win.tasks.to_string(),
                format!("{}", win.rates[0]),
                truth,
                err,
                format!("{}", win.wall_secs),
            ])?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segment_classification() {
        let s = StreamScenario::default_full();
        assert_eq!(s.segment_of(0.0, 50.0), Some(0));
        assert_eq!(s.segment_of(50.0, 100.0), Some(0));
        assert_eq!(s.segment_of(100.0, 150.0), Some(1));
        assert_eq!(s.segment_of(75.0, 125.0), None); // Straddles.
        assert_eq!(s.segment_of(175.0, 225.0), None); // Past horizon.
        assert_eq!(s.true_lambda(0), 2.0);
        assert_eq!(s.true_lambda(1), 6.0);
    }

    #[test]
    fn report_round_trips_through_json() {
        let scenario = StreamScenario::quick();
        let summary = TrackingSummary {
            mode: "warm".into(),
            windows: 8,
            eligible_windows: 6,
            mean_rel_err: 0.07,
            max_rel_err: 0.12,
            total_secs: 1.5,
            mean_window_secs: 0.19,
        };
        let report = StreamTrackingReport {
            bench: "stream_tracking".into(),
            quick: true,
            scenario,
            tasks: 480,
            warm: summary.clone(),
            cold: summary,
            fixed: FixedSummary {
                lambda_hat: 4.1,
                rel_err_seg1: 1.05,
                rel_err_seg2: 0.32,
                secs: 0.4,
            },
        };
        let json = serde_json::to_string(&report).expect("json");
        let back: StreamTrackingReport = serde_json::from_str(&json).expect("parse");
        assert_eq!(back.bench, "stream_tracking");
        assert_eq!(back.warm.eligible_windows, 6);
        assert!((back.fixed.lambda_hat - 4.1).abs() < 1e-12);
    }
}
