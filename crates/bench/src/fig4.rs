//! Figure 4: StEM accuracy on synthetic three-tier networks.
//!
//! The paper samples five three-tier structures (server counts permuted
//! so the bottleneck moves), `λ = 10`, `µ = 5` everywhere, 1000 tasks,
//! observes all arrivals of {5%, 10%, 25%} of tasks, runs StEM + Gibbs,
//! and plots the absolute error of per-queue mean service (left panel)
//! and waiting (right panel) estimates over 10 repetitions.

use qni_core::estimates::{absolute_errors, ErrorField};
use qni_core::stem::{run_stem, StemOptions};
use qni_model::topology::three_tier;
use qni_sim::{Simulator, Workload};
use qni_stats::rng::{rng_from_seed, SeedTree};
use qni_trace::ObservationScheme;

/// Configuration of the Figure 4 experiment.
#[derive(Debug, Clone)]
pub struct Fig4Config {
    /// Tier structures (servers per tier).
    pub structures: Vec<[usize; 3]>,
    /// Fractions of tasks observed.
    pub fractions: Vec<f64>,
    /// Tasks per dataset.
    pub tasks: usize,
    /// Repetitions per (structure, fraction).
    pub reps: usize,
    /// Arrival rate λ.
    pub lambda: f64,
    /// Service rate µ for every queue.
    pub mu: f64,
    /// StEM options.
    pub stem: StemOptions,
    /// Root seed.
    pub seed: u64,
}

impl Default for Fig4Config {
    fn default() -> Self {
        Fig4Config {
            structures: vec![[1, 2, 4], [2, 1, 4], [4, 2, 1], [2, 4, 1], [1, 4, 2]],
            fractions: vec![0.05, 0.10, 0.25],
            tasks: 1000,
            reps: 10,
            lambda: 10.0,
            mu: 5.0,
            stem: StemOptions {
                iterations: 150,
                burn_in: 75,
                waiting_sweeps: 20,
                ..StemOptions::default()
            },
            seed: 20080101,
        }
    }
}

impl Fig4Config {
    /// A reduced configuration for smoke tests.
    pub fn quick() -> Self {
        Fig4Config {
            structures: vec![[1, 2, 4]],
            fractions: vec![0.10],
            tasks: 150,
            reps: 2,
            stem: StemOptions::quick_test(),
            ..Fig4Config::default()
        }
    }
}

/// One per-queue error observation (one point in the paper's plots).
#[derive(Debug, Clone)]
pub struct ErrorRow {
    /// Structure label, e.g. `"1-2-4"`.
    pub structure: String,
    /// Fraction of tasks observed.
    pub fraction: f64,
    /// Repetition index.
    pub rep: usize,
    /// Queue index within the network.
    pub queue: usize,
    /// Absolute error of the mean service estimate.
    pub service_err: f64,
    /// Absolute error of the mean waiting estimate.
    pub waiting_err: f64,
}

/// One (structure, fraction, rep) job.
#[derive(Debug, Clone)]
pub struct Job {
    /// Structure of the run.
    pub structure: [usize; 3],
    /// Observed fraction.
    pub fraction: f64,
    /// Repetition index.
    pub rep: usize,
    /// Dedicated seed.
    pub seed: u64,
}

/// Enumerates all jobs of a configuration.
pub fn jobs(cfg: &Fig4Config) -> Vec<Job> {
    let tree = SeedTree::new(cfg.seed);
    let mut out = Vec::new();
    for (si, &structure) in cfg.structures.iter().enumerate() {
        for (fi, &fraction) in cfg.fractions.iter().enumerate() {
            for rep in 0..cfg.reps {
                let seed = tree
                    .child(si as u64)
                    .child(fi as u64)
                    .child(rep as u64)
                    .root();
                out.push(Job {
                    structure,
                    fraction,
                    rep,
                    seed,
                });
            }
        }
    }
    out
}

/// Runs one job, returning one error row per real queue.
pub fn run_job(cfg: &Fig4Config, job: &Job) -> Vec<ErrorRow> {
    let bp = three_tier(cfg.lambda, cfg.mu, &job.structure, false).expect("valid structure");
    let mut rng = rng_from_seed(job.seed);
    let truth = Simulator::new(&bp.network)
        .run(
            &Workload::poisson_n(cfg.lambda, cfg.tasks).expect("valid workload"),
            &mut rng,
        )
        .expect("simulation");
    let masked = ObservationScheme::task_sampling(job.fraction)
        .expect("valid fraction")
        .apply(truth, &mut rng)
        .expect("mask");
    let result = run_stem(&masked, None, &cfg.stem, &mut rng).expect("stem");
    let truths = masked.ground_truth().queue_averages();
    let service_errs =
        absolute_errors(&result.mean_service, &truths, ErrorField::Service).expect("shape");
    let waiting_errs =
        absolute_errors(&result.mean_waiting, &truths, ErrorField::Waiting).expect("shape");
    let label = format!(
        "{}-{}-{}",
        job.structure[0], job.structure[1], job.structure[2]
    );
    service_errs
        .into_iter()
        .zip(waiting_errs)
        .map(|((q, se), (_, we))| ErrorRow {
            structure: label.clone(),
            fraction: job.fraction,
            rep: job.rep,
            queue: q,
            service_err: se,
            waiting_err: we,
        })
        .collect()
}

/// Summary per fraction: the quartiles the paper's box plots show.
#[derive(Debug, Clone)]
pub struct FractionSummary {
    /// Observed fraction.
    pub fraction: f64,
    /// Number of error observations.
    pub n: usize,
    /// Median absolute service error.
    pub service_median: f64,
    /// 90th percentile service error.
    pub service_p90: f64,
    /// Median absolute waiting error.
    pub waiting_median: f64,
    /// 90th percentile waiting error.
    pub waiting_p90: f64,
}

/// Summarizes error rows per fraction.
pub fn summarize(rows: &[ErrorRow], fractions: &[f64]) -> Vec<FractionSummary> {
    fractions
        .iter()
        .map(|&f| {
            let mut s: Vec<f64> = rows
                .iter()
                .filter(|r| r.fraction == f)
                .map(|r| r.service_err)
                .collect();
            let mut w: Vec<f64> = rows
                .iter()
                .filter(|r| r.fraction == f)
                .map(|r| r.waiting_err)
                .collect();
            s.sort_by(f64::total_cmp);
            w.sort_by(f64::total_cmp);
            use qni_stats::descriptive::quantile_sorted;
            FractionSummary {
                fraction: f,
                n: s.len(),
                service_median: if s.is_empty() {
                    f64::NAN
                } else {
                    quantile_sorted(&s, 0.5)
                },
                service_p90: if s.is_empty() {
                    f64::NAN
                } else {
                    quantile_sorted(&s, 0.9)
                },
                waiting_median: if w.is_empty() {
                    f64::NAN
                } else {
                    quantile_sorted(&w, 0.5)
                },
                waiting_p90: if w.is_empty() {
                    f64::NAN
                } else {
                    quantile_sorted(&w, 0.9)
                },
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jobs_enumeration() {
        let cfg = Fig4Config::default();
        let js = jobs(&cfg);
        assert_eq!(js.len(), 5 * 3 * 10);
        // All seeds distinct.
        let mut seeds: Vec<u64> = js.iter().map(|j| j.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 150);
    }

    #[test]
    fn quick_job_runs_and_produces_rows() {
        let cfg = Fig4Config::quick();
        let js = jobs(&cfg);
        let rows = run_job(&cfg, &js[0]);
        // One row per real queue: 1+2+4 = 7.
        assert_eq!(rows.len(), 7);
        for r in &rows {
            assert!(r.service_err.is_finite() && r.service_err >= 0.0);
            assert!(r.waiting_err.is_finite() && r.waiting_err >= 0.0);
        }
    }

    #[test]
    fn summary_shapes() {
        let rows = vec![
            ErrorRow {
                structure: "1-2-4".into(),
                fraction: 0.1,
                rep: 0,
                queue: 1,
                service_err: 0.02,
                waiting_err: 0.5,
            },
            ErrorRow {
                structure: "1-2-4".into(),
                fraction: 0.1,
                rep: 0,
                queue: 2,
                service_err: 0.04,
                waiting_err: 1.5,
            },
        ];
        let s = summarize(&rows, &[0.1, 0.25]);
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].n, 2);
        assert!((s[0].service_median - 0.03).abs() < 1e-12);
        assert_eq!(s[1].n, 0);
        assert!(s[1].service_median.is_nan());
    }
}
