//! Verifies the §5.2 scaling claim: "the sampler scales primarily in the
//! number of unobserved arrival events, not in the number of servers."
//!
//! Sweep A grows the task count at a fixed topology — ns/move should stay
//! flat while ms/sweep grows linearly. Sweep B grows the servers per tier
//! at a fixed task count — ns/move should stay roughly flat even as the
//! server count increases 16×.
//!
//! Usage: `cargo run --release -p qni-bench --bin scaling_table`

use qni_bench::scaling::measure;
use qni_bench::table;
use qni_trace::csv::CsvWriter;

fn main() {
    let quick = qni_bench::quick_mode();
    let sweeps = if quick { 3 } else { 10 };
    let task_points: Vec<usize> = if quick {
        vec![100, 200]
    } else {
        vec![250, 500, 1000, 2000, 4000]
    };
    let server_points: Vec<[usize; 3]> = if quick {
        vec![[1, 2, 4], [2, 4, 8]]
    } else {
        vec![[1, 2, 4], [2, 4, 8], [4, 8, 16], [8, 16, 32], [16, 32, 64]]
    };
    let tasks_fixed = if quick { 200 } else { 1000 };

    let mut all = Vec::new();
    println!("sweep A: tasks grow, topology fixed (1-2-4):");
    for (i, &t) in task_points.iter().enumerate() {
        let p = measure(&[1, 2, 4], t, 0.05, sweeps, 100 + i as u64);
        println!(
            "  {:<28} free={:<6} ns/move={:<8} ms/sweep={}",
            p.label,
            p.free_vars,
            table::num(p.ns_per_move),
            table::num(p.ms_per_sweep)
        );
        all.push(("A".to_owned(), p));
    }
    println!("sweep B: servers grow, tasks fixed ({tasks_fixed}):");
    for (i, s) in server_points.iter().enumerate() {
        let p = measure(s, tasks_fixed, 0.05, sweeps, 200 + i as u64);
        println!(
            "  {:<28} servers={:<4} free={:<6} ns/move={:<8} ms/sweep={}",
            p.label,
            p.servers,
            p.free_vars,
            table::num(p.ns_per_move),
            table::num(p.ms_per_sweep)
        );
        all.push(("B".to_owned(), p));
    }

    let path = qni_bench::results_dir().join("scaling_table.csv");
    let file = std::fs::File::create(&path).expect("create scaling_table.csv");
    let mut w = CsvWriter::new(
        file,
        &[
            "sweep",
            "label",
            "free_vars",
            "servers",
            "ns_per_move",
            "ms_per_sweep",
        ],
    )
    .expect("csv header");
    for (sweep_id, p) in &all {
        w.row(&[
            sweep_id.clone(),
            p.label.clone(),
            format!("{}", p.free_vars),
            format!("{}", p.servers),
            format!("{}", p.ns_per_move),
            format!("{}", p.ms_per_sweep),
        ])
        .expect("csv row");
    }
    println!("csv: {}", path.display());

    // Quantify the claim: cost-per-move spread across sweep B.
    let b_moves: Vec<f64> = all
        .iter()
        .filter(|(s, _)| s == "B")
        .map(|(_, p)| p.ns_per_move)
        .collect();
    if b_moves.len() >= 2 {
        let min = b_moves.iter().copied().fold(f64::INFINITY, f64::min);
        let max = b_moves.iter().copied().fold(0.0f64, f64::max);
        println!(
            "sweep B ns/move spread: {:.2}x across a {}x server range \
             (claim holds when ≪ server range)",
            max / min,
            all.iter()
                .filter(|(s, _)| s == "B")
                .map(|(_, p)| p.servers)
                .max()
                .unwrap_or(1)
                / all
                    .iter()
                    .filter(|(s, _)| s == "B")
                    .map(|(_, p)| p.servers)
                    .min()
                    .unwrap_or(1)
        );
    }
}
