//! Chain-scaling experiment: multi-chain StEM wall-clock speedup at
//! K ∈ {1, 2, 4, 8} under a fixed total post-burn-in sample budget.
//!
//! Emits `results/BENCH_chains.json` (machine-readable, consumed by the
//! CI `bench-smoke` job) and a console table. Two environment knobs:
//!
//! - `QNI_QUICK=1` — reduced workload for smoke runs.
//! - `QNI_SPEEDUP_GATE=<f64>` — exit nonzero unless the K=4 point's
//!   wall-clock speedup over K=1 meets the gate (e.g. `1.1`; CI uses a
//!   generous threshold to tolerate runner noise).
//!
//! Usage: `cargo run --release -p qni-bench --bin chain_scaling`

use qni_bench::chain_scaling::{run_experiment, ChainScalingReport, ChainWorkload};
use std::process::ExitCode;

const CHAIN_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn main() -> ExitCode {
    let quick = qni_bench::quick_mode();
    let workload = if quick {
        ChainWorkload::quick()
    } else {
        ChainWorkload::default_full()
    };
    let threads = std::thread::available_parallelism()
        .map(usize::from)
        .unwrap_or(1);
    println!(
        "chain scaling on {} tasks ({}% observed), {} total kept samples, \
         {} burn-in/chain, {} hw threads{}:",
        workload.tasks,
        workload.fraction * 100.0,
        workload.samples_total,
        workload.burn_in,
        threads,
        if quick { " [quick]" } else { "" }
    );

    let points = run_experiment(&workload, &CHAIN_COUNTS);
    println!(
        "  {:<7} {:>10} {:>9} {:>11} {:>13} {:>10} {:>8}",
        "chains", "wall s", "speedup", "efficiency", "max split-R̂", "min ESS", "λ̂"
    );
    for p in &points {
        println!(
            "  K={:<5} {:>10.3} {:>8.2}x {:>11.2} {:>13.3} {:>10.1} {:>8.3}",
            p.chains,
            p.wall_secs,
            p.speedup,
            p.efficiency,
            p.max_split_rhat,
            p.min_ess,
            p.lambda_hat
        );
    }

    let report = ChainScalingReport {
        bench: "chain_scaling".to_owned(),
        quick,
        available_parallelism: threads,
        workload,
        points,
    };
    let path = qni_bench::results_dir().join("BENCH_chains.json");
    let json = serde_json::to_string(&report).expect("serialize report");
    std::fs::write(&path, json + "\n").expect("write BENCH_chains.json");
    println!("json: {}", path.display());

    // Anti-regression gate for CI: K=4 must beat K=1 by the given factor.
    if let Ok(gate) = std::env::var("QNI_SPEEDUP_GATE") {
        let gate: f64 = gate.parse().expect("QNI_SPEEDUP_GATE must be a number");
        if threads < 2 {
            // A single hardware thread cannot show parallel speedup; the
            // gate would only measure scheduler overhead.
            println!("gate skipped: only {threads} hw thread(s) available");
            return ExitCode::SUCCESS;
        }
        let k4 = report
            .points
            .iter()
            .find(|p| p.chains == 4)
            .expect("K=4 point");
        if k4.speedup < gate {
            eprintln!(
                "FAIL: K=4 speedup {:.2}x is below the gate {gate:.2}x",
                k4.speedup
            );
            return ExitCode::FAILURE;
        }
        println!("gate ok: K=4 speedup {:.2}x >= {gate:.2}x", k4.speedup);
    }
    ExitCode::SUCCESS
}
