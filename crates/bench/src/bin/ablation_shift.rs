//! Ablation: the rigid task-shift move (extension beyond the paper).
//!
//! Single-site Gibbs moves make a fully-unobserved task's times perform a
//! coupled random walk, so chains mix slowly on sparsely observed queues.
//! This harness estimates the web-application service times with and
//! without the shift move at several iteration budgets; the shift move
//! should reach the truth with far fewer sweeps.
//!
//! Usage: `cargo run --release -p qni-bench --bin ablation_shift`

use qni_bench::jobs::{default_threads, parallel_map};
use qni_bench::table;
use qni_core::stem::{run_stem, StemOptions};
use qni_stats::rng::rng_from_seed;
use qni_trace::csv::CsvWriter;
use qni_trace::ObservationScheme;
use qni_webapp::{WebAppConfig, WebAppTestbed};

fn main() {
    let quick = qni_bench::quick_mode();
    let cfg = WebAppConfig {
        requests: if quick { 200 } else { 800 },
        duration: if quick { 200.0 } else { 800.0 },
        ramp: (0.5, 1.5),
        ..WebAppConfig::default()
    };
    let tb = WebAppTestbed::build(&cfg).expect("testbed");
    let mut rng = rng_from_seed(1);
    let truth = tb.generate(&mut rng).expect("generation");
    let truth_avg = truth.queue_averages();
    // Mean true web service across the nine healthy servers.
    let web_truth: f64 = tb.web_queues()[..9]
        .iter()
        .map(|q| truth_avg[q.index()].mean_service)
        .sum::<f64>()
        / 9.0;
    let masked = ObservationScheme::task_sampling(0.2)
        .expect("fraction")
        .apply(truth, &mut rng)
        .expect("mask");

    let budgets: Vec<usize> = if quick {
        vec![25, 50]
    } else {
        vec![50, 100, 200, 400, 800]
    };
    let mut jobs = Vec::new();
    for &iters in &budgets {
        for shift in [false, true] {
            jobs.push((iters, shift));
        }
    }
    let masked_ref = &masked;
    let results = parallel_map(jobs, default_threads(), move |(iters, shift)| {
        let opts = StemOptions {
            iterations: iters,
            burn_in: iters / 2,
            waiting_sweeps: 5,
            shift_moves: shift,
            ..StemOptions::default()
        };
        let mut rng = rng_from_seed(7 + iters as u64);
        let r = run_stem(masked_ref, None, &opts, &mut rng).expect("stem");
        // Mean absolute relative error over healthy web servers.
        let err: f64 = tb.web_queues()[..9]
            .iter()
            .map(|q| (r.mean_service[q.index()] - web_truth).abs() / web_truth)
            .sum::<f64>()
            / 9.0;
        (iters, shift, err)
    });

    let path = qni_bench::results_dir().join("ablation_shift.csv");
    let file = std::fs::File::create(&path).expect("create csv");
    let mut w =
        CsvWriter::new(file, &["iterations", "shift_moves", "web_rel_err"]).expect("header");
    let mut rows = Vec::new();
    for &iters in &budgets {
        let without = results
            .iter()
            .find(|r| r.0 == iters && !r.1)
            .expect("row")
            .2;
        let with = results.iter().find(|r| r.0 == iters && r.1).expect("row").2;
        w.row(&[iters.to_string(), "false".into(), without.to_string()])
            .expect("row");
        w.row(&[iters.to_string(), "true".into(), with.to_string()])
            .expect("row");
        rows.push(vec![
            iters.to_string(),
            table::num(without),
            table::num(with),
        ]);
    }
    println!(
        "mean relative error of healthy-web-server service estimates\n(20% observed, synthetic webapp):\n"
    );
    println!(
        "{}",
        table::render(
            &["iterations", "single-site only", "with shift move"],
            &rows
        )
    );
    println!("csv: {}", path.display());
}
