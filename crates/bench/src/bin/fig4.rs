//! Regenerates the paper's Figure 4: StEM absolute error in per-queue
//! service (left panel) and waiting (right panel) estimates vs. the
//! fraction of tasks observed, over five synthetic three-tier structures.
//!
//! Paper reference points (at 5% observed): median absolute service error
//! 0.033, median absolute waiting error 1.35.
//!
//! Usage: `cargo run --release -p qni-bench --bin fig4`
//! (set `QNI_QUICK=1` for a fast smoke run).

use qni_bench::fig4::{jobs, run_job, summarize, Fig4Config};
use qni_bench::jobs::{default_threads, parallel_map};
use qni_bench::table;
use qni_trace::csv::CsvWriter;

fn main() {
    let cfg = if qni_bench::quick_mode() {
        Fig4Config::quick()
    } else {
        Fig4Config::default()
    };
    eprintln!(
        "fig4: {} structures x {} fractions x {} reps, {} tasks each",
        cfg.structures.len(),
        cfg.fractions.len(),
        cfg.reps,
        cfg.tasks
    );
    let all_jobs = jobs(&cfg);
    let cfg_ref = &cfg;
    let rows: Vec<_> = parallel_map(all_jobs, default_threads(), |job| run_job(cfg_ref, &job))
        .into_iter()
        .flatten()
        .collect();

    // Raw CSV: one row per (structure, fraction, rep, queue).
    let path = qni_bench::results_dir().join("fig4.csv");
    let file = std::fs::File::create(&path).expect("create fig4.csv");
    let mut w = CsvWriter::new(
        file,
        &[
            "structure",
            "fraction",
            "rep",
            "queue",
            "service_abs_err",
            "waiting_abs_err",
        ],
    )
    .expect("csv header");
    for r in &rows {
        w.row(&[
            r.structure.clone(),
            format!("{}", r.fraction),
            format!("{}", r.rep),
            format!("{}", r.queue),
            format!("{}", r.service_err),
            format!("{}", r.waiting_err),
        ])
        .expect("csv row");
    }

    // Console summary matching the paper's box-plot quartiles.
    let summaries = summarize(&rows, &cfg.fractions);
    let table_rows: Vec<Vec<String>> = summaries
        .iter()
        .map(|s| {
            vec![
                format!("{:.0}%", s.fraction * 100.0),
                format!("{}", s.n),
                table::num(s.service_median),
                table::num(s.service_p90),
                table::num(s.waiting_median),
                table::num(s.waiting_p90),
            ]
        })
        .collect();
    println!(
        "{}",
        table::render(
            &[
                "observed",
                "n",
                "service med|err|",
                "service p90",
                "waiting med|err|",
                "waiting p90",
            ],
            &table_rows,
        )
    );
    println!("paper @5%: service median |err| = 0.033, waiting median |err| = 1.35");
    println!("csv: {}", path.display());
}
