//! Persistent-pool dispatch experiment: end-to-end StEM wall-clock
//! under pooled vs per-wave-scoped dispatch at shard counts {2, 4} on
//! M/M/1, tandem-3, and fork-join workloads, plus the raw per-sweep
//! dispatch-path timings at the max shard count.
//!
//! Emits `results/BENCH_pool.json` (machine-readable, consumed by the
//! CI `bench-smoke` job and the cross-run `bench_compare` check) and a
//! console table. Environment knobs:
//!
//! - `QNI_QUICK=1` — reduced workload for smoke runs.
//! - `QNI_POOL_GATE=<f64>` — exit nonzero unless the tandem-3 point's
//!   max-shard pooled-over-scoped speedup meets the gate. Skipped
//!   automatically on single-thread hosts (this dev container
//!   included), where both dispatch modes serialize onto one core and
//!   the ratio is noise.
//!
//! Dispatch is contractually byte-identical in either mode; the
//! experiment asserts λ̂ equality across configurations as it measures.
//!
//! Usage: `cargo run --release -p qni-bench --bin pool_speedup`

use qni_bench::pool_speedup::run_experiment;
use std::process::ExitCode;

fn main() -> ExitCode {
    let quick = qni_bench::quick_mode();
    println!(
        "persistent-pool wave dispatch{}:",
        if quick { " [quick]" } else { "" }
    );
    let report = run_experiment(quick);
    println!("  host threads: {}", report.host_threads);
    println!(
        "  {:<9} {:>9} {:>10} {:>10} {:>10} {:>10} {:>7} {:>7} {:>11} {:>11}",
        "workload",
        "free arr",
        "scope2 s",
        "pool2 s",
        "scope4 s",
        "pool4 s",
        "x2",
        "x4",
        "scope µs/sw",
        "pool µs/sw"
    );
    for p in &report.points {
        println!(
            "  {:<9} {:>9} {:>10.3} {:>10.3} {:>10.3} {:>10.3} {:>6.2}x {:>6.2}x {:>11.0} {:>11.0}",
            p.name,
            p.free_arrivals,
            p.scoped_secs[0],
            p.pooled_secs[0],
            p.scoped_secs[1],
            p.pooled_secs[1],
            p.speedup[0],
            p.speedup[1],
            p.scoped_sweep_micros,
            p.pooled_sweep_micros
        );
    }

    let path = qni_bench::results_dir().join("BENCH_pool.json");
    let json = serde_json::to_string(&report).expect("serialize report");
    std::fs::write(&path, json + "\n").expect("write BENCH_pool.json");
    println!("json: {}", path.display());

    // Anti-regression gate for CI: the pool must not be slower than
    // per-wave spawns on the tandem-3 workload (gate < 1 tolerates
    // runner noise). Meaningless on a single hardware thread, where the
    // gate is skipped (the byte-identity λ̂ assertion still ran).
    if let Ok(gate) = std::env::var("QNI_POOL_GATE") {
        let gate: f64 = gate.parse().expect("QNI_POOL_GATE must be a number");
        if report.host_threads < 2 {
            println!(
                "gate skipped: host has {} hardware thread(s); dispatch modes only differ \
                 under real parallelism",
                report.host_threads
            );
            return ExitCode::SUCCESS;
        }
        let t3 = report
            .points
            .iter()
            .find(|p| p.name == "tandem3")
            .expect("tandem3 point");
        let speedup = *t3.speedup.last().expect("speedup entries");
        if speedup < gate {
            eprintln!(
                "FAIL: tandem3 max-shard pool speedup {speedup:.2}x is below the gate {gate:.2}x"
            );
            return ExitCode::FAILURE;
        }
        println!("gate ok: tandem3 max-shard pool speedup {speedup:.2}x >= {gate:.2}x");
    }
    ExitCode::SUCCESS
}
