//! Intra-trace sharding speedup experiment: single-chain StEM
//! wall-clock at shard counts {1, 2, 4} on M/M/1, tandem-3, and
//! fork-join workloads, with the per-workload deferred-move fraction.
//!
//! Emits `results/BENCH_shard.json` (machine-readable, consumed by the
//! CI `bench-smoke` job and the cross-run `bench_compare` check) and a
//! console table. Environment knobs:
//!
//! - `QNI_QUICK=1` — reduced workload for smoke runs.
//! - `QNI_SHARD_GATE=<f64>` — exit nonzero unless the tandem-3 point's
//!   shards=4 speedup over shards=1 meets the gate. Skipped
//!   automatically on single-thread hosts (this dev container included):
//!   with one hardware thread, shards=4 ≤ 1x by construction.
//!
//! Sharding is contractually byte-identical at every shard count; the
//! experiment asserts λ̂ equality across shard counts as it measures.
//!
//! Usage: `cargo run --release -p qni-bench --bin shard_speedup`

use qni_bench::shard_speedup::run_experiment;
use std::process::ExitCode;

fn main() -> ExitCode {
    let quick = qni_bench::quick_mode();
    println!(
        "intra-trace sharded sweeps{}:",
        if quick { " [quick]" } else { "" }
    );
    let report = run_experiment(quick);
    println!("  host threads: {}", report.host_threads);
    println!(
        "  {:<9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>10} {:>9}",
        "workload", "free arr", "s=1 s", "s=2 s", "s=4 s", "x2", "x4", "deferred%", "λ̂"
    );
    for p in &report.points {
        println!(
            "  {:<9} {:>9} {:>9.3} {:>9.3} {:>9.3} {:>8.2}x {:>8.2}x {:>9.2} {:>9.3}",
            p.name,
            p.free_arrivals,
            p.secs[0],
            p.secs[1],
            p.secs[2],
            p.speedup[1],
            p.speedup[2],
            p.deferred_fraction * 100.0,
            p.lambda
        );
    }

    let path = qni_bench::results_dir().join("BENCH_shard.json");
    let json = serde_json::to_string(&report).expect("serialize report");
    std::fs::write(&path, json + "\n").expect("write BENCH_shard.json");
    println!("json: {}", path.display());

    // Anti-regression gate for CI: shards=4 must beat shards=1 on the
    // tandem-3 workload. Meaningless on a single hardware thread, where
    // the gate is skipped (the byte-identity λ̂ assertion still ran).
    if let Ok(gate) = std::env::var("QNI_SHARD_GATE") {
        let gate: f64 = gate.parse().expect("QNI_SHARD_GATE must be a number");
        if report.host_threads < 2 {
            println!(
                "gate skipped: host has {} hardware thread(s); shards=4 cannot beat shards=1 here",
                report.host_threads
            );
            return ExitCode::SUCCESS;
        }
        let t3 = report
            .points
            .iter()
            .find(|p| p.name == "tandem3")
            .expect("tandem3 point");
        let speedup4 = *t3.speedup.last().expect("speedup entries");
        if speedup4 < gate {
            eprintln!("FAIL: tandem3 shards=4 speedup {speedup4:.2}x is below the gate {gate:.2}x");
            return ExitCode::FAILURE;
        }
        println!("gate ok: tandem3 shards=4 speedup {speedup4:.2}x >= {gate:.2}x");
    }
    ExitCode::SUCCESS
}
