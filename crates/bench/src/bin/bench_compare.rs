//! Cross-run benchmark regression check (see `qni_bench::compare`).
//!
//! Compares the current run's `BENCH_batch.json` / `BENCH_shard.json` /
//! `BENCH_chains.json` / `BENCH_stream.json` against the previous
//! successful CI run's downloaded artifact and exits nonzero on a
//! regression. A missing or unreadable previous artifact is *not* an
//! error — the absolute `QNI_*_GATE` gates in the bench binaries are
//! the fallback for that case.
//!
//! Usage:
//!   bench_compare --kind batch|shard|chains|stream \
//!       --current results/BENCH_batch.json \
//!       --previous prev/BENCH_batch.json [--min-ratio 0.75]

use qni_bench::compare::{
    compare_batch, compare_chains, compare_shard, compare_stream, Outcome, DEFAULT_MIN_RATIO,
};
use std::process::ExitCode;

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn read_report<T: for<'de> serde::Deserialize<'de>>(path: &str, what: &str) -> Result<T, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("{what} `{path}` unreadable: {e}"))?;
    serde_json::from_str(&text).map_err(|e| format!("{what} `{path}` unparsable: {e:?}"))
}

/// Runs one comparison kind: the *current* report must parse (it was
/// produced by this run); only the previous one may be missing, which
/// yields [`Outcome::NoBaseline`].
fn run_compare<T: for<'de> serde::Deserialize<'de>>(
    current: &str,
    previous: &str,
    min_ratio: f64,
    f: impl Fn(&T, &T, f64) -> Outcome,
) -> Result<Outcome, String> {
    let cur: T = read_report(current, "current report")?;
    Ok(match read_report::<T>(previous, "previous artifact") {
        Ok(prev) => f(&cur, &prev, min_ratio),
        Err(why) => Outcome::NoBaseline(why),
    })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (Some(kind), Some(current), Some(previous)) = (
        flag(&args, "--kind"),
        flag(&args, "--current"),
        flag(&args, "--previous"),
    ) else {
        eprintln!(
            "usage: bench_compare --kind batch|shard|chains|stream \
             --current FILE --previous FILE [--min-ratio R]"
        );
        return ExitCode::FAILURE;
    };
    let min_ratio: f64 = flag(&args, "--min-ratio")
        .map(|v| v.parse().expect("--min-ratio must be a number"))
        .unwrap_or(DEFAULT_MIN_RATIO);

    let outcome = match kind.as_str() {
        "batch" => run_compare(&current, &previous, min_ratio, compare_batch),
        "shard" => run_compare(&current, &previous, min_ratio, compare_shard),
        "chains" => run_compare(&current, &previous, min_ratio, compare_chains),
        "stream" => run_compare(&current, &previous, min_ratio, compare_stream),
        other => {
            eprintln!(
                "error: --kind must be `batch`, `shard`, `chains`, or `stream`, got `{other}`"
            );
            return ExitCode::FAILURE;
        }
    };
    let outcome = match outcome {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    println!("cross-run comparison ({kind}, min ratio {min_ratio}):");
    for line in outcome.lines() {
        println!("  {line}");
    }
    if outcome.is_regression() {
        eprintln!("FAIL: benchmark regressed vs the previous run's artifact");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
