//! Cross-run benchmark regression check (see `qni_bench::compare`).
//!
//! Compares the current run's `BENCH_batch.json` / `BENCH_shard.json`
//! against the previous successful CI run's downloaded artifact and
//! exits nonzero on a regression. A missing or unreadable previous
//! artifact is *not* an error — the absolute `QNI_*_GATE` gates in the
//! bench binaries are the fallback for that case.
//!
//! Usage:
//!   bench_compare --kind batch --current results/BENCH_batch.json \
//!       --previous prev/BENCH_batch.json [--min-ratio 0.75]

use qni_bench::compare::{compare_batch, compare_shard, Outcome, DEFAULT_MIN_RATIO};
use std::process::ExitCode;

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn read_report<T: for<'de> serde::Deserialize<'de>>(path: &str, what: &str) -> Result<T, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("{what} `{path}` unreadable: {e}"))?;
    serde_json::from_str(&text).map_err(|e| format!("{what} `{path}` unparsable: {e:?}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (Some(kind), Some(current), Some(previous)) = (
        flag(&args, "--kind"),
        flag(&args, "--current"),
        flag(&args, "--previous"),
    ) else {
        eprintln!("usage: bench_compare --kind batch|shard --current FILE --previous FILE [--min-ratio R]");
        return ExitCode::FAILURE;
    };
    let min_ratio: f64 = flag(&args, "--min-ratio")
        .map(|v| v.parse().expect("--min-ratio must be a number"))
        .unwrap_or(DEFAULT_MIN_RATIO);

    let outcome = match kind.as_str() {
        "batch" => {
            // The *current* report must parse — it was produced by this
            // run. Only the previous one may be missing.
            let cur = match read_report(&current, "current report") {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match read_report(&previous, "previous artifact") {
                Ok(prev) => compare_batch(&cur, &prev, min_ratio),
                Err(why) => Outcome::NoBaseline(why),
            }
        }
        "shard" => {
            let cur = match read_report(&current, "current report") {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match read_report(&previous, "previous artifact") {
                Ok(prev) => compare_shard(&cur, &prev, min_ratio),
                Err(why) => Outcome::NoBaseline(why),
            }
        }
        other => {
            eprintln!("error: --kind must be `batch` or `shard`, got `{other}`");
            return ExitCode::FAILURE;
        }
    };

    println!("cross-run comparison ({kind}, min ratio {min_ratio}):");
    for line in outcome.lines() {
        println!("  {line}");
    }
    if outcome.is_regression() {
        eprintln!("FAIL: benchmark regressed vs the previous run's artifact");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
