//! Cross-run benchmark regression check (see `qni_bench::compare`).
//!
//! Two modes, both exiting nonzero on a regression:
//!
//! - **Pairwise**: `--previous FILE` compares the current `BENCH_*.json`
//!   against the single previous successful run's downloaded artifact.
//! - **Rolling history**: `--history-dir DIR [--keep K]` compares each
//!   headline metric against the rolling *median* of the last `K`
//!   accepted reports (robust to one noisy CI run), then appends the
//!   current report to the directory and prunes it back to `K`. The
//!   directory round-trips through CI as the `bench-history` artifact.
//!   A regressed report is *not* recorded, so a bad run cannot drag the
//!   median down for its successors.
//!
//! A missing or unreadable previous artifact / empty history is *not*
//! an error — the absolute `QNI_*_GATE` gates in the bench binaries are
//! the fallback for that case.
//!
//! Usage:
//!   bench_compare --kind batch|shard|pool|chains|stream \
//!       --current results/BENCH_batch.json \
//!       (--previous prev/BENCH_batch.json | --history-dir hist [--keep 10]) \
//!       [--min-ratio 0.75]

use qni_bench::compare::{
    append_history, batch_metrics, chains_metrics, compare_batch, compare_chains, compare_pool,
    compare_shard, compare_stream, compare_to_history, history_entries, pool_metrics,
    shard_metrics, stream_metrics, Metric, Outcome, DEFAULT_KEEP, DEFAULT_MIN_RATIO,
};
use std::path::Path;
use std::process::ExitCode;

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn read_report<T: for<'de> serde::Deserialize<'de>>(path: &str, what: &str) -> Result<T, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("{what} `{path}` unreadable: {e}"))?;
    serde_json::from_str(&text).map_err(|e| format!("{what} `{path}` unparsable: {e:?}"))
}

/// Runs one pairwise comparison: the *current* report must parse (it was
/// produced by this run); only the previous one may be missing, which
/// yields [`Outcome::NoBaseline`].
fn run_compare<T: for<'de> serde::Deserialize<'de>>(
    current: &str,
    previous: &str,
    min_ratio: f64,
    f: impl Fn(&T, &T, f64) -> Outcome,
) -> Result<Outcome, String> {
    let cur: T = read_report(current, "current report")?;
    Ok(match read_report::<T>(previous, "previous artifact") {
        Ok(prev) => f(&cur, &prev, min_ratio),
        Err(why) => Outcome::NoBaseline(why),
    })
}

/// Extracts headline metrics from a report file of the given kind.
fn metrics_of(kind: &str, path: &str, what: &str) -> Result<Vec<Metric>, String> {
    match kind {
        "batch" => Ok(batch_metrics(&read_report(path, what)?)),
        "shard" => Ok(shard_metrics(&read_report(path, what)?)),
        "pool" => Ok(pool_metrics(&read_report(path, what)?)),
        "chains" => Ok(chains_metrics(&read_report(path, what)?)),
        "stream" => Ok(stream_metrics(&read_report(path, what)?)),
        other => Err(format!(
            "--kind must be `batch`, `shard`, `pool`, `chains`, or `stream`, got `{other}`"
        )),
    }
}

/// Rolling-history mode: compare against the median of the stored
/// reports, then (unless regressed) append the current one and prune.
fn run_history(
    kind: &str,
    current: &str,
    dir: &Path,
    keep: usize,
    min_ratio: f64,
) -> Result<Outcome, String> {
    let cur = metrics_of(kind, current, "current report")?;
    let mut history = Vec::new();
    if dir.is_dir() {
        for (_, path) in
            history_entries(dir, kind).map_err(|e| format!("history dir unreadable: {e}"))?
        {
            let path = path.display().to_string();
            match metrics_of(kind, &path, "history entry") {
                Ok(m) => history.push(m),
                // A stale/corrupt entry degrades the sample, not the job.
                Err(why) => eprintln!("warning: skipping {why}"),
            }
        }
    }
    let outcome = compare_to_history(&cur, &history, min_ratio);
    if outcome.is_regression() {
        println!("  (regressed report NOT recorded into history)");
    } else {
        let json = std::fs::read_to_string(current)
            .map_err(|e| format!("current report `{current}` unreadable: {e}"))?;
        let path = append_history(dir, kind, &json, keep)
            .map_err(|e| format!("history append failed: {e}"))?;
        println!("  recorded as {} (keep {keep})", path.display());
    }
    Ok(outcome)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (Some(kind), Some(current)) = (flag(&args, "--kind"), flag(&args, "--current")) else {
        eprintln!(
            "usage: bench_compare --kind batch|shard|pool|chains|stream --current FILE \
             (--previous FILE | --history-dir DIR [--keep K]) [--min-ratio R]"
        );
        return ExitCode::FAILURE;
    };
    let min_ratio: f64 = flag(&args, "--min-ratio")
        .map(|v| v.parse().expect("--min-ratio must be a number"))
        .unwrap_or(DEFAULT_MIN_RATIO);

    let outcome = match (flag(&args, "--history-dir"), flag(&args, "--previous")) {
        (Some(dir), _) => {
            let keep: usize = flag(&args, "--keep")
                .map(|v| v.parse().expect("--keep must be an integer"))
                .unwrap_or(DEFAULT_KEEP);
            println!("cross-run comparison ({kind}, rolling median, min ratio {min_ratio}):");
            run_history(&kind, &current, Path::new(&dir), keep.max(1), min_ratio)
        }
        (None, Some(previous)) => {
            println!("cross-run comparison ({kind}, pairwise, min ratio {min_ratio}):");
            match kind.as_str() {
                "batch" => run_compare(&current, &previous, min_ratio, compare_batch),
                "shard" => run_compare(&current, &previous, min_ratio, compare_shard),
                "pool" => run_compare(&current, &previous, min_ratio, compare_pool),
                "chains" => run_compare(&current, &previous, min_ratio, compare_chains),
                "stream" => run_compare(&current, &previous, min_ratio, compare_stream),
                other => Err(format!(
                    "--kind must be `batch`, `shard`, `pool`, `chains`, or `stream`, got `{other}`"
                )),
            }
        }
        (None, None) => {
            eprintln!("error: need --previous FILE or --history-dir DIR");
            return ExitCode::FAILURE;
        }
    };
    let outcome = match outcome {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    for line in outcome.lines() {
        println!("  {line}");
    }
    if outcome.is_regression() {
        eprintln!("FAIL: benchmark regressed vs run history");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
