//! Regenerates the paper's §5.1 in-text estimator comparison.
//!
//! Paper: "although the mean error is almost identical, StEM has only
//! two-thirds of the variance (StEM variance: 9.09 × 10⁻⁴,
//! Mean-observed-service variance: 1.37 × 10⁻³)". The baseline is an
//! *oracle* (it reads true service times of observed tasks).
//!
//! Usage: `cargo run --release -p qni-bench --bin variance_table`

use qni_bench::jobs::{default_threads, parallel_map};
use qni_bench::table;
use qni_bench::variance::{run_rep, summarize, VarianceConfig};
use qni_trace::csv::CsvWriter;

fn main() {
    let cfg = if qni_bench::quick_mode() {
        VarianceConfig::quick()
    } else {
        VarianceConfig::default()
    };
    eprintln!(
        "variance_table: structure {:?}, {}% observed, {} reps",
        cfg.structure,
        cfg.fraction * 100.0,
        cfg.reps
    );
    let cfg_ref = &cfg;
    let estimates: Vec<_> = parallel_map(
        (0..cfg.reps).collect::<Vec<_>>(),
        default_threads(),
        |rep| run_rep(cfg_ref, rep),
    )
    .into_iter()
    .flatten()
    .collect();

    let path = qni_bench::results_dir().join("variance_table.csv");
    let file = std::fs::File::create(&path).expect("create variance_table.csv");
    let mut w =
        CsvWriter::new(file, &["rep", "queue", "stem", "baseline", "truth"]).expect("csv header");
    for p in &estimates {
        w.row(&[
            format!("{}", p.rep),
            format!("{}", p.queue),
            format!("{}", p.stem),
            p.baseline.map_or("-".into(), |b| format!("{b}")),
            format!("{}", p.truth),
        ])
        .expect("csv row");
    }

    let num_queues = 1 + cfg.structure.iter().sum::<usize>();
    let s = summarize(&estimates, num_queues);
    let rows = vec![
        vec![
            "StEM".to_owned(),
            format!("{:.3e}", s.stem_variance),
            table::num(s.stem_mae),
        ],
        vec![
            "mean-observed-service (oracle)".to_owned(),
            format!("{:.3e}", s.baseline_variance),
            table::num(s.baseline_mae),
        ],
    ];
    println!(
        "{}",
        table::render(&["estimator", "variance", "mean abs err"], &rows)
    );
    println!(
        "variance ratio StEM/baseline = {:.2} (paper: 9.09e-4 / 1.37e-3 = 0.66)",
        s.stem_variance / s.baseline_variance
    );
    println!("n = {} paired estimates; csv: {}", s.n, path.display());
}
