//! Seeded live-trace generator for the CI watch soak.
//!
//! Simulates a tandem network once (fully deterministic given `--seed`),
//! then *appends* the resulting JSONL records to `--out` in chunks of
//! `--chunk-tasks` tasks, sleeping `--sleep-ms` between chunks — a
//! stand-in for an instrumentation agent emitting a trace while `qni
//! watch` tails it. Each chunk is flushed in two halves with a short gap
//! so the tail reader's partial-line path is exercised under real
//! interleaving, not just in unit tests.
//!
//! Because the simulation is seeded and the final file is the full
//! record sequence, the soak job can replay the finished file through
//! `qni stream` and demand a byte-identical trajectory from the watcher.
//!
//! Fault-tolerance soaks add:
//!
//! - `--mirror FILE`: also write the *clean complete* trace to FILE up
//!   front. When the live file is polluted (`--bad-lines`) or rotated
//!   (`--rotate-every`), the mirror is what `qni stream` replays for
//!   the fingerprint comparison.
//! - `--bad-lines N`: inject one malformed line after each of the
//!   first N chunks (excluded from the mirror) — exercises the
//!   watcher's `--max-bad-lines` quarantine.
//! - `--rotate-every N`: copytruncate the live file after every N
//!   chunks (post-sleep, so a paced watcher has caught up) — exercises
//!   `--follow-rotations on`.
//!
//! Usage:
//!   cargo run --release -p qni-bench --bin watch_gen -- \
//!     --out live.jsonl --seed 11 --tasks 400 --lambda 2.0 \
//!     --mu 6.0,8.0 --observe 0.3 --chunk-tasks 20 --sleep-ms 40 \
//!     [--mirror clean.jsonl] [--bad-lines 3] [--rotate-every 5]

use qni_sim::{Simulator, Workload};
use qni_stats::rng::rng_from_seed;
use qni_trace::record::to_records;
use qni_trace::ObservationScheme;
use std::collections::HashMap;
use std::io::Write;

fn parse_flags() -> HashMap<String, String> {
    let mut flags = HashMap::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let key = arg
            .strip_prefix("--")
            .unwrap_or_else(|| panic!("expected --flag, got `{arg}`"));
        let val = args
            .next()
            .unwrap_or_else(|| panic!("--{key} requires a value"));
        flags.insert(key.to_owned(), val);
    }
    flags
}

fn get<T: std::str::FromStr>(flags: &HashMap<String, String>, key: &str, default: T) -> T {
    flags.get(key).map_or(default, |v| {
        v.parse()
            .unwrap_or_else(|_| panic!("--{key}: bad value `{v}`"))
    })
}

fn main() {
    let flags = parse_flags();
    let out = flags.get("out").expect("watch_gen requires --out FILE");
    let seed = get(&flags, "seed", 11_u64);
    let tasks = get(&flags, "tasks", 400_usize);
    let lambda = get(&flags, "lambda", 2.0_f64);
    let observe = get(&flags, "observe", 0.3_f64);
    let chunk_tasks = get(&flags, "chunk-tasks", 20_usize).max(1);
    let sleep_ms = get(&flags, "sleep-ms", 40_u64);
    let mus: Vec<f64> = flags
        .get("mu")
        .map_or_else(|| "6.0,8.0".to_owned(), std::string::ToString::to_string)
        .split(',')
        .map(|s| s.trim().parse().expect("--mu: bad number"))
        .collect();

    let bp = qni_model::topology::tandem(lambda, &mus).expect("tandem topology");
    let mut rng = rng_from_seed(seed);
    let truth = Simulator::new(&bp.network)
        .run(
            &Workload::poisson_n(lambda, tasks).expect("workload"),
            &mut rng,
        )
        .expect("simulate");
    let masked = ObservationScheme::task_sampling(observe)
        .expect("observe fraction")
        .apply(truth, &mut rng)
        .expect("apply observation");
    let records = to_records(masked.ground_truth(), masked.mask());

    // Group record lines by task: builder event ids are task-grouped, so a
    // chunk boundary between tasks always leaves complete tasks on disk.
    let mut task_lines: Vec<Vec<u8>> = Vec::new();
    for rec in &records {
        if rec.event.is_initial() || task_lines.is_empty() {
            task_lines.push(Vec::new());
        }
        let line = task_lines.last_mut().expect("pushed above");
        serde_json::to_writer(&mut *line, rec).expect("serialize record");
        line.push(b'\n');
    }

    let bad_lines = get(&flags, "bad-lines", 0_usize);
    let rotate_every = get(&flags, "rotate-every", 0_usize);
    if let Some(mirror) = flags.get("mirror") {
        // The clean, complete trace — what `qni stream` replays when the
        // live file is polluted or rotated.
        let clean: Vec<u8> = task_lines.iter().flatten().copied().collect();
        std::fs::write(mirror, &clean).expect("write --mirror");
        println!("wrote clean mirror ({} bytes) to {mirror}", clean.len());
    }

    let num_queues = mus.len() + 1;
    println!(
        "appending {} tasks ({} events, {num_queues} queues) to {out}: \
         {chunk_tasks} task(s)/chunk, {sleep_ms} ms between chunks, \
         {bad_lines} bad line(s), rotate every {rotate_every} chunk(s)",
        task_lines.len(),
        records.len()
    );
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(out)
        .expect("open --out for append");
    let mut injected_bad = 0usize;
    for (i, chunk) in task_lines.chunks(chunk_tasks).enumerate() {
        let bytes: Vec<u8> = chunk.iter().flatten().copied().collect();
        // Flush in two halves, deliberately splitting a JSON line across
        // writes, so the watcher must reassemble partial lines.
        let mid = bytes.len() / 2;
        file.write_all(&bytes[..mid]).expect("append chunk");
        file.flush().expect("flush");
        std::thread::sleep(std::time::Duration::from_millis(1));
        file.write_all(&bytes[mid..]).expect("append chunk");
        if injected_bad < bad_lines {
            // A malformed line between complete tasks: valid UTF-8,
            // broken JSON — the quarantine path, not the assembler's.
            let junk = format!("{{\"corrupt\": {injected_bad}\n");
            file.write_all(junk.as_bytes()).expect("append bad line");
            injected_bad += 1;
        }
        file.flush().expect("flush");
        std::thread::sleep(std::time::Duration::from_millis(sleep_ms));
        if rotate_every > 0 && (i + 1) % rotate_every == 0 {
            // Copytruncate rotation, after the sleep so a paced watcher
            // has consumed everything written so far.
            std::fs::File::create(out).expect("rotate --out");
        }
    }
    println!("done: trace complete at {out} ({injected_bad} bad line(s) injected)");
}
