//! Streaming-vs-fixed tracking experiment (see
//! `qni_bench::stream_tracking`): windowed StEM on a piecewise-constant
//! M/M/1 workload, warm vs. cold window starts, against the fixed-log
//! baseline that cannot track the switch.
//!
//! Emits `results/BENCH_stream.json` (machine-readable, consumed by the
//! CI `bench-smoke` job and the cross-run `bench_compare` check) and the
//! per-window trajectory CSV `results/stream_trajectory.csv` (uploaded
//! as a CI artifact). Environment knobs:
//!
//! - `QNI_QUICK=1` — reduced scenario for smoke runs.
//! - `QNI_STREAM_GATE=<f64>` — exit nonzero unless the warm stream's
//!   mean tracking error stays at or below the gate (e.g. `0.15`, the
//!   acceptance threshold). Deterministic (seeded), so no host-speed
//!   skip is needed.
//!
//! Usage: `cargo run --release -p qni-bench --bin stream_tracking`

use qni_bench::stream_tracking::{run_experiment, write_trajectory_csv};
use std::process::ExitCode;

fn main() -> ExitCode {
    let quick = qni_bench::quick_mode();
    println!(
        "streaming tracking on piecewise-constant M/M/1{}:",
        if quick { " [quick]" } else { "" }
    );
    let (report, warm_traj, cold_traj) = run_experiment(quick);
    let s = &report.scenario;
    println!(
        "  λ: {} → {} at t={}, µ={}, horizon {}, window ({}, {}), {} tasks",
        s.lambda1, s.lambda2, s.switchpoint, s.mu, s.horizon, s.width, s.stride, report.tasks
    );
    println!(
        "  {:<6} {:>8} {:>9} {:>13} {:>12} {:>11} {:>13}",
        "mode", "windows", "eligible", "mean err", "max err", "total s", "per-window s"
    );
    for t in [&report.warm, &report.cold] {
        println!(
            "  {:<6} {:>8} {:>9} {:>12.1}% {:>11.1}% {:>11.3} {:>13.4}",
            t.mode,
            t.windows,
            t.eligible_windows,
            t.mean_rel_err * 100.0,
            t.max_rel_err * 100.0,
            t.total_secs,
            t.mean_window_secs
        );
    }
    println!(
        "  fixed-log λ̂ = {:.4}: {:.1}% off segment 1, {:.1}% off segment 2 ({:.3}s)",
        report.fixed.lambda_hat,
        report.fixed.rel_err_seg1 * 100.0,
        report.fixed.rel_err_seg2 * 100.0,
        report.fixed.secs
    );

    let dir = qni_bench::results_dir();
    let json_path = dir.join("BENCH_stream.json");
    let json = serde_json::to_string(&report).expect("serialize report");
    std::fs::write(&json_path, json + "\n").expect("write BENCH_stream.json");
    println!("json: {}", json_path.display());

    let csv_path = dir.join("stream_trajectory.csv");
    let file = std::fs::File::create(&csv_path).expect("create trajectory csv");
    write_trajectory_csv(
        &report.scenario,
        &warm_traj,
        &cold_traj,
        std::io::BufWriter::new(file),
    )
    .expect("write trajectory csv");
    println!("csv:  {}", csv_path.display());

    // Anti-regression gate for CI: the warm stream must keep tracking
    // each segment. The run is fully seeded, so the gate is exact (no
    // noisy-host skip like the wall-clock gates).
    if let Ok(gate) = std::env::var("QNI_STREAM_GATE") {
        let gate: f64 = gate.parse().expect("QNI_STREAM_GATE must be a number");
        let err = report.warm.mean_rel_err;
        // NaN (no eligible windows) must fail the gate, not sneak past.
        if err > gate || err.is_nan() {
            eprintln!(
                "FAIL: warm-stream mean tracking error {:.1}% exceeds the gate {:.1}%",
                err * 100.0,
                gate * 100.0
            );
            return ExitCode::FAILURE;
        }
        println!(
            "gate ok: warm-stream mean tracking error {:.1}% <= {:.1}%",
            err * 100.0,
            gate * 100.0
        );
    }
    ExitCode::SUCCESS
}
