//! Checks the abstract's headline claim: "the model accurately recovers
//! the system's service time using 1% of the available trace data".
//!
//! Runs the Figure 4 setup at a 1% observation fraction and reports the
//! absolute service-time errors; recovery is "accurate" when the median
//! error stays a small fraction of the true mean service time (0.2).
//!
//! Usage: `cargo run --release -p qni-bench --bin one_percent`

use qni_bench::fig4::{jobs, run_job, summarize, Fig4Config};
use qni_bench::jobs::{default_threads, parallel_map};
use qni_bench::table;
use qni_trace::csv::CsvWriter;

fn main() {
    let mut cfg = if qni_bench::quick_mode() {
        Fig4Config::quick()
    } else {
        Fig4Config::default()
    };
    cfg.fractions = vec![0.01];
    if !qni_bench::quick_mode() {
        // 1% of 1000 tasks is 10 observed tasks; average more repetitions
        // for a stable summary.
        cfg.reps = 10;
    }
    eprintln!(
        "one_percent: {} structures x {} reps at 1% observation",
        cfg.structures.len(),
        cfg.reps
    );
    let cfg_ref = &cfg;
    let rows: Vec<_> = parallel_map(jobs(&cfg), default_threads(), |job| run_job(cfg_ref, &job))
        .into_iter()
        .flatten()
        .collect();

    let path = qni_bench::results_dir().join("one_percent.csv");
    let file = std::fs::File::create(&path).expect("create one_percent.csv");
    let mut w = CsvWriter::new(
        file,
        &[
            "structure",
            "rep",
            "queue",
            "service_abs_err",
            "waiting_abs_err",
        ],
    )
    .expect("csv header");
    for r in &rows {
        w.row(&[
            r.structure.clone(),
            format!("{}", r.rep),
            format!("{}", r.queue),
            format!("{}", r.service_err),
            format!("{}", r.waiting_err),
        ])
        .expect("csv row");
    }

    let s = &summarize(&rows, &[0.01])[0];
    let out = vec![vec![
        "1%".to_owned(),
        format!("{}", s.n),
        table::num(s.service_median),
        table::num(s.service_p90),
        table::num(s.waiting_median),
        table::num(s.waiting_p90),
    ]];
    println!(
        "{}",
        table::render(
            &[
                "observed",
                "n",
                "service med|err|",
                "service p90",
                "waiting med|err|",
                "waiting p90",
            ],
            &out,
        )
    );
    println!(
        "true mean service = 0.2; claim holds if median error ≪ 0.2 \
         (abstract: accurate recovery at 1%)"
    );
    println!("csv: {}", path.display());
}
