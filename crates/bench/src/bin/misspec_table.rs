//! Misspecification study: M/M/1 inference on non-exponential data.
//!
//! The paper's opening criticism of classical queueing analysis is its
//! "unrealistic distributional assumptions". The Gibbs/StEM machinery
//! here is derived for exponential service, so a natural question the
//! paper leaves open is how badly it degrades when the *data* comes from
//! other service laws. This harness simulates a two-stage tandem network
//! whose second stage uses a non-exponential service distribution with
//! the same mean, runs the exponential-model inference on 20% of tasks,
//! and reports the relative error of the recovered mean service times.
//!
//! Usage: `cargo run --release -p qni-bench --bin misspec_table`

use qni_bench::jobs::{default_threads, parallel_map};
use qni_bench::table;
use qni_core::stem::{run_stem, StemOptions};
use qni_model::fsm::Fsm;
use qni_model::ids::QueueId;
use qni_model::network::{QueueInfo, QueueingNetwork};
use qni_sim::{Simulator, Workload};
use qni_stats::distributions::ServiceDistribution;
use qni_stats::rng::{rng_from_seed, SeedTree};
use qni_trace::csv::CsvWriter;
use qni_trace::ObservationScheme;

/// One scenario: the law of the second stage (mean held at 0.25).
fn scenarios() -> Vec<(&'static str, ServiceDistribution)> {
    vec![
        (
            "exponential",
            ServiceDistribution::exponential(4.0).expect("dist"),
        ),
        (
            "erlang-4",
            ServiceDistribution::erlang(4, 16.0).expect("dist"),
        ),
        (
            "deterministic",
            ServiceDistribution::deterministic(0.25).expect("dist"),
        ),
        (
            "hyperexp(cv2~4)",
            ServiceDistribution::hyper_exponential(vec![0.9, 0.1], vec![9.0, 0.6255])
                .expect("dist"),
        ),
        (
            "lognormal(s=1)",
            ServiceDistribution::log_normal((0.25f64).ln() - 0.5, 1.0).expect("dist"),
        ),
    ]
}

fn main() {
    let quick = qni_bench::quick_mode();
    let tasks = if quick { 150 } else { 1000 };
    let reps = if quick { 1 } else { 5 };
    let mut jobs = Vec::new();
    for (si, _) in scenarios().iter().enumerate() {
        for rep in 0..reps {
            jobs.push((si, rep));
        }
    }
    let results = parallel_map(jobs, default_threads(), move |(si, rep)| {
        let (name, dist) = scenarios().swap_remove(si);
        let seed = SeedTree::new(20080620).child(si as u64).child(rep as u64);
        let fsm = Fsm::linear(&[QueueId(1), QueueId(2)]).expect("fsm");
        let net = QueueingNetwork::new(
            ServiceDistribution::exponential(2.0).expect("dist"),
            vec![
                QueueInfo::new(
                    "stage1",
                    ServiceDistribution::exponential(5.0).expect("dist"),
                ),
                QueueInfo::new("stage2", dist.clone()),
            ],
            fsm,
        )
        .expect("network");
        let true_mean2 = dist.mean();
        let mut rng = rng_from_seed(seed.root());
        let truth = Simulator::new(&net)
            .run(
                &Workload::poisson_n(2.0, tasks).expect("workload"),
                &mut rng,
            )
            .expect("simulation");
        let emp = truth.queue_averages();
        let masked = ObservationScheme::task_sampling(0.2)
            .expect("fraction")
            .apply(truth, &mut rng)
            .expect("mask");
        // Inference assumes M/M/1 everywhere and estimates rates from the
        // partial trace alone; `true_mean2` is only used for reporting.
        let _ = true_mean2;
        let opts = StemOptions {
            iterations: if quick { 40 } else { 150 },
            burn_in: if quick { 20 } else { 75 },
            waiting_sweeps: 10,
            ..StemOptions::default()
        };
        let r = run_stem(&masked, None, &opts, &mut rng).expect("stem");
        let rel1 = (r.mean_service[1] - emp[1].mean_service).abs() / emp[1].mean_service;
        let rel2 = (r.mean_service[2] - emp[2].mean_service).abs() / emp[2].mean_service;
        (name, dist.scv(), rel1, rel2)
    });

    // Aggregate by scenario.
    let path = qni_bench::results_dir().join("misspec_table.csv");
    let file = std::fs::File::create(&path).expect("create csv");
    let mut w = CsvWriter::new(
        file,
        &["scenario", "scv", "stage1_rel_err", "stage2_rel_err"],
    )
    .expect("header");
    let mut rows = Vec::new();
    for (name, _) in scenarios() {
        let of: Vec<_> = results.iter().filter(|r| r.0 == name).collect();
        let scv = of[0].1;
        let e1: f64 = of.iter().map(|r| r.2).sum::<f64>() / of.len() as f64;
        let e2: f64 = of.iter().map(|r| r.3).sum::<f64>() / of.len() as f64;
        w.row(&[
            name.to_owned(),
            scv.to_string(),
            e1.to_string(),
            e2.to_string(),
        ])
        .expect("row");
        rows.push(vec![
            name.to_owned(),
            table::num(scv),
            format!("{:.1}%", e1 * 100.0),
            format!("{:.1}%", e2 * 100.0),
        ]);
    }
    println!(
        "M/M/1 inference on non-exponential stage-2 data \
         (20% observed, mean service fixed at 0.25):\n"
    );
    println!(
        "{}",
        table::render(
            &["stage-2 law", "SCV", "stage1 rel err", "stage2 rel err"],
            &rows
        )
    );
    println!("csv: {}", path.display());
}
