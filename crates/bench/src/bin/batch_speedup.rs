//! Batched-vs-scalar speedup experiment: single-chain StEM wall-clock
//! under `BatchMode::Grouped` vs `BatchMode::Scalar` on M/M/1, tandem-3,
//! and fork-join workloads.
//!
//! Emits `results/BENCH_batch.json` (machine-readable, consumed by the CI
//! `bench-smoke` job) and a console table. Two environment knobs:
//!
//! - `QNI_QUICK=1` — reduced workload for smoke runs.
//! - `QNI_BATCH_GATE=<f64>` — exit nonzero unless the tandem-3 point's
//!   batched speedup over scalar meets the gate (CI uses a generous
//!   threshold — the batched path must simply not regress; the full local
//!   run targets ≥ 1.3x).
//!
//! Usage: `cargo run --release -p qni-bench --bin batch_speedup`

use qni_bench::batch_speedup::run_experiment;
use std::process::ExitCode;

fn main() -> ExitCode {
    let quick = qni_bench::quick_mode();
    println!(
        "batched-vs-scalar arrival moves{}:",
        if quick { " [quick]" } else { "" }
    );
    let report = run_experiment(quick);
    println!(
        "  {:<9} {:>9} {:>11} {:>12} {:>9} {:>10} {:>9} {:>9}",
        "workload",
        "free arr",
        "scalar s",
        "batched s",
        "speedup",
        "fallback%",
        "λ̂ scal",
        "λ̂ batch"
    );
    for p in &report.points {
        println!(
            "  {:<9} {:>9} {:>11.3} {:>12.3} {:>8.2}x {:>9.1} {:>9.3} {:>9.3}",
            p.name,
            p.free_arrivals,
            p.scalar_secs,
            p.batched_secs,
            p.speedup,
            p.fallback_fraction * 100.0,
            p.lambda_scalar,
            p.lambda_batched
        );
    }

    let path = qni_bench::results_dir().join("BENCH_batch.json");
    let json = serde_json::to_string(&report).expect("serialize report");
    std::fs::write(&path, json + "\n").expect("write BENCH_batch.json");
    println!("json: {}", path.display());

    // Anti-regression gate for CI: batched must not be slower than scalar
    // on the tandem-3 workload (modulo the gate's noise allowance).
    if let Ok(gate) = std::env::var("QNI_BATCH_GATE") {
        let gate: f64 = gate.parse().expect("QNI_BATCH_GATE must be a number");
        let t3 = report
            .points
            .iter()
            .find(|p| p.name == "tandem3")
            .expect("tandem3 point");
        if t3.speedup < gate {
            eprintln!(
                "FAIL: tandem3 batched speedup {:.2}x is below the gate {gate:.2}x",
                t3.speedup
            );
            return ExitCode::FAILURE;
        }
        println!("gate ok: tandem3 speedup {:.2}x >= {gate:.2}x", t3.speedup);
    }
    ExitCode::SUCCESS
}
