//! Regenerates the paper's Figure 5: per-queue service and waiting
//! estimates on the (synthetic) movie-voting web application as the
//! observed fraction sweeps 2–50%.
//!
//! Expected shape, per the paper: estimates stable for fractions ≥ ~10%,
//! with one clear exception — the web server that the load balancer
//! assigned only ≈19 requests, whose estimates swing wildly.
//!
//! Usage: `cargo run --release -p qni-bench --bin fig5`
//! (set `QNI_QUICK=1` for a fast smoke run).

use qni_bench::fig5::{run, stability, Fig5Config};
use qni_bench::table;
use qni_trace::csv::CsvWriter;

fn main() {
    let cfg = if qni_bench::quick_mode() {
        Fig5Config::quick()
    } else {
        Fig5Config::default()
    };
    eprintln!(
        "fig5: {} requests over {}s ramp, fractions {:?}",
        cfg.app.requests, cfg.app.duration, cfg.fractions
    );
    let rows = run(&cfg);

    let path = qni_bench::results_dir().join("fig5.csv");
    let file = std::fs::File::create(&path).expect("create fig5.csv");
    let mut w = CsvWriter::new(
        file,
        &[
            "fraction",
            "queue",
            "name",
            "service_est",
            "waiting_est",
            "service_true",
            "waiting_true",
            "events",
        ],
    )
    .expect("csv header");
    for r in &rows {
        w.row(&[
            format!("{}", r.fraction),
            format!("{}", r.queue),
            r.name.clone(),
            format!("{}", r.service_est),
            format!("{}", r.waiting_est),
            format!("{}", r.service_true),
            format!("{}", r.waiting_true),
            format!("{}", r.events),
        ])
        .expect("csv row");
    }

    // Console: the service-estimate series per queue (the left panel).
    let queues: Vec<usize> = {
        let mut q: Vec<usize> = rows.iter().map(|r| r.queue).collect();
        q.sort_unstable();
        q.dedup();
        q
    };
    let mut header: Vec<String> = vec!["queue".into(), "events".into(), "true".into()];
    for f in &cfg.fractions {
        header.push(format!("{:.0}%", f * 100.0));
    }
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut table_rows = Vec::new();
    for &q in &queues {
        let of_q: Vec<_> = rows.iter().filter(|r| r.queue == q).collect();
        let mut row = vec![
            of_q[0].name.clone(),
            format!("{}", of_q[0].events),
            table::num(of_q[0].service_true),
        ];
        for f in &cfg.fractions {
            let v = of_q
                .iter()
                .find(|r| r.fraction == *f)
                .map(|r| r.service_est)
                .unwrap_or(f64::NAN);
            row.push(table::num(v));
        }
        table_rows.push(row);
    }
    println!("mean service estimates (paper Fig. 5, left):");
    println!("{}", table::render(&header_refs, &table_rows));

    // Stability report: every well-fed queue should be stable; the
    // starved one should not.
    println!("service-estimate instability (max relative swing vs 50%):");
    for &q in &queues {
        let s = stability(&rows, q);
        let name = &rows.iter().find(|r| r.queue == q).expect("row").name;
        let events = rows.iter().find(|r| r.queue == q).expect("row").events;
        println!("  {name:<8} events={events:<5} swing={}", table::num(s));
    }
    println!("csv: {}", path.display());
}
