//! Persistent-pool dispatch experiment.
//!
//! Measures what the long-lived wave-prepare worker pool
//! (`qni_core::gibbs::pool`) buys over per-wave `std::thread::scope`
//! spawns: the same single-chain StEM workloads as `shard_speedup`
//! (M/M/1, three-stage tandem, fork-join — giant single traces whose
//! waves actually fan out) are run end-to-end under both
//! `DispatchMode`s at shard counts {2, 4}, and the raw per-sweep
//! dispatch path is timed separately so the spawn-vs-enqueue gap is
//! visible even when sweep math dominates the end-to-end numbers.
//!
//! Dispatch is contractually byte-identical to the serial sweep in
//! either mode; [`measure`] asserts λ̂ bit-equality across every
//! (dispatch, shards) configuration as it measures.

use crate::batch_speedup::BatchWorkload;
use crate::shard_speedup::workloads;
use qni_core::gibbs::sweep::sweep_batched_pooled;
use qni_core::init::InitStrategy;
use qni_core::stem::{run_stem, StemOptions};
use qni_core::{DispatchMode, GibbsState, ShardMode, WavePool};
use qni_stats::rng::rng_from_seed;
use qni_trace::MaskedLog;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// The shard counts every workload is measured at. Shards = 1 is
/// omitted: single-worker waves run inline and never touch a thread,
/// so both dispatch modes are the same code path there.
pub const POOL_SHARD_COUNTS: [usize; 2] = [2, 4];

/// One measurement: the same workload under scoped and pooled dispatch
/// at every shard count.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PoolPoint {
    /// Workload identifier.
    pub name: String,
    /// Free arrival variables in the masked log (the sharded axis).
    pub free_arrivals: usize,
    /// Shard counts measured, aligned with the timing vectors.
    pub shards: Vec<usize>,
    /// Best-of-reps end-to-end wall-clock with per-wave scoped spawns.
    pub scoped_secs: Vec<f64>,
    /// Best-of-reps end-to-end wall-clock with the persistent pool.
    pub pooled_secs: Vec<f64>,
    /// Pool speedup per shard count: `scoped_secs / pooled_secs`.
    pub speedup: Vec<f64>,
    /// Mean per-sweep wall-clock (µs) of the raw sharded sweep with
    /// per-wave scoped spawns, at the max shard count.
    pub scoped_sweep_micros: f64,
    /// Mean per-sweep wall-clock (µs) of the raw sharded sweep through
    /// the persistent pool, at the max shard count.
    pub pooled_sweep_micros: f64,
    /// λ̂ of the run — identical across every (dispatch, shards)
    /// configuration by contract (asserted during measurement).
    pub lambda: f64,
}

/// The full JSON report written to `BENCH_pool.json`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PoolSpeedupReport {
    /// Report schema / experiment name.
    pub bench: String,
    /// Whether the reduced `QNI_QUICK` workload was used.
    pub quick: bool,
    /// Timed repetitions per configuration (best kept).
    pub reps: usize,
    /// Hardware threads available on the measuring host.
    pub host_threads: usize,
    /// One entry per workload, in measurement order.
    pub points: Vec<PoolPoint>,
}

fn options(w: &BatchWorkload, shards: usize, dispatch: DispatchMode) -> StemOptions {
    StemOptions {
        iterations: w.iterations,
        burn_in: w.burn_in,
        waiting_sweeps: 3,
        shard: ShardMode::Sharded(shards),
        dispatch,
        ..StemOptions::default()
    }
}

fn time_run(
    masked: &MaskedLog,
    w: &BatchWorkload,
    shards: usize,
    dispatch: DispatchMode,
    reps: usize,
) -> (f64, f64) {
    let opts = options(w, shards, dispatch);
    let mut best = f64::INFINITY;
    let mut lambda = 0.0;
    for _ in 0..reps.max(1) {
        let mut rng = rng_from_seed(w.seed);
        let start = Instant::now();
        let r = run_stem(masked, None, &opts, &mut rng).expect("stem run");
        best = best.min(start.elapsed().as_secs_f64());
        lambda = r.rates[0];
    }
    (best, lambda)
}

/// Mean per-sweep wall-clock (µs) of `sweeps` raw batched sweeps at
/// `shards` workers, through `pool` when given and per-wave scoped
/// spawns otherwise.
fn sweep_micros(
    masked: &MaskedLog,
    seed: u64,
    shards: usize,
    mut pool: Option<&mut WavePool>,
    sweeps: usize,
) -> f64 {
    let rates = qni_core::stem::heuristic_rates(masked);
    let mut state = GibbsState::new(masked, rates, InitStrategy::default()).expect("state");
    let mut rng = rng_from_seed(seed ^ 0x9001);
    let start = Instant::now();
    for _ in 0..sweeps {
        sweep_batched_pooled(
            &mut state,
            ShardMode::Sharded(shards),
            pool.as_deref_mut(),
            &mut rng,
        )
        .expect("sweep");
    }
    start.elapsed().as_secs_f64() * 1e6 / sweeps as f64
}

/// Measures one workload under both dispatch modes at every shard
/// count, asserting the byte-identity contract on λ̂ along the way.
pub fn measure(w: &BatchWorkload, reps: usize) -> PoolPoint {
    let masked = w.build();
    // Untimed warm-up: absorb first-touch page faults and allocator
    // growth so they don't bias the first timed configuration.
    let _ = time_run(&masked, w, 2, DispatchMode::Scoped, 1);
    let mut scoped_secs = Vec::with_capacity(POOL_SHARD_COUNTS.len());
    let mut pooled_secs = Vec::with_capacity(POOL_SHARD_COUNTS.len());
    let mut lambda = None;
    let mut check = |l: f64| match lambda {
        None => lambda = Some(l),
        Some(prev) => assert_eq!(
            prev.to_bits(),
            l.to_bits(),
            "{}: λ̂ diverged between dispatch configurations — the determinism \
             contract is broken",
            w.name
        ),
    };
    for &shards in &POOL_SHARD_COUNTS {
        let (s, l) = time_run(&masked, w, shards, DispatchMode::Scoped, reps);
        scoped_secs.push(s);
        check(l);
        let (s, l) = time_run(&masked, w, shards, DispatchMode::Pooled, reps);
        pooled_secs.push(s);
        check(l);
    }
    let speedup = scoped_secs
        .iter()
        .zip(&pooled_secs)
        .map(|(&s, &p)| s / p)
        .collect();
    let max_shards = *POOL_SHARD_COUNTS.last().expect("shard counts");
    let probe_sweeps = 4;
    let mut pool = WavePool::new(max_shards);
    PoolPoint {
        name: w.name.clone(),
        free_arrivals: masked.free_arrivals().len(),
        shards: POOL_SHARD_COUNTS.to_vec(),
        scoped_secs,
        pooled_secs,
        speedup,
        scoped_sweep_micros: sweep_micros(&masked, w.seed, max_shards, None, probe_sweeps),
        pooled_sweep_micros: sweep_micros(
            &masked,
            w.seed,
            max_shards,
            Some(&mut pool),
            probe_sweeps,
        ),
        lambda: lambda.expect("at least one configuration"),
    }
}

/// Runs the full experiment on the `shard_speedup` workload set.
pub fn run_experiment(quick: bool) -> PoolSpeedupReport {
    let reps = 2;
    let points = workloads(quick).iter().map(|w| measure(w, reps)).collect();
    PoolSpeedupReport {
        bench: "pool_speedup".to_owned(),
        quick,
        reps,
        host_threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
        points,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_experiment_reports_sane_points() {
        let w = BatchWorkload {
            name: "tandem3".to_owned(),
            tasks: 60,
            fraction: 0.2,
            iterations: 8,
            burn_in: 2,
            seed: 1,
        };
        let p = measure(&w, 1);
        assert_eq!(p.shards, POOL_SHARD_COUNTS);
        assert_eq!(p.scoped_secs.len(), POOL_SHARD_COUNTS.len());
        assert_eq!(p.pooled_secs.len(), POOL_SHARD_COUNTS.len());
        assert!(p.scoped_secs.iter().all(|&s| s > 0.0));
        assert!(p.pooled_secs.iter().all(|&s| s > 0.0));
        assert!(p.speedup.iter().all(|&s| s > 0.0));
        assert!(p.scoped_sweep_micros > 0.0);
        assert!(p.pooled_sweep_micros > 0.0);
        assert!(p.lambda > 0.0);
    }

    #[test]
    fn report_round_trips_through_json() {
        let report = PoolSpeedupReport {
            bench: "pool_speedup".to_owned(),
            quick: true,
            reps: 1,
            host_threads: 4,
            points: vec![PoolPoint {
                name: "mm1".to_owned(),
                free_arrivals: 10,
                shards: POOL_SHARD_COUNTS.to_vec(),
                scoped_secs: vec![1.0, 0.8],
                pooled_secs: vec![0.9, 0.6],
                speedup: vec![1.11, 1.33],
                scoped_sweep_micros: 900.0,
                pooled_sweep_micros: 700.0,
                lambda: 2.0,
            }],
        };
        let json = serde_json::to_string(&report).expect("json");
        let back: PoolSpeedupReport = serde_json::from_str(&json).expect("parse");
        assert_eq!(back.bench, "pool_speedup");
        assert_eq!(back.points.len(), 1);
        assert_eq!(back.points[0].shards, POOL_SHARD_COUNTS);
    }
}
