//! Experiment harness regenerating the paper's tables and figures.
//!
//! Each binary in `src/bin/` reproduces one artifact of the paper's
//! evaluation (see `DESIGN.md` for the experiment index):
//!
//! - `fig4` — Figure 4: StEM absolute error in service and waiting times
//!   on five synthetic three-tier structures vs. observed fraction.
//! - `variance_table` — §5.1 in-text comparison: StEM estimator variance
//!   vs. the oracle mean-observed-service baseline.
//! - `fig5` — Figure 5: per-queue estimates on the web-application
//!   testbed vs. observed fraction, including the starved server.
//! - `one_percent` — the abstract's claim that 1% of trace data suffices.
//! - `scaling_table` — §5.2's claim that sweep cost scales in the number
//!   of unobserved arrivals, not the number of servers.
//! - `chain_scaling` — wall-clock speedup of the multi-chain parallel
//!   StEM engine at K ∈ {1, 2, 4, 8}, emitting `BENCH_chains.json` for
//!   the CI anti-regression gate.
//! - `batch_speedup` — batched-vs-scalar arrival-move wall-clock on
//!   M/M/1, tandem-3, and fork-join workloads, emitting
//!   `BENCH_batch.json` for the CI anti-regression gate.
//! - `shard_speedup` — intra-trace sharded sweeps at shard counts
//!   {1, 2, 4} on giant single-chain traces, emitting
//!   `BENCH_shard.json` (speedup + deferred-move fraction per
//!   workload) for the CI gate.
//! - `pool_speedup` — persistent-pool vs per-wave-scoped dispatch on
//!   the `shard_speedup` workloads, emitting `BENCH_pool.json`
//!   (end-to-end speedup + raw per-sweep dispatch timings) for the CI
//!   gate.
//! - `stream_tracking` — streaming windowed StEM vs. the fixed-log
//!   engine on a piecewise-constant workload, emitting
//!   `BENCH_stream.json` (tracking error + per-window wall time, warm
//!   vs. cold starts) and the `stream_trajectory.csv` artifact.
//! - `bench_compare` — cross-run regression check: compares the current
//!   `BENCH_*.json` against the previous CI run's artifact.
//!
//! Shared infrastructure lives here: replication runners, parallel
//! mapping, and console tables. CSV outputs land in `results/`.

pub mod batch_speedup;
pub mod chain_scaling;
pub mod compare;
pub mod fig4;
pub mod fig5;
pub mod jobs;
pub mod pool_speedup;
pub mod scaling;
pub mod shard_speedup;
pub mod stream_tracking;
pub mod table;
pub mod variance;

use std::path::PathBuf;

/// Resolves the `results/` directory at the workspace root, creating it
/// if needed.
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("QNI_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| {
            // crates/bench → workspace root.
            PathBuf::from(env!("CARGO_MANIFEST_DIR"))
                .join("../..")
                .join("results")
        });
    std::fs::create_dir_all(&dir).expect("create results dir");
    dir
}

/// Whether to run experiments in quick mode (reduced sizes for smoke
/// tests), controlled by the `QNI_QUICK` environment variable.
pub fn quick_mode() -> bool {
    std::env::var("QNI_QUICK").is_ok_and(|v| v != "0")
}
