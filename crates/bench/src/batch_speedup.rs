//! Batched-vs-scalar arrival-move speedup experiment.
//!
//! Runs the same single-chain StEM workload twice — once with
//! [`BatchMode::Scalar`] (one conditional rebuild per arrival move, the
//! paper's baseline) and once with [`BatchMode::Grouped`] (the batched
//! same-queue engine of `qni_core::gibbs::batch`) — on three topologies:
//! an M/M/1 queue, a three-stage tandem, and a fork-join network (tasks
//! fork across redundant servers per tier and rejoin at the next). Each
//! configuration is timed over several repetitions keeping the best, and
//! everything is serialized as `BENCH_batch.json` for the CI
//! anti-regression gate (`QNI_BATCH_GATE`, checked on the tandem-3
//! point).

use qni_core::gibbs::sweep::{sweeps_with_mode, BatchMode};
use qni_core::init::InitStrategy;
use qni_core::stem::{run_stem, StemOptions};
use qni_core::GibbsState;
use qni_model::topology::{single_queue, tandem, three_tier, Blueprint};
use qni_sim::{Simulator, Workload};
use qni_stats::rng::rng_from_seed;
use qni_trace::{MaskedLog, ObservationScheme};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// One topology + masking + iteration budget to measure.
#[derive(Debug, Clone, Serialize)]
pub struct BatchWorkload {
    /// Short identifier (`mm1`, `tandem3`, `forkjoin`).
    pub name: String,
    /// Tasks simulated.
    pub tasks: usize,
    /// Fraction of tasks with observed arrivals.
    pub fraction: f64,
    /// StEM iterations per run.
    pub iterations: usize,
    /// Burn-in iterations.
    pub burn_in: usize,
    /// Simulation/masking/inference seed.
    pub seed: u64,
}

impl BatchWorkload {
    fn blueprint(&self) -> Blueprint {
        match self.name.as_str() {
            "mm1" => single_queue(2.0, 5.0).expect("topology"),
            "tandem3" => tandem(2.0, &[5.0, 4.0, 6.0]).expect("topology"),
            // Fork-join: two tiers of three redundant servers; each task
            // forks to one server per tier and rejoins at the next.
            "forkjoin" => three_tier(8.0, 5.0, &[3, 3], false).expect("topology"),
            other => panic!("unknown workload `{other}`"),
        }
    }

    /// Simulates and masks the workload's trace: arrivals task-sampled at
    /// `fraction`, plus *every* task exit time observed — the common
    /// production pattern (completion logging is cheap; per-queue arrival
    /// tracing is the expensive part this sampler imputes). This keeps the
    /// sweep dominated by arrival moves, the axis batching optimizes.
    pub fn build(&self) -> MaskedLog {
        let bp = self.blueprint();
        // The workload drives the network at its configured arrival rate
        // (q0's rate), so the load lives in one place: `blueprint`.
        let lambda = bp.network.rates().expect("mm1 rates")[0];
        let mut rng = rng_from_seed(self.seed);
        let truth = Simulator::new(&bp.network)
            .run(
                &Workload::poisson_n(lambda, self.tasks).expect("workload"),
                &mut rng,
            )
            .expect("simulation");
        let sampled = ObservationScheme::task_sampling(self.fraction)
            .expect("fraction")
            .apply(truth, &mut rng)
            .expect("mask");
        let mut mask = sampled.mask().clone();
        let truth = sampled.ground_truth().clone();
        for e in truth.event_ids() {
            if truth.is_final_event(e) {
                mask.observe_departure(e);
            }
        }
        MaskedLog::new(truth, mask).expect("mask shape")
    }

    fn options(&self, batch: BatchMode) -> StemOptions {
        StemOptions {
            iterations: self.iterations,
            burn_in: self.burn_in,
            waiting_sweeps: 5,
            batch,
            ..StemOptions::default()
        }
    }
}

/// The standard workload set at full or quick (CI smoke) size.
pub fn workloads(quick: bool) -> Vec<BatchWorkload> {
    let (tasks, iterations, burn_in) = if quick { (150, 40, 10) } else { (600, 150, 50) };
    ["mm1", "tandem3", "forkjoin"]
        .into_iter()
        .map(|name| BatchWorkload {
            name: name.to_owned(),
            tasks,
            fraction: 0.1,
            iterations,
            burn_in,
            seed: 7,
        })
        .collect()
}

/// One measurement: the same workload under both batch modes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BatchPoint {
    /// Workload identifier.
    pub name: String,
    /// Free arrival variables in the masked log (the batched axis).
    pub free_arrivals: usize,
    /// Best-of-reps wall-clock of the scalar run, seconds.
    pub scalar_secs: f64,
    /// Best-of-reps wall-clock of the batched run, seconds.
    pub batched_secs: f64,
    /// `scalar_secs / batched_secs`.
    pub speedup: f64,
    /// Fraction of batched arrival moves that hit the conflict fallback
    /// (probed over a few sweeps; 0 means every cached plan was reused).
    pub fallback_fraction: f64,
    /// Pooled λ̂ of the scalar run (sanity).
    pub lambda_scalar: f64,
    /// Pooled λ̂ of the batched run (sanity: same posterior, different
    /// scan order — must agree within Monte-Carlo noise).
    pub lambda_batched: f64,
}

/// The full JSON report written to `BENCH_batch.json`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BatchSpeedupReport {
    /// Report schema / experiment name.
    pub bench: String,
    /// Whether the reduced `QNI_QUICK` workload was used.
    pub quick: bool,
    /// Timed repetitions per mode (best kept).
    pub reps: usize,
    /// One entry per workload, in measurement order.
    pub points: Vec<BatchPoint>,
}

fn time_run(masked: &MaskedLog, w: &BatchWorkload, mode: BatchMode, reps: usize) -> (f64, f64) {
    let opts = w.options(mode);
    let mut best = f64::INFINITY;
    let mut lambda = 0.0;
    for _ in 0..reps.max(1) {
        let mut rng = rng_from_seed(w.seed);
        let start = Instant::now();
        let r = run_stem(masked, None, &opts, &mut rng).expect("stem run");
        best = best.min(start.elapsed().as_secs_f64());
        lambda = r.rates[0];
    }
    (best, lambda)
}

/// Probes the conflict-fallback fraction of the batched engine on this
/// workload: the share of arrival moves whose cached bounds a groupmate
/// invalidated.
fn probe_fallbacks(masked: &MaskedLog, w: &BatchWorkload) -> f64 {
    let rates = qni_core::stem::heuristic_rates(masked);
    let mut state = GibbsState::new(masked, rates, InitStrategy::default()).expect("state");
    let mut rng = rng_from_seed(w.seed ^ 0x5eed);
    let stats = sweeps_with_mode(&mut state, BatchMode::Grouped, 5, &mut rng).expect("sweeps");
    if stats.arrival_moves == 0 {
        0.0
    } else {
        stats.group_fallbacks as f64 / stats.arrival_moves as f64
    }
}

/// Measures one workload under both modes (scalar first, then batched).
pub fn measure(w: &BatchWorkload, reps: usize) -> BatchPoint {
    let masked = w.build();
    // Untimed warm-up: absorb first-touch page faults and allocator
    // growth so they don't bias the first timed mode.
    let _ = time_run(&masked, w, BatchMode::Scalar, 1);
    let (scalar_secs, lambda_scalar) = time_run(&masked, w, BatchMode::Scalar, reps);
    let (batched_secs, lambda_batched) = time_run(&masked, w, BatchMode::Grouped, reps);
    BatchPoint {
        name: w.name.clone(),
        free_arrivals: masked.free_arrivals().len(),
        scalar_secs,
        batched_secs,
        speedup: scalar_secs / batched_secs,
        fallback_fraction: probe_fallbacks(&masked, w),
        lambda_scalar,
        lambda_batched,
    }
}

/// Runs the full experiment.
pub fn run_experiment(quick: bool) -> BatchSpeedupReport {
    let reps = if quick { 3 } else { 2 };
    let points = workloads(quick).iter().map(|w| measure(w, reps)).collect();
    BatchSpeedupReport {
        bench: "batch_speedup".to_owned(),
        quick,
        reps,
        points,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_experiment_reports_sane_points() {
        let w = BatchWorkload {
            name: "tandem3".to_owned(),
            tasks: 40,
            fraction: 0.2,
            iterations: 10,
            burn_in: 2,
            seed: 1,
        };
        let p = measure(&w, 1);
        assert!(p.scalar_secs > 0.0 && p.batched_secs > 0.0);
        assert!(p.speedup > 0.0);
        assert!(p.free_arrivals > 0);
        assert!((0.0..=1.0).contains(&p.fallback_fraction));
        assert!(p.lambda_scalar > 0.0 && p.lambda_batched > 0.0);
    }

    #[test]
    fn report_serializes_to_json() {
        let report = BatchSpeedupReport {
            bench: "batch_speedup".to_owned(),
            quick: true,
            reps: 1,
            points: vec![],
        };
        let json = serde_json::to_string(&report).expect("json");
        assert!(json.contains("\"bench\":\"batch_speedup\""), "{json}");
    }

    #[test]
    fn workload_set_covers_all_topologies() {
        let names: Vec<String> = workloads(true).into_iter().map(|w| w.name).collect();
        assert_eq!(names, ["mm1", "tandem3", "forkjoin"]);
        for w in workloads(true) {
            let masked = w.build();
            assert!(masked.free_arrivals().len() > 10, "{}", w.name);
        }
    }
}
