//! Chain-scaling experiment: wall-clock speedup of multi-chain StEM.
//!
//! Holds the *total* post-burn-in sample budget fixed and splits it across
//! `K` parallel chains: each chain runs `burn_in + ceil(samples/K)`
//! iterations, so K chains finish their (parallel) post-burn-in work in
//! roughly `1/K` of the time while the per-chain burn-in is the serial
//! fraction (Amdahl). The experiment reports wall-clock speedup relative
//! to `K = 1` plus the convergence diagnostics of each configuration, and
//! serializes everything as machine-readable JSON (`BENCH_chains.json`)
//! for the CI anti-regression gate.

use qni_core::chains::{run_stem_parallel, ParallelStemOptions};
use qni_core::stem::StemOptions;
use qni_model::topology::three_tier;
use qni_sim::{Simulator, Workload};
use qni_stats::rng::rng_from_seed;
use qni_trace::{MaskedLog, ObservationScheme};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// The workload every measurement point runs on.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ChainWorkload {
    /// Tasks simulated through the 1-2-4 three-tier network.
    pub tasks: usize,
    /// Fraction of tasks with observed arrivals.
    pub fraction: f64,
    /// Total post-burn-in samples, split evenly across chains.
    pub samples_total: usize,
    /// Burn-in iterations *per chain* (the serial fraction).
    pub burn_in: usize,
    /// Simulation/masking seed.
    pub seed: u64,
}

impl ChainWorkload {
    /// The default (full-size) workload used by the chain-scaling binary.
    pub fn default_full() -> Self {
        ChainWorkload {
            tasks: 600,
            fraction: 0.1,
            samples_total: 400,
            burn_in: 40,
            seed: 7,
        }
    }

    /// A reduced workload for CI smoke runs (`QNI_QUICK=1`).
    pub fn quick() -> Self {
        ChainWorkload {
            tasks: 250,
            fraction: 0.1,
            samples_total: 160,
            burn_in: 16,
            seed: 7,
        }
    }

    /// The engine options for running this workload at `chains` chains:
    /// each chain gets `burn_in + ceil(samples_total / chains)` iterations,
    /// so the *total* kept-sample budget is fixed while the post-burn-in
    /// work parallelizes. Shared by [`measure`] and the `par_stem`
    /// criterion bench so the fixed-budget formula lives in one place.
    pub fn options_for(&self, chains: usize) -> ParallelStemOptions {
        ParallelStemOptions {
            stem: StemOptions {
                iterations: self.burn_in + self.samples_total.div_ceil(chains),
                burn_in: self.burn_in,
                waiting_sweeps: 1,
                ..StemOptions::default()
            },
            chains,
            master_seed: self.seed,
            thread_budget: None,
        }
    }

    /// Simulates and masks the workload's trace.
    pub fn build(&self) -> MaskedLog {
        let bp = three_tier(10.0, 5.0, &[1, 2, 4], false).expect("structure");
        let mut rng = rng_from_seed(self.seed);
        let truth = Simulator::new(&bp.network)
            .run(
                &Workload::poisson_n(10.0, self.tasks).expect("workload"),
                &mut rng,
            )
            .expect("simulation");
        ObservationScheme::task_sampling(self.fraction)
            .expect("fraction")
            .apply(truth, &mut rng)
            .expect("mask")
    }
}

/// One measurement point of the chain-scaling experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChainScalingPoint {
    /// Number of parallel chains.
    pub chains: usize,
    /// Iterations each chain ran (burn-in + its share of the budget).
    pub iterations_per_chain: usize,
    /// Wall-clock seconds for the whole `run_stem_parallel` call.
    pub wall_secs: f64,
    /// Wall-clock speedup relative to the K=1 point (filled by the
    /// caller once the K=1 baseline is known).
    pub speedup: f64,
    /// `speedup / chains` — parallel efficiency in `(0, 1]`.
    pub efficiency: f64,
    /// Largest per-queue split-R̂ of the run.
    pub max_split_rhat: f64,
    /// Smallest per-queue pooled ESS of the run.
    pub min_ess: f64,
    /// Pooled λ̂ (sanity: must agree across K within Monte-Carlo noise).
    pub lambda_hat: f64,
}

/// The full JSON report written to `BENCH_chains.json`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChainScalingReport {
    /// Report schema / experiment name.
    pub bench: String,
    /// Whether the reduced `QNI_QUICK` workload was used.
    pub quick: bool,
    /// Worker threads the host reports as available.
    pub available_parallelism: usize,
    /// The workload every point ran on.
    pub workload: ChainWorkload,
    /// One entry per chain count, in measurement order.
    pub points: Vec<ChainScalingPoint>,
}

/// Measures one chain count on a pre-built masked log.
///
/// The per-chain iteration count is `burn_in + ceil(samples_total /
/// chains)`, i.e. the *total* kept-sample budget is fixed while the
/// post-burn-in work parallelizes.
pub fn measure(masked: &MaskedLog, w: &ChainWorkload, chains: usize) -> ChainScalingPoint {
    let opts = w.options_for(chains);
    let start = Instant::now();
    let r = run_stem_parallel(masked, None, &opts).expect("parallel stem");
    let wall_secs = start.elapsed().as_secs_f64();
    ChainScalingPoint {
        chains,
        iterations_per_chain: opts.stem.iterations,
        wall_secs,
        speedup: 1.0,
        efficiency: 1.0,
        max_split_rhat: r.diagnostics.max_split_rhat(),
        min_ess: r.diagnostics.min_ess(),
        lambda_hat: r.rates[0],
    }
}

/// Runs the experiment at each chain count and fills in speedups
/// relative to the first (expected `K = 1`) point.
pub fn run_experiment(w: &ChainWorkload, chain_counts: &[usize]) -> Vec<ChainScalingPoint> {
    let masked = w.build();
    // Untimed warm-up: absorb first-touch page faults and allocator growth
    // so they don't inflate the first (baseline) measurement and bias
    // every speedup upward.
    if let Some(&k0) = chain_counts.first() {
        run_stem_parallel(&masked, None, &w.options_for(k0)).expect("warm-up");
    }
    let mut points: Vec<ChainScalingPoint> = chain_counts
        .iter()
        .map(|&k| measure(&masked, w, k))
        .collect();
    if let Some(base) = points.first().map(|p| p.wall_secs) {
        for p in &mut points {
            p.speedup = base / p.wall_secs;
            p.efficiency = p.speedup / p.chains as f64;
        }
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn experiment_reports_sane_points() {
        let w = ChainWorkload {
            tasks: 80,
            fraction: 0.2,
            samples_total: 24,
            burn_in: 4,
            seed: 1,
        };
        let points = run_experiment(&w, &[1, 2]);
        assert_eq!(points.len(), 2);
        assert!((points[0].speedup - 1.0).abs() < 1e-12);
        for p in &points {
            assert!(p.wall_secs > 0.0);
            assert!(p.min_ess > 0.0);
            assert!(p.max_split_rhat.is_finite());
            assert!(p.lambda_hat > 0.0);
        }
        assert_eq!(points[1].iterations_per_chain, 4 + 12);
    }

    #[test]
    fn report_serializes_to_json() {
        let w = ChainWorkload::quick();
        let report = ChainScalingReport {
            bench: "chain_scaling".into(),
            quick: true,
            available_parallelism: 4,
            workload: w,
            points: vec![],
        };
        let json = serde_json::to_string(&report).expect("json");
        assert!(json.contains("\"bench\":\"chain_scaling\""), "{json}");
        assert!(json.contains("\"samples_total\":160"), "{json}");
    }
}
