//! §5.2 scaling claim: sweep cost tracks unobserved arrivals, not
//! servers.
//!
//! "The sampler scales primarily in the number of unobserved arrival
//! events, not in the number of servers." Two sweeps verify this: one
//! varies the number of tasks at a fixed topology (cost should grow
//! linearly), the other varies the servers per tier at a fixed task count
//! (cost per sweep should stay roughly flat).

use qni_core::gibbs::sweep::sweep;
use qni_core::init::InitStrategy;
use qni_core::GibbsState;
use qni_model::topology::three_tier;
use qni_sim::{Simulator, Workload};
use qni_stats::rng::rng_from_seed;
use qni_trace::ObservationScheme;
use std::time::Instant;

/// One measurement point.
#[derive(Debug, Clone)]
pub struct ScalingPoint {
    /// Human-readable label of the varied dimension.
    pub label: String,
    /// Number of free variables in the state.
    pub free_vars: usize,
    /// Total servers in the network.
    pub servers: usize,
    /// Mean nanoseconds per Gibbs move.
    pub ns_per_move: f64,
    /// Mean milliseconds per full sweep.
    pub ms_per_sweep: f64,
}

/// Measures sweep cost for a three-tier network configuration.
pub fn measure(
    tier_sizes: &[usize; 3],
    tasks: usize,
    fraction: f64,
    sweeps: usize,
    seed: u64,
) -> ScalingPoint {
    // Keep per-server load constant as tiers grow so queue dynamics stay
    // comparable: µ = 5 per server, λ scaled by the smallest tier.
    let lambda = 2.5 * tier_sizes.iter().copied().min().unwrap_or(1) as f64;
    let bp = three_tier(lambda, 5.0, tier_sizes, false).expect("structure");
    let mut rng = rng_from_seed(seed);
    let truth = Simulator::new(&bp.network)
        .run(
            &Workload::poisson_n(lambda, tasks).expect("workload"),
            &mut rng,
        )
        .expect("simulation");
    let masked = ObservationScheme::task_sampling(fraction)
        .expect("fraction")
        .apply(truth, &mut rng)
        .expect("mask");
    let rates = bp.network.rates().expect("mm1");
    let mut state = GibbsState::new(&masked, rates, InitStrategy::default()).expect("init");
    // Warm-up sweep outside the timed region.
    sweep(&mut state, &mut rng).expect("sweep");
    let free = state.num_free();
    let start = Instant::now();
    let mut moves = 0usize;
    for _ in 0..sweeps {
        let s = sweep(&mut state, &mut rng).expect("sweep");
        moves += s.arrival_moves + s.final_moves;
    }
    let elapsed = start.elapsed();
    let servers: usize = tier_sizes.iter().sum();
    ScalingPoint {
        label: format!(
            "tiers={}-{}-{} tasks={tasks}",
            tier_sizes[0], tier_sizes[1], tier_sizes[2]
        ),
        free_vars: free,
        servers,
        ns_per_move: elapsed.as_nanos() as f64 / moves.max(1) as f64,
        ms_per_sweep: elapsed.as_secs_f64() * 1e3 / sweeps.max(1) as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_returns_sane_numbers() {
        let p = measure(&[1, 2, 4], 100, 0.1, 2, 1);
        assert!(p.free_vars > 0);
        assert_eq!(p.servers, 7);
        assert!(p.ns_per_move > 0.0);
        assert!(p.ms_per_sweep > 0.0);
    }
}
