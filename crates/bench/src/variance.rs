//! §5.1 in-text comparison: StEM vs. the mean-observed-service baseline.
//!
//! The paper reports: "although the mean error is almost identical, StEM
//! has only two-thirds of the variance (StEM variance: 9.09 × 10⁻⁴,
//! Mean-observed-service variance: 1.37 × 10⁻³)". This module runs both
//! estimators over repeated datasets at a fixed observation fraction and
//! compares pooled estimator variance and mean absolute error.

use qni_core::baseline::mean_observed_service;
use qni_core::stem::{run_stem, StemOptions};
use qni_model::topology::three_tier;
use qni_sim::{Simulator, Workload};
use qni_stats::descriptive::RunningStats;
use qni_stats::rng::{rng_from_seed, SeedTree};
use qni_trace::ObservationScheme;

/// Configuration of the variance comparison.
#[derive(Debug, Clone)]
pub struct VarianceConfig {
    /// Tier structure.
    pub structure: [usize; 3],
    /// Fraction of tasks observed.
    pub fraction: f64,
    /// Tasks per dataset.
    pub tasks: usize,
    /// Repetitions.
    pub reps: usize,
    /// Arrival rate λ.
    pub lambda: f64,
    /// Service rate µ.
    pub mu: f64,
    /// StEM options.
    pub stem: StemOptions,
    /// Root seed.
    pub seed: u64,
}

impl Default for VarianceConfig {
    fn default() -> Self {
        VarianceConfig {
            structure: [1, 2, 4],
            fraction: 0.05,
            tasks: 1000,
            reps: 40,
            lambda: 10.0,
            mu: 5.0,
            stem: StemOptions {
                iterations: 150,
                burn_in: 75,
                waiting_sweeps: 5,
                ..StemOptions::default()
            },
            seed: 20080333,
        }
    }
}

impl VarianceConfig {
    /// A reduced configuration for smoke tests.
    pub fn quick() -> Self {
        VarianceConfig {
            tasks: 120,
            reps: 3,
            stem: StemOptions::quick_test(),
            ..VarianceConfig::default()
        }
    }
}

/// One repetition's paired estimates for a single queue.
#[derive(Debug, Clone, Copy)]
pub struct PairedEstimate {
    /// Repetition index.
    pub rep: usize,
    /// Queue index.
    pub queue: usize,
    /// StEM estimate of the mean service time.
    pub stem: f64,
    /// Baseline (oracle) estimate, if the queue had observed events.
    pub baseline: Option<f64>,
    /// True parameter mean service time (`1/µ`).
    pub truth: f64,
}

/// Runs one repetition.
pub fn run_rep(cfg: &VarianceConfig, rep: usize) -> Vec<PairedEstimate> {
    let seed = SeedTree::new(cfg.seed).child(rep as u64).root();
    let mut rng = rng_from_seed(seed);
    let bp = three_tier(cfg.lambda, cfg.mu, &cfg.structure, false).expect("valid structure");
    let truth = Simulator::new(&bp.network)
        .run(
            &Workload::poisson_n(cfg.lambda, cfg.tasks).expect("workload"),
            &mut rng,
        )
        .expect("simulation");
    let masked = ObservationScheme::task_sampling(cfg.fraction)
        .expect("fraction")
        .apply(truth, &mut rng)
        .expect("mask");
    let stem = run_stem(&masked, None, &cfg.stem, &mut rng).expect("stem");
    let base = mean_observed_service(&masked);
    (1..stem.mean_service.len())
        .map(|q| PairedEstimate {
            rep,
            queue: q,
            stem: stem.mean_service[q],
            baseline: base[q],
            truth: 1.0 / cfg.mu,
        })
        .collect()
}

/// Comparison summary across repetitions.
#[derive(Debug, Clone, Copy)]
pub struct VarianceSummary {
    /// Pooled variance of StEM estimates (around per-queue means).
    pub stem_variance: f64,
    /// Pooled variance of baseline estimates.
    pub baseline_variance: f64,
    /// Mean absolute error of StEM vs. the true mean service.
    pub stem_mae: f64,
    /// Mean absolute error of the baseline.
    pub baseline_mae: f64,
    /// Number of paired observations.
    pub n: usize,
}

/// Pools estimates across queues and repetitions.
///
/// The variance is pooled around each queue's own mean estimate so that
/// per-queue bias does not inflate it, matching the paper's description of
/// estimator variance. Only pairs where the baseline is defined enter.
pub fn summarize(estimates: &[PairedEstimate], num_queues: usize) -> VarianceSummary {
    let mut stem_err = RunningStats::new();
    let mut base_err = RunningStats::new();
    let mut stem_var_acc = 0.0f64;
    let mut base_var_acc = 0.0f64;
    let mut groups = 0usize;
    let mut n = 0usize;
    for q in 1..num_queues {
        let pairs: Vec<&PairedEstimate> = estimates
            .iter()
            .filter(|p| p.queue == q && p.baseline.is_some())
            .collect();
        if pairs.len() < 2 {
            continue;
        }
        let mut s = RunningStats::new();
        let mut b = RunningStats::new();
        for p in &pairs {
            s.push(p.stem);
            b.push(p.baseline.expect("filtered"));
            stem_err.push((p.stem - p.truth).abs());
            base_err.push((p.baseline.expect("filtered") - p.truth).abs());
            n += 1;
        }
        stem_var_acc += s.variance();
        base_var_acc += b.variance();
        groups += 1;
    }
    VarianceSummary {
        stem_variance: stem_var_acc / groups.max(1) as f64,
        baseline_variance: base_var_acc / groups.max(1) as f64,
        stem_mae: stem_err.mean(),
        baseline_mae: base_err.mean(),
        n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_rep_runs() {
        let cfg = VarianceConfig::quick();
        let est = run_rep(&cfg, 0);
        assert_eq!(est.len(), 7);
        assert!(est.iter().all(|p| p.stem.is_finite()));
    }

    #[test]
    fn summary_pools_correctly() {
        let estimates = vec![
            PairedEstimate {
                rep: 0,
                queue: 1,
                stem: 0.2,
                baseline: Some(0.3),
                truth: 0.2,
            },
            PairedEstimate {
                rep: 1,
                queue: 1,
                stem: 0.22,
                baseline: Some(0.1),
                truth: 0.2,
            },
            // Queue 2 has one defined baseline only: excluded.
            PairedEstimate {
                rep: 0,
                queue: 2,
                stem: 0.2,
                baseline: None,
                truth: 0.2,
            },
        ];
        let s = summarize(&estimates, 3);
        assert_eq!(s.n, 2);
        assert!(s.baseline_variance > s.stem_variance);
        assert!(s.stem_mae < s.baseline_mae);
    }
}
