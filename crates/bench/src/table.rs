//! Console table rendering for experiment output.

/// Renders rows as a fixed-width console table with a header.
///
/// # Examples
///
/// ```
/// let t = qni_bench::table::render(
///     &["name", "value"],
///     &[vec!["a".into(), "1".into()], vec!["b".into(), "2.5".into()]],
/// );
/// assert!(t.contains("name"));
/// assert!(t.contains("2.5"));
/// ```
pub fn render(header: &[&str], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: Vec<&str>, widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, c) in cells.iter().enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{c:>w$}", w = widths[i]));
        }
        line.push('\n');
        line
    };
    out.push_str(&fmt_row(header.to_vec(), &widths));
    let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row.iter().map(String::as_str).collect(), &widths));
    }
    out
}

/// Formats a float with 4 significant decimals, trimming noise.
pub fn num(v: f64) -> String {
    if v.is_nan() {
        "-".to_owned()
    } else if v == 0.0 {
        "0".to_owned()
    } else if v.abs() >= 100.0 {
        format!("{v:.1}")
    } else if v.abs() >= 1.0 {
        format!("{v:.3}")
    } else {
        format!("{v:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligns_columns() {
        let t = render(&["a", "long-header"], &[vec!["xxx".into(), "1".into()]]);
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("long-header"));
        assert!(lines[1].starts_with('-'));
    }

    #[test]
    fn num_formats() {
        assert_eq!(num(f64::NAN), "-");
        assert_eq!(num(0.0), "0");
        assert_eq!(num(0.03344), "0.0334");
        assert_eq!(num(1.351), "1.351");
        assert_eq!(num(123.456), "123.5");
    }
}
