//! Cross-run benchmark comparison for CI.
//!
//! The `bench-smoke` job uploads `BENCH_batch.json` / `BENCH_shard.json`
//! per run. The `bench_compare` binary downloads the previous successful
//! run's artifacts and checks the current numbers against them, so
//! regressions are caught against *history*, not just against the
//! in-run baseline. When no previous artifact exists (first run, expired
//! retention, forked PR without artifact access) the comparison is
//! skipped — the absolute `QNI_BATCH_GATE` / `QNI_SHARD_GATE` gates in
//! the bench binaries remain the fallback.
//!
//! Comparisons are deliberately tolerant: shared CI runners are noisy,
//! so a point only fails when it drops below `min_ratio` (default
//! [`DEFAULT_MIN_RATIO`]) of the previous run's speedup.

use crate::batch_speedup::BatchSpeedupReport;
use crate::shard_speedup::ShardSpeedupReport;

/// Default fraction of the previous run's speedup the current run must
/// retain. 0.75 tolerates heavy runner noise while still catching a
/// real "parallelism silently turned off" regression (which shows up as
/// a ~2x drop).
pub const DEFAULT_MIN_RATIO: f64 = 0.75;

/// The outcome of one cross-run comparison.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// No previous artifact (or it was unreadable): nothing to compare.
    NoBaseline(String),
    /// Comparison ran; every point held up.
    Ok(Vec<String>),
    /// Comparison ran; at least one point regressed.
    Regressed(Vec<String>),
}

impl Outcome {
    /// Whether CI should fail on this outcome.
    pub fn is_regression(&self) -> bool {
        matches!(self, Outcome::Regressed(_))
    }

    /// Human-readable report lines.
    pub fn lines(&self) -> Vec<String> {
        match self {
            Outcome::NoBaseline(why) => vec![format!("no baseline: {why} (comparison skipped)")],
            Outcome::Ok(lines) | Outcome::Regressed(lines) => lines.clone(),
        }
    }
}

fn check_point(name: &str, current: f64, previous: f64, min_ratio: f64) -> (bool, String) {
    let floor = previous * min_ratio;
    let ok = current >= floor;
    (
        ok,
        format!(
            "{name}: speedup {current:.2}x vs previous {previous:.2}x (floor {floor:.2}x) — {}",
            if ok { "ok" } else { "REGRESSED" }
        ),
    )
}

/// Compares two `BENCH_batch.json` reports: every workload present in
/// both must retain `min_ratio` of its previous batched-vs-scalar
/// speedup.
pub fn compare_batch(
    current: &BatchSpeedupReport,
    previous: &BatchSpeedupReport,
    min_ratio: f64,
) -> Outcome {
    let mut lines = Vec::new();
    let mut regressed = false;
    for cur in &current.points {
        let Some(prev) = previous.points.iter().find(|p| p.name == cur.name) else {
            lines.push(format!("{}: new workload, no previous point", cur.name));
            continue;
        };
        let (ok, line) = check_point(&cur.name, cur.speedup, prev.speedup, min_ratio);
        regressed |= !ok;
        lines.push(line);
    }
    if regressed {
        Outcome::Regressed(lines)
    } else {
        Outcome::Ok(lines)
    }
}

/// Compares two `BENCH_shard.json` reports on the max-shard speedup of
/// every workload present in both. Skipped entirely when either run was
/// measured on a single-thread host (its speedups are ≤ 1 by
/// construction, so a comparison would only measure noise).
pub fn compare_shard(
    current: &ShardSpeedupReport,
    previous: &ShardSpeedupReport,
    min_ratio: f64,
) -> Outcome {
    if current.host_threads < 2 || previous.host_threads < 2 {
        return Outcome::NoBaseline(format!(
            "shard speedups need a multi-core host (current: {} threads, previous: {})",
            current.host_threads, previous.host_threads
        ));
    }
    let mut lines = Vec::new();
    let mut regressed = false;
    for cur in &current.points {
        let Some(prev) = previous.points.iter().find(|p| p.name == cur.name) else {
            lines.push(format!("{}: new workload, no previous point", cur.name));
            continue;
        };
        let (Some(&c), Some(&p)) = (cur.speedup.last(), prev.speedup.last()) else {
            lines.push(format!("{}: empty speedup vector, skipped", cur.name));
            continue;
        };
        let (ok, line) = check_point(&cur.name, c, p, min_ratio);
        regressed |= !ok;
        lines.push(line);
    }
    if regressed {
        Outcome::Regressed(lines)
    } else {
        Outcome::Ok(lines)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch_speedup::BatchPoint;
    use crate::shard_speedup::ShardPoint;

    fn batch_report(speedup: f64) -> BatchSpeedupReport {
        BatchSpeedupReport {
            bench: "batch_speedup".into(),
            quick: true,
            reps: 1,
            points: vec![BatchPoint {
                name: "tandem3".into(),
                free_arrivals: 100,
                scalar_secs: 1.0,
                batched_secs: 1.0 / speedup,
                speedup,
                fallback_fraction: 0.0,
                lambda_scalar: 2.0,
                lambda_batched: 2.0,
            }],
        }
    }

    fn shard_report(speedup4: f64, host_threads: usize) -> ShardSpeedupReport {
        ShardSpeedupReport {
            bench: "shard_speedup".into(),
            quick: true,
            reps: 1,
            host_threads,
            points: vec![ShardPoint {
                name: "tandem3".into(),
                free_arrivals: 1000,
                shards: vec![1, 2, 4],
                secs: vec![1.0, 0.7, 1.0 / speedup4],
                speedup: vec![1.0, 1.4, speedup4],
                deferred_fraction: 0.01,
                lambda: 2.0,
            }],
        }
    }

    #[test]
    fn batch_within_tolerance_passes() {
        let out = compare_batch(&batch_report(1.3), &batch_report(1.5), DEFAULT_MIN_RATIO);
        assert!(!out.is_regression(), "{:?}", out.lines());
    }

    #[test]
    fn batch_large_drop_regresses() {
        let out = compare_batch(&batch_report(0.9), &batch_report(1.5), DEFAULT_MIN_RATIO);
        assert!(out.is_regression());
    }

    #[test]
    fn shard_comparison_checks_max_shard_point() {
        let out = compare_shard(
            &shard_report(1.8, 4),
            &shard_report(2.0, 4),
            DEFAULT_MIN_RATIO,
        );
        assert!(!out.is_regression(), "{:?}", out.lines());
        let out = compare_shard(
            &shard_report(1.0, 4),
            &shard_report(2.0, 4),
            DEFAULT_MIN_RATIO,
        );
        assert!(out.is_regression());
    }

    #[test]
    fn shard_comparison_skipped_on_single_core_hosts() {
        let out = compare_shard(
            &shard_report(0.8, 1),
            &shard_report(2.0, 4),
            DEFAULT_MIN_RATIO,
        );
        assert!(
            !out.is_regression(),
            "1-core current host must skip: {:?}",
            out.lines()
        );
        assert!(matches!(out, Outcome::NoBaseline(_)));
    }

    #[test]
    fn unknown_workloads_are_reported_not_failed() {
        let mut prev = batch_report(1.5);
        prev.points[0].name = "other".into();
        let out = compare_batch(&batch_report(1.0), &prev, DEFAULT_MIN_RATIO);
        assert!(!out.is_regression());
        assert!(out.lines()[0].contains("no previous point"));
    }
}
