//! Cross-run benchmark comparison for CI.
//!
//! The `bench-smoke` job uploads its `BENCH_*.json` reports per run. The
//! `bench_compare` binary checks the current numbers against history, so
//! regressions are caught across runs, not just against the in-run
//! baseline. Two modes:
//!
//! - **Pairwise** (`--previous`): compare against the single previous
//!   successful run's artifact. One noisy previous run skews the floor.
//! - **Rolling history** (`--history-dir`): keep the last `K` accepted
//!   reports in a directory (itself round-tripped as a CI artifact) and
//!   compare each headline metric against the *rolling median* of its
//!   history — robust to individual noisy runs in a way the pairwise
//!   check is not. After a passing comparison the current report is
//!   appended to the directory and the oldest entries pruned to `K`.
//!
//! When no history exists (first run, expired retention, forked PR
//! without artifact access) the comparison is skipped — the absolute
//! `QNI_BATCH_GATE` / `QNI_SHARD_GATE` gates in the bench binaries
//! remain the fallback.
//!
//! Comparisons are deliberately tolerant: shared CI runners are noisy,
//! so a point only fails when it drops below `min_ratio` (default
//! [`DEFAULT_MIN_RATIO`]) of the reference value.

use crate::batch_speedup::BatchSpeedupReport;
use crate::chain_scaling::ChainScalingReport;
use crate::pool_speedup::PoolSpeedupReport;
use crate::shard_speedup::ShardSpeedupReport;
use crate::stream_tracking::StreamTrackingReport;
use std::path::{Path, PathBuf};

/// Default fraction of the previous run's speedup the current run must
/// retain. 0.75 tolerates heavy runner noise while still catching a
/// real "parallelism silently turned off" regression (which shows up as
/// a ~2x drop).
pub const DEFAULT_MIN_RATIO: f64 = 0.75;

/// The outcome of one cross-run comparison.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// No previous artifact (or it was unreadable): nothing to compare.
    NoBaseline(String),
    /// Comparison ran; every point held up.
    Ok(Vec<String>),
    /// Comparison ran; at least one point regressed.
    Regressed(Vec<String>),
}

impl Outcome {
    /// Whether CI should fail on this outcome.
    pub fn is_regression(&self) -> bool {
        matches!(self, Outcome::Regressed(_))
    }

    /// Human-readable report lines.
    pub fn lines(&self) -> Vec<String> {
        match self {
            Outcome::NoBaseline(why) => vec![format!("no baseline: {why} (comparison skipped)")],
            Outcome::Ok(lines) | Outcome::Regressed(lines) => lines.clone(),
        }
    }
}

fn check_point(name: &str, current: f64, previous: f64, min_ratio: f64) -> (bool, String) {
    let floor = previous * min_ratio;
    let ok = current >= floor;
    (
        ok,
        format!(
            "{name}: speedup {current:.2}x vs previous {previous:.2}x (floor {floor:.2}x) — {}",
            if ok { "ok" } else { "REGRESSED" }
        ),
    )
}

/// Compares two `BENCH_batch.json` reports: every workload present in
/// both must retain `min_ratio` of its previous batched-vs-scalar
/// speedup.
pub fn compare_batch(
    current: &BatchSpeedupReport,
    previous: &BatchSpeedupReport,
    min_ratio: f64,
) -> Outcome {
    let mut lines = Vec::new();
    let mut regressed = false;
    for cur in &current.points {
        let Some(prev) = previous.points.iter().find(|p| p.name == cur.name) else {
            lines.push(format!("{}: new workload, no previous point", cur.name));
            continue;
        };
        let (ok, line) = check_point(&cur.name, cur.speedup, prev.speedup, min_ratio);
        regressed |= !ok;
        lines.push(line);
    }
    if regressed {
        Outcome::Regressed(lines)
    } else {
        Outcome::Ok(lines)
    }
}

/// Compares two `BENCH_shard.json` reports on the max-shard speedup of
/// every workload present in both. Skipped entirely when either run was
/// measured on a single-thread host (its speedups are ≤ 1 by
/// construction, so a comparison would only measure noise).
pub fn compare_shard(
    current: &ShardSpeedupReport,
    previous: &ShardSpeedupReport,
    min_ratio: f64,
) -> Outcome {
    if current.host_threads < 2 || previous.host_threads < 2 {
        return Outcome::NoBaseline(format!(
            "shard speedups need a multi-core host (current: {} threads, previous: {})",
            current.host_threads, previous.host_threads
        ));
    }
    let mut lines = Vec::new();
    let mut regressed = false;
    for cur in &current.points {
        let Some(prev) = previous.points.iter().find(|p| p.name == cur.name) else {
            lines.push(format!("{}: new workload, no previous point", cur.name));
            continue;
        };
        let (Some(&c), Some(&p)) = (cur.speedup.last(), prev.speedup.last()) else {
            lines.push(format!("{}: empty speedup vector, skipped", cur.name));
            continue;
        };
        let (ok, line) = check_point(&cur.name, c, p, min_ratio);
        regressed |= !ok;
        lines.push(line);
    }
    if regressed {
        Outcome::Regressed(lines)
    } else {
        Outcome::Ok(lines)
    }
}

/// Compares two `BENCH_pool.json` reports on the max-shard
/// pooled-over-scoped speedup of every workload present in both.
/// Skipped when either run was measured on a single-thread host, where
/// both dispatch modes serialize onto one core and the ratio is noise —
/// the same rule as [`compare_shard`].
pub fn compare_pool(
    current: &PoolSpeedupReport,
    previous: &PoolSpeedupReport,
    min_ratio: f64,
) -> Outcome {
    if current.host_threads < 2 || previous.host_threads < 2 {
        return Outcome::NoBaseline(format!(
            "pool speedups need a multi-core host (current: {} threads, previous: {})",
            current.host_threads, previous.host_threads
        ));
    }
    let mut lines = Vec::new();
    let mut regressed = false;
    for cur in &current.points {
        let Some(prev) = previous.points.iter().find(|p| p.name == cur.name) else {
            lines.push(format!("{}: new workload, no previous point", cur.name));
            continue;
        };
        let (Some(&c), Some(&p)) = (cur.speedup.last(), prev.speedup.last()) else {
            lines.push(format!("{}: empty speedup vector, skipped", cur.name));
            continue;
        };
        let (ok, line) = check_point(&cur.name, c, p, min_ratio);
        regressed |= !ok;
        lines.push(line);
    }
    if regressed {
        Outcome::Regressed(lines)
    } else {
        Outcome::Ok(lines)
    }
}

/// Compares two `BENCH_chains.json` reports on the largest-K point's
/// wall-clock speedup. Skipped when either run was measured on a
/// single-thread host (multi-chain speedups are ≤ 1 by construction
/// there, so a comparison would only measure noise) — the same rule as
/// [`compare_shard`].
pub fn compare_chains(
    current: &ChainScalingReport,
    previous: &ChainScalingReport,
    min_ratio: f64,
) -> Outcome {
    if current.available_parallelism < 2 || previous.available_parallelism < 2 {
        return Outcome::NoBaseline(format!(
            "chain speedups need a multi-core host (current: {} threads, previous: {})",
            current.available_parallelism, previous.available_parallelism
        ));
    }
    let max_point = |r: &ChainScalingReport| {
        r.points
            .iter()
            .max_by_key(|p| p.chains)
            .map(|p| (p.chains, p.speedup))
    };
    let (Some((ck, c)), Some((pk, p))) = (max_point(current), max_point(previous)) else {
        return Outcome::NoBaseline("a report has no measurement points".into());
    };
    if ck != pk {
        return Outcome::NoBaseline(format!(
            "chain counts differ (current max K={ck}, previous K={pk})"
        ));
    }
    let (ok, line) = check_point(&format!("chains K={ck}"), c, p, min_ratio);
    if ok {
        Outcome::Ok(vec![line])
    } else {
        Outcome::Regressed(vec![line])
    }
}

/// Smallest tracking error treated as meaningfully nonzero: below this,
/// ratio comparisons would amplify Monte-Carlo dust into failures.
const STREAM_ERR_FLOOR: f64 = 0.02;

fn check_error_point(name: &str, current: f64, previous: f64, min_ratio: f64) -> (bool, String) {
    // Tracking error: *lower* is better, so the ceiling is the previous
    // error inflated by 1/min_ratio (floored to dodge near-zero noise).
    let ceiling = previous.max(STREAM_ERR_FLOOR) / min_ratio;
    let ok = current <= ceiling;
    (
        ok,
        format!(
            "{name}: mean tracking error {:.1}% vs previous {:.1}% (ceiling {:.1}%) — {}",
            current * 100.0,
            previous * 100.0,
            ceiling * 100.0,
            if ok { "ok" } else { "REGRESSED" }
        ),
    )
}

/// Compares two `BENCH_stream.json` reports on the warm and cold mean
/// tracking errors (lower is better; the runs are fully seeded so the
/// error itself is deterministic given an unchanged scenario).
pub fn compare_stream(
    current: &StreamTrackingReport,
    previous: &StreamTrackingReport,
    min_ratio: f64,
) -> Outcome {
    let mut lines = Vec::new();
    let mut regressed = false;
    for (cur, prev) in [
        (&current.warm, &previous.warm),
        (&current.cold, &previous.cold),
    ] {
        if !(cur.mean_rel_err.is_finite() && prev.mean_rel_err.is_finite()) {
            lines.push(format!(
                "{}: no eligible windows in one run, skipped",
                cur.mode
            ));
            continue;
        }
        let (ok, line) =
            check_error_point(&cur.mode, cur.mean_rel_err, prev.mean_rel_err, min_ratio);
        regressed |= !ok;
        lines.push(line);
    }
    if regressed {
        Outcome::Regressed(lines)
    } else {
        Outcome::Ok(lines)
    }
}

// ---------------------------------------------------------------------
// Rolling-history mode.
// ---------------------------------------------------------------------

/// Default number of historical reports kept per benchmark kind.
pub const DEFAULT_KEEP: usize = 10;

/// One headline scalar extracted from a report, comparable across runs.
#[derive(Debug, Clone, PartialEq)]
pub struct Metric {
    /// Stable name (workload or mode), used to match across runs.
    pub name: String,
    /// The scalar (a speedup, or a tracking error).
    pub value: f64,
    /// `true` for error-like metrics where smaller is better.
    pub lower_is_better: bool,
}

impl Metric {
    fn speedup(name: impl Into<String>, value: f64) -> Metric {
        Metric {
            name: name.into(),
            value,
            lower_is_better: false,
        }
    }

    fn error(name: impl Into<String>, value: f64) -> Metric {
        Metric {
            name: name.into(),
            value,
            lower_is_better: true,
        }
    }
}

/// Headline metrics of a batch-speedup report: per-workload speedup.
pub fn batch_metrics(r: &BatchSpeedupReport) -> Vec<Metric> {
    r.points
        .iter()
        .map(|p| Metric::speedup(&p.name, p.speedup))
        .collect()
}

/// Headline metrics of a shard-speedup report: per-workload max-shard
/// speedup. Empty on a single-thread host (speedups are ≤ 1 by
/// construction there — recording them would poison the median).
pub fn shard_metrics(r: &ShardSpeedupReport) -> Vec<Metric> {
    if r.host_threads < 2 {
        return Vec::new();
    }
    r.points
        .iter()
        .filter_map(|p| {
            p.speedup
                .last()
                .map(|&s| Metric::speedup(format!("{} (max shards)", p.name), s))
        })
        .collect()
}

/// Headline metrics of a pool-speedup report: per-workload max-shard
/// pooled-over-scoped speedup. Empty on a single-thread host (the same
/// rule as [`shard_metrics`]).
pub fn pool_metrics(r: &PoolSpeedupReport) -> Vec<Metric> {
    if r.host_threads < 2 {
        return Vec::new();
    }
    r.points
        .iter()
        .filter_map(|p| {
            p.speedup
                .last()
                .map(|&s| Metric::speedup(format!("{} (pool, max shards)", p.name), s))
        })
        .collect()
}

/// Headline metric of a chain-scaling report: the largest-K speedup,
/// keyed by K so runs with different sweep sizes never cross-compare.
/// Empty on a single-thread host.
pub fn chains_metrics(r: &ChainScalingReport) -> Vec<Metric> {
    if r.available_parallelism < 2 {
        return Vec::new();
    }
    r.points
        .iter()
        .max_by_key(|p| p.chains)
        .map(|p| vec![Metric::speedup(format!("chains K={}", p.chains), p.speedup)])
        .unwrap_or_default()
}

/// Headline metrics of a stream-tracking report: warm and cold mean
/// tracking errors (lower is better; seeded, so deterministic given an
/// unchanged scenario).
pub fn stream_metrics(r: &StreamTrackingReport) -> Vec<Metric> {
    [&r.warm, &r.cold]
        .into_iter()
        .filter(|t| t.mean_rel_err.is_finite())
        .map(|t| Metric::error(&t.mode, t.mean_rel_err))
        .collect()
}

/// Median of a nonempty sample (mean of the middle pair when even).
/// Returns `None` on an empty slice.
pub fn median(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let mid = sorted.len() / 2;
    Some(if sorted.len() % 2 == 1 {
        sorted[mid]
    } else {
        (sorted[mid - 1] + sorted[mid]) / 2.0
    })
}

/// Compares the current run's headline metrics against the rolling
/// median of the same metric across historical runs. A metric with no
/// history is reported but never fails; an entirely empty history is
/// [`Outcome::NoBaseline`].
pub fn compare_to_history(current: &[Metric], history: &[Vec<Metric>], min_ratio: f64) -> Outcome {
    if history.is_empty() {
        return Outcome::NoBaseline("history directory holds no prior reports".into());
    }
    let mut lines = Vec::new();
    let mut regressed = false;
    for m in current {
        let past: Vec<f64> = history
            .iter()
            .filter_map(|run| {
                run.iter()
                    .find(|h| h.name == m.name && h.lower_is_better == m.lower_is_better)
                    .map(|h| h.value)
            })
            .collect();
        let Some(med) = median(&past) else {
            lines.push(format!("{}: new metric, no history", m.name));
            continue;
        };
        let runs = past.len();
        let (ok, line) = if m.lower_is_better {
            let (ok, line) = check_error_point(&m.name, m.value, med, min_ratio);
            (ok, format!("{line} [median of {runs} run(s)]"))
        } else {
            let (ok, line) = check_point(&m.name, m.value, med, min_ratio);
            (ok, format!("{line} [median of {runs} run(s)]"))
        };
        regressed |= !ok;
        lines.push(line);
    }
    if regressed {
        Outcome::Regressed(lines)
    } else {
        Outcome::Ok(lines)
    }
}

/// Lists history files for one kind (`BENCH_<kind>.<index>.json`),
/// sorted by ascending index. Files that don't match the pattern are
/// ignored, so the directory can hold several kinds side by side.
pub fn history_entries(dir: &Path, kind: &str) -> std::io::Result<Vec<(u64, PathBuf)>> {
    let prefix = format!("BENCH_{kind}.");
    let mut entries = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        let Some(middle) = name
            .strip_prefix(&prefix)
            .and_then(|rest| rest.strip_suffix(".json"))
        else {
            continue;
        };
        if let Ok(index) = middle.parse::<u64>() {
            entries.push((index, path));
        }
    }
    entries.sort_by_key(|&(index, _)| index);
    Ok(entries)
}

/// Appends the current report to the history directory under the next
/// free index and prunes the oldest entries down to `keep`. Returns the
/// path written.
pub fn append_history(
    dir: &Path,
    kind: &str,
    report_json: &str,
    keep: usize,
) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let entries = history_entries(dir, kind)?;
    let next = entries.last().map_or(0, |&(index, _)| index + 1);
    let path = dir.join(format!("BENCH_{kind}.{next:06}.json"));
    std::fs::write(&path, report_json)?;
    let total = entries.len() + 1;
    for (_, old) in entries.iter().take(total.saturating_sub(keep.max(1))) {
        std::fs::remove_file(old)?;
    }
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch_speedup::BatchPoint;
    use crate::chain_scaling::{ChainScalingPoint, ChainWorkload};
    use crate::pool_speedup::PoolPoint;
    use crate::shard_speedup::ShardPoint;
    use crate::stream_tracking::{FixedSummary, StreamScenario, TrackingSummary};

    fn batch_report(speedup: f64) -> BatchSpeedupReport {
        BatchSpeedupReport {
            bench: "batch_speedup".into(),
            quick: true,
            reps: 1,
            points: vec![BatchPoint {
                name: "tandem3".into(),
                free_arrivals: 100,
                scalar_secs: 1.0,
                batched_secs: 1.0 / speedup,
                speedup,
                fallback_fraction: 0.0,
                lambda_scalar: 2.0,
                lambda_batched: 2.0,
            }],
        }
    }

    fn shard_report(speedup4: f64, host_threads: usize) -> ShardSpeedupReport {
        ShardSpeedupReport {
            bench: "shard_speedup".into(),
            quick: true,
            reps: 1,
            host_threads,
            points: vec![ShardPoint {
                name: "tandem3".into(),
                free_arrivals: 1000,
                shards: vec![1, 2, 4],
                secs: vec![1.0, 0.7, 1.0 / speedup4],
                speedup: vec![1.0, 1.4, speedup4],
                deferred_fraction: 0.01,
                lambda: 2.0,
            }],
        }
    }

    fn pool_report(speedup4: f64, host_threads: usize) -> PoolSpeedupReport {
        PoolSpeedupReport {
            bench: "pool_speedup".into(),
            quick: true,
            reps: 1,
            host_threads,
            points: vec![PoolPoint {
                name: "tandem3".into(),
                free_arrivals: 1000,
                shards: vec![2, 4],
                scoped_secs: vec![1.0, 1.0],
                pooled_secs: vec![0.9, 1.0 / speedup4],
                speedup: vec![1.11, speedup4],
                scoped_sweep_micros: 900.0,
                pooled_sweep_micros: 700.0,
                lambda: 2.0,
            }],
        }
    }

    #[test]
    fn batch_within_tolerance_passes() {
        let out = compare_batch(&batch_report(1.3), &batch_report(1.5), DEFAULT_MIN_RATIO);
        assert!(!out.is_regression(), "{:?}", out.lines());
    }

    #[test]
    fn batch_large_drop_regresses() {
        let out = compare_batch(&batch_report(0.9), &batch_report(1.5), DEFAULT_MIN_RATIO);
        assert!(out.is_regression());
    }

    #[test]
    fn shard_comparison_checks_max_shard_point() {
        let out = compare_shard(
            &shard_report(1.8, 4),
            &shard_report(2.0, 4),
            DEFAULT_MIN_RATIO,
        );
        assert!(!out.is_regression(), "{:?}", out.lines());
        let out = compare_shard(
            &shard_report(1.0, 4),
            &shard_report(2.0, 4),
            DEFAULT_MIN_RATIO,
        );
        assert!(out.is_regression());
    }

    #[test]
    fn shard_comparison_skipped_on_single_core_hosts() {
        let out = compare_shard(
            &shard_report(0.8, 1),
            &shard_report(2.0, 4),
            DEFAULT_MIN_RATIO,
        );
        assert!(
            !out.is_regression(),
            "1-core current host must skip: {:?}",
            out.lines()
        );
        assert!(matches!(out, Outcome::NoBaseline(_)));
    }

    #[test]
    fn pool_comparison_checks_max_shard_point_and_skips_single_core() {
        let out = compare_pool(
            &pool_report(1.2, 4),
            &pool_report(1.3, 4),
            DEFAULT_MIN_RATIO,
        );
        assert!(!out.is_regression(), "{:?}", out.lines());
        let out = compare_pool(
            &pool_report(0.6, 4),
            &pool_report(1.3, 4),
            DEFAULT_MIN_RATIO,
        );
        assert!(out.is_regression());
        let out = compare_pool(
            &pool_report(0.6, 1),
            &pool_report(1.3, 4),
            DEFAULT_MIN_RATIO,
        );
        assert!(matches!(out, Outcome::NoBaseline(_)));
    }

    #[test]
    fn pool_metrics_follow_the_single_core_rule() {
        assert!(pool_metrics(&pool_report(1.2, 1)).is_empty());
        let metrics = pool_metrics(&pool_report(1.2, 4));
        assert_eq!(metrics.len(), 1);
        assert_eq!(metrics[0].name, "tandem3 (pool, max shards)");
        assert!(!metrics[0].lower_is_better);
    }

    fn chains_report(speedup4: f64, parallelism: usize) -> ChainScalingReport {
        ChainScalingReport {
            bench: "chain_scaling".into(),
            quick: true,
            available_parallelism: parallelism,
            workload: ChainWorkload::quick(),
            points: [1usize, 4]
                .iter()
                .map(|&k| ChainScalingPoint {
                    chains: k,
                    iterations_per_chain: 20,
                    wall_secs: 1.0,
                    speedup: if k == 1 { 1.0 } else { speedup4 },
                    efficiency: 1.0,
                    max_split_rhat: 1.0,
                    min_ess: 50.0,
                    lambda_hat: 10.0,
                })
                .collect(),
        }
    }

    fn stream_report(warm_err: f64, cold_err: f64) -> StreamTrackingReport {
        let summary = |mode: &str, err: f64| TrackingSummary {
            mode: mode.into(),
            windows: 8,
            eligible_windows: 6,
            mean_rel_err: err,
            max_rel_err: err * 1.5,
            total_secs: 1.0,
            mean_window_secs: 0.125,
        };
        StreamTrackingReport {
            bench: "stream_tracking".into(),
            quick: true,
            scenario: StreamScenario::quick(),
            tasks: 480,
            warm: summary("warm", warm_err),
            cold: summary("cold", cold_err),
            fixed: FixedSummary {
                lambda_hat: 4.0,
                rel_err_seg1: 1.0,
                rel_err_seg2: 0.33,
                secs: 0.5,
            },
        }
    }

    #[test]
    fn chains_comparison_checks_max_k_and_skips_single_core() {
        let out = compare_chains(
            &chains_report(2.5, 4),
            &chains_report(3.0, 4),
            DEFAULT_MIN_RATIO,
        );
        assert!(!out.is_regression(), "{:?}", out.lines());
        let out = compare_chains(
            &chains_report(1.0, 4),
            &chains_report(3.0, 4),
            DEFAULT_MIN_RATIO,
        );
        assert!(out.is_regression());
        let out = compare_chains(
            &chains_report(0.8, 1),
            &chains_report(3.0, 4),
            DEFAULT_MIN_RATIO,
        );
        assert!(matches!(out, Outcome::NoBaseline(_)));
    }

    #[test]
    fn stream_comparison_fails_on_error_growth_only() {
        // Error shrank: fine.
        let out = compare_stream(
            &stream_report(0.05, 0.08),
            &stream_report(0.08, 0.10),
            DEFAULT_MIN_RATIO,
        );
        assert!(!out.is_regression(), "{:?}", out.lines());
        // Error grew slightly within the ceiling: fine.
        let out = compare_stream(
            &stream_report(0.09, 0.08),
            &stream_report(0.08, 0.08),
            DEFAULT_MIN_RATIO,
        );
        assert!(!out.is_regression(), "{:?}", out.lines());
        // Warm error blew up: regression.
        let out = compare_stream(
            &stream_report(0.20, 0.08),
            &stream_report(0.08, 0.08),
            DEFAULT_MIN_RATIO,
        );
        assert!(out.is_regression());
        // Near-zero noise is floored, not failed.
        let out = compare_stream(
            &stream_report(0.02, 0.02),
            &stream_report(0.005, 0.005),
            DEFAULT_MIN_RATIO,
        );
        assert!(!out.is_regression(), "{:?}", out.lines());
    }

    #[test]
    fn median_handles_odd_even_and_empty() {
        assert!(median(&[]).is_none());
        assert!((median(&[3.0, 1.0, 2.0]).expect("odd") - 2.0).abs() < 1e-12);
        assert!((median(&[4.0, 1.0, 2.0, 3.0]).expect("even") - 2.5).abs() < 1e-12);
    }

    #[test]
    fn history_comparison_uses_rolling_median() {
        let hist: Vec<Vec<Metric>> = [1.4, 1.5, 0.2, 1.6]
            .iter()
            .map(|&s| batch_metrics(&batch_report(s)))
            .collect();
        // Median of {1.4, 1.5, 0.2, 1.6} is 1.45 — the one noisy 0.2 run
        // does not drag the floor down the way a pairwise check would.
        let ok = compare_to_history(&batch_metrics(&batch_report(1.2)), &hist, DEFAULT_MIN_RATIO);
        assert!(!ok.is_regression(), "{:?}", ok.lines());
        let bad = compare_to_history(&batch_metrics(&batch_report(0.9)), &hist, DEFAULT_MIN_RATIO);
        assert!(bad.is_regression(), "{:?}", bad.lines());
        // Empty history skips; a new metric name is reported, not failed.
        assert!(matches!(
            compare_to_history(&batch_metrics(&batch_report(1.0)), &[], DEFAULT_MIN_RATIO),
            Outcome::NoBaseline(_)
        ));
    }

    #[test]
    fn history_comparison_respects_lower_is_better() {
        let hist: Vec<Vec<Metric>> = [0.06, 0.08, 0.07]
            .iter()
            .map(|&e| stream_metrics(&stream_report(e, e)))
            .collect();
        let ok = compare_to_history(
            &stream_metrics(&stream_report(0.08, 0.08)),
            &hist,
            DEFAULT_MIN_RATIO,
        );
        assert!(!ok.is_regression(), "{:?}", ok.lines());
        let bad = compare_to_history(
            &stream_metrics(&stream_report(0.20, 0.07)),
            &hist,
            DEFAULT_MIN_RATIO,
        );
        assert!(bad.is_regression(), "{:?}", bad.lines());
    }

    #[test]
    fn single_core_reports_contribute_no_metrics() {
        assert!(shard_metrics(&shard_report(2.0, 1)).is_empty());
        assert!(chains_metrics(&chains_report(2.0, 1)).is_empty());
        assert_eq!(shard_metrics(&shard_report(2.0, 4)).len(), 1);
    }

    #[test]
    fn history_files_rotate_and_prune() {
        let dir = std::env::temp_dir().join(format!(
            "qni_bench_hist_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        for i in 0..5 {
            let json = format!("{{\"run\":{i}}}");
            append_history(&dir, "batch", &json, 3).expect("append");
        }
        // Another kind in the same directory is untouched by pruning.
        append_history(&dir, "stream", "{}", 3).expect("append other kind");
        let entries = history_entries(&dir, "batch").expect("list");
        let indices: Vec<u64> = entries.iter().map(|&(i, _)| i).collect();
        assert_eq!(indices, vec![2, 3, 4], "oldest pruned, order kept");
        assert_eq!(history_entries(&dir, "stream").expect("list").len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unknown_workloads_are_reported_not_failed() {
        let mut prev = batch_report(1.5);
        prev.points[0].name = "other".into();
        let out = compare_batch(&batch_report(1.0), &prev, DEFAULT_MIN_RATIO);
        assert!(!out.is_regression());
        assert!(out.lines()[0].contains("no previous point"));
    }
}
