//! Figure 5: per-queue estimates on the web-application testbed.
//!
//! The paper estimates mean service (left panel) and waiting (right
//! panel) for all 12 queues of the movie-voting deployment as the
//! observed fraction sweeps from a few percent to 50%, on one fixed
//! dataset. Estimates stabilize by ~10% except for the web server the
//! balancer starved (19 requests).

use qni_core::stem::{run_stem, StemOptions};
use qni_stats::rng::SeedTree;
use qni_trace::ObservationScheme;
use qni_webapp::{WebAppConfig, WebAppTestbed};

/// Configuration of the Figure 5 experiment.
#[derive(Debug, Clone)]
pub struct Fig5Config {
    /// Web application configuration.
    pub app: WebAppConfig,
    /// Observed fractions to sweep.
    pub fractions: Vec<f64>,
    /// StEM options.
    pub stem: StemOptions,
    /// Root seed.
    pub seed: u64,
}

impl Default for Fig5Config {
    fn default() -> Self {
        Fig5Config {
            app: WebAppConfig::default(),
            fractions: vec![0.02, 0.05, 0.10, 0.15, 0.20, 0.30, 0.40, 0.50],
            // Sparse queues (the 10 web servers see ~1/12 of the events
            // each) mix slowly, so the webapp experiment runs a longer
            // chain than the synthetic ones; see DESIGN.md's discussion
            // of the task-shift move.
            stem: StemOptions {
                iterations: 500,
                burn_in: 250,
                waiting_sweeps: 20,
                ..StemOptions::default()
            },
            seed: 20080502,
        }
    }
}

impl Fig5Config {
    /// A reduced configuration for smoke tests.
    pub fn quick() -> Self {
        Fig5Config {
            app: WebAppConfig {
                requests: 300,
                duration: 300.0,
                ramp: (0.5, 1.5),
                ..WebAppConfig::default()
            },
            fractions: vec![0.2],
            stem: StemOptions::quick_test(),
            ..Fig5Config::default()
        }
    }
}

/// One estimate series point: a queue at one observed fraction.
#[derive(Debug, Clone)]
pub struct EstimateRow {
    /// Observed fraction.
    pub fraction: f64,
    /// Queue index.
    pub queue: usize,
    /// Queue name (e.g. `web3`, `mysql`, `network`).
    pub name: String,
    /// Estimated mean service time (`1/µ̂`).
    pub service_est: f64,
    /// Estimated mean waiting time.
    pub waiting_est: f64,
    /// True (configured) mean service time.
    pub service_true: f64,
    /// Ground-truth empirical mean waiting time.
    pub waiting_true: f64,
    /// Number of events at this queue in the dataset.
    pub events: usize,
}

/// Runs the experiment: one dataset, a sweep of observation fractions.
pub fn run(cfg: &Fig5Config) -> Vec<EstimateRow> {
    let tb = WebAppTestbed::build(&cfg.app).expect("valid config");
    let tree = SeedTree::new(cfg.seed);
    let mut rng = tree.child(0).rng();
    let truth = tb.generate(&mut rng).expect("generation");
    let truth_avg = truth.queue_averages();
    let true_service = tb.true_mean_services();
    let mut rows = Vec::new();
    for (fi, &fraction) in cfg.fractions.iter().enumerate() {
        let mut frng = tree.child(1).child(fi as u64).rng();
        let masked = ObservationScheme::task_sampling(fraction)
            .expect("valid fraction")
            .apply(truth.clone(), &mut frng)
            .expect("mask");
        let result = run_stem(&masked, None, &cfg.stem, &mut frng).expect("stem");
        for q in 1..tb.network().num_queues() {
            rows.push(EstimateRow {
                fraction,
                queue: q,
                name: tb
                    .network()
                    .queue_name(qni_model::ids::QueueId::from_index(q))
                    .to_owned(),
                service_est: result.mean_service[q],
                waiting_est: result.mean_waiting[q],
                service_true: true_service[q],
                waiting_true: truth_avg[q].mean_waiting,
                events: truth_avg[q].count,
            });
        }
    }
    rows
}

/// Relative stability of a queue's service estimates across fractions:
/// `max|est − est_at_max_fraction| / est_at_max_fraction`.
pub fn stability(rows: &[EstimateRow], queue: usize) -> f64 {
    let mut series: Vec<(f64, f64)> = rows
        .iter()
        .filter(|r| r.queue == queue)
        .map(|r| (r.fraction, r.service_est))
        .collect();
    series.sort_by(|a, b| a.0.total_cmp(&b.0));
    let Some(&(_, reference)) = series.last() else {
        return f64::NAN;
    };
    series
        .iter()
        .map(|&(_, v)| (v - reference).abs() / reference.abs().max(1e-12))
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_rows_for_all_queues() {
        let cfg = Fig5Config::quick();
        let rows = run(&cfg);
        // 12 queues × 1 fraction.
        assert_eq!(rows.len(), 12);
        for r in &rows {
            assert!(r.service_est.is_finite());
            assert!(r.waiting_est.is_finite());
            assert!(r.service_true.is_finite());
        }
        let names: Vec<&str> = rows.iter().map(|r| r.name.as_str()).collect();
        assert!(names.contains(&"network"));
        assert!(names.contains(&"mysql"));
        assert!(names.contains(&"web1"));
    }

    #[test]
    fn stability_metric() {
        let rows = vec![
            EstimateRow {
                fraction: 0.1,
                queue: 1,
                name: "a".into(),
                service_est: 0.5,
                waiting_est: 0.0,
                service_true: 0.4,
                waiting_true: 0.0,
                events: 10,
            },
            EstimateRow {
                fraction: 0.5,
                queue: 1,
                name: "a".into(),
                service_est: 0.4,
                waiting_est: 0.0,
                service_true: 0.4,
                waiting_true: 0.0,
                events: 10,
            },
        ];
        let s = stability(&rows, 1);
        assert!((s - 0.25).abs() < 1e-12);
        assert!(stability(&rows, 9).is_nan());
    }
}
