//! Intra-trace sharding speedup experiment.
//!
//! Runs the same **single-chain** StEM workload at shard counts
//! {1, 2, 4} (`ShardMode` of `qni_core::gibbs::shard`) on three
//! topologies — M/M/1, a three-stage tandem, and a fork-join network —
//! and reports the wall-clock speedup of each shard count over the
//! serial sweep, the deferred-move fraction (same-wave π-couplings that
//! fall back to the serial cleanup), and a byte-identity cross-check:
//! sharding is contractually a pure performance knob, so the λ̂ of every
//! shard count must be *exactly* equal, and [`measure`] asserts it.
//!
//! The workloads are deliberately larger than `batch_speedup`'s: a wave
//! only fans out across worker threads once every worker can be handed
//! `MIN_EVENTS_PER_WORKER` members, so sharding targets the
//! one-giant-trace regime the ROADMAP calls out (per-queue waves of
//! hundreds-to-thousands of events), not the small-trace regime where
//! thread-spawn overhead would dominate.

use crate::batch_speedup::BatchWorkload;
use qni_core::gibbs::sweep::{sweeps_with_opts, BatchMode};
use qni_core::init::InitStrategy;
use qni_core::stem::{run_stem, StemOptions};
use qni_core::{GibbsState, ShardMode};
use qni_stats::rng::rng_from_seed;
use qni_trace::MaskedLog;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// The shard counts every workload is measured at.
pub const SHARD_COUNTS: [usize; 3] = [1, 2, 4];

/// The standard workload set at full or quick (CI smoke) size.
///
/// Reuses [`BatchWorkload`]'s topologies and trace construction
/// (arrivals task-sampled, every exit observed) at single-giant-trace
/// sizes.
pub fn workloads(quick: bool) -> Vec<BatchWorkload> {
    let (tasks, iterations, burn_in) = if quick { (4000, 15, 4) } else { (8000, 40, 10) };
    ["mm1", "tandem3", "forkjoin"]
        .into_iter()
        .map(|name| BatchWorkload {
            name: name.to_owned(),
            tasks,
            fraction: 0.1,
            iterations,
            burn_in,
            seed: 7,
        })
        .collect()
}

/// One measurement: the same workload at every shard count.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ShardPoint {
    /// Workload identifier.
    pub name: String,
    /// Free arrival variables in the masked log (the sharded axis).
    pub free_arrivals: usize,
    /// Shard counts measured, aligned with `secs` and `speedup`.
    pub shards: Vec<usize>,
    /// Best-of-reps wall-clock per shard count, seconds.
    pub secs: Vec<f64>,
    /// Speedup of each shard count over shards = 1.
    pub speedup: Vec<f64>,
    /// Fraction of batched arrival moves deferred to the serial cleanup
    /// (same-wave π-couplings), probed over a few sweeps.
    pub deferred_fraction: f64,
    /// λ̂ of the run — identical at every shard count by contract
    /// (asserted during measurement).
    pub lambda: f64,
}

/// The full JSON report written to `BENCH_shard.json`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ShardSpeedupReport {
    /// Report schema / experiment name.
    pub bench: String,
    /// Whether the reduced `QNI_QUICK` workload was used.
    pub quick: bool,
    /// Timed repetitions per shard count (best kept).
    pub reps: usize,
    /// Hardware threads available on the measuring host (speedups on a
    /// 1-thread host are ≤ 1 by construction).
    pub host_threads: usize,
    /// One entry per workload, in measurement order.
    pub points: Vec<ShardPoint>,
}

fn options(w: &BatchWorkload, shards: usize) -> StemOptions {
    StemOptions {
        iterations: w.iterations,
        burn_in: w.burn_in,
        waiting_sweeps: 3,
        shard: ShardMode::Sharded(shards),
        ..StemOptions::default()
    }
}

fn time_run(masked: &MaskedLog, w: &BatchWorkload, shards: usize, reps: usize) -> (f64, f64) {
    let opts = options(w, shards);
    let mut best = f64::INFINITY;
    let mut lambda = 0.0;
    for _ in 0..reps.max(1) {
        let mut rng = rng_from_seed(w.seed);
        let start = Instant::now();
        let r = run_stem(masked, None, &opts, &mut rng).expect("stem run");
        best = best.min(start.elapsed().as_secs_f64());
        lambda = r.rates[0];
    }
    (best, lambda)
}

/// Probes the deferred-move fraction on this workload: the share of
/// batched arrival moves whose prepared conditional a same-wave move
/// invalidated, forcing the serial-cleanup rebuild.
fn probe_deferred(masked: &MaskedLog, w: &BatchWorkload) -> f64 {
    let rates = qni_core::stem::heuristic_rates(masked);
    let mut state = GibbsState::new(masked, rates, InitStrategy::default()).expect("state");
    let mut rng = rng_from_seed(w.seed ^ 0x5eed);
    let stats = sweeps_with_opts(
        &mut state,
        BatchMode::Grouped,
        ShardMode::Sharded(2),
        3,
        &mut rng,
    )
    .expect("sweeps");
    if stats.arrival_moves == 0 {
        0.0
    } else {
        stats.group_fallbacks as f64 / stats.arrival_moves as f64
    }
}

/// Measures one workload at every shard count (ascending), asserting
/// the byte-identity contract on λ̂ along the way.
pub fn measure(w: &BatchWorkload, reps: usize) -> ShardPoint {
    let masked = w.build();
    // Untimed warm-up: absorb first-touch page faults and allocator
    // growth so they don't bias the first timed configuration.
    let _ = time_run(&masked, w, 1, 1);
    let mut secs = Vec::with_capacity(SHARD_COUNTS.len());
    let mut lambda = None;
    for &shards in &SHARD_COUNTS {
        let (s, l) = time_run(&masked, w, shards, reps);
        secs.push(s);
        match lambda {
            None => lambda = Some(l),
            Some(prev) => assert_eq!(
                prev.to_bits(),
                l.to_bits(),
                "{}: λ̂ diverged between shard counts — the determinism contract is broken",
                w.name
            ),
        }
    }
    let speedup = secs.iter().map(|&s| secs[0] / s).collect();
    ShardPoint {
        name: w.name.clone(),
        free_arrivals: masked.free_arrivals().len(),
        shards: SHARD_COUNTS.to_vec(),
        secs,
        speedup,
        deferred_fraction: probe_deferred(&masked, w),
        lambda: lambda.expect("at least one shard count"),
    }
}

/// Runs the full experiment.
pub fn run_experiment(quick: bool) -> ShardSpeedupReport {
    let reps = 2;
    let points = workloads(quick).iter().map(|w| measure(w, reps)).collect();
    ShardSpeedupReport {
        bench: "shard_speedup".to_owned(),
        quick,
        reps,
        host_threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
        points,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_experiment_reports_sane_points() {
        let w = BatchWorkload {
            name: "tandem3".to_owned(),
            tasks: 60,
            fraction: 0.2,
            iterations: 8,
            burn_in: 2,
            seed: 1,
        };
        let p = measure(&w, 1);
        assert_eq!(p.shards, SHARD_COUNTS);
        assert_eq!(p.secs.len(), SHARD_COUNTS.len());
        assert!(p.secs.iter().all(|&s| s > 0.0));
        assert!((p.speedup[0] - 1.0).abs() < 1e-12);
        assert!((0.0..=1.0).contains(&p.deferred_fraction));
        assert!(p.lambda > 0.0);
    }

    #[test]
    fn report_round_trips_through_json() {
        let report = ShardSpeedupReport {
            bench: "shard_speedup".to_owned(),
            quick: true,
            reps: 1,
            host_threads: 4,
            points: vec![ShardPoint {
                name: "mm1".to_owned(),
                free_arrivals: 10,
                shards: SHARD_COUNTS.to_vec(),
                secs: vec![1.0, 0.6, 0.4],
                speedup: vec![1.0, 1.67, 2.5],
                deferred_fraction: 0.01,
                lambda: 2.0,
            }],
        };
        let json = serde_json::to_string(&report).expect("json");
        let back: ShardSpeedupReport = serde_json::from_str(&json).expect("parse");
        assert_eq!(back.bench, "shard_speedup");
        assert_eq!(back.points.len(), 1);
        assert_eq!(back.points[0].shards, SHARD_COUNTS);
    }

    #[test]
    fn workload_set_is_giant_trace_sized() {
        for w in workloads(true) {
            assert!(w.tasks >= 2000, "{} too small for wave fan-out", w.name);
        }
    }
}
