//! Correctness of the intra-trace sharded sweep engine.
//!
//! The contract (see `qni_core::gibbs::shard`): sharding is a pure
//! performance knob. For every shard count, on every workload, the
//! sharded sweep must be **byte-identical** to the serial batched sweep
//! — same logs, same estimates, same RNG consumption, same deferred
//! (conflict-fallback) counts. These tests pin that contract at three
//! levels: raw sweeps (property test across topologies), a constructed
//! π-coupling whose deferred-move count is known exactly, and full
//! `run_stem` runs at seed 7.

use proptest::prelude::*;
use qni_core::chains::{run_stem_parallel, ParallelStemOptions};
use qni_core::gibbs::shard::MIN_EVENTS_PER_WORKER;
use qni_core::gibbs::sweep::{sweep_batched_sharded, SweepStats};
use qni_core::init::InitStrategy;
use qni_core::stem::{run_stem, StemOptions};
use qni_core::{BatchMode, GibbsState, ShardMode};
use qni_model::ids::{QueueId, StateId};
use qni_model::log::EventLogBuilder;
use qni_model::topology::{tandem, three_tier, Blueprint};
use qni_sim::{Simulator, Workload};
use qni_stats::rng::rng_from_seed;
use qni_trace::{MaskedLog, ObservationScheme};

/// The three bench topologies: an M/M/1 queue, a three-stage tandem, and
/// a fork-join network (π-couplings hop between queues).
fn blueprint(kind: usize) -> Blueprint {
    match kind {
        0 => tandem(2.0, &[5.0]).expect("mm1"),
        1 => tandem(2.0, &[5.0, 4.0, 6.0]).expect("tandem3"),
        _ => three_tier(8.0, 5.0, &[3, 3], false).expect("forkjoin"),
    }
}

fn masked(kind: usize, tasks: usize, frac: f64, seed: u64) -> MaskedLog {
    let bp = blueprint(kind);
    let lambda = bp.network.rates().expect("rates")[0];
    let mut rng = rng_from_seed(seed);
    let truth = Simulator::new(&bp.network)
        .run(
            &Workload::poisson_n(lambda, tasks).expect("workload"),
            &mut rng,
        )
        .expect("simulation");
    ObservationScheme::task_sampling(frac)
        .expect("fraction")
        .apply(truth, &mut rng)
        .expect("mask")
}

fn state_of(masked: &MaskedLog) -> GibbsState {
    let rates = qni_core::stem::heuristic_rates(masked);
    GibbsState::new(masked, rates, InitStrategy::default()).expect("state")
}

/// Runs `n` sharded batched sweeps from a fresh state and returns the
/// per-sweep stats plus the final (arrival, departure) bit patterns.
fn run_sweeps(
    masked: &MaskedLog,
    shard: ShardMode,
    sweep_seed: u64,
    n: usize,
) -> (Vec<SweepStats>, Vec<(u64, u64)>) {
    let mut st = state_of(masked);
    let mut rng = rng_from_seed(sweep_seed);
    let stats = (0..n)
        .map(|_| sweep_batched_sharded(&mut st, shard, &mut rng).expect("sweep"))
        .collect();
    let bits = st
        .log()
        .event_ids()
        .map(|e| {
            (
                st.log().arrival(e).to_bits(),
                st.log().departure(e).to_bits(),
            )
        })
        .collect();
    (stats, bits)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// The tentpole contract: shards ∈ {1, 2, 4} produce byte-identical
    /// logs and identical sweep stats (incl. deferred counts) to the
    /// serial batched sweep, on M/M/1, tandem-3, and fork-join.
    #[test]
    fn shard_counts_are_byte_identical_across_topologies(
        kind in 0usize..3,
        tasks in 10usize..40,
        frac in 0.0f64..0.8,
        sim_seed in 0u64..100,
        sweep_seed in 0u64..100,
    ) {
        let masked = masked(kind, tasks, frac, sim_seed);
        let (base_stats, base_bits) = run_sweeps(&masked, ShardMode::Serial, sweep_seed, 3);
        for shards in [1usize, 2, 4] {
            let (stats, bits) = run_sweeps(&masked, ShardMode::Sharded(shards), sweep_seed, 3);
            prop_assert_eq!(&stats, &base_stats, "stats diverged at shards={}", shards);
            prop_assert_eq!(&bits, &base_bits, "log bytes diverged at shards={}", shards);
        }
    }
}

/// Waves large enough to actually fan out across worker threads stay
/// byte-identical: an M/M/1 trace whose single queue has waves well past
/// `2 × MIN_EVENTS_PER_WORKER` members.
#[test]
fn large_waves_fan_out_and_stay_byte_identical() {
    let tasks = 10 * MIN_EVENTS_PER_WORKER;
    let masked = masked(0, tasks, 0.05, 9);
    let free = masked.free_arrivals().len();
    // Red-black waves split the queue's free arrivals by parity, so a
    // full 4-worker fan-out needs ≥ 8 × MIN_EVENTS_PER_WORKER of them.
    assert!(
        free >= 8 * MIN_EVENTS_PER_WORKER,
        "workload too small to exercise worker fan-out: {free} free arrivals"
    );
    let (base_stats, base_bits) = run_sweeps(&masked, ShardMode::Serial, 11, 2);
    for shards in [2usize, 4] {
        let (stats, bits) = run_sweeps(&masked, ShardMode::Sharded(shards), 11, 2);
        assert_eq!(stats, base_stats, "stats diverged at shards={shards}");
        assert_eq!(bits, base_bits, "log bytes diverged at shards={shards}");
    }
}

/// A constructed same-wave π-coupling: task B revisits queue 1 with
/// another task interleaved, so B's two events share a wave (queue
/// positions 0 and 2) and the second must be deferred to the serial
/// cleanup. Exactly one deferred move per sweep, at every shard count.
#[test]
fn constructed_pi_coupling_pins_deferred_count() {
    let mut b = EventLogBuilder::new(2, StateId(0));
    let tb = b
        .add_task(
            1.0,
            &[
                (StateId(1), QueueId(1), 1.0, 1.5),
                (StateId(1), QueueId(1), 1.5, 3.0),
            ],
        )
        .expect("task b");
    let tf = b
        .add_task(1.1, &[(StateId(1), QueueId(1), 1.1, 2.6)])
        .expect("task f");
    let log = b.build().expect("log");
    let free = vec![
        log.task_events(tb)[1],
        log.task_events(tf)[1],
        log.task_events(tb)[2],
    ];
    for shard in [
        ShardMode::Serial,
        ShardMode::Sharded(1),
        ShardMode::Sharded(4),
    ] {
        let mut st = GibbsState::from_parts(log.clone(), vec![1.0, 2.0], free.clone(), Vec::new())
            .expect("state");
        let mut rng = rng_from_seed(13);
        for _ in 0..5 {
            let stats = sweep_batched_sharded(&mut st, shard, &mut rng).expect("sweep");
            assert_eq!(stats.arrival_moves, 3);
            assert_eq!(stats.arrival_groups, 1);
            assert_eq!(
                stats.group_fallbacks, 1,
                "π-coupled same-wave pair must defer exactly one move ({shard:?})"
            );
            qni_model::constraints::validate(st.log()).expect("constraints");
        }
    }
}

/// The run_stem-level pin at seed 7: `--shards 1` and shards = N are
/// byte-identical to the default batched StEM run — rate trace, point
/// estimates, and waiting times.
#[test]
fn run_stem_seed7_is_byte_identical_at_every_shard_count() {
    let masked = masked(1, 60, 0.25, 7);
    let opts_for = |shard: ShardMode| StemOptions {
        shard,
        ..StemOptions::quick_test()
    };
    let run = |shard: ShardMode| {
        let mut rng = rng_from_seed(7);
        run_stem(&masked, None, &opts_for(shard), &mut rng).expect("stem")
    };
    let base = run(ShardMode::Serial);
    for shards in [1usize, 2, 4] {
        let r = run(ShardMode::Sharded(shards));
        assert_eq!(base.rate_trace.len(), r.rate_trace.len());
        for (a, b) in base.rate_trace.iter().zip(&r.rate_trace) {
            for (x, y) in a.iter().zip(b) {
                assert_eq!(
                    x.to_bits(),
                    y.to_bits(),
                    "trace diverged at shards={shards}"
                );
            }
        }
        for (x, y) in base
            .rates
            .iter()
            .chain(&base.mean_waiting)
            .chain(&base.sampled_service)
            .zip(
                r.rates
                    .iter()
                    .chain(&r.mean_waiting)
                    .chain(&r.sampled_service),
            )
        {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "estimate diverged at shards={shards}"
            );
        }
    }
}

/// The chains engine's total-thread budget caps shards without changing
/// a byte of the result.
#[test]
fn thread_budget_caps_workers_but_not_results() {
    let masked = masked(1, 50, 0.3, 4);
    let opts = |thread_budget: Option<usize>, shard: ShardMode| ParallelStemOptions {
        stem: StemOptions {
            shard,
            ..StemOptions::quick_test()
        },
        chains: 2,
        master_seed: 42,
        thread_budget,
    };
    let capped = opts(Some(2), ShardMode::Sharded(4));
    assert_eq!(capped.effective_shard(), ShardMode::Sharded(1));
    let uncapped = opts(None, ShardMode::Sharded(4));
    assert_eq!(uncapped.effective_shard(), ShardMode::Sharded(4));
    let serial = opts(None, ShardMode::Serial);
    assert_eq!(serial.effective_shard(), ShardMode::Serial);

    let ra = run_stem_parallel(&masked, None, &capped).expect("capped");
    let rb = run_stem_parallel(&masked, None, &uncapped).expect("uncapped");
    let rc = run_stem_parallel(&masked, None, &serial).expect("serial");
    for ((a, b), c) in ra.rates.iter().zip(&rb.rates).zip(&rc.rates) {
        assert_eq!(a.to_bits(), b.to_bits());
        assert_eq!(a.to_bits(), c.to_bits());
    }
    // Zero budget is rejected up front.
    assert!(run_stem_parallel(&masked, None, &opts(Some(0), ShardMode::Serial)).is_err());
}

/// Sharding requires the batched engine: the scalar sweep has no waves.
#[test]
fn scalar_batch_mode_rejects_sharding() {
    let masked = masked(0, 20, 0.5, 5);
    let opts = StemOptions {
        batch: BatchMode::Scalar,
        shard: ShardMode::Sharded(2),
        ..StemOptions::quick_test()
    };
    let mut rng = rng_from_seed(1);
    assert!(run_stem(&masked, None, &opts, &mut rng).is_err());
    // Sharded(0) is a configuration error, not a silent serial run.
    let opts = StemOptions {
        shard: ShardMode::Sharded(0),
        ..StemOptions::quick_test()
    };
    assert!(run_stem(&masked, None, &opts, &mut rng).is_err());
}
