//! Correctness of the persistent wave-prepare worker pool.
//!
//! The contract (see `qni_core::gibbs::pool`): the pool is a pure
//! scheduling vehicle. Pooled dispatch at every pool size must be
//! **byte-identical** to scoped dispatch and to the serial batched
//! sweep — same logs, same estimates, same RNG consumption, same
//! deferred counts — and pool *reuse* must be byte-neutral: two
//! consecutive fits on one pool equal two fresh runs. These tests pin
//! that contract at raw-sweep level (waves large enough to actually
//! dispatch), at `run_stem` level across dispatch modes and pool
//! sizes, and across fit failures.

use qni_core::gibbs::shard::MIN_EVENTS_PER_WORKER;
use qni_core::gibbs::sweep::{sweep_batched_pooled, sweep_batched_sharded, SweepStats};
use qni_core::init::InitStrategy;
use qni_core::stem::{run_stem, run_stem_warm_in_pool, StemOptions};
use qni_core::{DispatchMode, GibbsState, ShardMode, WavePool};
use qni_model::topology::{tandem, Blueprint};
use qni_sim::{Simulator, Workload};
use qni_stats::rng::rng_from_seed;
use qni_trace::{MaskedLog, ObservationScheme};

fn blueprint(kind: usize) -> Blueprint {
    match kind {
        0 => tandem(2.0, &[5.0]).expect("mm1"),
        _ => tandem(2.0, &[5.0, 4.0, 6.0]).expect("tandem3"),
    }
}

fn masked(kind: usize, tasks: usize, frac: f64, seed: u64) -> MaskedLog {
    let bp = blueprint(kind);
    let lambda = bp.network.rates().expect("rates")[0];
    let mut rng = rng_from_seed(seed);
    let truth = Simulator::new(&bp.network)
        .run(
            &Workload::poisson_n(lambda, tasks).expect("workload"),
            &mut rng,
        )
        .expect("simulation");
    ObservationScheme::task_sampling(frac)
        .expect("fraction")
        .apply(truth, &mut rng)
        .expect("mask")
}

fn state_of(masked: &MaskedLog) -> GibbsState {
    let rates = qni_core::stem::heuristic_rates(masked);
    GibbsState::new(masked, rates, InitStrategy::default()).expect("state")
}

fn log_bits(st: &GibbsState) -> Vec<(u64, u64)> {
    st.log()
        .event_ids()
        .map(|e| {
            (
                st.log().arrival(e).to_bits(),
                st.log().departure(e).to_bits(),
            )
        })
        .collect()
}

/// Runs `n` pooled batched sweeps from a fresh state against `pool`
/// (`None` = scoped dispatch), returning per-sweep stats and final log
/// bits.
fn run_pooled_sweeps(
    masked: &MaskedLog,
    shard: ShardMode,
    mut pool: Option<&mut WavePool>,
    sweep_seed: u64,
    n: usize,
) -> (Vec<SweepStats>, Vec<(u64, u64)>) {
    let mut st = state_of(masked);
    let mut rng = rng_from_seed(sweep_seed);
    let stats = (0..n)
        .map(|_| {
            sweep_batched_pooled(&mut st, shard, pool.as_deref_mut(), &mut rng).expect("sweep")
        })
        .collect();
    let bits = log_bits(&st);
    (stats, bits)
}

/// Raw-sweep pin on waves large enough to actually dispatch: for shard
/// counts 2 and 4, a persistent pool produces the exact serial bytes,
/// and two consecutive runs on ONE pool equal two fresh-pool runs.
#[test]
fn large_waves_pooled_dispatch_is_byte_identical_and_reusable() {
    let tasks = 10 * MIN_EVENTS_PER_WORKER;
    let masked = masked(0, tasks, 0.05, 9);
    let free = masked.free_arrivals().len();
    assert!(
        free >= 8 * MIN_EVENTS_PER_WORKER,
        "workload too small to exercise pool dispatch: {free} free arrivals"
    );
    let mut st = state_of(&masked);
    let mut rng = rng_from_seed(11);
    let base_stats: Vec<SweepStats> = (0..2)
        .map(|_| sweep_batched_sharded(&mut st, ShardMode::Serial, &mut rng).expect("sweep"))
        .collect();
    let base_bits = log_bits(&st);
    for shards in [2usize, 4] {
        let shard = ShardMode::Sharded(shards);
        // Fresh pool per run.
        let mut fresh = WavePool::new(shards);
        let (stats, bits) = run_pooled_sweeps(&masked, shard, Some(&mut fresh), 11, 2);
        assert_eq!(stats, base_stats, "stats diverged at pool size {shards}");
        assert_eq!(bits, base_bits, "log bytes diverged at pool size {shards}");
        // Pool reuse: a second full run on the SAME pool repeats the
        // fresh-pool bytes exactly.
        let mut reused = WavePool::new(shards);
        let first = run_pooled_sweeps(&masked, shard, Some(&mut reused), 11, 2);
        let second = run_pooled_sweeps(&masked, shard, Some(&mut reused), 11, 2);
        assert_eq!(first.0, stats, "first reused run diverged ({shards})");
        assert_eq!(first.1, bits, "first reused run diverged ({shards})");
        assert_eq!(second.0, stats, "reused pool diverged ({shards})");
        assert_eq!(second.1, bits, "reused pool diverged ({shards})");
        // Scoped dispatch (no pool) stays on the same bytes too.
        let (stats, bits) = run_pooled_sweeps(&masked, shard, None, 11, 2);
        assert_eq!(stats, base_stats, "scoped stats diverged ({shards})");
        assert_eq!(bits, base_bits, "scoped bytes diverged ({shards})");
    }
}

/// The run_stem-level pin at seed 7: pooled and scoped dispatch at pool
/// sizes {1, 2, 4} are all byte-identical to the serial batched run —
/// rate trace, point estimates, and waiting times.
#[test]
fn run_stem_seed7_is_byte_identical_across_dispatch_and_pool_sizes() {
    let masked = masked(1, 60, 0.25, 7);
    let run = |shard: ShardMode, dispatch: DispatchMode| {
        let opts = StemOptions {
            shard,
            dispatch,
            ..StemOptions::quick_test()
        };
        let mut rng = rng_from_seed(7);
        run_stem(&masked, None, &opts, &mut rng).expect("stem")
    };
    let base = run(ShardMode::Serial, DispatchMode::Scoped);
    for dispatch in [DispatchMode::Pooled, DispatchMode::Scoped] {
        for shards in [1usize, 2, 4] {
            let r = run(ShardMode::Sharded(shards), dispatch);
            assert_eq!(base.rate_trace.len(), r.rate_trace.len());
            for (a, b) in base.rate_trace.iter().zip(&r.rate_trace) {
                for (x, y) in a.iter().zip(b) {
                    assert_eq!(
                        x.to_bits(),
                        y.to_bits(),
                        "trace diverged at {dispatch:?} shards={shards}"
                    );
                }
            }
            for (x, y) in base
                .rates
                .iter()
                .chain(&base.mean_waiting)
                .chain(&base.sampled_service)
                .zip(
                    r.rates
                        .iter()
                        .chain(&r.mean_waiting)
                        .chain(&r.sampled_service),
                )
            {
                assert_eq!(
                    x.to_bits(),
                    y.to_bits(),
                    "estimate diverged at {dispatch:?} shards={shards}"
                );
            }
        }
    }
}

/// Two consecutive `run_stem_warm_in_pool` fits on one caller-owned
/// pool equal two fresh `run_stem` runs bit-for-bit, and a fit that
/// errors leaves the pool fully usable (no deadlock, no wedged
/// workers).
#[test]
fn fits_on_a_shared_pool_match_fresh_runs_even_after_an_error() {
    let masked = masked(1, 60, 0.25, 3);
    let opts = StemOptions {
        shard: ShardMode::Sharded(2),
        ..StemOptions::quick_test()
    };
    let fresh = |seed: u64| {
        let mut rng = rng_from_seed(seed);
        run_stem(&masked, None, &opts, &mut rng).expect("fresh run")
    };
    let mut pool = WavePool::new(2);
    let pooled = |pool: &mut WavePool, seed: u64| {
        let mut rng = rng_from_seed(seed);
        run_stem_warm_in_pool(&masked, None, None, &opts, Some(pool), &mut rng).expect("pooled run")
    };
    let a = pooled(&mut pool, 7);
    // A failing fit in between: validation rejects the empty kept
    // window, and the pool must shrug it off.
    let bad = StemOptions {
        iterations: 4,
        burn_in: 9,
        ..opts.clone()
    };
    let mut rng = rng_from_seed(1);
    assert!(run_stem_warm_in_pool(&masked, None, None, &bad, Some(&mut pool), &mut rng).is_err());
    let b = pooled(&mut pool, 8);
    for (x, y) in [(&a, &fresh(7)), (&b, &fresh(8))] {
        assert_eq!(x.rate_trace.len(), y.rate_trace.len());
        for (ra, rb) in x.rate_trace.iter().zip(&y.rate_trace) {
            for (va, vb) in ra.iter().zip(rb) {
                assert_eq!(va.to_bits(), vb.to_bits(), "shared-pool fit diverged");
            }
        }
        for (va, vb) in x.rates.iter().zip(&y.rates) {
            assert_eq!(va.to_bits(), vb.to_bits(), "shared-pool estimate diverged");
        }
    }
}
