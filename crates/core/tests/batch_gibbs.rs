//! Correctness of the batched same-queue arrival engine against the
//! scalar sampler.
//!
//! Three layers of evidence:
//!
//! 1. **Bit-identity for singleton groups** (property test): whenever
//!    every queue has at most one free arrival, the batched sweep must
//!    consume the RNG and mutate the log exactly like the scalar sweep —
//!    the correctness bar the engine is built around.
//! 2. **Distributional exactness for multi-event groups**: the first
//!    event a group resamples is drawn from its full conditional at the
//!    group's entry state, so its samples must pass a KS test against the
//!    brute-force numeric conditional of `gibbs::numeric`.
//! 3. **Structural safety on arbitrary masks** (property test): batched
//!    sweeps never violate the deterministic constraints and always
//!    resample every free arrival exactly once.

use proptest::prelude::*;
use qni_core::gibbs::numeric::{numeric_conditional_grid, service_log_joint};
use qni_core::gibbs::sweep::{sweep, sweep_batched, sweeps_with_mode, BatchMode};
use qni_core::init::InitStrategy;
use qni_core::stem::{run_stem, StemOptions};
use qni_core::GibbsState;
use qni_model::ids::{EventId, QueueId};
use qni_model::log::EventLog;
use qni_model::topology::tandem;
use qni_sim::{Simulator, Workload};
use qni_stats::ks::{ks_critical_value, ks_statistic};
use qni_stats::rng::{rng_from_seed, split_seed};
use qni_trace::{MaskedLog, ObservedMask};

const STAGE_RATES: [f64; 3] = [5.0, 4.0, 6.0];

fn simulate(stages: usize, tasks: usize, seed: u64) -> EventLog {
    let bp = tandem(2.0, &STAGE_RATES[..stages]).expect("topology");
    let mut rng = rng_from_seed(seed);
    Simulator::new(&bp.network)
        .run(
            &Workload::poisson_n(2.0, tasks).expect("workload"),
            &mut rng,
        )
        .expect("simulation")
}

/// Masks exactly one arrival per queue (by `pick`), observing everything
/// else: every batch group is a singleton.
fn singleton_mask(truth: EventLog, pick: usize) -> MaskedLog {
    let mut free = Vec::new();
    for q in 1..truth.num_queues() {
        let at_q = truth.events_at_queue(QueueId::from_index(q));
        free.push(at_q[pick % at_q.len()]);
    }
    let mut mask = ObservedMask::unobserved(truth.num_events());
    for e in truth.event_ids() {
        if !free.contains(&e) {
            mask.observe_arrival(e);
        }
        mask.observe_departure(e);
    }
    MaskedLog::new(truth, mask).expect("mask shape")
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Correctness bar: with singleton groups, batched and scalar sweeps
    /// are byte-identical under a shared seed.
    #[test]
    fn singleton_groups_are_bit_identical_to_scalar(
        stages in 1usize..=3,
        tasks in 5usize..25,
        sim_seed in 0u64..200,
        sweep_seed in 0u64..200,
        pick in 0usize..64,
    ) {
        let truth = simulate(stages, tasks, sim_seed);
        let masked = singleton_mask(truth, pick);
        let rates: Vec<f64> = std::iter::once(2.0)
            .chain(STAGE_RATES[..stages].iter().copied())
            .collect();
        let mk = || GibbsState::new(&masked, rates.clone(), InitStrategy::default()).unwrap();
        let (mut scalar, mut batched) = (mk(), mk());
        prop_assert_eq!(scalar.free_arrivals().len(), stages);
        let mut ra = rng_from_seed(sweep_seed);
        let mut rb = rng_from_seed(sweep_seed);
        for _ in 0..4 {
            let ss = sweep(&mut scalar, &mut ra).unwrap();
            let sb = sweep_batched(&mut batched, &mut rb).unwrap();
            prop_assert_eq!(ss.arrival_moves, sb.arrival_moves);
            prop_assert_eq!(sb.group_fallbacks, 0);
            for e in scalar.log().event_ids() {
                prop_assert_eq!(
                    scalar.log().arrival(e).to_bits(),
                    batched.log().arrival(e).to_bits(),
                    "arrival of {} diverged", e
                );
                prop_assert_eq!(
                    scalar.log().departure(e).to_bits(),
                    batched.log().departure(e).to_bits(),
                    "departure of {} diverged", e
                );
            }
        }
    }

    /// Batched sweeps on arbitrary task-sampling masks keep the log valid
    /// and resample every free variable exactly once per sweep.
    #[test]
    fn batched_sweeps_preserve_validity_on_random_masks(
        stages in 1usize..=3,
        tasks in 4usize..20,
        frac in 0.0f64..0.9,
        seed in 200u64..400,
    ) {
        let truth = simulate(stages, tasks, seed);
        let mut rng = rng_from_seed(seed ^ 0xbeef);
        let masked = qni_trace::ObservationScheme::task_sampling(frac)
            .unwrap()
            .apply(truth, &mut rng)
            .unwrap();
        let rates: Vec<f64> = std::iter::once(2.0)
            .chain(STAGE_RATES[..stages].iter().copied())
            .collect();
        let mut st = GibbsState::new(&masked, rates.clone(), InitStrategy::default()).unwrap();
        let free = st.free_arrivals().len();
        for _ in 0..3 {
            let stats = sweep_batched(&mut st, &mut rng).unwrap();
            prop_assert_eq!(stats.arrival_moves, free);
            qni_model::constraints::validate(st.log()).unwrap();
            prop_assert!(service_log_joint(st.log(), &rates).is_finite());
        }
    }
}

/// Builds a state whose only free variables are `group_size` consecutive
/// arrivals at queue 1 — one multi-event batch group, no final or shift
/// moves, so the batched sweep's schedule is a single group item.
fn one_group_state(group_size: usize) -> (GibbsState, Vec<EventId>) {
    let truth = simulate(1, 14, 42);
    let at_q1 = truth.events_at_queue(QueueId(1)).to_vec();
    assert!(at_q1.len() >= group_size + 4);
    let free: Vec<EventId> = at_q1[2..2 + group_size].to_vec();
    let state = GibbsState::from_parts(truth, vec![2.0, STAGE_RATES[0]], free.clone(), Vec::new())
        .expect("state");
    (state, free)
}

#[test]
fn first_group_event_matches_numeric_conditional() {
    // The first event a group resamples (wave 0, first member) is drawn
    // from its conditional at the pristine state: KS-test it against the
    // brute-force numeric conditional.
    let (state, free) = one_group_state(5);
    let target = *free
        .iter()
        .find(|&&e| state.log().queue_position(e) % 2 == 0)
        .expect("even-position member");
    let bins = 2000;
    let (grid, pdf) =
        numeric_conditional_grid(state.log(), state.rates(), target, bins).expect("numeric grid");
    let h = grid[1] - grid[0];
    let lo = grid[0] - 0.5 * h;
    let mut cum = Vec::with_capacity(bins);
    let mut acc = 0.0;
    for &p in &pdf {
        cum.push(acc);
        acc += p * h;
    }
    let cdf = move |x: f64| -> f64 {
        if x <= lo {
            return 0.0;
        }
        let idx = ((x - lo) / h) as usize;
        if idx >= bins {
            return 1.0;
        }
        (cum[idx] + pdf[idx] * (x - (lo + idx as f64 * h))).clamp(0.0, 1.0)
    };

    let n = 3000u64;
    let mut samples = Vec::with_capacity(n as usize);
    for rep in 0..n {
        let mut st = state.clone();
        let mut rng = rng_from_seed(split_seed(9, rep));
        sweep_batched(&mut st, &mut rng).expect("batched sweep");
        samples.push(st.log().arrival(target));
    }
    let ks = ks_statistic(&samples, cdf).expect("ks");
    // 1% critical value plus a small allowance for the grid's
    // piecewise-constant CDF approximation.
    let crit = ks_critical_value(n as usize, 0.01).expect("critical") + 2.0 * h;
    assert!(ks < crit, "KS statistic {ks} exceeds {crit}");
}

#[test]
fn multi_event_group_matches_scalar_kernel_statistically() {
    // Batched and scalar sweeps scan multi-event groups in different
    // orders, but both leave each event marginally distributed per the
    // same posterior: compare long-run means of a mid-group arrival.
    let (state, free) = one_group_state(4);
    let target = free[1];
    let run = |mode: BatchMode| {
        let mut st = state.clone();
        let mut rng = rng_from_seed(17);
        let mut acc = 0.0;
        let n = 4000;
        for _ in 0..n {
            sweeps_with_mode(&mut st, mode, 1, &mut rng).unwrap();
            acc += st.log().arrival(target);
        }
        acc / n as f64
    };
    let scalar = run(BatchMode::Scalar);
    let grouped = run(BatchMode::Grouped);
    assert!(
        (scalar - grouped).abs() < 0.02 * scalar.abs().max(0.1),
        "scalar mean {scalar} vs grouped mean {grouped}"
    );
}

#[test]
fn run_stem_batch_modes_are_bit_identical_for_singleton_groups() {
    let truth = simulate(2, 30, 5);
    let masked = singleton_mask(truth, 3);
    let run = |batch: BatchMode| {
        let mut rng = rng_from_seed(11);
        let opts = StemOptions {
            iterations: 20,
            burn_in: 5,
            waiting_sweeps: 3,
            batch,
            ..StemOptions::default()
        };
        run_stem(&masked, None, &opts, &mut rng).expect("stem")
    };
    let scalar = run(BatchMode::Scalar);
    let grouped = run(BatchMode::Grouped);
    assert_eq!(scalar.rate_trace.len(), grouped.rate_trace.len());
    for (a, b) in scalar.rate_trace.iter().zip(&grouped.rate_trace) {
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }
    for (x, y) in scalar.rates.iter().zip(&grouped.rates) {
        assert_eq!(x.to_bits(), y.to_bits());
    }
}
