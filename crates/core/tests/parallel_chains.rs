//! Integration tests for the multi-chain parallel StEM engine:
//! byte-reproducibility under a fixed master seed, and the split-R̂
//! diagnostic's behavior on well-mixed vs. deliberately short runs.

use qni_core::chains::{run_stem_parallel, ParallelStemOptions};
use qni_core::stem::StemOptions;
use qni_model::topology::tandem;
use qni_sim::{Simulator, Workload};
use qni_stats::rng::rng_from_seed;
use qni_trace::{MaskedLog, ObservationScheme};

/// An M/M/1 trace (single-queue tandem): λ = 2, µ = 5, `frac` of tasks
/// observed.
fn mm1_masked(frac: f64, n: usize, seed: u64) -> MaskedLog {
    let bp = tandem(2.0, &[5.0]).expect("topology");
    let mut rng = rng_from_seed(seed);
    let truth = Simulator::new(&bp.network)
        .run(&Workload::poisson_n(2.0, n).expect("workload"), &mut rng)
        .expect("simulation");
    ObservationScheme::task_sampling(frac)
        .expect("fraction")
        .apply(truth, &mut rng)
        .expect("mask")
}

#[test]
fn four_chains_seed7_byte_identical_across_invocations() {
    let masked = mm1_masked(0.3, 200, 1);
    let run = || {
        let opts = ParallelStemOptions {
            stem: StemOptions::quick_test(),
            chains: 4,
            master_seed: 7,
            thread_budget: None,
        };
        run_stem_parallel(&masked, None, &opts).expect("parallel stem")
    };
    let a = run();
    let b = run();
    // Byte-level equality (`to_bits`), not approximate closeness: any
    // thread-scheduling leak into the sampled streams, or nondeterministic
    // pooling order, would flip at least one bit somewhere.
    assert_eq!(a.chain_seeds, b.chain_seeds);
    for (ca, cb) in a.chains.iter().zip(&b.chains) {
        assert_eq!(ca.rate_trace.len(), cb.rate_trace.len());
        for (ra, rb) in ca.rate_trace.iter().zip(&cb.rate_trace) {
            for (x, y) in ra.iter().zip(rb) {
                assert_eq!(x.to_bits(), y.to_bits(), "trace diverged: {x} vs {y}");
            }
        }
    }
    for (x, y) in a.rates.iter().zip(&b.rates) {
        assert_eq!(x.to_bits(), y.to_bits(), "pooled rate diverged: {x} vs {y}");
    }
    for (x, y) in a
        .diagnostics
        .split_rhat
        .iter()
        .chain(&a.diagnostics.ess)
        .zip(b.diagnostics.split_rhat.iter().chain(&b.diagnostics.ess))
    {
        assert_eq!(x.to_bits(), y.to_bits(), "diagnostic diverged: {x} vs {y}");
    }
    // And distinct master seeds genuinely change the run.
    let opts = ParallelStemOptions {
        stem: StemOptions::quick_test(),
        chains: 4,
        master_seed: 8,
        thread_budget: None,
    };
    let c = run_stem_parallel(&masked, None, &opts).expect("parallel stem");
    assert_ne!(a.rates, c.rates);
}

#[test]
fn rhat_near_one_on_well_mixed_mm1_trace() {
    let masked = mm1_masked(0.5, 400, 2);
    let opts = ParallelStemOptions {
        stem: StemOptions {
            iterations: 300,
            burn_in: 150,
            waiting_sweeps: 1,
            ..StemOptions::default()
        },
        chains: 4,
        master_seed: 7,
        thread_budget: None,
    };
    let r = run_stem_parallel(&masked, None, &opts).expect("parallel stem");
    let d = &r.diagnostics;
    assert!(
        d.converged(1.05),
        "expected split-R̂ < 1.05 on a long well-mixed run, got {:?}",
        d.split_rhat
    );
    // λ's trace is nearly constant (its interarrival data is largely
    // observed, so the M-step barely moves it), which leaves it highly
    // autocorrelated — only require a handful of effective draws there.
    assert!(d.min_ess() > 4.0, "ess={:?}", d.ess);
    // Pooled λ̂ should be close to the true λ = 2.
    assert!((r.rates[0] - 2.0).abs() < 0.4, "λ̂={}", r.rates[0]);
}

#[test]
fn rhat_flags_deliberately_short_run() {
    let masked = mm1_masked(0.1, 300, 3);
    // Start far from the truth (true rates are λ=2, µ=5) and keep no
    // burn-in: every chain's kept trace is dominated by the relaxation
    // transient, which split-R̂ exists to flag.
    let bad_start = vec![0.2, 0.2];
    let opts = ParallelStemOptions {
        stem: StemOptions {
            iterations: 10,
            burn_in: 0,
            waiting_sweeps: 1,
            ..StemOptions::default()
        },
        chains: 4,
        master_seed: 7,
        thread_budget: None,
    };
    let r = run_stem_parallel(&masked, Some(&bad_start), &opts).expect("parallel stem");
    let d = &r.diagnostics;
    assert!(
        d.max_split_rhat() > 1.05,
        "expected split-R̂ > 1.05 on a 10-iteration transient, got {:?}",
        d.split_rhat
    );
    assert!(!d.converged(1.05));
}
