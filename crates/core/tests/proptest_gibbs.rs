//! Property-based validation of the Gibbs conditionals on random
//! simulated configurations.
//!
//! For arbitrary small networks and random events, the analytic
//! conditional (piecewise construction) must agree with brute-force
//! numerical evaluation of the joint — this fuzzes every breakpoint
//! ordering and aliasing case the closed form has to handle.

use proptest::prelude::*;
use qni_core::gibbs::arrival::arrival_conditional;
use qni_core::gibbs::final_departure::final_conditional;
use qni_core::gibbs::numeric::service_log_joint;
use qni_core::gibbs::numeric::{numeric_conditional_grid, numeric_final_grid};
use qni_core::gibbs::shift::{apply_shift, shift_conditional};
use qni_model::ids::TaskId;
use qni_model::log::EventLog;
use qni_model::topology::{tandem, three_tier};
use qni_sim::{Simulator, Workload};
use qni_stats::rng::rng_from_seed;

/// Simulates a random small log (mixing tandem and tiered shapes).
fn random_log(shape: u8, tasks: usize, seed: u64) -> (EventLog, Vec<f64>) {
    let (network, rates) = match shape % 3 {
        0 => {
            let bp = tandem(2.0, &[4.0, 6.0]).expect("topology");
            let r = bp.network.rates().expect("mm1");
            (bp.network, r)
        }
        1 => {
            let bp = tandem(3.0, &[3.5]).expect("topology");
            let r = bp.network.rates().expect("mm1");
            (bp.network, r)
        }
        _ => {
            let bp = three_tier(4.0, 6.0, &[2, 1], false).expect("topology");
            let r = bp.network.rates().expect("mm1");
            (bp.network, r)
        }
    };
    let mut rng = rng_from_seed(seed);
    let log = Simulator::new(&network)
        .run(
            &Workload::poisson_n(2.0, tasks).expect("workload"),
            &mut rng,
        )
        .expect("simulation");
    (log, rates)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    #[test]
    fn arrival_conditional_matches_numeric(
        shape in 0u8..3,
        tasks in 3usize..12,
        seed in 0u64..500,
        pick in 0usize..64,
    ) {
        let (log, rates) = random_log(shape, tasks, seed);
        // Pick a random non-initial event.
        let candidates: Vec<_> = log
            .event_ids()
            .filter(|&e| !log.is_initial_event(e))
            .collect();
        let e = candidates[pick % candidates.len()];
        let cond = arrival_conditional(&log, &rates, e).expect("conditional");
        if let Some(d) = &cond.density {
            let (grid, numeric) =
                numeric_conditional_grid(&log, &rates, e, 250).expect("grid");
            for (i, &x) in grid.iter().enumerate() {
                let exact = d.log_pdf(x).exp();
                prop_assert!(
                    (exact - numeric[i]).abs() < 0.05 * numeric[i].max(1.0),
                    "event {e}: x={x}, exact={exact}, numeric={}",
                    numeric[i]
                );
            }
        }
    }

    #[test]
    fn final_conditional_matches_numeric(
        shape in 0u8..3,
        tasks in 3usize..12,
        seed in 500u64..1000,
        pick in 0usize..64,
    ) {
        let (log, rates) = random_log(shape, tasks, seed);
        let finals: Vec<_> = log
            .event_ids()
            .filter(|&e| log.is_final_event(e))
            .collect();
        let e = finals[pick % finals.len()];
        let cond = final_conditional(&log, &rates, e).expect("conditional");
        if let Some(d) = &cond.density {
            let hi = if cond.upper.is_finite() {
                cond.upper
            } else {
                cond.lower + 4.0 / rates[log.queue_of(e).index()]
            };
            let (grid, numeric) =
                numeric_final_grid(&log, &rates, e, 250, hi).expect("grid");
            // Truncated renormalization for infinite supports.
            let mass = if cond.upper.is_finite() { 1.0 } else { d.cdf(hi) };
            for (i, &x) in grid.iter().enumerate() {
                let exact = d.log_pdf(x).exp() / mass;
                prop_assert!(
                    (exact - numeric[i]).abs() < 0.05 * numeric[i].max(1.0),
                    "event {e}: x={x}, exact={exact}, numeric={}",
                    numeric[i]
                );
            }
        }
    }

    #[test]
    fn shift_conditional_matches_numeric(
        shape in 0u8..3,
        tasks in 2usize..8,
        seed in 1000u64..1500,
        pick in 0usize..16,
    ) {
        let (log, rates) = random_log(shape, tasks, seed);
        let k = TaskId::from_index(pick % log.num_tasks());
        let cond = shift_conditional(&log, &rates, k).expect("conditional");
        if let Some(d) = &cond.density {
            let hi = if cond.upper.is_finite() {
                cond.upper
            } else {
                cond.lower + 3.0
            };
            if hi - cond.lower < 1e-6 {
                return Ok(());
            }
            let n = 250usize;
            let h = (hi - cond.lower) / n as f64;
            let mut lj = Vec::with_capacity(n);
            for i in 0..n {
                let delta = cond.lower + (i as f64 + 0.5) * h;
                let mut work = log.clone();
                apply_shift(&mut work, k, delta);
                lj.push(service_log_joint(&work, &rates));
            }
            let m = lj.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            let unnorm: Vec<f64> = lj.iter().map(|&v| (v - m).exp()).collect();
            let total: f64 = unnorm.iter().sum::<f64>() * h;
            let mass = if cond.upper.is_finite() { 1.0 } else { d.cdf(hi) };
            for (i, u) in unnorm.iter().enumerate() {
                let numeric = u / total;
                let delta = cond.lower + (i as f64 + 0.5) * h;
                let exact = d.log_pdf(delta).exp() / mass;
                prop_assert!(
                    (exact - numeric).abs() < 0.05 * numeric.max(1.0),
                    "task {k}: δ={delta}, exact={exact}, numeric={numeric}"
                );
            }
        }
    }

    #[test]
    fn moves_preserve_joint_support(
        shape in 0u8..3,
        tasks in 3usize..10,
        seed in 1500u64..2000,
    ) {
        // After arbitrary sequences of all three move types the joint
        // stays finite (no constraint ever violated).
        let (mut log, rates) = random_log(shape, tasks, seed);
        let mut rng = rng_from_seed(seed ^ 0xdead);
        let events: Vec<_> = log
            .event_ids()
            .filter(|&e| !log.is_initial_event(e))
            .collect();
        let finals: Vec<_> = log
            .event_ids()
            .filter(|&e| log.is_final_event(e))
            .collect();
        for i in 0..60 {
            match i % 3 {
                0 => {
                    let e = events[i % events.len()];
                    qni_core::gibbs::arrival::resample_arrival(
                        &mut log, &rates, e, &mut rng,
                    )
                    .expect("arrival move");
                }
                1 => {
                    let e = finals[i % finals.len()];
                    qni_core::gibbs::final_departure::resample_final(
                        &mut log, &rates, e, &mut rng,
                    )
                    .expect("final move");
                }
                _ => {
                    let k = TaskId::from_index(i % log.num_tasks());
                    qni_core::gibbs::shift::resample_shift(&mut log, &rates, k, &mut rng)
                        .expect("shift move");
                }
            }
            prop_assert!(service_log_joint(&log, &rates).is_finite());
        }
    }
}
