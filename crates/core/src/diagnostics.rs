//! MCMC diagnostics for StEM chains.

use crate::error::InferenceError;
use qni_stats::autocorr::effective_sample_size;

/// Effective sample size of each queue's rate trace.
///
/// `trace` is the per-iteration rate vectors from
/// [`crate::stem::StemResult::rate_trace`]; returns one ESS per queue.
pub fn rate_trace_ess(trace: &[Vec<f64>]) -> Result<Vec<f64>, InferenceError> {
    if trace.len() < 4 {
        return Err(InferenceError::BadOptions {
            what: "need at least 4 iterations for ESS",
        });
    }
    let q = trace[0].len();
    let mut out = Vec::with_capacity(q);
    for i in 0..q {
        let series: Vec<f64> = trace.iter().map(|row| row[i]).collect();
        out.push(effective_sample_size(&series)?);
    }
    Ok(out)
}

/// Gelman–Rubin potential scale reduction factor across chains of one
/// scalar quantity.
///
/// Values near 1 indicate the chains have mixed; > 1.1 is the usual
/// warning threshold.
pub fn potential_scale_reduction(chains: &[Vec<f64>]) -> Result<f64, InferenceError> {
    if chains.len() < 2 || chains.iter().any(|c| c.len() < 2) {
        return Err(InferenceError::BadOptions {
            what: "PSRF needs >= 2 chains of length >= 2",
        });
    }
    let n = chains.iter().map(Vec::len).min().expect("non-empty") as f64;
    let m = chains.len() as f64;
    let means: Vec<f64> = chains
        .iter()
        .map(|c| c.iter().take(n as usize).sum::<f64>() / n)
        .collect();
    let grand = means.iter().sum::<f64>() / m;
    let b = n / (m - 1.0) * means.iter().map(|mu| (mu - grand).powi(2)).sum::<f64>();
    let w = chains
        .iter()
        .zip(&means)
        .map(|(c, mu)| {
            c.iter()
                .take(n as usize)
                .map(|x| (x - mu).powi(2))
                .sum::<f64>()
                / (n - 1.0)
        })
        .sum::<f64>()
        / m;
    if w <= 0.0 {
        // Identical constant chains are perfectly mixed.
        return Ok(1.0);
    }
    let var_plus = (n - 1.0) / n * w + b / n;
    Ok((var_plus / w).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use qni_stats::rng::rng_from_seed;
    use rand::Rng;

    #[test]
    fn ess_shape() {
        let trace: Vec<Vec<f64>> = (0..100)
            .map(|i| vec![(i as f64).sin(), (i as f64).cos()])
            .collect();
        let ess = rate_trace_ess(&trace).unwrap();
        assert_eq!(ess.len(), 2);
        assert!(rate_trace_ess(&trace[..2]).is_err());
    }

    #[test]
    fn psrf_near_one_for_same_distribution() {
        let mut rng = rng_from_seed(1);
        let chains: Vec<Vec<f64>> = (0..4)
            .map(|_| (0..2000).map(|_| rng.random::<f64>()).collect())
            .collect();
        let r = potential_scale_reduction(&chains).unwrap();
        assert!((r - 1.0).abs() < 0.02, "r={r}");
    }

    #[test]
    fn psrf_large_for_separated_chains() {
        let mut rng = rng_from_seed(2);
        let a: Vec<f64> = (0..500).map(|_| rng.random::<f64>()).collect();
        let b: Vec<f64> = (0..500).map(|_| rng.random::<f64>() + 10.0).collect();
        let r = potential_scale_reduction(&[a, b]).unwrap();
        assert!(r > 5.0, "r={r}");
    }

    #[test]
    fn psrf_constant_chains() {
        let r = potential_scale_reduction(&[vec![1.0; 10], vec![1.0; 10]]).unwrap();
        assert_eq!(r, 1.0);
    }

    #[test]
    fn psrf_validation() {
        assert!(potential_scale_reduction(&[vec![1.0, 2.0]]).is_err());
        assert!(potential_scale_reduction(&[vec![1.0], vec![1.0]]).is_err());
    }
}
