//! MCMC diagnostics for StEM chains.
//!
//! Single-chain tools ([`rate_trace_ess`]) quantify autocorrelation within
//! one run; the multi-chain tools ([`split_potential_scale_reduction`],
//! [`ChainDiagnostics`]) compare independent chains from
//! [`crate::chains::run_stem_parallel`] to detect non-convergence that no
//! single chain can reveal about itself.

use crate::error::InferenceError;
use qni_stats::autocorr::{effective_sample_size, multi_chain_ess, within_and_pooled_variance};

/// Effective sample size of each queue's rate trace.
///
/// `trace` is the per-iteration rate vectors from
/// [`crate::stem::StemResult::rate_trace`]; returns one ESS per queue.
pub fn rate_trace_ess(trace: &[Vec<f64>]) -> Result<Vec<f64>, InferenceError> {
    if trace.len() < 4 {
        return Err(InferenceError::BadOptions {
            what: "need at least 4 iterations for ESS",
        });
    }
    let q = trace[0].len();
    let mut out = Vec::with_capacity(q);
    for i in 0..q {
        let series: Vec<f64> = trace.iter().map(|row| row[i]).collect();
        out.push(effective_sample_size(&series)?);
    }
    Ok(out)
}

/// Gelman–Rubin potential scale reduction factor across chains of one
/// scalar quantity.
///
/// Values near 1 indicate the chains have mixed; > 1.1 is the usual
/// warning threshold.
pub fn potential_scale_reduction(chains: &[Vec<f64>]) -> Result<f64, InferenceError> {
    if chains.len() < 2 || chains.iter().any(|c| c.len() < 2) {
        return Err(InferenceError::BadOptions {
            what: "PSRF needs >= 2 chains of length >= 2",
        });
    }
    let borrowed: Vec<&[f64]> = chains.iter().map(Vec::as_slice).collect();
    let (w, var_plus) = within_and_pooled_variance(&borrowed)?;
    if w <= 0.0 {
        // No within-chain variance: identical constant chains are
        // perfectly mixed, but constant chains stuck at *different* values
        // are maximally unmixed (Stan reports a non-finite R̂ here too).
        return Ok(if var_plus > 0.0 { f64::INFINITY } else { 1.0 });
    }
    Ok((var_plus / w).sqrt())
}

/// Split-R̂: Gelman–Rubin PSRF computed after halving every chain.
///
/// Each of the `m` chains is truncated to the shortest common even length
/// and split into its first and second half, and
/// [`potential_scale_reduction`] is applied to the resulting `2m`
/// half-chains. Splitting catches within-chain trends (a chain still
/// drifting toward the stationary distribution) that plain R̂ misses, and
/// makes the statistic well-defined for a single chain. This is the
/// variant recommended by Gelman et al. (*Bayesian Data Analysis*, §11.4)
/// and reported by Stan.
pub fn split_potential_scale_reduction(chains: &[Vec<f64>]) -> Result<f64, InferenceError> {
    if chains.is_empty() {
        return Err(InferenceError::BadOptions {
            what: "split-R̂ needs at least one chain",
        });
    }
    let n = chains.iter().map(Vec::len).min().expect("non-empty"); // qni-lint: allow(QNI-E002) — caller contract: diagnostics run on at least one chain
    let half = n / 2;
    if half < 2 {
        return Err(InferenceError::BadOptions {
            what: "split-R̂ needs chains of length >= 4",
        });
    }
    let mut halves = Vec::with_capacity(2 * chains.len());
    for c in chains {
        halves.push(c[..half].to_vec());
        halves.push(c[half..2 * half].to_vec());
    }
    potential_scale_reduction(&halves)
}

/// Per-queue convergence summary of a multi-chain StEM run.
#[derive(Debug, Clone)]
pub struct ChainDiagnostics {
    /// Split-R̂ of each queue's rate trace (entry 0 is λ's).
    pub split_rhat: Vec<f64>,
    /// Pooled effective sample size of each queue's rate trace, summed
    /// over chains.
    pub ess: Vec<f64>,
}

impl ChainDiagnostics {
    /// The largest split-R̂ across queues — the single number to check
    /// against the 1.05 warning threshold.
    pub fn max_split_rhat(&self) -> f64 {
        self.split_rhat.iter().copied().fold(f64::NAN, f64::max)
    }

    /// The smallest pooled ESS across queues.
    pub fn min_ess(&self) -> f64 {
        self.ess.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Whether every queue's split-R̂ is below `threshold` (1.05 is the
    /// customary strict cut, 1.1 the lenient one).
    pub fn converged(&self, threshold: f64) -> bool {
        self.split_rhat
            .iter()
            .all(|r| r.is_finite() && *r < threshold)
    }
}

/// Computes [`ChainDiagnostics`] from per-chain post-burn-in rate traces.
///
/// `traces[k]` is chain `k`'s kept rate trace: one `Vec<f64>` of per-queue
/// rates per iteration, as in [`crate::stem::StemResult::rate_trace`]. All
/// chains must have the same queue count; each needs >= 4 kept iterations.
pub fn rate_trace_diagnostics(traces: &[&[Vec<f64>]]) -> Result<ChainDiagnostics, InferenceError> {
    if traces.is_empty() || traces.iter().any(|t| t.len() < 4) {
        return Err(InferenceError::BadOptions {
            what: "chain diagnostics need >= 1 chain with >= 4 kept iterations each",
        });
    }
    let q = traces[0][0].len();
    if traces.iter().any(|t| t.iter().any(|row| row.len() != q)) {
        return Err(InferenceError::BadOptions {
            what: "chains disagree on the number of queues",
        });
    }
    let mut split_rhat = Vec::with_capacity(q);
    let mut ess = Vec::with_capacity(q);
    for i in 0..q {
        let series: Vec<Vec<f64>> = traces
            .iter()
            .map(|t| t.iter().map(|row| row[i]).collect())
            .collect();
        split_rhat.push(split_potential_scale_reduction(&series)?);
        let borrowed: Vec<&[f64]> = series.iter().map(Vec::as_slice).collect();
        ess.push(multi_chain_ess(&borrowed)?);
    }
    Ok(ChainDiagnostics { split_rhat, ess })
}

#[cfg(test)]
mod tests {
    use super::*;
    use qni_stats::rng::rng_from_seed;
    use rand::Rng;

    #[test]
    fn ess_shape() {
        let trace: Vec<Vec<f64>> = (0..100)
            .map(|i| vec![(i as f64).sin(), (i as f64).cos()])
            .collect();
        let ess = rate_trace_ess(&trace).unwrap();
        assert_eq!(ess.len(), 2);
        assert!(rate_trace_ess(&trace[..2]).is_err());
    }

    #[test]
    fn psrf_near_one_for_same_distribution() {
        let mut rng = rng_from_seed(1);
        let chains: Vec<Vec<f64>> = (0..4)
            .map(|_| (0..2000).map(|_| rng.random::<f64>()).collect())
            .collect();
        let r = potential_scale_reduction(&chains).unwrap();
        assert!((r - 1.0).abs() < 0.02, "r={r}");
    }

    #[test]
    fn psrf_large_for_separated_chains() {
        let mut rng = rng_from_seed(2);
        let a: Vec<f64> = (0..500).map(|_| rng.random::<f64>()).collect();
        let b: Vec<f64> = (0..500).map(|_| rng.random::<f64>() + 10.0).collect();
        let r = potential_scale_reduction(&[a, b]).unwrap();
        assert!(r > 5.0, "r={r}");
    }

    #[test]
    fn psrf_constant_chains() {
        let r = potential_scale_reduction(&[vec![1.0; 10], vec![1.0; 10]]).unwrap();
        assert_eq!(r, 1.0);
        // Constant chains stuck at different values are NOT mixed.
        let r = potential_scale_reduction(&[vec![1.0; 10], vec![2.0; 10]]).unwrap();
        assert!(r.is_infinite());
        let split = split_potential_scale_reduction(&[vec![1.0; 8], vec![2.0; 8]]).unwrap();
        assert!(split.is_infinite());
        let d = ChainDiagnostics {
            split_rhat: vec![split],
            ess: vec![2.0],
        };
        assert!(!d.converged(1.05));
    }

    #[test]
    fn psrf_validation() {
        assert!(potential_scale_reduction(&[vec![1.0, 2.0]]).is_err());
        assert!(potential_scale_reduction(&[vec![1.0], vec![1.0]]).is_err());
    }

    #[test]
    fn split_psrf_flags_trending_single_chain() {
        // A monotone drift is invisible to plain R̂ with one chain but
        // split-R̂ sees the first half and second half disagree.
        let drift: Vec<f64> = (0..200).map(|i| i as f64 * 0.1).collect();
        let r = split_potential_scale_reduction(&[drift]).unwrap();
        assert!(r > 1.5, "r={r}");
    }

    #[test]
    fn split_psrf_near_one_for_stationary_chains() {
        let mut rng = rng_from_seed(3);
        let chains: Vec<Vec<f64>> = (0..4)
            .map(|_| (0..2000).map(|_| rng.random::<f64>()).collect())
            .collect();
        let r = split_potential_scale_reduction(&chains).unwrap();
        assert!((r - 1.0).abs() < 0.03, "r={r}");
    }

    #[test]
    fn split_psrf_validation() {
        assert!(split_potential_scale_reduction(&[]).is_err());
        assert!(split_potential_scale_reduction(&[vec![1.0, 2.0, 3.0]]).is_err());
    }

    #[test]
    fn trace_diagnostics_shapes_and_thresholds() {
        let mut rng = rng_from_seed(4);
        let traces: Vec<Vec<Vec<f64>>> = (0..3)
            .map(|_| {
                (0..500)
                    .map(|_| vec![rng.random::<f64>(), rng.random::<f64>() + 5.0])
                    .collect()
            })
            .collect();
        let borrowed: Vec<&[Vec<f64>]> = traces.iter().map(Vec::as_slice).collect();
        let d = rate_trace_diagnostics(&borrowed).unwrap();
        assert_eq!(d.split_rhat.len(), 2);
        assert_eq!(d.ess.len(), 2);
        assert!(d.converged(1.05), "rhat={:?}", d.split_rhat);
        // R̂ can dip slightly below 1 when between-chain variance is tiny.
        assert!(d.max_split_rhat() > 0.95, "rhat={:?}", d.split_rhat);
        assert!(d.min_ess() > 100.0, "ess={:?}", d.ess);
    }

    #[test]
    fn trace_diagnostics_validation() {
        assert!(rate_trace_diagnostics(&[]).is_err());
        let short = vec![vec![1.0], vec![2.0]];
        assert!(rate_trace_diagnostics(&[&short]).is_err());
        let a = vec![vec![1.0, 2.0]; 10];
        let b = vec![vec![1.0]; 10];
        assert!(rate_trace_diagnostics(&[&a, &b]).is_err());
    }
}
