//! Performance-fault localization from inferred estimates.
//!
//! This is the paper's application (§5): decompose each queue's response
//! into waiting (load-induced) and service (intrinsic) components and rank
//! the likely bottlenecks. It also answers the introduction's
//! "slow-request" question: *during the execution of the slowest X% of
//! requests, which components receive the most load?*

use crate::error::InferenceError;
use qni_model::ids::{QueueId, TaskId};
use qni_model::log::EventLog;

/// Why a queue looks like a bottleneck.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BottleneckKind {
    /// Waiting dominates: the queue is overloaded (add capacity).
    LoadInduced,
    /// Service dominates and is large: the component itself is slow
    /// (fix or replace it).
    Intrinsic,
    /// Neither component stands out.
    Healthy,
}

/// Diagnosis for one queue.
#[derive(Debug, Clone)]
pub struct QueueDiagnosis {
    /// The queue.
    pub queue: QueueId,
    /// Estimated mean service time.
    pub service: f64,
    /// Estimated mean waiting time.
    pub waiting: f64,
    /// `waiting + service`.
    pub response: f64,
    /// Classification.
    pub kind: BottleneckKind,
}

/// A ranked localization report.
#[derive(Debug, Clone)]
pub struct LocalizationReport {
    /// Diagnoses sorted by descending response contribution.
    pub ranked: Vec<QueueDiagnosis>,
}

impl LocalizationReport {
    /// The most suspicious queue, if any queue has events.
    pub fn top(&self) -> Option<&QueueDiagnosis> {
        self.ranked.first()
    }
}

/// Threshold on `waiting / service` above which a queue is load-induced.
pub const LOAD_RATIO: f64 = 3.0;

/// Multiple of the median service above which a queue is intrinsically
/// slow.
pub const INTRINSIC_RATIO: f64 = 3.0;

/// Builds a localization report from per-queue estimates.
///
/// `service` and `waiting` are indexed by queue (entry 0 = `q0`, which is
/// skipped). Classification: waiting ≫ service → load-induced; service ≫
/// the median service of all queues → intrinsic; otherwise healthy.
pub fn localize(service: &[f64], waiting: &[f64]) -> Result<LocalizationReport, InferenceError> {
    if service.len() != waiting.len() || service.is_empty() {
        return Err(InferenceError::BadOptions {
            what: "service and waiting must be equal-length, non-empty",
        });
    }
    let mut services: Vec<f64> = service[1..]
        .iter()
        .copied()
        .filter(|s| s.is_finite())
        .collect();
    services.sort_by(f64::total_cmp);
    let median_service = if services.is_empty() {
        0.0
    } else {
        services[services.len() / 2]
    };
    let mut ranked: Vec<QueueDiagnosis> = (1..service.len())
        .filter(|&i| service[i].is_finite() && waiting[i].is_finite())
        .map(|i| {
            let s = service[i];
            let w = waiting[i];
            let kind = if w > LOAD_RATIO * s.max(1e-12) {
                BottleneckKind::LoadInduced
            } else if median_service > 0.0 && s > INTRINSIC_RATIO * median_service {
                BottleneckKind::Intrinsic
            } else {
                BottleneckKind::Healthy
            };
            QueueDiagnosis {
                queue: QueueId::from_index(i),
                service: s,
                waiting: w,
                response: s + w,
                kind,
            }
        })
        .collect();
    ranked.sort_by(|a, b| b.response.total_cmp(&a.response));
    Ok(LocalizationReport { ranked })
}

/// Per-queue attribution of where the slowest requests spend their time.
#[derive(Debug, Clone, Copy)]
pub struct SlowRequestAttribution {
    /// The queue.
    pub queue: QueueId,
    /// Mean waiting time at this queue *within slow requests*.
    pub waiting: f64,
    /// Mean service time at this queue within slow requests.
    pub service: f64,
    /// Number of slow-request events at this queue.
    pub count: usize,
}

/// Attributes the time of tasks above the `quantile`-th response-time
/// quantile to queues ("during the slowest 1% of requests, which
/// components receive the most load?").
pub fn slow_request_attribution(
    log: &EventLog,
    quantile: f64,
) -> Result<Vec<SlowRequestAttribution>, InferenceError> {
    if !(0.0..1.0).contains(&quantile) {
        return Err(InferenceError::BadOptions {
            what: "quantile must be in [0, 1)",
        });
    }
    let mut responses: Vec<f64> = (0..log.num_tasks())
        .map(|k| log.task_response(TaskId::from_index(k)))
        .collect();
    if responses.is_empty() {
        return Err(InferenceError::BadOptions {
            what: "log has no tasks",
        });
    }
    responses.sort_by(f64::total_cmp);
    let cutoff = qni_stats::descriptive::quantile_sorted(&responses, quantile);
    let mut acc = vec![(0usize, 0.0f64, 0.0f64); log.num_queues()];
    for k in 0..log.num_tasks() {
        let k = TaskId::from_index(k);
        if log.task_response(k) < cutoff {
            continue;
        }
        for &e in &log.task_events(k)[1..] {
            let q = log.queue_of(e).index();
            acc[q].0 += 1;
            acc[q].1 += log.waiting_time(e);
            acc[q].2 += log.service_time(e);
        }
    }
    Ok(acc
        .into_iter()
        .enumerate()
        .skip(1)
        .map(|(i, (n, w, s))| SlowRequestAttribution {
            queue: QueueId::from_index(i),
            waiting: if n > 0 { w / n as f64 } else { 0.0 },
            service: if n > 0 { s / n as f64 } else { 0.0 },
            count: n,
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use qni_model::topology::three_tier;
    use qni_sim::{Simulator, Workload};
    use qni_stats::rng::rng_from_seed;

    #[test]
    fn overloaded_tier_is_load_induced_top() {
        // λ=10, µ=5: tier with one server is overloaded.
        let bp = three_tier(10.0, 5.0, &[1, 4, 4], false).unwrap();
        let mut rng = rng_from_seed(1);
        let log = Simulator::new(&bp.network)
            .run(&Workload::poisson_n(10.0, 800).unwrap(), &mut rng)
            .unwrap();
        let avg = log.queue_averages();
        let service: Vec<f64> = avg.iter().map(|a| a.mean_service).collect();
        let waiting: Vec<f64> = avg.iter().map(|a| a.mean_waiting).collect();
        let report = localize(&service, &waiting).unwrap();
        let top = report.top().unwrap();
        assert_eq!(top.queue, bp.tiers[0][0]);
        assert_eq!(top.kind, BottleneckKind::LoadInduced);
    }

    #[test]
    fn intrinsically_slow_queue_detected() {
        // Service 10× the others, but lightly loaded → intrinsic.
        let service = vec![f64::NAN, 0.1, 1.0, 0.1];
        let waiting = vec![f64::NAN, 0.05, 0.2, 0.02];
        let report = localize(&service, &waiting).unwrap();
        let top = report.top().unwrap();
        assert_eq!(top.queue, QueueId(2));
        assert_eq!(top.kind, BottleneckKind::Intrinsic);
    }

    #[test]
    fn healthy_system() {
        let service = vec![f64::NAN, 0.1, 0.12, 0.09];
        let waiting = vec![f64::NAN, 0.02, 0.03, 0.01];
        let report = localize(&service, &waiting).unwrap();
        assert!(report
            .ranked
            .iter()
            .all(|d| d.kind == BottleneckKind::Healthy));
    }

    #[test]
    fn slow_request_attribution_finds_bottleneck() {
        let bp = three_tier(10.0, 5.0, &[1, 4, 4], false).unwrap();
        let mut rng = rng_from_seed(2);
        let log = Simulator::new(&bp.network)
            .run(&Workload::poisson_n(10.0, 800).unwrap(), &mut rng)
            .unwrap();
        let attr = slow_request_attribution(&log, 0.95).unwrap();
        // The overloaded tier-1 server dominates slow-request waiting.
        let worst = attr
            .iter()
            .max_by(|a, b| a.waiting.total_cmp(&b.waiting))
            .unwrap();
        assert_eq!(worst.queue, bp.tiers[0][0]);
        assert!(worst.count > 0);
    }

    #[test]
    fn validation() {
        assert!(localize(&[1.0], &[1.0, 2.0]).is_err());
        assert!(localize(&[], &[]).is_err());
        let bp = three_tier(1.0, 5.0, &[1, 1, 1], false).unwrap();
        let mut rng = rng_from_seed(3);
        let log = Simulator::new(&bp.network)
            .run(&Workload::poisson_n(1.0, 10).unwrap(), &mut rng)
            .unwrap();
        assert!(slow_request_attribution(&log, 1.5).is_err());
    }
}
